//! Workspace umbrella crate for the PUFFER reproduction.
//!
//! This crate exists to host the runnable `examples/` and the cross-crate
//! integration tests in `tests/`. The actual library surface lives in the
//! [`puffer`] crate and its substrates; this crate simply re-exports them so
//! examples can use one import root.

#![forbid(unsafe_code)]

pub use puffer;
pub use puffer_congest as congest;
pub use puffer_db as db;
pub use puffer_explore as explore;
pub use puffer_fft as fft;
pub use puffer_flute as flute;
pub use puffer_gen as gen;
pub use puffer_legal as legal;
pub use puffer_pad as pad;
pub use puffer_place as place;
pub use puffer_route as route;
