#!/usr/bin/env bash
# Tier-1 CI gate: offline build, full test suite, and lints.
#
# Usage: scripts/ci.sh            (from the repo root)
#
# clippy runs with -D warnings; on top of that, the library crates are
# checked with clippy::unwrap_used / clippy::expect_used as *warnings* —
# advisory output that keeps the unwrap count visible without failing the
# build where a panic is a genuine invariant check (those sites carry
# #[allow] or live in tests, which the lint configuration exempts).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# The workspace policy gate: panic-free library code, sanctioned threading
# only, #![forbid(unsafe_code)] in every crate root, downward-only crate
# layering, and the determinism/concurrency rules — no bare numeric `as`
# casts in the hot crates (named puffer_db::cast helpers instead), no
# HashMap/HashSet in library code, no wall-clock reads outside
# puffer-trace/puffer-budget, and a statically acyclic lock-order graph
# checked against the ranks declared in puffer_budget::lockcheck::classes.
# Waivers live in lint-allow.toml. (--json emits the findings as JSONL for
# tooling.)
echo "==> puffer lint"
target/release/puffer lint

# Advisory pass: surface unwrap/expect density on library code. Library
# crates only — binaries, benches, and tests legitimately unwrap.
LIB_CRATES=(
  puffer-budget puffer-par puffer-db puffer-gen puffer-flute puffer-fft
  puffer-place puffer-congest puffer-pad puffer-explore puffer-legal
  puffer-dp puffer-route puffer-rng puffer-trace puffer puffer-serve
)
echo "==> advisory clippy (unwrap_used/expect_used) on library crates"
for crate in "${LIB_CRATES[@]}"; do
  cargo clippy -q -p "$crate" --lib -- \
    -W clippy::unwrap_used -W clippy::expect_used 2>&1 |
    grep -c "^warning: used" |
    xargs -I{} echo "    $crate: {} unwrap/expect sites" || true
done

# Metrics smoke: a tiny traced run must produce a JSONL file the
# validator accepts with the complete stage set.
echo "==> metrics smoke (place --metrics + puffer trace --check)"
SMOKE_DIR="target/ci-smoke"
mkdir -p "$SMOKE_DIR"
PUFFER=target/release/puffer
"$PUFFER" gen --preset or1200 --scale 0.003 -o "$SMOKE_DIR/smoke.pd"
"$PUFFER" place "$SMOKE_DIR/smoke.pd" -o "$SMOKE_DIR/smoke.pl" \
  --metrics "$SMOKE_DIR/smoke.jsonl" --trace-summary
"$PUFFER" trace "$SMOKE_DIR/smoke.jsonl" --check

# Validated-flow smoke: the stage-boundary invariant checkers must accept
# a full PUFFER run, and the artifact audits must accept its outputs.
echo "==> validated flow smoke (place --validate + puffer audit)"
"$PUFFER" place "$SMOKE_DIR/smoke.pd" -o "$SMOKE_DIR/val.pl" --validate \
  --journal "$SMOKE_DIR/val.pj" --metrics "$SMOKE_DIR/val.jsonl"
"$PUFFER" audit design "$SMOKE_DIR/smoke.pd"
"$PUFFER" audit run "$SMOKE_DIR/val.pj" "$SMOKE_DIR/val.jsonl"
"$PUFFER" eval "$SMOKE_DIR/smoke.pd" "$SMOKE_DIR/val.pl" --validate

# Deterministic-parallelism smoke: --threads must not change results. The
# checkpoint journals and placements of a 1-thread and a 4-thread run are
# byte-identical (the puffer-par kernels are bit-identical by design).
echo "==> deterministic parallelism smoke (place --threads 1 vs 4)"
"$PUFFER" place "$SMOKE_DIR/smoke.pd" -o "$SMOKE_DIR/t1.pl" \
  --threads 1 --journal "$SMOKE_DIR/t1.pj"
"$PUFFER" place "$SMOKE_DIR/smoke.pd" -o "$SMOKE_DIR/t4.pl" \
  --threads 4 --journal "$SMOKE_DIR/t4.pj"
cmp "$SMOKE_DIR/t1.pj" "$SMOKE_DIR/t4.pj"
cmp "$SMOKE_DIR/t1.pl" "$SMOKE_DIR/t4.pl"

# Incremental-congestion smoke: the dirty-region estimator is bit-identical
# to a full per-round rebuild, so disabling it must not change a single
# byte of the checkpoint journal or the placement.
echo "==> incremental congestion smoke (default vs --no-incremental-congest)"
"$PUFFER" place "$SMOKE_DIR/smoke.pd" -o "$SMOKE_DIR/inc.pl" \
  --incremental-congest --journal "$SMOKE_DIR/inc.pj"
"$PUFFER" place "$SMOKE_DIR/smoke.pd" -o "$SMOKE_DIR/full.pl" \
  --no-incremental-congest --journal "$SMOKE_DIR/full.pj"
cmp "$SMOKE_DIR/inc.pj" "$SMOKE_DIR/full.pj"
cmp "$SMOKE_DIR/inc.pl" "$SMOKE_DIR/full.pl"

# Bounded-execution smoke: an expired deadline must still exit 0 with a
# legal best-so-far placement, and the deterministic chaos harness must
# survive one injection from every fault class.
echo "==> bounded execution smoke (place --deadline + puffer chaos)"
"$PUFFER" place "$SMOKE_DIR/smoke.pd" -o "$SMOKE_DIR/deadline.pl" \
  --deadline 0.001 --degrade default
"$PUFFER" chaos --seeds 9

# Durable I/O gates: the fsx unit suite with the fault hooks compiled in,
# then 24 seeded filesystem-fault injections (disk-full, torn-write,
# fsync-fail, rename-fail, short-read) through the flow-level chaos
# harness. Every
# injection must end in a legal end state: a valid result, a resumable
# checkpoint that replays bit-identically, or a structured error.
echo "==> fsx chaos smoke (unit suite + puffer chaos --classes fs --seeds 24)"
cargo test -q -p puffer-budget --features chaos fsx
"$PUFFER" chaos --classes fs --seeds 24

# Serve smoke: the daemon's stdin transport runs a submitted job to
# completion on EOF-drain, journaling under --journal-dir.
echo "==> serve smoke (puffer serve --stdin)"
rm -rf "$SMOKE_DIR/serve-journal"
printf '%s\n' \
  '{"t":"ping"}' \
  '{"t":"submit","preset":"or1200","scale":0.003,"out":"target/ci-smoke/serve.pl"}' \
  '{"t":"wait","id":1,"timeout_s":300}' \
  '{"t":"drain"}' |
  "$PUFFER" serve --stdin --journal-dir "$SMOKE_DIR/serve-journal" \
    --workers 2 | tee "$SMOKE_DIR/serve-smoke.out"
grep -q '"t":"serve.result"' "$SMOKE_DIR/serve-smoke.out"
test -f "$SMOKE_DIR/serve.pl"

# Serve chaos smoke: >= 20 seeded injections across all six fault classes
# (worker panic, journal truncation, client disconnect, kill+restart,
# injected ENOSPC, and kill+restart after an injected rename failure);
# every job must land in a legal end state with the worker pool intact.
# Together with the 24 flow-level filesystem injections above, this puts
# >= 32 seeded filesystem faults through the durable I/O layer per run.
echo "==> serve chaos smoke (puffer serve --chaos --seeds 24)"
"$PUFFER" serve --chaos --seeds 24 --cells 160 --max-iters 60

# Lock-order sanitizer smoke: the runtime half of the lock-order gate. The
# lockcheck cargo feature arms a thread-local held-lock stack that asserts
# the declared rank order on every classed acquisition; the budget tests
# prove the sanitizer trips on inversions, and the serve chaos test drives
# the engine/queue/trace locks under real worker, cancel, and restart
# interleavings with it armed.
echo "==> lockcheck sanitizer smoke (budget + serve chaos under --features lockcheck)"
cargo test -q -p puffer-budget --features lockcheck lockcheck
cargo test -q -p puffer-serve --features lockcheck chaos

# Congestion perf gate: an incremental re-estimate after a localized
# perturbation must be >= 2x faster than a full rebuild, single-threaded,
# at scale 0.5 on OR1200. Writes BENCH_OR1200.json (before/after pair).
echo "==> congest gate (benchflow --congest-gate, scale 0.5)"
target/release/benchflow --congest-gate --scale 0.5 --designs or1200 \
  --out target/congest-gate

# Flow benchmark artifacts (BENCH_<design>.json under target/bench).
echo "==> scripts/bench.sh (BENCH_*.json artifacts)"
scripts/bench.sh target/bench

# Nightly-style scale regressions, opt-in via PUFFER_NIGHTLY=1: the
# million-cell streaming-ingestion RSS test (cargo feature `expensive`)
# and the benchflow scale gate, which places a 1M+ cell design (ct_top at
# scale 1.0) under a bounded-RSS assertion and writes BENCH_CT_TOP.json.
if [[ "${PUFFER_NIGHTLY:-0}" == "1" ]]; then
  echo "==> nightly: million-cell scale regression (--features expensive)"
  cargo test --features expensive --test scale_regression -- --nocapture
  echo "==> nightly: scale gate (benchflow --scale-gate)"
  target/release/benchflow --scale-gate --out target/scale-gate
fi

echo "==> CI green"
