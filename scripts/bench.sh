#!/usr/bin/env bash
# Flow benchmark: runs the PUFFER flow under telemetry and emits one
# machine-readable BENCH_<design>.json per design (stage wall-times +
# Table II metrics + the "par" section: deterministic-parallel kernel
# times at 1/2/4/8 threads and the 4-thread speedup). CI keeps the JSON
# files as artifacts, and benchflow exits nonzero if the chunked 1-thread
# kernel path regresses more than 10% against the unchunked serial
# reference.
#
# usage: scripts/bench.sh [out_dir]
#   BENCH_SCALE   scale factor for the Table I presets (default 0.003)
#   BENCH_DESIGNS comma-separated preset names (default or1200)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-target/bench}"
SCALE="${BENCH_SCALE:-0.003}"
DESIGNS="${BENCH_DESIGNS:-or1200}"

cargo build --release -p puffer-bench --bin benchflow
target/release/benchflow --scale "$SCALE" --designs "$DESIGNS" --out "$OUT"

ls -l "$OUT"/BENCH_*.json
