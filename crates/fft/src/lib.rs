//! From-scratch fast transforms backing PUFFER's electrostatic solver.
//!
//! The ePlace density model (paper §II-B, Eq. (3)–(6)) expresses the bin
//! potential as a 2-D cosine series with frequencies `ω_k = 2πk/M`. Solving
//! it needs forward/backward cosine- and sine-series transforms, which this
//! crate provides on top of an iterative radix-2 complex FFT — no external
//! FFT dependency.
//!
//! * [`fft`]/[`ifft`] — in-place complex FFT for power-of-two lengths;
//! * [`cosine_series`]/[`sine_series`] — the `Σ x[n]·cos(2πkn/N)` /
//!   `Σ x[n]·sin(2πkn/N)` transforms appearing verbatim in Eq. (4)–(5);
//! * [`dct2`]/[`dct3`] — classical DCT-II/III pairs (an independent
//!   cross-check and available for Neumann-boundary variants);
//! * [`transform2d`]/[`transform2d_mixed`] — separable application of 1-D
//!   transforms to rows and columns of a dense matrix, with
//!   [`transform2d_threaded`]/[`transform2d_mixed_threaded`] variants that
//!   chunk rows/columns across workers via `puffer-par` and are
//!   bit-identical to the serial path for any thread count.
//!
//! # Example
//!
//! ```
//! use puffer_fft::{fft, ifft, Complex};
//! let mut data: Vec<Complex> = (0..8).map(|i| Complex::new(i as f64, 0.0)).collect();
//! let original = data.clone();
//! fft(&mut data);
//! ifft(&mut data);
//! for (a, b) in data.iter().zip(&original) {
//!     assert!((a.re - b.re).abs() < 1e-9);
//! }
//! ```

#![forbid(unsafe_code)]

use std::f64::consts::PI;
use std::ops::{Add, Mul, Neg, Sub};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    /// Creates a complex number.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{iθ}`.
    pub fn from_angle(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Scales by a real factor.
    pub fn scale(self, s: f64) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

/// In-place radix-2 decimation-in-time FFT.
///
/// Computes `X[k] = Σ_n x[n]·e^{-2πi·kn/N}`.
///
/// # Panics
///
/// Panics if the length is not a power of two (lengths 0 and 1 are allowed
/// and are no-ops).
pub fn fft(data: &mut [Complex]) {
    fft_dir(data, false)
}

/// In-place inverse FFT (includes the `1/N` normalisation).
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn ifft(data: &mut [Complex]) {
    fft_dir(data, true);
    let n = data.len();
    if n > 0 {
        let s = 1.0 / n as f64;
        for v in data.iter_mut() {
            *v = v.scale(s);
        }
    }
}

fn fft_dir(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    assert!(n.is_power_of_two(), "fft length {n} is not a power of two");

    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }

    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Complex::from_angle(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w = w * wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Cosine-series transform `C[k] = Σ_{n} x[n]·cos(2πkn/N)` for all `k`.
///
/// This is exactly the transform of paper Eq. (5) in one dimension; it
/// equals `Re(FFT(x))` for real input.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn cosine_series(x: &[f64]) -> Vec<f64> {
    let mut buf: Vec<Complex> = x.iter().map(|&v| Complex::new(v, 0.0)).collect();
    fft(&mut buf);
    buf.into_iter().map(|c| c.re).collect()
}

/// Sine-series transform `S[k] = Σ_{n} x[n]·sin(2πkn/N)` for all `k`.
///
/// Equals `-Im(FFT(x))` for real input.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn sine_series(x: &[f64]) -> Vec<f64> {
    let mut buf: Vec<Complex> = x.iter().map(|&v| Complex::new(v, 0.0)).collect();
    fft(&mut buf);
    buf.into_iter().map(|c| -c.im).collect()
}

/// Inverse of the pair ([`cosine_series`], [`sine_series`]): reconstructs
/// `x[n] = (1/N)·Σ_k (C[k]·cos(2πkn/N) + S[k]·sin(2πkn/N))`.
///
/// # Panics
///
/// Panics if the slices differ in length or the length is not a power of two.
pub fn inverse_series(cos_coef: &[f64], sin_coef: &[f64]) -> Vec<f64> {
    assert_eq!(
        cos_coef.len(),
        sin_coef.len(),
        "coefficient slices must match"
    );
    let mut buf: Vec<Complex> = cos_coef
        .iter()
        .zip(sin_coef)
        .map(|(&c, &s)| Complex::new(c, -s))
        .collect();
    ifft(&mut buf);
    buf.into_iter().map(|c| c.re).collect()
}

/// Synthesises `y[n] = Σ_k C[k]·cos(2πkn/N)` — the cosine-basis evaluation
/// used by Eq. (4) (unnormalised inverse of the real-even series).
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn cosine_synthesis(coef: &[f64]) -> Vec<f64> {
    // Σ C_k cos(θ) = Re( Σ C_k e^{-iθ} ) = Re(FFT(C)) for real C.
    cosine_series(coef)
}

/// Synthesises `y[n] = Σ_k S[k]·sin(2πkn/N)`.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn sine_synthesis(coef: &[f64]) -> Vec<f64> {
    // Σ S_k sin(θ) = -Im( Σ S_k e^{-iθ} ) = sine_series(S) for real S.
    sine_series(coef)
}

/// DCT-II: `X[k] = Σ_n x[n]·cos(π(2n+1)k/(2N))`, computed via a length-`N`
/// FFT of the even/odd reordered input.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn dct2(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    // v[i] = x[2i] for the first half, v[N-1-i] = x[2i+1] for the second.
    let mut v = vec![Complex::ZERO; n];
    for i in 0..n.div_ceil(2) {
        v[i] = Complex::new(x[2 * i], 0.0);
    }
    for i in 0..n / 2 {
        v[n - 1 - i] = Complex::new(x[2 * i + 1], 0.0);
    }
    fft(&mut v);
    (0..n)
        .map(|k| {
            let w = Complex::from_angle(-PI * k as f64 / (2.0 * n as f64));
            (v[k] * w).re
        })
        .collect()
}

/// DCT-III: `y[i] = X[0]/2 + Σ_{k≥1} X[k]·cos(π(2i+1)k/(2N))`.
///
/// This is the unnormalised inverse of [`dct2`]; `dct3(&dct2(x))` scaled by
/// `2/N` recovers `x` (see the round-trip test). Computed by inverting the
/// [`dct2`] pipeline, again with a single length-`N` complex FFT.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn dct3(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![x[0] / 2.0];
    }
    // Reconstruct V[k] = e^{iπk/(2N)} (x[k]/2 - i·x̃[k]/2) where x̃ is the
    // odd-reflected partner; concretely V[k] = (x[k] - i·x[N-k]) · w / 2 with
    // x[N] ≡ 0, so that Re(FFT^{-1}(V))·(reorder) gives the DCT-III.
    let mut v = vec![Complex::ZERO; n];
    v[0] = Complex::new(x[0] / 2.0, 0.0);
    for k in 1..n {
        let w = Complex::from_angle(PI * k as f64 / (2.0 * n as f64));
        let z = Complex::new(x[k] / 2.0, -x[n - k] / 2.0);
        v[k] = w * z;
    }
    let mut buf = v;
    fft_dir(&mut buf, true); // unnormalised inverse: Σ V_k e^{+2πikn/N}
    let mut out = vec![0.0; n];
    for i in 0..n.div_ceil(2) {
        out[2 * i] = buf[i].re;
    }
    for i in 0..n / 2 {
        out[2 * i + 1] = buf[n - 1 - i].re;
    }
    out
}

/// Shifted DST-III synthesis: `y[n] = Σ_{k=1}^{N−1} X[k]·sin(π(2n+1)k/(2N))`
/// (the `X[0]` entry is ignored — its basis function is identically zero).
///
/// This is the sine partner of [`dct3`], used to evaluate the electric
/// field `E = −∇ψ` at bin centres: differentiating the DCT-III cosine basis
/// produces exactly this sine basis. Computed through [`dct3`] via the
/// identity `sin(π(2n+1)k/(2N)) = (−1)ⁿ·cos(π(2n+1)(N−k)/(2N))`.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn dst3_shifted(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![0.0];
    }
    let mut rev = vec![0.0; n];
    // rev[k] = x[N−k]; rev[0] = 0 cancels the X[0]/2 term inside dct3.
    for k in 1..n {
        rev[k] = x[n - k];
    }
    let mut out = dct3(&rev);
    for (i, v) in out.iter_mut().enumerate() {
        if i % 2 == 1 {
            *v = -*v;
        }
    }
    out
}

/// Applies a 1-D transform to every row, then every column, of a dense
/// row-major `nx × ny` matrix (row length `nx`).
///
/// # Panics
///
/// Panics if `data.len() != nx * ny` or the transform changes lengths.
pub fn transform2d(
    data: &[f64],
    nx: usize,
    ny: usize,
    f: impl Fn(&[f64]) -> Vec<f64> + Sync,
) -> Vec<f64> {
    transform2d_mixed_threaded(data, nx, ny, &f, &f, 1)
}

/// Applies independent 1-D transforms along x (rows) and y (columns); used
/// for the mixed sine/cosine field transforms of the electrostatic solver.
///
/// # Panics
///
/// Panics if `data.len() != nx * ny` or a transform changes lengths.
pub fn transform2d_mixed(
    data: &[f64],
    nx: usize,
    ny: usize,
    fx: impl Fn(&[f64]) -> Vec<f64> + Sync,
    fy: impl Fn(&[f64]) -> Vec<f64> + Sync,
) -> Vec<f64> {
    transform2d_mixed_threaded(data, nx, ny, fx, fy, 1)
}

/// Parallel [`transform2d`] over up to `threads` workers; bit-identical to
/// the serial result for any thread count.
///
/// # Panics
///
/// Panics if `data.len() != nx * ny` or the transform changes lengths.
pub fn transform2d_threaded(
    data: &[f64],
    nx: usize,
    ny: usize,
    f: impl Fn(&[f64]) -> Vec<f64> + Sync,
    threads: usize,
) -> Vec<f64> {
    transform2d_mixed_threaded(data, nx, ny, &f, &f, threads)
}

/// Parallel [`transform2d_mixed`]: rows, then columns, are processed in
/// fixed index chunks (`puffer_par::chunk_ranges`) on up to `threads`
/// workers. Each 1-D transform reads its own row/column and the results
/// are written back to disjoint spans — there is no accumulation, so the
/// output is bit-identical to the serial path for any thread count.
///
/// # Panics
///
/// Panics if `data.len() != nx * ny` or a transform changes lengths.
pub fn transform2d_mixed_threaded(
    data: &[f64],
    nx: usize,
    ny: usize,
    fx: impl Fn(&[f64]) -> Vec<f64> + Sync,
    fy: impl Fn(&[f64]) -> Vec<f64> + Sync,
    threads: usize,
) -> Vec<f64> {
    assert_eq!(data.len(), nx * ny, "matrix shape mismatch");
    if nx == 0 || ny == 0 {
        return Vec::new();
    }
    // Rows pass: each chunk of rows yields its transformed rows
    // back-to-back; concatenating in chunk order rebuilds the matrix.
    let row_parts = puffer_par::map_chunks(ny, threads, |r| {
        let mut part = Vec::with_capacity(r.len() * nx);
        for iy in r {
            let t = fx(&data[iy * nx..(iy + 1) * nx]);
            assert_eq!(t.len(), nx, "x-transform changed row length");
            part.extend_from_slice(&t);
        }
        part
    });
    let mut rows = Vec::with_capacity(nx * ny);
    for part in row_parts {
        rows.extend_from_slice(&part);
    }
    // Columns pass: per-chunk column scratch, transformed columns
    // scattered back to disjoint output columns.
    let rows_ref = &rows;
    let col_parts = puffer_par::map_chunks(nx, threads, |r| {
        let mut part = Vec::with_capacity(r.len() * ny);
        let mut col = vec![0.0; ny];
        for ix in r {
            for (iy, c) in col.iter_mut().enumerate() {
                *c = rows_ref[iy * nx + ix];
            }
            let t = fy(&col);
            assert_eq!(t.len(), ny, "y-transform changed column length");
            part.extend_from_slice(&t);
        }
        part
    });
    let mut out = vec![0.0; nx * ny];
    let mut ix0 = 0;
    for part in col_parts {
        for (k, tcol) in part.chunks_exact(ny).enumerate() {
            for (iy, v) in tcol.iter().enumerate() {
                out[iy * nx + (ix0 + k)] = *v;
            }
        }
        ix0 += part.len() / ny;
    }
    out
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index-based sums mirror the transform definitions
mod tests {
    use super::*;

    fn naive_dft(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (i, &v) in x.iter().enumerate() {
                    acc = acc + v * Complex::from_angle(-2.0 * PI * (k * i) as f64 / n as f64);
                }
                acc
            })
            .collect()
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
        assert!((Complex::new(3.0, 4.0).abs() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn fft_matches_naive_dft() {
        let x: Vec<Complex> = (0..16)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let expect = naive_dft(&x);
        let mut got = x.clone();
        fft(&mut got);
        for (g, e) in got.iter().zip(&expect) {
            assert!((g.re - e.re).abs() < 1e-9 && (g.im - e.im).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_ifft_round_trip() {
        let x: Vec<Complex> = (0..64)
            .map(|i| Complex::new(i as f64, (i * i % 7) as f64))
            .collect();
        let mut y = x.clone();
        fft(&mut y);
        ifft(&mut y);
        for (a, b) in y.iter().zip(&x) {
            assert!((a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut x = vec![Complex::ZERO; 12];
        fft(&mut x);
    }

    #[test]
    fn tiny_lengths_are_fine() {
        let mut x = vec![Complex::new(5.0, 0.0)];
        fft(&mut x);
        assert_eq!(x[0], Complex::new(5.0, 0.0));
        let mut e: Vec<Complex> = vec![];
        fft(&mut e);
    }

    #[test]
    fn cosine_series_matches_definition() {
        let n = 8;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0).ln()).collect();
        let got = cosine_series(&x);
        for k in 0..n {
            let expect: f64 = x
                .iter()
                .enumerate()
                .map(|(i, &v)| v * (2.0 * PI * (k * i) as f64 / n as f64).cos())
                .sum();
            assert!((got[k] - expect).abs() < 1e-9, "k={k}");
        }
    }

    #[test]
    fn sine_series_matches_definition() {
        let n = 8;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).sin()).collect();
        let got = sine_series(&x);
        for k in 0..n {
            let expect: f64 = x
                .iter()
                .enumerate()
                .map(|(i, &v)| v * (2.0 * PI * (k * i) as f64 / n as f64).sin())
                .sum();
            assert!((got[k] - expect).abs() < 1e-9, "k={k}");
        }
    }

    #[test]
    fn series_round_trip() {
        let n = 32;
        let x: Vec<f64> = (0..n).map(|i| ((i * 13 % 9) as f64) - 4.0).collect();
        let c = cosine_series(&x);
        let s = sine_series(&x);
        let back = inverse_series(&c, &s);
        for (a, b) in back.iter().zip(&x) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn synthesis_matches_direct_sums() {
        let n = 16;
        let coef: Vec<f64> = (0..n).map(|k| ((k * 3 % 7) as f64) - 3.0).collect();
        let cs = cosine_synthesis(&coef);
        let ss = sine_synthesis(&coef);
        for m in 0..n {
            let ec: f64 = coef
                .iter()
                .enumerate()
                .map(|(k, &c)| c * (2.0 * PI * (k * m) as f64 / n as f64).cos())
                .sum();
            let es: f64 = coef
                .iter()
                .enumerate()
                .map(|(k, &c)| c * (2.0 * PI * (k * m) as f64 / n as f64).sin())
                .sum();
            assert!((cs[m] - ec).abs() < 1e-9, "cos m={m}");
            assert!((ss[m] - es).abs() < 1e-9, "sin m={m}");
        }
    }

    #[test]
    fn dct2_matches_definition() {
        let n = 8;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 - 3.5) * 0.25).collect();
        let got = dct2(&x);
        for k in 0..n {
            let expect: f64 = x
                .iter()
                .enumerate()
                .map(|(i, &v)| v * (PI * (2 * i + 1) as f64 * k as f64 / (2.0 * n as f64)).cos())
                .sum();
            assert!(
                (got[k] - expect).abs() < 1e-9,
                "k={k}: {} vs {}",
                got[k],
                expect
            );
        }
    }

    #[test]
    fn dct3_matches_definition() {
        let n = 8;
        let coef: Vec<f64> = (0..n).map(|k| ((k * 7 % 5) as f64) - 2.0).collect();
        let got = dct3(&coef);
        for i in 0..n {
            let expect: f64 = coef[0] / 2.0
                + (1..n)
                    .map(|k| {
                        coef[k] * (PI * (2 * i + 1) as f64 * k as f64 / (2.0 * n as f64)).cos()
                    })
                    .sum::<f64>();
            assert!(
                (got[i] - expect).abs() < 1e-8,
                "i={i}: {} vs {}",
                got[i],
                expect
            );
        }
    }

    #[test]
    fn dct_round_trip() {
        let n = 16;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.9).cos() * 3.0).collect();
        let back = dct3(&dct2(&x));
        for (a, b) in back.iter().zip(&x) {
            assert!((a * 2.0 / n as f64 - b).abs() < 1e-9);
        }
    }

    #[test]
    fn transform2d_is_separable() {
        let data: Vec<f64> = (0..32).map(|i| i as f64).collect();
        let same = transform2d(&data, 8, 4, |row| row.to_vec());
        assert_eq!(same, data);
        let quad = transform2d(&data, 8, 4, |row| row.iter().map(|v| 2.0 * v).collect());
        for (q, d) in quad.iter().zip(&data) {
            assert_eq!(*q, 4.0 * d);
        }
    }

    #[test]
    fn transform2d_mixed_applies_each_axis_once() {
        let data: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let out = transform2d_mixed(
            &data,
            4,
            3,
            |row| row.iter().map(|v| v + 1.0).collect(),
            |col| col.iter().map(|v| v * 10.0).collect(),
        );
        for iy in 0..3 {
            for ix in 0..4 {
                assert_eq!(out[iy * 4 + ix], (data[iy * 4 + ix] + 1.0) * 10.0);
            }
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 64usize;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 / 3.0).cos()))
            .collect();
        let energy_t: f64 = x.iter().map(|c| c.abs().powi(2)).sum();
        let mut y = x;
        fft(&mut y);
        let energy_f: f64 = y.iter().map(|c| c.abs().powi(2)).sum::<f64>() / n as f64;
        assert!((energy_t - energy_f).abs() < 1e-6);
    }

    #[test]
    fn dst3_shifted_matches_definition() {
        let n = 8;
        let coef: Vec<f64> = (0..n).map(|k| ((k * 5 % 11) as f64) - 4.0).collect();
        let got = dst3_shifted(&coef);
        for i in 0..n {
            let expect: f64 = (1..n)
                .map(|k| coef[k] * (PI * (2 * i + 1) as f64 * k as f64 / (2.0 * n as f64)).sin())
                .sum();
            assert!(
                (got[i] - expect).abs() < 1e-8,
                "i={i}: {} vs {}",
                got[i],
                expect
            );
        }
    }

    #[test]
    fn dst3_shifted_ignores_dc() {
        let mut a = vec![0.0, 1.0, -2.0, 0.5];
        let base = dst3_shifted(&a);
        a[0] = 100.0;
        assert_eq!(dst3_shifted(&a), base);
    }

    #[test]
    fn dct_handles_length_one_and_two() {
        assert_eq!(dct2(&[3.0]), vec![3.0]);
        let x = [1.0, 2.0];
        let d = dct2(&x);
        // X[0] = 3, X[1] = cos(pi/4) - 2 cos(3pi/4).
        assert!((d[0] - 3.0).abs() < 1e-12);
        let expect = (PI / 4.0).cos() + 2.0 * (3.0 * PI / 4.0).cos();
        assert!((d[1] - expect).abs() < 1e-12);
        let back = dct3(&d);
        for (a, b) in back.iter().zip(&x) {
            assert!((a * 2.0 / 2.0 - b).abs() < 1e-9);
        }
    }
}
