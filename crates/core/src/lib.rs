//! # PUFFER — routability-driven placement via cell padding with multiple
//! # features and strategy exploration
//!
//! A from-scratch Rust reproduction of the DAC 2023 paper *"PUFFER: A
//! Routability-Driven Placement Framework via Cell Padding with Multiple
//! Features and Strategy Exploration"* (Cai et al.). Like the puffer fish,
//! cells in this framework adjust their sizes according to their status:
//! congested cells grow filler padding that makes the electrostatic global
//! placer spread them apart, and the padding follows them into
//! legalization.
//!
//! The framework is assembled from the workspace substrates:
//!
//! | Stage (paper Fig. 2) | Crate |
//! |---|---|
//! | Global placement engine (ePlace) | [`puffer_place`] |
//! | Congestion estimation (§III-A) | [`puffer_congest`] |
//! | Multi-feature cell padding (§III-B) | [`puffer_pad`] |
//! | Strategy exploration (§III-C) | [`puffer_explore`] |
//! | White-space-assisted legalization (§III-D) | [`puffer_legal`] |
//! | Routability evaluation (global router) | [`puffer_route`] |
//! | Benchmarks (Table I) | [`puffer_gen`] |
//!
//! This crate ties them together:
//!
//! * [`PufferPlacer`] — the full PUFFER flow;
//! * [`ReferencePlacer`] / [`ReplacePlacer`] — the two Table II baselines
//!   (commercial-style router-in-the-loop inflation, and RePlAce-style
//!   bulk inflation);
//! * [`evaluate`]/[`ComparisonTable`] — routing-based evaluation and the
//!   Table II report format;
//! * [`strategy_space`]/[`tuned_strategy`] — the glue between
//!   [`puffer_pad::PaddingStrategy`] and the Bayesian exploration.
//!
//! # Quickstart
//!
//! ```
//! use puffer::{PufferPlacer, PufferConfig, evaluate};
//! use puffer_gen::{generate, presets};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = generate(&presets::or1200(0.003)?)?; // tiny scale for docs
//! let mut config = PufferConfig::default();
//! config.placer.max_iters = 50;
//! let result = PufferPlacer::new(config).place(&design)?;
//! let report = evaluate(&design, &result.placement);
//! println!("HOF {:.2}% VOF {:.2}% WL {:.0}", report.hof_pct, report.vof_pct,
//!          report.wirelength);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod baselines;
pub mod checkpoint;
pub mod flow;
pub mod job;
pub mod report;
pub mod scale;

pub use baselines::{
    ReferenceConfig, ReferencePlacer, ReplaceConfig, ReplacePlacer, WsaConfig, WsaPlacer,
};
pub use checkpoint::{CheckpointPolicy, FlowCheckpoint, FlowStage, JournalError, Recovered};
pub use flow::{
    FlowResult, PufferConfig, PufferPlacer, StageObserver, StagePoint, StageReport,
};
pub use job::Job;
pub use report::{ComparisonTable, EvalRow, FlowSummary};
pub use scale::ScaleClass;

use puffer_db::design::{Design, Placement};
use puffer_explore::{ParamSpec, Space};
use puffer_pad::PaddingStrategy;
use puffer_route::{GlobalRouter, RouteReport, RouterConfig};
use std::error::Error;
use std::fmt;

/// Errors produced by the placement flows.
#[derive(Debug)]
pub enum PufferError {
    /// Global placement could not run.
    Place(String),
    /// Legalization failed.
    Legalize(String),
    /// A checkpoint journal could not be written or read.
    Journal(String),
    /// A loaded checkpoint could not be applied to the design.
    Resume(String),
    /// A `--validate` stage observer rejected an intermediate state.
    Validate(String),
    /// The stall watchdog tripped with [`puffer_budget::StallAction::Abort`].
    Stalled(String),
}

impl fmt::Display for PufferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PufferError::Place(m) => write!(f, "placement failed: {m}"),
            PufferError::Legalize(m) => write!(f, "legalization failed: {m}"),
            PufferError::Journal(m) => write!(f, "checkpoint journal failed: {m}"),
            PufferError::Resume(m) => write!(f, "resume failed: {m}"),
            PufferError::Validate(m) => write!(f, "validation failed: {m}"),
            PufferError::Stalled(m) => write!(f, "flow stalled: {m}"),
        }
    }
}

impl Error for PufferError {}

/// Routes a placement with the shared evaluator (default router settings)
/// and returns the Table II quantities.
pub fn evaluate(design: &Design, placement: &Placement) -> RouteReport {
    evaluate_with(design, placement, &RouterConfig::default())
}

/// [`evaluate`] with explicit router settings (e.g. a `--threads`
/// override from the CLI).
pub fn evaluate_with(
    design: &Design,
    placement: &Placement,
    config: &RouterConfig,
) -> RouteReport {
    GlobalRouter::new(design, config.clone()).route(design, placement)
}

/// [`evaluate_with`] under telemetry: routing runs inside a `route` span
/// and emits one `route.done` record with the Table II quantities.
pub fn evaluate_traced(
    design: &Design,
    placement: &Placement,
    config: &RouterConfig,
    trace: &puffer_trace::Trace,
) -> RouteReport {
    evaluate_bounded(
        design,
        placement,
        config,
        &puffer_budget::Budget::unbounded(),
        trace,
    )
}

/// [`evaluate_traced`] under a cooperative budget: the router checks it
/// between rip-up rounds and rerouted nets, so an expiring deadline stops
/// refinement early and the report describes the best routing so far.
pub fn evaluate_bounded(
    design: &Design,
    placement: &Placement,
    config: &RouterConfig,
    budget: &puffer_budget::Budget,
    trace: &puffer_trace::Trace,
) -> RouteReport {
    let report = {
        let _route = trace.span("route");
        let mut router = GlobalRouter::new(design, config.clone());
        router.set_budget(budget.clone());
        router.route(design, placement)
    };
    trace
        .record("route.done")
        .num("hof_pct", report.hof_pct)
        .num("vof_pct", report.vof_pct)
        .num("wirelength", report.wirelength)
        .int("overflow_gcells", report.overflow_gcells as i64)
        .int("rounds", report.rounds as i64)
        .write();
    report
}

/// The strategy-exploration space of §III-C as a [`puffer_explore::Space`]
/// (built from [`PaddingStrategy::parameter_space`]).
pub fn strategy_space() -> Space {
    Space::new(
        PaddingStrategy::parameter_space()
            .into_iter()
            .map(|r| ParamSpec::continuous(r.name, r.lo, r.hi))
            .collect(),
    )
}

/// Converts an assignment over [`strategy_space`] into a
/// [`PaddingStrategy`] (unknown/missing parameters keep their defaults).
pub fn tuned_strategy(space: &Space, values: &[f64]) -> PaddingStrategy {
    let mut s = PaddingStrategy::default();
    for (p, &v) in space.params().iter().zip(values) {
        s.apply(&p.name, v);
    }
    s
}

/// The *extended* exploration space: the continuous strategy parameters of
/// [`strategy_space`] plus the optional discrete strategies the paper's
/// conclusion proposes adding — the CNN kernel radius (integer), the
/// detour-expansion switch and radius, and the estimator's pin penalty.
///
/// This demonstrates the scheme on mixed continuous / integer / categorical
/// domains ("also suitable for other black-box problems with optional
/// strategies and configurable parameters", §III-C).
pub fn extended_strategy_space() -> Space {
    let mut params: Vec<ParamSpec> = PaddingStrategy::parameter_space()
        .into_iter()
        .map(|r| ParamSpec::continuous(r.name, r.lo, r.hi))
        .collect();
    params.push(ParamSpec::integer("kernel_radius", 1, 4));
    params.push(ParamSpec::categorical("expand_detours", 2));
    params.push(ParamSpec::integer("expansion_radius", 1, 4));
    params.push(ParamSpec::continuous("pin_penalty", 0.0, 0.25));
    Space::new(params)
}

/// Converts an assignment over [`extended_strategy_space`] into a full
/// [`PufferConfig`]: strategy parameters go to the padding strategy,
/// discrete strategy options go to the estimator / feature configs.
pub fn tuned_config(space: &Space, values: &[f64]) -> PufferConfig {
    let mut config = PufferConfig::default();
    for (p, &v) in space.params().iter().zip(values) {
        match p.name.as_str() {
            "kernel_radius" => config.features.kernel_radius = v as usize,
            "expand_detours" => config.estimator.expand_detours = v >= 0.5,
            "expansion_radius" => config.estimator.expansion_radius = v as usize,
            "pin_penalty" => config.estimator.pin_penalty = v,
            name => config.strategy.apply(name, v),
        }
    }
    config
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(PufferError::Place("x".into())
            .to_string()
            .contains("placement"));
        assert!(PufferError::Legalize("y".into())
            .to_string()
            .contains("legalization"));
    }

    #[test]
    fn strategy_space_round_trip() {
        let space = strategy_space();
        assert!(space.len() >= 10);
        let mid = space.midpoint();
        let s = tuned_strategy(&space, &mid);
        // Midpoint of alpha0's [0, 4] range.
        assert!((s.alpha[0] - 2.0).abs() < 1e-9);
        assert!(s.pu_low <= s.pu_high);
    }

    #[test]
    fn extended_space_maps_discrete_strategies() {
        let space = extended_strategy_space();
        assert!(space.len() > strategy_space().len());
        let mut values = space.midpoint();
        let kr = space.index_of("kernel_radius").unwrap();
        let ed = space.index_of("expand_detours").unwrap();
        let er = space.index_of("expansion_radius").unwrap();
        values[kr] = 4.0;
        values[ed] = 0.0;
        values[er] = 3.0;
        let cfg = tuned_config(&space, &values);
        assert_eq!(cfg.features.kernel_radius, 4);
        assert!(!cfg.estimator.expand_detours);
        assert_eq!(cfg.estimator.expansion_radius, 3);
        // Continuous strategy parameters still flow through.
        assert!((cfg.strategy.alpha[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn evaluate_runs_end_to_end() {
        use puffer_gen::{generate, GeneratorConfig};
        let d = generate(&GeneratorConfig {
            num_cells: 200,
            num_nets: 220,
            ..GeneratorConfig::default()
        })
        .unwrap();
        let rep = evaluate(&d, &d.initial_placement());
        assert!(rep.wirelength >= 0.0);
    }
}
