//! The full PUFFER flow (paper Fig. 2): global placement with interleaved
//! routability optimization, then white-space-assisted legalization.

use crate::PufferError;
use puffer_congest::EstimatorConfig;
use puffer_db::design::{Design, Placement};
use puffer_db::hpwl::total_hpwl;
use puffer_legal::{check_legal, discretize_padding, enforce_budget, legalize};
use puffer_pad::{FeatureConfig, PaddingStrategy, RoutabilityOptimizer};
use puffer_place::{GlobalPlacer, PlacerConfig};
use std::time::Instant;

/// Configuration of the PUFFER flow.
#[derive(Debug, Clone, PartialEq)]
pub struct PufferConfig {
    /// Global-placement engine settings.
    pub placer: PlacerConfig,
    /// Congestion-estimator settings (§III-A).
    pub estimator: EstimatorConfig,
    /// Padding strategy parameters (§III-B, tuned by §III-C).
    pub strategy: PaddingStrategy,
    /// Feature-extraction settings (CNN kernel radius, GNN Z-bend samples).
    pub features: FeatureConfig,
    /// Whether legalization inherits the discretized padding (§III-D);
    /// disabling this is the ablation of padding inheritance.
    pub inherit_padding: bool,
}

impl Default for PufferConfig {
    fn default() -> Self {
        PufferConfig {
            placer: PlacerConfig::default(),
            estimator: EstimatorConfig::default(),
            strategy: PaddingStrategy::default(),
            features: FeatureConfig::default(),
            inherit_padding: true,
        }
    }
}

/// Result of a placement flow.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// The final legal placement.
    pub placement: Placement,
    /// The global placement before legalization.
    pub global_placement: Placement,
    /// HPWL of the legal placement.
    pub hpwl: f64,
    /// Global-placement iterations executed.
    pub gp_iterations: usize,
    /// Routability-optimizer rounds executed.
    pub pad_rounds: usize,
    /// Final density overflow at the end of global placement.
    pub final_overflow: f64,
    /// Wall-clock runtime of the flow in seconds.
    pub runtime_s: f64,
    /// Average legalization displacement.
    pub avg_displacement: f64,
}

/// The PUFFER placer: the paper's primary contribution, assembled.
///
/// ```
/// use puffer::{PufferPlacer, PufferConfig};
/// use puffer_gen::{generate, GeneratorConfig};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let design = generate(&GeneratorConfig {
///     num_cells: 300, num_nets: 330, utilization: 0.6,
///     ..GeneratorConfig::default()
/// })?;
/// let mut config = PufferConfig::default();
/// config.placer.max_iters = 80;
/// let result = PufferPlacer::new(config).place(&design)?;
/// assert!(result.hpwl > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PufferPlacer {
    config: PufferConfig,
}

impl PufferPlacer {
    /// Creates the placer with a configuration.
    pub fn new(config: PufferConfig) -> Self {
        PufferPlacer { config }
    }

    /// The configuration.
    pub fn config(&self) -> &PufferConfig {
        &self.config
    }

    /// Runs the full flow on a design.
    ///
    /// # Errors
    ///
    /// Returns [`PufferError`] if global placement cannot start (no movable
    /// cells / unplaced macros) or legalization runs out of capacity.
    pub fn place(&self, design: &Design) -> Result<FlowResult, PufferError> {
        let start = Instant::now();
        let mut placer = GlobalPlacer::new(design, self.config.placer.clone())
            .map_err(|e| PufferError::Place(e.to_string()))?;
        let mut optimizer = RoutabilityOptimizer::new(
            design,
            self.config.estimator.clone(),
            self.config.strategy.clone(),
        )
        .with_feature_config(self.config.features.clone());

        // --- global placement with interleaved routability optimization ---
        let mut last = placer.step();
        loop {
            if optimizer.should_trigger(last.overflow) {
                let snapshot = placer.placement().clone();
                optimizer.optimize(design, &snapshot);
                placer.set_padding(optimizer.padding().to_vec());
            }
            if last.iter >= self.config.placer.max_iters
                || last.overflow <= self.config.placer.stop_overflow
            {
                break;
            }
            last = placer.step();
        }
        let global_placement = placer.placement().clone();

        // --- white-space-assisted legalization (§III-D) --------------------
        let discrete = if self.config.inherit_padding {
            let continuous = optimizer.padding().to_vec();
            let mut d = discretize_padding(&continuous, self.config.strategy.theta);
            enforce_budget(
                design.netlist(),
                &continuous,
                &mut d,
                design.tech().site_width,
                self.config.strategy.legal_budget,
            );
            d
        } else {
            vec![0u32; design.netlist().num_cells()]
        };
        let outcome = match legalize(design, &global_placement, &discrete) {
            Ok(o) => o,
            Err(_) if self.config.inherit_padding => {
                // Padding made the design unfittable; retry without padding
                // rather than failing the flow (the budget cap normally
                // prevents this).
                let zeros = vec![0u32; design.netlist().num_cells()];
                legalize(design, &global_placement, &zeros)
                    .map_err(|e| PufferError::Legalize(e.to_string()))?
            }
            Err(e) => return Err(PufferError::Legalize(e.to_string())),
        };
        // The *physical* placement must always be legal (padding aside).
        let zeros = vec![0u32; design.netlist().num_cells()];
        check_legal(design, &outcome.placement, &zeros)
            .map_err(|e| PufferError::Legalize(e.to_string()))?;

        Ok(FlowResult {
            hpwl: total_hpwl(design.netlist(), &outcome.placement),
            placement: outcome.placement,
            global_placement,
            gp_iterations: placer.iterations(),
            pad_rounds: optimizer.state().round,
            final_overflow: placer.overflow(),
            runtime_s: start.elapsed().as_secs_f64(),
            avg_displacement: outcome.avg_displacement,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_gen::{generate, GeneratorConfig};

    fn quick_config() -> PufferConfig {
        let mut c = PufferConfig::default();
        c.placer.max_iters = 160;
        c.placer.stop_overflow = 0.15;
        c.strategy.tau = 0.30;
        c.strategy.max_rounds = 3;
        c
    }

    fn design() -> Design {
        generate(&GeneratorConfig {
            num_cells: 400,
            num_nets: 450,
            num_macros: 2,
            utilization: 0.6,
            hotspot: 0.5,
            ..GeneratorConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn full_flow_produces_legal_placement() {
        let d = design();
        let r = PufferPlacer::new(quick_config()).place(&d).unwrap();
        assert!(r.gp_iterations > 0);
        assert!(r.hpwl > 0.0);
        assert!(r.runtime_s > 0.0);
        // Legality is already asserted inside place(); double-check.
        let zeros = vec![0u32; d.netlist().num_cells()];
        puffer_legal::check_legal(&d, &r.placement, &zeros).unwrap();
    }

    #[test]
    fn routability_optimizer_actually_runs() {
        let d = design();
        let r = PufferPlacer::new(quick_config()).place(&d).unwrap();
        assert!(
            r.pad_rounds > 0,
            "padding rounds should trigger on a congested design"
        );
    }

    #[test]
    fn padding_inheritance_toggle() {
        let d = design();
        let with = PufferPlacer::new(quick_config()).place(&d).unwrap();
        let mut cfg = quick_config();
        cfg.inherit_padding = false;
        let without = PufferPlacer::new(cfg).place(&d).unwrap();
        // Same global placement (same seed/config), different legalization.
        assert_eq!(with.gp_iterations, without.gp_iterations);
        assert!(with.placement != without.placement || with.hpwl == without.hpwl);
    }

    #[test]
    fn flow_is_deterministic() {
        let d = design();
        let a = PufferPlacer::new(quick_config()).place(&d).unwrap();
        let b = PufferPlacer::new(quick_config()).place(&d).unwrap();
        assert_eq!(a.hpwl, b.hpwl);
        assert_eq!(a.placement, b.placement);
    }
}
