//! The full PUFFER flow (paper Fig. 2): global placement with interleaved
//! routability optimization, then white-space-assisted legalization.

use crate::checkpoint::{CheckpointPolicy, FlowCheckpoint, FlowStage};
use crate::PufferError;
use puffer_congest::EstimatorConfig;
use puffer_db::design::{Design, Placement};
use puffer_db::hpwl::total_hpwl;
use puffer_legal::{check_legal, discretize_padding, enforce_budget, legalize};
use puffer_pad::{FeatureConfig, PaddingState, PaddingStrategy, RoutabilityOptimizer};
use puffer_place::{GlobalPlacer, IterationStats, PlacerConfig};
use puffer_trace::Trace;
use std::fmt;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Configuration of the PUFFER flow.
#[derive(Debug, Clone, PartialEq)]
pub struct PufferConfig {
    /// Global-placement engine settings.
    pub placer: PlacerConfig,
    /// Congestion-estimator settings (§III-A).
    pub estimator: EstimatorConfig,
    /// Padding strategy parameters (§III-B, tuned by §III-C).
    pub strategy: PaddingStrategy,
    /// Feature-extraction settings (CNN kernel radius, GNN Z-bend samples).
    pub features: FeatureConfig,
    /// Whether legalization inherits the discretized padding (§III-D);
    /// disabling this is the ablation of padding inheritance.
    pub inherit_padding: bool,
}

impl Default for PufferConfig {
    fn default() -> Self {
        PufferConfig {
            placer: PlacerConfig::default(),
            estimator: EstimatorConfig::default(),
            strategy: PaddingStrategy::default(),
            features: FeatureConfig::default(),
            inherit_padding: true,
        }
    }
}

/// A boundary inside the flow at which a [`StageObserver`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StagePoint {
    /// The placer is set up (fresh or restored from a checkpoint) and has
    /// taken its first step.
    Init,
    /// A routability-optimization round just updated the padding.
    PadRound,
    /// Global placement converged; the snapshot is about to be legalized.
    GlobalDone,
    /// Legalization produced the final physical placement.
    Legalized,
}

impl fmt::Display for StagePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            StagePoint::Init => "init",
            StagePoint::PadRound => "pad-round",
            StagePoint::GlobalDone => "global-done",
            StagePoint::Legalized => "legalized",
        };
        f.write_str(name)
    }
}

/// Everything a [`StageObserver`] may inspect at a stage boundary.
pub struct StageReport<'a> {
    /// Which boundary fired.
    pub point: StagePoint,
    /// The design being placed.
    pub design: &'a Design,
    /// The placement at this boundary (global until `Legalized`).
    pub placement: &'a Placement,
    /// The routability optimizer's padding history.
    pub padding: &'a PaddingState,
    /// The active padding strategy (for utilization-cap checks).
    pub strategy: &'a PaddingStrategy,
    /// Density overflow of the latest placer step.
    pub overflow: f64,
    /// Global-placement iterations completed.
    pub iter: usize,
}

/// A callback the flow invokes at every stage boundary (see
/// [`StagePoint`]); returning `Err` aborts the flow with
/// [`PufferError::Validate`]. This is how `--validate` plugs the
/// `puffer-audit` invariant checkers into the flow without the core crate
/// depending on them.
#[derive(Clone)]
pub struct StageObserver {
    f: Arc<ObserverFn>,
}

/// The boxed callback type behind [`StageObserver`].
type ObserverFn = dyn Fn(&StageReport<'_>) -> Result<(), String> + Send + Sync;

impl StageObserver {
    /// Wraps a checker callback.
    pub fn new(f: impl Fn(&StageReport<'_>) -> Result<(), String> + Send + Sync + 'static) -> Self {
        StageObserver { f: Arc::new(f) }
    }

    /// Runs the checker on one boundary report.
    ///
    /// # Errors
    ///
    /// Whatever the wrapped callback reports; the flow converts it to
    /// [`PufferError::Validate`].
    pub fn check(&self, report: &StageReport<'_>) -> Result<(), String> {
        (self.f)(report)
    }
}

impl fmt::Debug for StageObserver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("StageObserver(..)")
    }
}

/// Result of a placement flow.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// The final legal placement.
    pub placement: Placement,
    /// The global placement before legalization.
    pub global_placement: Placement,
    /// HPWL of the legal placement.
    pub hpwl: f64,
    /// Global-placement iterations executed.
    pub gp_iterations: usize,
    /// Routability-optimizer rounds executed.
    pub pad_rounds: usize,
    /// Final density overflow at the end of global placement.
    pub final_overflow: f64,
    /// Wall-clock runtime of the flow in seconds.
    pub runtime_s: f64,
    /// Average legalization displacement.
    pub avg_displacement: f64,
}

/// The PUFFER placer: the paper's primary contribution, assembled.
///
/// ```
/// use puffer::{PufferPlacer, PufferConfig};
/// use puffer_gen::{generate, GeneratorConfig};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let design = generate(&GeneratorConfig {
///     num_cells: 300, num_nets: 330, utilization: 0.6,
///     ..GeneratorConfig::default()
/// })?;
/// let mut config = PufferConfig::default();
/// config.placer.max_iters = 80;
/// let result = PufferPlacer::new(config).place(&design)?;
/// assert!(result.hpwl > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PufferPlacer {
    config: PufferConfig,
    trace: Trace,
    observer: Option<StageObserver>,
}

impl PufferPlacer {
    /// Creates the placer with a configuration.
    pub fn new(config: PufferConfig) -> Self {
        PufferPlacer {
            config,
            trace: Trace::disabled(),
            observer: None,
        }
    }

    /// Attaches a telemetry handle, returning `self` for chaining. The flow
    /// stamps its stage boundaries as nested spans (`init`, `gp` with `pad`
    /// rounds inside, `legal`), forwards the handle to the placer, padding
    /// optimizer, and congestion estimator for their per-iteration records,
    /// and emits a final `flow.done` record.
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }

    /// Attaches a stage observer, returning `self` for chaining. The
    /// observer runs at every [`StagePoint`]; an `Err` aborts the flow
    /// with [`PufferError::Validate`]. Without an observer the boundary
    /// reports are never built, so the unused hook costs nothing.
    pub fn with_observer(mut self, observer: StageObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// The configuration.
    pub fn config(&self) -> &PufferConfig {
        &self.config
    }

    /// Runs the full flow on a design.
    ///
    /// # Errors
    ///
    /// Returns [`PufferError`] if global placement cannot start (no movable
    /// cells / unplaced macros) or legalization runs out of capacity.
    pub fn place(&self, design: &Design) -> Result<FlowResult, PufferError> {
        self.run(design, None, None)
    }

    /// Runs the full flow, periodically journaling a [`FlowCheckpoint`]
    /// per `policy` so a killed process can pick up with
    /// [`PufferPlacer::resume`]. Checkpointing is pure observation: the
    /// produced placement is identical to [`PufferPlacer::place`].
    ///
    /// # Errors
    ///
    /// Everything [`PufferPlacer::place`] returns, plus
    /// [`PufferError::Journal`] when a checkpoint cannot be written.
    pub fn place_with_checkpoints(
        &self,
        design: &Design,
        policy: &CheckpointPolicy,
    ) -> Result<FlowResult, PufferError> {
        self.run(design, Some(policy), None)
    }

    /// Resumes a flow from the journal at `journal`, continuing to write
    /// checkpoints to the same file. The configuration must match the one
    /// that produced the journal; a resumed run then finishes with exactly
    /// the placement the uninterrupted run would have produced.
    ///
    /// # Errors
    ///
    /// [`PufferError::Journal`] when the journal cannot be read,
    /// [`PufferError::Resume`] when it does not fit the design, plus
    /// everything [`PufferPlacer::place`] returns.
    pub fn resume(&self, design: &Design, journal: &Path) -> Result<FlowResult, PufferError> {
        let checkpoint =
            FlowCheckpoint::load(journal).map_err(|e| PufferError::Journal(e.to_string()))?;
        let policy = CheckpointPolicy::new(journal);
        self.run(design, Some(&policy), Some(checkpoint))
    }

    /// Runs the flow warm-started from an in-memory checkpoint (no
    /// journaling unless `policy` is given). This is also the hook for
    /// injecting a known-good state before a risky continuation.
    ///
    /// # Errors
    ///
    /// [`PufferError::Resume`] when the checkpoint does not fit the
    /// design, plus everything [`PufferPlacer::place`] returns.
    pub fn place_from(
        &self,
        design: &Design,
        checkpoint: FlowCheckpoint,
        policy: Option<&CheckpointPolicy>,
    ) -> Result<FlowResult, PufferError> {
        self.run(design, policy, Some(checkpoint))
    }

    fn run(
        &self,
        design: &Design,
        policy: Option<&CheckpointPolicy>,
        from: Option<FlowCheckpoint>,
    ) -> Result<FlowResult, PufferError> {
        let start = Instant::now();
        let trace = &self.trace;
        let init_span = trace.span("init");
        let mut optimizer = RoutabilityOptimizer::new(
            design,
            self.config.estimator.clone(),
            self.config.strategy.clone(),
        )
        .with_feature_config(self.config.features.clone());
        optimizer.set_trace(trace.clone());

        // Either a fresh placer after its first step, or the journaled one.
        // `resumed_stage` remembers where the journal left off; `skip_round`
        // suppresses the trigger/checkpoint half of the first loop pass,
        // because the journal was written *after* that half ran.
        let (mut placer, mut last, mut skip_round, resumed_done) = match from {
            None => {
                let mut placer = GlobalPlacer::new(design, self.config.placer.clone())
                    .map_err(|e| PufferError::Place(e.to_string()))?;
                placer.set_trace(trace.clone());
                let last = placer.step();
                (placer, last, false, false)
            }
            Some(checkpoint) => {
                checkpoint
                    .matches(design)
                    .map_err(|e| PufferError::Resume(e.to_string()))?;
                let done = checkpoint.stage == FlowStage::GlobalDone;
                let mut placer = GlobalPlacer::with_placement(
                    design,
                    self.config.placer.clone(),
                    checkpoint.placer.placement.clone(),
                )
                .map_err(|e| PufferError::Place(e.to_string()))?;
                let last = IterationStats {
                    iter: checkpoint.placer.iter,
                    overflow: checkpoint.placer.last_overflow,
                    hpwl: 0.0,
                    wa: 0.0,
                    energy: 0.0,
                    lambda: checkpoint.placer.lambda,
                };
                placer
                    .restore(checkpoint.placer)
                    .map_err(|e| PufferError::Resume(e.to_string()))?;
                placer.set_trace(trace.clone());
                optimizer.set_state(checkpoint.pad);
                (placer, last, true, done)
            }
        };
        drop(init_span);
        self.observe(
            StagePoint::Init,
            design,
            placer.placement(),
            &optimizer,
            last.overflow,
            last.iter,
        )?;

        // --- global placement with interleaved routability optimization ---
        if !resumed_done {
            let _gp_span = trace.span("gp");
            loop {
                if !skip_round {
                    if optimizer.should_trigger(last.overflow) {
                        let _pad_span = trace.span("pad");
                        let snapshot = placer.placement().clone();
                        optimizer.optimize(design, &snapshot);
                        placer.set_padding(optimizer.padding().to_vec());
                        self.observe(
                            StagePoint::PadRound,
                            design,
                            placer.placement(),
                            &optimizer,
                            last.overflow,
                            last.iter,
                        )?;
                    }
                    if let Some(policy) = policy {
                        if policy.due(last.iter) {
                            self.write_checkpoint(
                                design,
                                policy,
                                FlowStage::GlobalPlace,
                                &placer,
                                &optimizer,
                            )?;
                        }
                    }
                }
                skip_round = false;
                if last.iter >= self.config.placer.max_iters
                    || last.overflow <= self.config.placer.stop_overflow
                {
                    break;
                }
                last = placer.step();
            }
        }
        if let Some(policy) = policy {
            self.write_checkpoint(design, policy, FlowStage::GlobalDone, &placer, &optimizer)?;
        }
        let global_placement = placer.placement().clone();
        self.observe(
            StagePoint::GlobalDone,
            design,
            &global_placement,
            &optimizer,
            placer.overflow(),
            placer.iterations(),
        )?;

        // --- white-space-assisted legalization (§III-D) --------------------
        let legal_span = trace.span("legal");
        let discrete = if self.config.inherit_padding {
            let continuous = optimizer.padding().to_vec();
            let mut d = discretize_padding(&continuous, self.config.strategy.theta);
            enforce_budget(
                design.netlist(),
                &continuous,
                &mut d,
                design.tech().site_width,
                self.config.strategy.legal_budget,
            );
            d
        } else {
            vec![0u32; design.netlist().num_cells()]
        };
        let outcome = match legalize(design, &global_placement, &discrete) {
            Ok(o) => o,
            Err(_) if self.config.inherit_padding => {
                // Padding made the design unfittable; retry without padding
                // rather than failing the flow (the budget cap normally
                // prevents this).
                let zeros = vec![0u32; design.netlist().num_cells()];
                legalize(design, &global_placement, &zeros)
                    .map_err(|e| PufferError::Legalize(e.to_string()))?
            }
            Err(e) => return Err(PufferError::Legalize(e.to_string())),
        };
        // The *physical* placement must always be legal (padding aside).
        let zeros = vec![0u32; design.netlist().num_cells()];
        check_legal(design, &outcome.placement, &zeros)
            .map_err(|e| PufferError::Legalize(e.to_string()))?;
        self.observe(
            StagePoint::Legalized,
            design,
            &outcome.placement,
            &optimizer,
            placer.overflow(),
            placer.iterations(),
        )?;
        drop(legal_span);

        let result = FlowResult {
            hpwl: total_hpwl(design.netlist(), &outcome.placement),
            placement: outcome.placement,
            global_placement,
            gp_iterations: placer.iterations(),
            pad_rounds: optimizer.state().round,
            final_overflow: placer.overflow(),
            runtime_s: start.elapsed().as_secs_f64(),
            avg_displacement: outcome.avg_displacement,
        };
        trace
            .record("flow.done")
            .num("runtime_s", result.runtime_s)
            .int("gp_iterations", result.gp_iterations as i64)
            .int("pad_rounds", result.pad_rounds as i64)
            .num("hpwl", result.hpwl)
            .num("overflow", result.final_overflow)
            .write();
        Ok(result)
    }

    /// Runs the attached observer (if any) on one stage boundary.
    fn observe(
        &self,
        point: StagePoint,
        design: &Design,
        placement: &Placement,
        optimizer: &RoutabilityOptimizer,
        overflow: f64,
        iter: usize,
    ) -> Result<(), PufferError> {
        let Some(observer) = &self.observer else {
            return Ok(());
        };
        let report = StageReport {
            point,
            design,
            placement,
            padding: optimizer.state(),
            strategy: &self.config.strategy,
            overflow,
            iter,
        };
        observer
            .check(&report)
            .map_err(|m| PufferError::Validate(format!("at stage boundary '{point}': {m}")))
    }

    fn write_checkpoint(
        &self,
        design: &Design,
        policy: &CheckpointPolicy,
        stage: FlowStage,
        placer: &GlobalPlacer<'_>,
        optimizer: &RoutabilityOptimizer,
    ) -> Result<(), PufferError> {
        let checkpoint =
            FlowCheckpoint::capture(design, stage, placer.snapshot(), optimizer.state().clone());
        checkpoint
            .save(&policy.file_for(stage, placer.iterations()))
            .map_err(|e| PufferError::Journal(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_gen::{generate, GeneratorConfig};

    fn quick_config() -> PufferConfig {
        let mut c = PufferConfig::default();
        c.placer.max_iters = 160;
        c.placer.stop_overflow = 0.15;
        c.strategy.tau = 0.30;
        c.strategy.max_rounds = 3;
        c
    }

    fn design() -> Design {
        generate(&GeneratorConfig {
            num_cells: 400,
            num_nets: 450,
            num_macros: 2,
            utilization: 0.6,
            hotspot: 0.5,
            ..GeneratorConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn full_flow_produces_legal_placement() {
        let d = design();
        let r = PufferPlacer::new(quick_config()).place(&d).unwrap();
        assert!(r.gp_iterations > 0);
        assert!(r.hpwl > 0.0);
        assert!(r.runtime_s > 0.0);
        // Legality is already asserted inside place(); double-check.
        let zeros = vec![0u32; d.netlist().num_cells()];
        puffer_legal::check_legal(&d, &r.placement, &zeros).unwrap();
    }

    #[test]
    fn routability_optimizer_actually_runs() {
        let d = design();
        let r = PufferPlacer::new(quick_config()).place(&d).unwrap();
        assert!(
            r.pad_rounds > 0,
            "padding rounds should trigger on a congested design"
        );
    }

    #[test]
    fn traced_flow_emits_stage_spans_and_records() {
        let d = design();
        let path = tmp_dir("trace").join("metrics.jsonl");
        let trace = Trace::with_sink(&path).unwrap();
        let r = PufferPlacer::new(quick_config())
            .with_trace(trace.clone())
            .place(&d)
            .unwrap();
        trace.flush().unwrap();

        // Stage spans: init, gp (with nested pad rounds), legal.
        let spans = trace.span_stats();
        let span = |label: &str| {
            spans
                .iter()
                .find(|(l, _)| l == label)
                .unwrap_or_else(|| panic!("missing span {label:?}"))
                .1
        };
        for stage in ["init", "gp", "legal"] {
            span(stage);
        }
        assert_eq!(span("gp/pad").count, r.pad_rounds as u64);

        // The sink holds one place.iter per GP iteration plus the stage
        // records from the optimizer and the final flow.done.
        let records = puffer_trace::read_jsonl(&path).unwrap();
        let iters = records.iter().filter(|r| r.kind() == Some("place.iter"));
        assert_eq!(iters.count(), r.gp_iterations);
        let pads = records.iter().filter(|r| r.kind() == Some("pad.round"));
        assert_eq!(pads.count(), r.pad_rounds);
        let done = records
            .iter()
            .find(|r| r.kind() == Some("flow.done"))
            .expect("flow.done record");
        assert_eq!(done.num("gp_iterations"), Some(r.gp_iterations as f64));
        assert!(done.num("runtime_s").unwrap() > 0.0);

        // Trace must not perturb the flow itself.
        let plain = PufferPlacer::new(quick_config()).place(&d).unwrap();
        assert_eq!(plain.placement, r.placement);
    }

    #[test]
    fn padding_inheritance_toggle() {
        let d = design();
        let with = PufferPlacer::new(quick_config()).place(&d).unwrap();
        let mut cfg = quick_config();
        cfg.inherit_padding = false;
        let without = PufferPlacer::new(cfg).place(&d).unwrap();
        // Same global placement (same seed/config), different legalization.
        assert_eq!(with.gp_iterations, without.gp_iterations);
        assert!(with.placement != without.placement || with.hpwl == without.hpwl);
    }

    #[test]
    fn flow_is_deterministic() {
        let d = design();
        let a = PufferPlacer::new(quick_config()).place(&d).unwrap();
        let b = PufferPlacer::new(quick_config()).place(&d).unwrap();
        assert_eq!(a.hpwl, b.hpwl);
        assert_eq!(a.placement, b.placement);
    }

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("puffer-flow-tests").join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn checkpointing_does_not_perturb_the_flow() {
        let d = design();
        let placer = PufferPlacer::new(quick_config());
        let plain = placer.place(&d).unwrap();
        let policy = CheckpointPolicy {
            path: tmp_dir("noperturb").join("run.pj"),
            every: 30,
            keep_history: false,
        };
        let journaled = placer.place_with_checkpoints(&d, &policy).unwrap();
        assert_eq!(plain.placement, journaled.placement);
        assert_eq!(plain.hpwl, journaled.hpwl);
        assert!(policy.path.exists(), "final checkpoint should be on disk");
    }

    #[test]
    fn kill_then_resume_reproduces_the_uninterrupted_run() {
        let d = design();
        let placer = PufferPlacer::new(quick_config());
        let uninterrupted = placer.place(&d).unwrap();

        // keep_history preserves each mid-loop journal, so any of them is
        // exactly what a kill right after that write would have left behind.
        let dir = tmp_dir("resume");
        let policy = CheckpointPolicy {
            path: dir.join("run.pj"),
            every: 40,
            keep_history: true,
        };
        placer.place_with_checkpoints(&d, &policy).unwrap();
        let mid = dir.join("run.pj.iter000040");
        assert!(mid.exists(), "mid-loop checkpoint missing");

        let resumed = placer.resume(&d, &mid).unwrap();
        assert_eq!(uninterrupted.placement, resumed.placement);
        assert_eq!(uninterrupted.global_placement, resumed.global_placement);
        assert_eq!(uninterrupted.hpwl, resumed.hpwl);
        assert_eq!(uninterrupted.gp_iterations, resumed.gp_iterations);
        assert_eq!(uninterrupted.pad_rounds, resumed.pad_rounds);
    }

    #[test]
    fn resume_from_completed_journal_skips_global_placement() {
        let d = design();
        let placer = PufferPlacer::new(quick_config());
        let dir = tmp_dir("done");
        let policy = CheckpointPolicy::new(dir.join("run.pj"));
        let full = placer.place_with_checkpoints(&d, &policy).unwrap();
        let resumed = placer.resume(&d, &policy.path).unwrap();
        assert_eq!(full.placement, resumed.placement);
        assert_eq!(full.gp_iterations, resumed.gp_iterations);
    }

    #[test]
    fn resume_rejects_a_mismatched_design() {
        let d = design();
        let other = generate(&GeneratorConfig {
            num_cells: 50,
            num_nets: 60,
            ..GeneratorConfig::default()
        })
        .unwrap();
        let placer = PufferPlacer::new(quick_config());
        let dir = tmp_dir("mismatch");
        let policy = CheckpointPolicy::new(dir.join("run.pj"));
        placer.place_with_checkpoints(&d, &policy).unwrap();
        let err = placer.resume(&other, &policy.path).unwrap_err();
        assert!(matches!(err, PufferError::Resume(_)), "{err}");
    }

    #[test]
    fn resume_from_missing_or_corrupt_journal_is_a_journal_error() {
        let d = design();
        let placer = PufferPlacer::new(quick_config());
        let dir = tmp_dir("corrupt");
        let missing = placer.resume(&d, &dir.join("nope.pj")).unwrap_err();
        assert!(matches!(missing, PufferError::Journal(_)), "{missing}");
        let garbled = dir.join("garbled.pj");
        std::fs::write(&garbled, "puffer_checkpoint 1\ndesign oops\n").unwrap();
        let err = placer.resume(&d, &garbled).unwrap_err();
        assert!(matches!(err, PufferError::Journal(_)), "{err}");
    }
}
