//! The full PUFFER flow (paper Fig. 2): global placement with interleaved
//! routability optimization, then white-space-assisted legalization.

use crate::checkpoint::{CheckpointPolicy, FlowCheckpoint, FlowStage};
use crate::scale::ScaleClass;
use crate::PufferError;
#[cfg(feature = "chaos")]
use puffer_budget::{ChaosPlan, FaultClass};
use puffer_budget::{Budget, DegradationLadder, DegradeStep, LadderState, StallAction, StallWatchdog};
use puffer_congest::EstimatorConfig;
use puffer_db::design::{Design, Placement};
use puffer_db::hpwl::total_hpwl;
use puffer_legal::{check_legal, discretize_padding, enforce_budget, legalize};
use puffer_pad::{FeatureConfig, PaddingState, PaddingStrategy, RoutabilityOptimizer};
use puffer_place::{GlobalPlacer, IterationStats, PlacerConfig};
use puffer_trace::Trace;
use std::fmt;
use std::path::Path;
use std::sync::Arc;
use puffer_budget::clock::Stopwatch;

/// Configuration of the PUFFER flow.
#[derive(Debug, Clone, PartialEq)]
pub struct PufferConfig {
    /// Global-placement engine settings.
    pub placer: PlacerConfig,
    /// Congestion-estimator settings (§III-A).
    pub estimator: EstimatorConfig,
    /// Padding strategy parameters (§III-B, tuned by §III-C).
    pub strategy: PaddingStrategy,
    /// Feature-extraction settings (CNN kernel radius, GNN Z-bend samples).
    pub features: FeatureConfig,
    /// Whether legalization inherits the discretized padding (§III-D);
    /// disabling this is the ablation of padding inheritance.
    pub inherit_padding: bool,
    /// Size band the run operates in; `None` (the default `auto` policy)
    /// classifies the design by cell count at flow start. The resolved
    /// class is traced in `flow.init`, journaled, and checked on resume.
    pub scale_class: Option<ScaleClass>,
}

impl Default for PufferConfig {
    fn default() -> Self {
        PufferConfig {
            placer: PlacerConfig::default(),
            estimator: EstimatorConfig::default(),
            strategy: PaddingStrategy::default(),
            features: FeatureConfig::default(),
            inherit_padding: true,
            scale_class: None,
        }
    }
}

/// A boundary inside the flow at which a [`StageObserver`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StagePoint {
    /// The placer is set up (fresh or restored from a checkpoint) and has
    /// taken its first step.
    Init,
    /// A routability-optimization round just updated the padding.
    PadRound,
    /// Global placement converged; the snapshot is about to be legalized.
    GlobalDone,
    /// Legalization produced the final physical placement.
    Legalized,
}

impl fmt::Display for StagePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            StagePoint::Init => "init",
            StagePoint::PadRound => "pad-round",
            StagePoint::GlobalDone => "global-done",
            StagePoint::Legalized => "legalized",
        };
        f.write_str(name)
    }
}

/// Everything a [`StageObserver`] may inspect at a stage boundary.
pub struct StageReport<'a> {
    /// Which boundary fired.
    pub point: StagePoint,
    /// The design being placed.
    pub design: &'a Design,
    /// The placement at this boundary (global until `Legalized`).
    pub placement: &'a Placement,
    /// The routability optimizer's padding history.
    pub padding: &'a PaddingState,
    /// The active padding strategy (for utilization-cap checks).
    pub strategy: &'a PaddingStrategy,
    /// Density overflow of the latest placer step.
    pub overflow: f64,
    /// Global-placement iterations completed.
    pub iter: usize,
}

/// A callback the flow invokes at every stage boundary (see
/// [`StagePoint`]); returning `Err` aborts the flow with
/// [`PufferError::Validate`]. This is how `--validate` plugs the
/// `puffer-audit` invariant checkers into the flow without the core crate
/// depending on them.
#[derive(Clone)]
pub struct StageObserver {
    f: Arc<ObserverFn>,
}

/// The boxed callback type behind [`StageObserver`].
type ObserverFn = dyn Fn(&StageReport<'_>) -> Result<(), String> + Send + Sync;

impl StageObserver {
    /// Wraps a checker callback.
    pub fn new(f: impl Fn(&StageReport<'_>) -> Result<(), String> + Send + Sync + 'static) -> Self {
        StageObserver { f: Arc::new(f) }
    }

    /// Runs the checker on one boundary report.
    ///
    /// # Errors
    ///
    /// Whatever the wrapped callback reports; the flow converts it to
    /// [`PufferError::Validate`].
    pub fn check(&self, report: &StageReport<'_>) -> Result<(), String> {
        (self.f)(report)
    }
}

impl fmt::Debug for StageObserver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("StageObserver(..)")
    }
}

/// Result of a placement flow.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// The final legal placement.
    pub placement: Placement,
    /// The global placement before legalization.
    pub global_placement: Placement,
    /// HPWL of the legal placement.
    pub hpwl: f64,
    /// Global-placement iterations executed.
    pub gp_iterations: usize,
    /// Routability-optimizer rounds executed.
    pub pad_rounds: usize,
    /// Final density overflow at the end of global placement.
    pub final_overflow: f64,
    /// Wall-clock runtime of the flow in seconds.
    pub runtime_s: f64,
    /// Average legalization displacement.
    pub avg_displacement: f64,
    /// Degradation-ladder steps that engaged, in engagement order.
    pub degradation: Vec<DegradeStep>,
    /// Whether global placement stopped early (budget expired, external
    /// cancel, early-exit rung, or watchdog demotion) rather than
    /// converging. The placement is still the legalized best-so-far.
    pub cancelled: bool,
}

/// The PUFFER placer: the paper's primary contribution, assembled.
///
/// ```
/// use puffer::{PufferPlacer, PufferConfig};
/// use puffer_gen::{generate, GeneratorConfig};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let design = generate(&GeneratorConfig {
///     num_cells: 300, num_nets: 330, utilization: 0.6,
///     ..GeneratorConfig::default()
/// })?;
/// let mut config = PufferConfig::default();
/// config.placer.max_iters = 80;
/// let result = PufferPlacer::new(config).place(&design)?;
/// assert!(result.hpwl > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PufferPlacer {
    config: PufferConfig,
    trace: Trace,
    observer: Option<StageObserver>,
    budget: Budget,
    ladder: Option<DegradationLadder>,
    watchdog: Option<StallWatchdog>,
    #[cfg(feature = "chaos")]
    chaos: Option<ChaosPlan>,
}

impl PufferPlacer {
    /// Creates the placer with a configuration.
    pub fn new(config: PufferConfig) -> Self {
        PufferPlacer {
            config,
            trace: Trace::disabled(),
            observer: None,
            budget: Budget::unbounded(),
            ladder: None,
            watchdog: None,
            #[cfg(feature = "chaos")]
            chaos: None,
        }
    }

    /// Attaches a telemetry handle, returning `self` for chaining. The flow
    /// stamps its stage boundaries as nested spans (`init`, `gp` with `pad`
    /// rounds inside, `legal`), forwards the handle to the placer, padding
    /// optimizer, and congestion estimator for their per-iteration records,
    /// and emits a final `flow.done` record.
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }

    /// Attaches a stage observer, returning `self` for chaining. The
    /// observer runs at every [`StagePoint`]; an `Err` aborts the flow
    /// with [`PufferError::Validate`]. Without an observer the boundary
    /// reports are never built, so the unused hook costs nothing.
    pub fn with_observer(mut self, observer: StageObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Attaches an execution budget, returning `self` for chaining. The
    /// flow checks it cooperatively at every global-placement iteration
    /// (the budget's clock starts at [`Budget::with_deadline`], not here);
    /// when it expires the loop breaks as if converged — the best-so-far
    /// snapshot is still legalized, so the flow exits cleanly within the
    /// deadline plus one iteration's slack.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches a graceful-degradation ladder, returning `self` for
    /// chaining. As the budget's remaining fraction crosses each rung's
    /// threshold the flow steps down fidelity in the declared order; each
    /// engagement is recorded as a `flow.degrade` trace record and in the
    /// checkpoint journal. Without a bounded budget the ladder never
    /// engages.
    pub fn with_ladder(mut self, ladder: DegradationLadder) -> Self {
        self.ladder = Some(ladder);
        self
    }

    /// Attaches a stall watchdog, returning `self` for chaining. The flow
    /// feeds it the iteration counter at every loop boundary; if the
    /// counter stops advancing for the watchdog's window, the flow
    /// checkpoints (when journaling) and then either degrades to
    /// best-so-far legalization ([`StallAction::Degrade`]) or aborts with
    /// [`PufferError::Stalled`] ([`StallAction::Abort`]).
    pub fn with_watchdog(mut self, watchdog: StallWatchdog) -> Self {
        self.watchdog = Some(watchdog);
        self
    }

    /// Arms one deterministic fault injection (chaos-harness use only).
    #[cfg(feature = "chaos")]
    pub fn with_chaos(mut self, plan: ChaosPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// The configuration.
    pub fn config(&self) -> &PufferConfig {
        &self.config
    }

    /// Runs the full flow on a design.
    ///
    /// # Errors
    ///
    /// Returns [`PufferError`] if global placement cannot start (no movable
    /// cells / unplaced macros) or legalization runs out of capacity.
    pub fn place(&self, design: &Design) -> Result<FlowResult, PufferError> {
        self.run(design, None, None)
    }

    /// Runs the full flow, periodically journaling a [`FlowCheckpoint`]
    /// per `policy` so a killed process can pick up with
    /// [`PufferPlacer::resume`]. Checkpointing is pure observation: the
    /// produced placement is identical to [`PufferPlacer::place`].
    ///
    /// # Errors
    ///
    /// Everything [`PufferPlacer::place`] returns, plus
    /// [`PufferError::Journal`] when a checkpoint cannot be written.
    pub fn place_with_checkpoints(
        &self,
        design: &Design,
        policy: &CheckpointPolicy,
    ) -> Result<FlowResult, PufferError> {
        self.run(design, Some(policy), None)
    }

    /// Resumes a flow from the journal at `journal`, continuing to write
    /// checkpoints to the same file. The configuration must match the one
    /// that produced the journal; a resumed run then finishes with exactly
    /// the placement the uninterrupted run would have produced.
    ///
    /// The journal is read leniently ([`FlowCheckpoint::recover`]): a torn
    /// final record — a crash cut an append short — is dropped with a
    /// `journal.recovered` trace record and the run resumes from the last
    /// complete checkpoint instead of erroring.
    ///
    /// # Errors
    ///
    /// [`PufferError::Journal`] when the journal cannot be read or holds no
    /// complete record, [`PufferError::Resume`] when it does not fit the
    /// design, plus everything [`PufferPlacer::place`] returns.
    pub fn resume(&self, design: &Design, journal: &Path) -> Result<FlowResult, PufferError> {
        let recovered =
            FlowCheckpoint::recover(journal).map_err(|e| PufferError::Journal(e.to_string()))?;
        if recovered.dropped_torn_tail {
            self.trace
                .record("journal.recovered")
                .str("path", &journal.to_string_lossy())
                .int("records", recovered.records as i64)
                .int("torn_tail_dropped", 1)
                .write();
        }
        let policy = CheckpointPolicy::new(journal);
        self.run(design, Some(&policy), Some(recovered.checkpoint))
    }

    /// Runs the flow warm-started from an in-memory checkpoint (no
    /// journaling unless `policy` is given). This is also the hook for
    /// injecting a known-good state before a risky continuation.
    ///
    /// # Errors
    ///
    /// [`PufferError::Resume`] when the checkpoint does not fit the
    /// design, plus everything [`PufferPlacer::place`] returns.
    pub fn place_from(
        &self,
        design: &Design,
        checkpoint: FlowCheckpoint,
        policy: Option<&CheckpointPolicy>,
    ) -> Result<FlowResult, PufferError> {
        self.run(design, policy, Some(checkpoint))
    }

    fn run(
        &self,
        design: &Design,
        policy: Option<&CheckpointPolicy>,
        from: Option<FlowCheckpoint>,
    ) -> Result<FlowResult, PufferError> {
        let start = Stopwatch::start();
        let trace = &self.trace;
        let budget = &self.budget;
        let init_span = trace.span("init");
        let mut optimizer = RoutabilityOptimizer::new(
            design,
            self.config.estimator.clone(),
            self.config.strategy.clone(),
        )
        .with_feature_config(self.config.features.clone());
        optimizer.set_trace(trace.clone());
        optimizer.set_budget(budget.clone());

        // Size-aware strategy ladder (`auto` classifies by cell count).
        // Coarsening happens here, before the first congestion round, so
        // every round of the run — and the audit's histogram-conservation
        // check — sees one consistent baseline grid.
        let scale_class = self
            .config
            .scale_class
            .unwrap_or_else(|| ScaleClass::classify(design.netlist().num_cells()));
        if let Some(factor) = scale_class.congestion_coarsen_factor() {
            optimizer.coarsen_estimator(design, factor);
        }
        trace
            .record("flow.init")
            .str("scale_class", scale_class.as_str())
            .int("cells", design.netlist().num_cells() as i64)
            .num(
                "congest_coarsen",
                scale_class.congestion_coarsen_factor().unwrap_or(1.0),
            )
            .write();

        // Bounded-execution state for this run. The ladder/watchdog handles
        // on `self` are templates; each run works on its own copies.
        let mut ladder = self.ladder.clone().map(LadderState::new);
        let mut watchdog = self.watchdog.clone();
        let mut engaged: Vec<DegradeStep> = Vec::new();
        let mut frozen_padding = false;
        let mut early_exit = false;
        let mut cancelled = false;
        // Set when a cancellation suppressed a pass's padding round: the
        // final checkpoint must record it so a resumed run re-evaluates the
        // trigger at that iteration (see FlowCheckpoint::pending_round).
        let mut pending_round = false;
        #[cfg(feature = "chaos")]
        let journal_fault: Option<usize> = self
            .chaos
            .as_ref()
            .filter(|p| p.class == FaultClass::JournalWrite)
            .map(|p| p.at);
        #[cfg(not(feature = "chaos"))]
        let journal_fault: Option<usize> = None;
        #[cfg(feature = "chaos")]
        let mut nan_fired = false;
        #[cfg(feature = "chaos")]
        let mut slow_fired = false;

        // Either a fresh placer after its first step, or the journaled one.
        // `resumed_stage` remembers where the journal left off; `skip_round`
        // suppresses the trigger/checkpoint half of the first loop pass,
        // because the journal was written *after* that half ran.
        let (mut placer, mut last, mut skip_round, resumed_done) = match from {
            None => {
                let mut placer = GlobalPlacer::new(design, self.config.placer.clone())
                    .map_err(|e| PufferError::Place(e.to_string()))?;
                placer.set_trace(trace.clone());
                let last = placer.step();
                (placer, last, false, false)
            }
            Some(checkpoint) => {
                checkpoint
                    .matches(design)
                    .map_err(|e| PufferError::Resume(e.to_string()))?;
                // A journal written under one strategy band must not be
                // continued under another: the coarsened grid and window
                // hints would silently diverge from the recorded run.
                // Journals from earlier builds carry no class and skip the
                // check.
                if let Some(recorded) = checkpoint.scale_class {
                    if recorded != scale_class {
                        return Err(PufferError::Resume(format!(
                            "checkpoint was written under scale class '{recorded}' \
                             but this run resolves to '{scale_class}'; pass \
                             --scale-class {recorded} to continue it"
                        )));
                    }
                }
                let done = checkpoint.stage == FlowStage::GlobalDone;
                let mut placer = GlobalPlacer::with_placement(
                    design,
                    self.config.placer.clone(),
                    checkpoint.placer.placement.clone(),
                )
                .map_err(|e| PufferError::Place(e.to_string()))?;
                let last = IterationStats {
                    iter: checkpoint.placer.iter,
                    overflow: checkpoint.placer.last_overflow,
                    hpwl: 0.0,
                    wa: 0.0,
                    energy: 0.0,
                    lambda: checkpoint.placer.lambda,
                };
                placer
                    .restore(checkpoint.placer)
                    .map_err(|e| PufferError::Resume(e.to_string()))?;
                placer.set_trace(trace.clone());
                let resume_skip_round = !checkpoint.pending_round;
                optimizer.set_state(checkpoint.pad);
                (placer, last, resume_skip_round, done)
            }
        };
        drop(init_span);
        self.observe(
            StagePoint::Init,
            design,
            placer.placement(),
            &optimizer,
            last.overflow,
            last.iter,
        )?;

        // --- global placement with interleaved routability optimization ---
        if !resumed_done {
            let _gp_span = trace.span("gp");
            loop {
                // Graceful degradation: engage every rung whose threshold
                // the budget has crossed since the last pass, in ladder
                // order. Each engagement is applied once, journaled, and
                // traced.
                if let Some(state) = ladder.as_mut() {
                    for step in state.poll(budget) {
                        match step {
                            DegradeStep::CoarseCongestion => {
                                optimizer.coarsen_estimator(design, 2.0);
                            }
                            DegradeStep::FreezePadding => frozen_padding = true,
                            // SMBO-only rung; recorded so the journal still
                            // reflects the declared ladder position.
                            DegradeStep::CapTrials => {}
                            DegradeStep::EarlyExitGp => early_exit = true,
                        }
                        trace
                            .record("flow.degrade")
                            .str("step", step.as_str())
                            .num("fraction_remaining", budget.fraction_remaining())
                            .int("iter", last.iter as i64)
                            .write();
                        engaged.push(step);
                    }
                }
                if !skip_round {
                    if !frozen_padding && optimizer.should_trigger(last.overflow) {
                        // An exhausted budget skips the (expensive) pad
                        // round: the loop is about to break to legalization.
                        // The suppression is journaled so a resumed run
                        // redoes this pass's trigger instead of skipping a
                        // round the uninterrupted trajectory would take.
                        if budget.is_exhausted() {
                            pending_round = true;
                        } else {
                            let _pad_span = trace.span("pad");
                            let snapshot = placer.placement().clone();
                            optimizer.optimize(design, &snapshot);
                            placer.set_padding(optimizer.padding().to_vec());
                            self.observe(
                                StagePoint::PadRound,
                                design,
                                placer.placement(),
                                &optimizer,
                                last.overflow,
                                last.iter,
                            )?;
                        }
                    }
                    if let Some(policy) = policy {
                        if policy.due(last.iter) {
                            self.write_checkpoint(
                                design,
                                policy,
                                FlowStage::GlobalPlace,
                                &placer,
                                &optimizer,
                                &BoundedRun {
                                    degradation: &engaged,
                                    journal_fault,
                                    pending_round,
                                    scale_class,
                                },
                            )?;
                        }
                    }
                }
                skip_round = false;

                // Stall watchdog: the iteration counter is the heartbeat.
                // A pass that reaches this point with the same counter as
                // the previous pass is not advancing; once that lasts a
                // full window, act.
                trace.heartbeat("gp", last.iter as u64);
                let mut stalled = None;
                if let Some(wd) = watchdog.as_mut() {
                    stalled = wd.observe(last.iter as u64);
                }
                #[cfg(feature = "chaos")]
                if let Some(plan) = &self.chaos {
                    if plan.class == FaultClass::SlowStage
                        && !slow_fired
                        && last.iter >= plan.at
                        && stalled.is_none()
                    {
                        slow_fired = true;
                        trace
                            .record("chaos.inject")
                            .str("class", plan.class.as_str())
                            .int("at", last.iter as i64)
                            .int("magnitude", plan.magnitude as i64)
                            .write();
                        // Hold the stage without advancing the counter,
                        // feeding the watchdog so the stall is observable;
                        // bounded so an unwatched run cannot hang.
                        let cap = std::time::Duration::from_millis(
                            (25 * plan.magnitude.max(1) as u64).min(2_000),
                        );
                        let held = Stopwatch::start();
                        while stalled.is_none() && held.elapsed() < cap && !budget.is_exhausted()
                        {
                            std::thread::sleep(std::time::Duration::from_millis(5));
                            if let Some(wd) = watchdog.as_mut() {
                                stalled = wd.observe(last.iter as u64);
                            }
                        }
                    }
                }
                if let (Some(stalled_for), Some(wd)) = (stalled, watchdog.as_ref()) {
                    trace
                        .record("watchdog.stall")
                        .str("stage", "gp")
                        .num("stalled_s", stalled_for.as_secs_f64())
                        .num("window_s", wd.window().as_secs_f64())
                        .str(
                            "action",
                            match wd.action() {
                                StallAction::Degrade => "degrade",
                                StallAction::Abort => "abort",
                            },
                        )
                        .int("iter", last.iter as i64)
                        .write();
                    if let Some(policy) = policy {
                        self.write_checkpoint(
                            design,
                            policy,
                            FlowStage::GlobalPlace,
                            &placer,
                            &optimizer,
                            &BoundedRun {
                                degradation: &engaged,
                                journal_fault,
                                pending_round,
                                scale_class,
                            },
                        )?;
                    }
                    match wd.action() {
                        StallAction::Degrade => {
                            cancelled = true;
                            break;
                        }
                        StallAction::Abort => {
                            return Err(PufferError::Stalled(format!(
                                "gp made no progress for {:.2}s (window {:.2}s) \
                                 at iteration {}",
                                stalled_for.as_secs_f64(),
                                wd.window().as_secs_f64(),
                                last.iter,
                            )));
                        }
                    }
                }

                // Cooperative cancellation: an expired budget or the
                // early-exit rung breaks as if converged; the best-so-far
                // snapshot proceeds to (unbounded) legalization.
                if budget.is_exhausted() || early_exit {
                    cancelled = true;
                    break;
                }
                if last.iter >= self.config.placer.max_iters
                    || last.overflow <= self.config.placer.stop_overflow
                {
                    break;
                }
                #[cfg(feature = "chaos")]
                if let Some(plan) = &self.chaos {
                    if plan.class == FaultClass::NanBurst && !nan_fired && last.iter >= plan.at {
                        nan_fired = true;
                        trace
                            .record("chaos.inject")
                            .str("class", plan.class.as_str())
                            .int("at", last.iter as i64)
                            .int("magnitude", plan.magnitude as i64)
                            .write();
                        // Poison right before a step so the divergence
                        // sentinel inside it must recover the burst.
                        placer.chaos_poison_nan(plan.magnitude.max(1));
                    }
                }
                last = placer.step();
            }
        }
        if let Some(policy) = policy {
            // A cancelled run journals as *mid-loop*: resuming it later
            // re-enters the GP loop and finishes the interrupted
            // trajectory, instead of re-legalizing the truncated
            // best-so-far. Only a genuinely converged loop marks the
            // journal done.
            let stage = if cancelled {
                FlowStage::GlobalPlace
            } else {
                FlowStage::GlobalDone
            };
            self.write_checkpoint(
                design,
                policy,
                stage,
                &placer,
                &optimizer,
                &BoundedRun {
                    degradation: &engaged,
                    journal_fault,
                    pending_round,
                    scale_class,
                },
            )?;
        }
        let global_placement = placer.placement().clone();
        self.observe(
            StagePoint::GlobalDone,
            design,
            &global_placement,
            &optimizer,
            placer.overflow(),
            placer.iterations(),
        )?;

        // --- white-space-assisted legalization (§III-D) --------------------
        let legal_span = trace.span("legal");
        let discrete = if self.config.inherit_padding {
            let continuous = optimizer.padding().to_vec();
            let mut d = discretize_padding(&continuous, self.config.strategy.theta);
            enforce_budget(
                design.netlist(),
                &continuous,
                &mut d,
                design.tech().site_width,
                self.config.strategy.legal_budget,
            );
            d
        } else {
            vec![0u32; design.netlist().num_cells()]
        };
        let outcome = match legalize(design, &global_placement, &discrete) {
            Ok(o) => o,
            Err(_) if self.config.inherit_padding => {
                // Padding made the design unfittable; retry without padding
                // rather than failing the flow (the budget cap normally
                // prevents this).
                let zeros = vec![0u32; design.netlist().num_cells()];
                legalize(design, &global_placement, &zeros)
                    .map_err(|e| PufferError::Legalize(e.to_string()))?
            }
            Err(e) => return Err(PufferError::Legalize(e.to_string())),
        };
        // The *physical* placement must always be legal (padding aside).
        let zeros = vec![0u32; design.netlist().num_cells()];
        check_legal(design, &outcome.placement, &zeros)
            .map_err(|e| PufferError::Legalize(e.to_string()))?;
        self.observe(
            StagePoint::Legalized,
            design,
            &outcome.placement,
            &optimizer,
            placer.overflow(),
            placer.iterations(),
        )?;
        drop(legal_span);

        let result = FlowResult {
            hpwl: total_hpwl(design.netlist(), &outcome.placement),
            placement: outcome.placement,
            global_placement,
            gp_iterations: placer.iterations(),
            pad_rounds: optimizer.state().round,
            final_overflow: placer.overflow(),
            runtime_s: start.elapsed_secs(),
            avg_displacement: outcome.avg_displacement,
            degradation: engaged,
            cancelled,
        };
        trace
            .record("flow.done")
            .num("runtime_s", result.runtime_s)
            .int("gp_iterations", result.gp_iterations as i64)
            .int("pad_rounds", result.pad_rounds as i64)
            .num("hpwl", result.hpwl)
            .num("overflow", result.final_overflow)
            .int("cancelled", result.cancelled as i64)
            .int("degrade_steps", result.degradation.len() as i64)
            .write();
        Ok(result)
    }

    /// Runs the attached observer (if any) on one stage boundary.
    fn observe(
        &self,
        point: StagePoint,
        design: &Design,
        placement: &Placement,
        optimizer: &RoutabilityOptimizer,
        overflow: f64,
        iter: usize,
    ) -> Result<(), PufferError> {
        let Some(observer) = &self.observer else {
            return Ok(());
        };
        let report = StageReport {
            point,
            design,
            placement,
            padding: optimizer.state(),
            strategy: &self.config.strategy,
            overflow,
            iter,
        };
        observer
            .check(&report)
            .map_err(|m| PufferError::Validate(format!("at stage boundary '{point}': {m}")))
    }

    fn write_checkpoint(
        &self,
        design: &Design,
        policy: &CheckpointPolicy,
        stage: FlowStage,
        placer: &GlobalPlacer<'_>,
        optimizer: &RoutabilityOptimizer,
        bounded: &BoundedRun<'_>,
    ) -> Result<(), PufferError> {
        let path = policy.file_for(stage, placer.iterations());
        if let Some(at) = bounded.journal_fault {
            if placer.iterations() >= at {
                return self.inject_journal_fault(&path, placer.iterations());
            }
        }
        let checkpoint =
            FlowCheckpoint::capture(design, stage, placer.snapshot(), optimizer.state().clone())
                .with_degradation(bounded.degradation.to_vec())
                .with_pending_round(bounded.pending_round)
                .with_scale_class(Some(bounded.scale_class));
        checkpoint
            .save(&path)
            .map_err(|e| PufferError::Journal(e.to_string()))
    }

    /// Chaos-harness fault point: simulates a crash part-way through a
    /// journal write. A half-record lands under the temp name and is never
    /// renamed, exactly what an interrupted [`FlowCheckpoint::save`] leaves
    /// behind — the previously committed journal (if any) stays valid.
    fn inject_journal_fault(&self, path: &Path, iter: usize) -> Result<(), PufferError> {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("journal");
        let tmp = path.with_file_name(format!("{name}.tmp"));
        let _ = std::fs::write(&tmp, "puffer_checkpoint 1\ndesign 40");
        self.trace
            .record("chaos.inject")
            .str("class", "journal-write")
            .int("at", iter as i64)
            .write();
        Err(PufferError::Journal(format!(
            "chaos: injected journal write failure at iteration {iter}"
        )))
    }
}

/// Per-run bounded-execution state a checkpoint write must record: the
/// engaged degradation rungs, plus the armed journal fault (chaos only).
struct BoundedRun<'a> {
    degradation: &'a [DegradeStep],
    journal_fault: Option<usize>,
    pending_round: bool,
    scale_class: ScaleClass,
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_gen::{generate, GeneratorConfig};

    fn quick_config() -> PufferConfig {
        let mut c = PufferConfig::default();
        c.placer.max_iters = 160;
        c.placer.stop_overflow = 0.15;
        c.strategy.tau = 0.30;
        c.strategy.max_rounds = 3;
        c
    }

    fn design() -> Design {
        generate(&GeneratorConfig {
            num_cells: 400,
            num_nets: 450,
            num_macros: 2,
            utilization: 0.6,
            hotspot: 0.5,
            ..GeneratorConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn full_flow_produces_legal_placement() {
        let d = design();
        let r = PufferPlacer::new(quick_config()).place(&d).unwrap();
        assert!(r.gp_iterations > 0);
        assert!(r.hpwl > 0.0);
        assert!(r.runtime_s > 0.0);
        assert!(!r.cancelled, "unbounded run must not report cancellation");
        assert!(r.degradation.is_empty());
        // Legality is already asserted inside place(); double-check.
        let zeros = vec![0u32; d.netlist().num_cells()];
        puffer_legal::check_legal(&d, &r.placement, &zeros).unwrap();
    }

    #[test]
    fn routability_optimizer_actually_runs() {
        let d = design();
        let r = PufferPlacer::new(quick_config()).place(&d).unwrap();
        assert!(
            r.pad_rounds > 0,
            "padding rounds should trigger on a congested design"
        );
    }

    #[test]
    fn traced_flow_emits_stage_spans_and_records() {
        let d = design();
        let path = tmp_dir("trace").join("metrics.jsonl");
        let trace = Trace::with_sink(&path).unwrap();
        let r = PufferPlacer::new(quick_config())
            .with_trace(trace.clone())
            .place(&d)
            .unwrap();
        trace.flush().unwrap();

        // Stage spans: init, gp (with nested pad rounds), legal.
        let spans = trace.span_stats();
        let span = |label: &str| {
            spans
                .iter()
                .find(|(l, _)| l == label)
                .unwrap_or_else(|| panic!("missing span {label:?}"))
                .1
        };
        for stage in ["init", "gp", "legal"] {
            span(stage);
        }
        assert_eq!(span("gp/pad").count, r.pad_rounds as u64);

        // The sink holds one place.iter per GP iteration plus the stage
        // records from the optimizer and the final flow.done.
        let records = puffer_trace::read_jsonl(&path).unwrap();
        let iters = records.iter().filter(|r| r.kind() == Some("place.iter"));
        assert_eq!(iters.count(), r.gp_iterations);
        let pads = records.iter().filter(|r| r.kind() == Some("pad.round"));
        assert_eq!(pads.count(), r.pad_rounds);
        let done = records
            .iter()
            .find(|r| r.kind() == Some("flow.done"))
            .expect("flow.done record");
        assert_eq!(done.num("gp_iterations"), Some(r.gp_iterations as f64));
        assert!(done.num("runtime_s").unwrap() > 0.0);

        // Trace must not perturb the flow itself.
        let plain = PufferPlacer::new(quick_config()).place(&d).unwrap();
        assert_eq!(plain.placement, r.placement);
    }

    #[test]
    fn padding_inheritance_toggle() {
        let d = design();
        let with = PufferPlacer::new(quick_config()).place(&d).unwrap();
        let mut cfg = quick_config();
        cfg.inherit_padding = false;
        let without = PufferPlacer::new(cfg).place(&d).unwrap();
        // Same global placement (same seed/config), different legalization.
        assert_eq!(with.gp_iterations, without.gp_iterations);
        assert!(with.placement != without.placement || with.hpwl == without.hpwl);
    }

    #[test]
    fn flow_is_deterministic() {
        let d = design();
        let a = PufferPlacer::new(quick_config()).place(&d).unwrap();
        let b = PufferPlacer::new(quick_config()).place(&d).unwrap();
        assert_eq!(a.hpwl, b.hpwl);
        assert_eq!(a.placement, b.placement);
    }

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("puffer-flow-tests").join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn checkpointing_does_not_perturb_the_flow() {
        let d = design();
        let placer = PufferPlacer::new(quick_config());
        let plain = placer.place(&d).unwrap();
        let policy = CheckpointPolicy {
            path: tmp_dir("noperturb").join("run.pj"),
            every: 30,
            keep_history: false,
        };
        let journaled = placer.place_with_checkpoints(&d, &policy).unwrap();
        assert_eq!(plain.placement, journaled.placement);
        assert_eq!(plain.hpwl, journaled.hpwl);
        assert!(policy.path.exists(), "final checkpoint should be on disk");
    }

    #[test]
    fn kill_then_resume_reproduces_the_uninterrupted_run() {
        let d = design();
        let placer = PufferPlacer::new(quick_config());
        let uninterrupted = placer.place(&d).unwrap();

        // keep_history preserves each mid-loop journal, so any of them is
        // exactly what a kill right after that write would have left behind.
        let dir = tmp_dir("resume");
        let policy = CheckpointPolicy {
            path: dir.join("run.pj"),
            every: 40,
            keep_history: true,
        };
        placer.place_with_checkpoints(&d, &policy).unwrap();
        let mid = dir.join("run.pj.iter000040");
        assert!(mid.exists(), "mid-loop checkpoint missing");

        let resumed = placer.resume(&d, &mid).unwrap();
        assert_eq!(uninterrupted.placement, resumed.placement);
        assert_eq!(uninterrupted.global_placement, resumed.global_placement);
        assert_eq!(uninterrupted.hpwl, resumed.hpwl);
        assert_eq!(uninterrupted.gp_iterations, resumed.gp_iterations);
        assert_eq!(uninterrupted.pad_rounds, resumed.pad_rounds);
    }

    #[test]
    fn resume_from_completed_journal_skips_global_placement() {
        let d = design();
        let placer = PufferPlacer::new(quick_config());
        let dir = tmp_dir("done");
        let policy = CheckpointPolicy::new(dir.join("run.pj"));
        let full = placer.place_with_checkpoints(&d, &policy).unwrap();
        let resumed = placer.resume(&d, &policy.path).unwrap();
        assert_eq!(full.placement, resumed.placement);
        assert_eq!(full.gp_iterations, resumed.gp_iterations);
    }

    #[test]
    fn resume_rejects_a_mismatched_design() {
        let d = design();
        let other = generate(&GeneratorConfig {
            num_cells: 50,
            num_nets: 60,
            ..GeneratorConfig::default()
        })
        .unwrap();
        let placer = PufferPlacer::new(quick_config());
        let dir = tmp_dir("mismatch");
        let policy = CheckpointPolicy::new(dir.join("run.pj"));
        placer.place_with_checkpoints(&d, &policy).unwrap();
        let err = placer.resume(&other, &policy.path).unwrap_err();
        assert!(matches!(err, PufferError::Resume(_)), "{err}");
    }

    #[test]
    fn resume_rejects_a_mismatched_scale_class() {
        // The journal records the band the writing run resolved to; a
        // resume forced onto another band would continue the trajectory
        // under a differently-coarsened congestion grid, so it is refused.
        let d = design();
        let placer = PufferPlacer::new(quick_config());
        let dir = tmp_dir("scale-mismatch");
        let policy = CheckpointPolicy::new(dir.join("run.pj"));
        placer.place_with_checkpoints(&d, &policy).unwrap();
        let text = std::fs::read_to_string(&policy.path).unwrap();
        assert!(text.contains("scale_class small"), "{text}");
        let checkpoint = FlowCheckpoint::parse(&text).unwrap();
        let mut huge_cfg = quick_config();
        huge_cfg.scale_class = Some(crate::scale::ScaleClass::Huge);
        let err = PufferPlacer::new(huge_cfg)
            .place_from(&d, checkpoint, None)
            .unwrap_err();
        assert!(matches!(err, PufferError::Resume(_)), "{err}");
        assert!(err.to_string().contains("scale class"), "{err}");
    }

    #[test]
    fn expired_deadline_yields_cancelled_best_so_far() {
        use std::time::Duration;
        let d = design();
        let r = PufferPlacer::new(quick_config())
            .with_budget(puffer_budget::Budget::with_deadline(Duration::ZERO))
            .place(&d)
            .unwrap();
        assert!(r.cancelled, "expired budget must report cancellation");
        assert!(
            r.gp_iterations <= 2,
            "expired budget must break within one iteration's slack, ran {}",
            r.gp_iterations
        );
        // The best-so-far snapshot is still legalized.
        let zeros = vec![0u32; d.netlist().num_cells()];
        puffer_legal::check_legal(&d, &r.placement, &zeros).unwrap();
        assert!(r.hpwl.is_finite());
    }

    #[test]
    fn cancel_token_stops_the_flow_cleanly() {
        let d = design();
        let token = puffer_budget::CancelToken::new();
        token.cancel();
        let r = PufferPlacer::new(quick_config())
            .with_budget(puffer_budget::Budget::unbounded().with_token(token))
            .place(&d)
            .unwrap();
        assert!(r.cancelled);
        let zeros = vec![0u32; d.netlist().num_cells()];
        puffer_legal::check_legal(&d, &r.placement, &zeros).unwrap();
    }

    #[test]
    fn degradation_ladder_engages_in_order_and_is_journaled() {
        use std::time::Duration;
        let d = design();
        let dir = tmp_dir("ladder");
        let path = dir.join("metrics.jsonl");
        let trace = Trace::with_sink(&path).unwrap();
        let policy = CheckpointPolicy::new(dir.join("run.pj"));
        // An already-expired deadline drops fraction_remaining to 0, so
        // every rung engages on the first poll, in declared order.
        let r = PufferPlacer::new(quick_config())
            .with_budget(puffer_budget::Budget::with_deadline(Duration::ZERO))
            .with_ladder(puffer_budget::DegradationLadder::default())
            .with_trace(trace.clone())
            .place_with_checkpoints(&d, &policy)
            .unwrap();
        trace.flush().unwrap();
        assert_eq!(r.degradation, puffer_budget::DegradeStep::ALL.to_vec());
        assert!(r.cancelled);

        let records = puffer_trace::read_jsonl(&path).unwrap();
        let steps: Vec<String> = records
            .iter()
            .filter(|rec| rec.kind() == Some("flow.degrade"))
            .filter_map(|rec| rec.str_field("step").map(str::to_string))
            .collect();
        assert_eq!(
            steps,
            vec![
                "coarse-congestion".to_string(),
                "freeze-padding".to_string(),
                "cap-trials".to_string(),
                "early-exit-gp".to_string(),
            ]
        );

        // The final journal carries the engaged ladder position.
        let checkpoint = FlowCheckpoint::load(&policy.path).unwrap();
        assert_eq!(checkpoint.degradation, puffer_budget::DegradeStep::ALL.to_vec());
    }

    #[test]
    fn unbounded_budget_never_engages_the_ladder() {
        let d = design();
        let r = PufferPlacer::new(quick_config())
            .with_ladder(puffer_budget::DegradationLadder::default())
            .place(&d)
            .unwrap();
        assert!(r.degradation.is_empty());
        assert!(!r.cancelled);
    }

    #[cfg(feature = "chaos")]
    mod chaos {
        use super::*;
        use puffer_budget::{ChaosPlan, FaultClass, StallAction, StallWatchdog};
        use std::time::Duration;

        #[test]
        fn slow_stage_trips_watchdog_and_degrades() {
            let d = design();
            let dir = tmp_dir("chaos-slow");
            let path = dir.join("metrics.jsonl");
            let trace = Trace::with_sink(&path).unwrap();
            let r = PufferPlacer::new(quick_config())
                .with_watchdog(
                    StallWatchdog::new(Duration::from_millis(50))
                        .with_action(StallAction::Degrade),
                )
                .with_chaos(ChaosPlan {
                    class: FaultClass::SlowStage,
                    at: 5,
                    magnitude: 400,
                })
                .with_trace(trace.clone())
                .place(&d)
                .unwrap();
            trace.flush().unwrap();
            assert!(r.cancelled, "watchdog demotion must mark cancellation");
            let zeros = vec![0u32; d.netlist().num_cells()];
            puffer_legal::check_legal(&d, &r.placement, &zeros).unwrap();

            let records = puffer_trace::read_jsonl(&path).unwrap();
            let stall = records
                .iter()
                .find(|rec| rec.kind() == Some("watchdog.stall"))
                .expect("watchdog.stall record");
            assert_eq!(stall.str_field("stage"), Some("gp"));
            assert_eq!(stall.str_field("action"), Some("degrade"));
            assert!(stall.num("stalled_s").unwrap() >= 0.05);
            assert!(records
                .iter()
                .any(|rec| rec.kind() == Some("chaos.inject")
                    && rec.str_field("class") == Some("slow-stage")));
        }

        #[test]
        fn slow_stage_abort_checkpoints_then_errors() {
            let d = design();
            let dir = tmp_dir("chaos-abort");
            let policy = CheckpointPolicy::new(dir.join("run.pj"));
            let err = PufferPlacer::new(quick_config())
                .with_watchdog(
                    StallWatchdog::new(Duration::from_millis(50)).with_action(StallAction::Abort),
                )
                .with_chaos(ChaosPlan {
                    class: FaultClass::SlowStage,
                    at: 5,
                    magnitude: 400,
                })
                .place_with_checkpoints(&d, &policy)
                .unwrap_err();
            assert!(matches!(err, PufferError::Stalled(_)), "{err}");
            // Checkpoint-then-abort: the stalled state is resumable.
            let resumed = PufferPlacer::new(quick_config())
                .resume(&d, &policy.path)
                .unwrap();
            assert!(resumed.hpwl > 0.0);
        }

        #[test]
        fn nan_burst_is_recovered_by_the_sentinel() {
            let d = design();
            let r = PufferPlacer::new(quick_config())
                .with_chaos(ChaosPlan {
                    class: FaultClass::NanBurst,
                    at: 3,
                    magnitude: 25,
                })
                .place(&d)
                .unwrap();
            assert!(r.hpwl.is_finite());
            let zeros = vec![0u32; d.netlist().num_cells()];
            puffer_legal::check_legal(&d, &r.placement, &zeros).unwrap();
        }

        #[test]
        fn journal_write_failure_leaves_prior_journal_valid() {
            let d = design();
            let dir = tmp_dir("chaos-journal");
            let policy = CheckpointPolicy {
                path: dir.join("run.pj"),
                every: 2,
                keep_history: false,
            };
            let err = PufferPlacer::new(quick_config())
                .with_chaos(ChaosPlan {
                    class: FaultClass::JournalWrite,
                    at: 6,
                    magnitude: 1,
                })
                .place_with_checkpoints(&d, &policy)
                .unwrap_err();
            assert!(matches!(err, PufferError::Journal(_)), "{err}");
            // The injected half-record sits under the temp name; the last
            // committed journal is untouched, loads, and resumes.
            assert!(dir.join("run.pj.tmp").exists(), "half-record missing");
            FlowCheckpoint::load(&policy.path).unwrap();
            let resumed = PufferPlacer::new(quick_config())
                .resume(&d, &policy.path)
                .unwrap();
            let plain = PufferPlacer::new(quick_config()).place(&d).unwrap();
            assert_eq!(resumed.placement, plain.placement);
        }
    }

    #[test]
    fn resume_from_missing_or_corrupt_journal_is_a_journal_error() {
        let d = design();
        let placer = PufferPlacer::new(quick_config());
        let dir = tmp_dir("corrupt");
        let missing = placer.resume(&d, &dir.join("nope.pj")).unwrap_err();
        assert!(matches!(missing, PufferError::Journal(_)), "{missing}");
        let garbled = dir.join("garbled.pj");
        std::fs::write(&garbled, "puffer_checkpoint 1\ndesign oops\n").unwrap();
        let err = placer.resume(&d, &garbled).unwrap_err();
        assert!(matches!(err, PufferError::Journal(_)), "{err}");
    }
}
