//! A [`Job`]: one self-contained, `Send`-able unit of placement work.
//!
//! The one-shot CLI (`puffer place`) and the `puffer serve` daemon used to
//! assemble [`PufferPlacer`] + budget + trace + observer + checkpoint policy
//! independently; a `Job` bundles that assembly into a value that can be
//! built on one thread, shipped to a worker, and run there — the daemon's
//! worker pool and the CLI now share this single code path.
//!
//! A job owns:
//!
//! * its [`PufferConfig`] (placer/estimator/strategy/features),
//! * its [`Budget`] — the deadline clock starts when the budget is built,
//!   and the shared [`CancelToken`] is reachable via [`Job::cancel_token`]
//!   so a supervisor can cancel a running job from another thread,
//! * its [`Trace`] sink and optional [`StageObserver`], ladder, watchdog,
//! * an optional [`CheckpointPolicy`]; with one attached,
//!   [`Job::run_or_resume`] is crash recovery in a single call: resume from
//!   the journal when one exists (tolerating a torn tail), start fresh
//!   otherwise.

use crate::checkpoint::{CheckpointPolicy, FlowCheckpoint};
use crate::flow::{FlowResult, PufferConfig, PufferPlacer, StageObserver};
use crate::PufferError;
#[cfg(feature = "chaos")]
use puffer_budget::ChaosPlan;
use puffer_budget::{Budget, CancelToken, DegradationLadder, StallWatchdog};
use puffer_db::design::Design;
use puffer_trace::Trace;

/// A reusable, `Send`-able placement job (see the module docs).
#[derive(Debug, Clone)]
pub struct Job {
    config: PufferConfig,
    budget: Budget,
    trace: Trace,
    observer: Option<StageObserver>,
    ladder: Option<DegradationLadder>,
    watchdog: Option<StallWatchdog>,
    checkpoints: Option<CheckpointPolicy>,
    #[cfg(feature = "chaos")]
    chaos: Option<ChaosPlan>,
}

impl Job {
    /// A job with the given flow configuration, an unbounded budget, no
    /// telemetry, and no checkpointing.
    pub fn new(config: PufferConfig) -> Self {
        Job {
            config,
            budget: Budget::unbounded(),
            trace: Trace::disabled(),
            observer: None,
            ladder: None,
            watchdog: None,
            checkpoints: None,
            #[cfg(feature = "chaos")]
            chaos: None,
        }
    }

    /// Attaches an execution budget (deadline and/or cancel token),
    /// returning `self` for chaining.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches a telemetry sink, returning `self` for chaining.
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }

    /// Attaches a stage observer, returning `self` for chaining.
    pub fn with_observer(mut self, observer: StageObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Attaches a degradation ladder, returning `self` for chaining.
    pub fn with_ladder(mut self, ladder: DegradationLadder) -> Self {
        self.ladder = Some(ladder);
        self
    }

    /// Attaches a stall watchdog, returning `self` for chaining.
    pub fn with_watchdog(mut self, watchdog: StallWatchdog) -> Self {
        self.watchdog = Some(watchdog);
        self
    }

    /// Attaches a checkpoint policy, returning `self` for chaining. All run
    /// entry points then journal per the policy, and
    /// [`Job::run_or_resume`] resumes from its journal when one exists.
    pub fn with_checkpoints(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoints = Some(policy);
        self
    }

    /// Arms one deterministic fault injection (chaos-harness use only).
    #[cfg(feature = "chaos")]
    pub fn with_chaos(mut self, plan: ChaosPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// The flow configuration.
    pub fn config(&self) -> &PufferConfig {
        &self.config
    }

    /// The checkpoint policy, when one is attached.
    pub fn checkpoint_policy(&self) -> Option<&CheckpointPolicy> {
        self.checkpoints.as_ref()
    }

    /// A clone of the budget's shared cancel token: cancelling it stops
    /// this job cooperatively (checkpoint, legalize best-so-far, return)
    /// even while [`Job::run`] executes on another thread.
    pub fn cancel_token(&self) -> CancelToken {
        self.budget.token()
    }

    /// Assembles the underlying placer from the job's parts.
    fn placer(&self) -> PufferPlacer {
        let mut placer = PufferPlacer::new(self.config.clone())
            .with_trace(self.trace.clone())
            .with_budget(self.budget.clone());
        if let Some(observer) = &self.observer {
            placer = placer.with_observer(observer.clone());
        }
        if let Some(ladder) = &self.ladder {
            placer = placer.with_ladder(ladder.clone());
        }
        if let Some(watchdog) = &self.watchdog {
            placer = placer.with_watchdog(watchdog.clone());
        }
        #[cfg(feature = "chaos")]
        if let Some(plan) = self.chaos {
            placer = placer.with_chaos(plan);
        }
        placer
    }

    /// Runs the flow from scratch, journaling when a checkpoint policy is
    /// attached. Any existing journal at the policy path is overwritten.
    ///
    /// # Errors
    ///
    /// Everything [`PufferPlacer::place`] returns, plus
    /// [`PufferError::Journal`] when a checkpoint cannot be written.
    pub fn run(&self, design: &Design) -> Result<FlowResult, PufferError> {
        match &self.checkpoints {
            Some(policy) => self.placer().place_with_checkpoints(design, policy),
            None => self.placer().place(design),
        }
    }

    /// Runs the flow warm-started from an in-memory checkpoint, journaling
    /// per the attached policy (if any).
    ///
    /// # Errors
    ///
    /// [`PufferError::Resume`] when the checkpoint does not fit the design,
    /// plus everything [`Job::run`] returns.
    pub fn run_from(
        &self,
        design: &Design,
        checkpoint: FlowCheckpoint,
    ) -> Result<FlowResult, PufferError> {
        self.placer()
            .place_from(design, checkpoint, self.checkpoints.as_ref())
    }

    /// Crash recovery in one call: when a checkpoint policy is attached and
    /// its journal already exists, resume from the latest complete record
    /// in it (a torn tail from a crash mid-write is dropped with a
    /// `journal.recovered` trace record); otherwise run from scratch.
    ///
    /// This is what the serve daemon calls for every attempt of a job —
    /// attempt 1 starts fresh, and any retry or post-restart re-run picks
    /// up from the checkpoints the earlier attempt left behind.
    ///
    /// # Errors
    ///
    /// Everything [`Job::run`] returns, plus [`PufferError::Journal`] when
    /// an existing journal holds no complete record.
    pub fn run_or_resume(&self, design: &Design) -> Result<FlowResult, PufferError> {
        let Some(policy) = &self.checkpoints else {
            return self.run(design);
        };
        if !policy.path.exists() {
            return self.run(design);
        }
        let recovered =
            FlowCheckpoint::recover(&policy.path).map_err(|e| PufferError::Journal(e.to_string()))?;
        if recovered.dropped_torn_tail {
            self.trace
                .record("journal.recovered")
                .str("path", &policy.path.to_string_lossy())
                .int("records", recovered.records as i64)
                .int("torn_tail_dropped", 1)
                .write();
        }
        self.run_from(design, recovered.checkpoint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_gen::{generate, GeneratorConfig};

    fn design() -> Design {
        generate(&GeneratorConfig {
            num_cells: 300,
            num_nets: 330,
            num_macros: 1,
            utilization: 0.6,
            hotspot: 0.5,
            ..GeneratorConfig::default()
        })
        .unwrap()
    }

    fn quick_config() -> PufferConfig {
        let mut c = PufferConfig::default();
        c.placer.max_iters = 120;
        c.placer.stop_overflow = 0.15;
        c.strategy.max_rounds = 2;
        c
    }

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("puffer-job-tests").join(name);
        // Start clean: a journal left by a previous test run (of a possibly
        // different build) would otherwise be picked up by run_or_resume.
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn job_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Job>();
    }

    #[test]
    fn job_matches_the_direct_placer_path() {
        let d = design();
        let direct = PufferPlacer::new(quick_config()).place(&d).unwrap();
        let via_job = Job::new(quick_config()).run(&d).unwrap();
        assert_eq!(direct.placement, via_job.placement);
        assert_eq!(direct.hpwl, via_job.hpwl);
    }

    #[test]
    fn run_or_resume_starts_fresh_then_resumes() {
        let d = design();
        let dir = tmp_dir("resume");
        let uninterrupted = Job::new(quick_config()).run(&d).unwrap();

        // First call: no journal → fresh run, writing checkpoints.
        let policy = CheckpointPolicy {
            path: dir.join("run.pj"),
            every: 30,
            keep_history: true,
        };
        let job = Job::new(quick_config()).with_checkpoints(policy.clone());
        let fresh = job.run_or_resume(&d).unwrap();
        assert_eq!(fresh.placement, uninterrupted.placement);

        // Simulate a crash right after a mid-loop checkpoint: point a job
        // at that journal and let run_or_resume pick it up.
        let mid = dir.join("run.pj.iter000030");
        assert!(mid.exists(), "mid-loop checkpoint missing");
        let job = Job::new(quick_config()).with_checkpoints(CheckpointPolicy {
            path: mid.clone(),
            every: 30,
            keep_history: false,
        });
        let resumed = job.run_or_resume(&d).unwrap();
        assert_eq!(resumed.placement, uninterrupted.placement);
        assert_eq!(resumed.hpwl, uninterrupted.hpwl);
    }

    #[test]
    fn run_or_resume_tolerates_a_torn_journal_tail() {
        let d = design();
        let dir = tmp_dir("torn");
        let uninterrupted = Job::new(quick_config()).run(&d).unwrap();
        let policy = CheckpointPolicy {
            path: dir.join("run.pj"),
            every: 30,
            keep_history: true,
        };
        Job::new(quick_config())
            .with_checkpoints(policy)
            .run(&d)
            .unwrap();
        let mid = dir.join("run.pj.iter000030");
        // A crash mid-append: a complete record followed by half a record.
        let text = std::fs::read_to_string(&mid).unwrap();
        let mut torn = text.clone();
        torn.push_str(&text[..text.len() / 3]);
        std::fs::write(&mid, &torn).unwrap();
        let resumed = Job::new(quick_config())
            .with_checkpoints(CheckpointPolicy::new(&mid))
            .run_or_resume(&d)
            .unwrap();
        assert_eq!(resumed.placement, uninterrupted.placement);
    }

    #[test]
    fn cancel_token_stops_a_job_from_another_thread() {
        let d = design();
        let mut cfg = quick_config();
        cfg.placer.max_iters = 100_000;
        cfg.placer.stop_overflow = 0.0;
        let job = Job::new(cfg);
        let token = job.cancel_token();
        token.cancel();
        let r = job.run(&d).unwrap();
        assert!(r.cancelled, "pre-cancelled token must stop the run");
    }
}
