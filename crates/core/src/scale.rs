//! Size-aware strategy ladder.
//!
//! Million-cell designs cannot afford the same per-round effort as the
//! small academic benchmarks: a full-resolution congestion map and a wide
//! detailed-placement window dominate runtime long before quality stops
//! improving. The flow therefore classifies every design into a
//! [`ScaleClass`] by cell count and derives its strategy knobs from the
//! class — full resolution for small designs, a coarsened Gcell grid plus
//! a narrowed detailed-placement window for huge ones. The class is
//! resolved once at flow start (`auto` unless the caller forces one),
//! recorded in the `flow.init` trace record and the checkpoint journal,
//! and verified on resume so a journal written under one strategy is never
//! silently continued under another.

use std::fmt;
use std::str::FromStr;

/// The design-size band a run operates in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScaleClass {
    /// Below [`ScaleClass::MEDIUM_MIN_CELLS`] cells: full-resolution
    /// congestion estimation, default detailed-placement window.
    Small,
    /// The mid band: the congestion grid is coarsened 2x so the per-round
    /// RSMT/Gcell cost grows sublinearly with the design.
    Medium,
    /// At or above [`ScaleClass::HUGE_MIN_CELLS`] cells: 4x-coarsened
    /// congestion grid and a windowed (single-pass, narrow) detailed
    /// placement, the regime Table I's million-cell rows run in.
    Huge,
}

impl ScaleClass {
    /// First cell count that classifies as [`ScaleClass::Medium`].
    pub const MEDIUM_MIN_CELLS: usize = 100_000;
    /// First cell count that classifies as [`ScaleClass::Huge`].
    pub const HUGE_MIN_CELLS: usize = 800_000;

    /// All classes, smallest band first.
    pub const ALL: [ScaleClass; 3] = [ScaleClass::Small, ScaleClass::Medium, ScaleClass::Huge];

    /// Classifies a design by total cell count (the `auto` policy).
    ///
    /// ```
    /// use puffer::ScaleClass;
    /// assert_eq!(ScaleClass::classify(400), ScaleClass::Small);
    /// assert_eq!(ScaleClass::classify(100_000), ScaleClass::Medium);
    /// assert_eq!(ScaleClass::classify(1_200_000), ScaleClass::Huge);
    /// ```
    pub fn classify(num_cells: usize) -> ScaleClass {
        if num_cells >= ScaleClass::HUGE_MIN_CELLS {
            ScaleClass::Huge
        } else if num_cells >= ScaleClass::MEDIUM_MIN_CELLS {
            ScaleClass::Medium
        } else {
            ScaleClass::Small
        }
    }

    /// Factor by which the congestion estimator's Gcell grid is coarsened
    /// at flow init, or `None` to keep full resolution. Applied before the
    /// first congestion round so the whole run (and the audit's
    /// histogram-conservation check) sees one consistent baseline grid.
    pub fn congestion_coarsen_factor(self) -> Option<f64> {
        match self {
            ScaleClass::Small => None,
            ScaleClass::Medium => Some(2.0),
            ScaleClass::Huge => Some(4.0),
        }
    }

    /// Detailed-placement window (rows above/below considered per move)
    /// for this band. Huge designs search a single neighbouring row.
    pub fn dp_window(self) -> usize {
        match self {
            ScaleClass::Small | ScaleClass::Medium => 3,
            ScaleClass::Huge => 1,
        }
    }

    /// Detailed-placement pass count for this band.
    pub fn dp_passes(self) -> usize {
        match self {
            ScaleClass::Small => 3,
            ScaleClass::Medium => 2,
            ScaleClass::Huge => 1,
        }
    }

    /// Stable token used by the CLI flag, trace records, and the journal.
    pub fn as_str(self) -> &'static str {
        match self {
            ScaleClass::Small => "small",
            ScaleClass::Medium => "medium",
            ScaleClass::Huge => "huge",
        }
    }
}

impl fmt::Display for ScaleClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for ScaleClass {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "small" => Ok(ScaleClass::Small),
            "medium" => Ok(ScaleClass::Medium),
            "huge" => Ok(ScaleClass::Huge),
            other => Err(format!(
                "unknown scale class '{other}' (expected small, medium, or huge)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_partition_the_cell_count_axis() {
        assert_eq!(ScaleClass::classify(0), ScaleClass::Small);
        assert_eq!(
            ScaleClass::classify(ScaleClass::MEDIUM_MIN_CELLS - 1),
            ScaleClass::Small
        );
        assert_eq!(
            ScaleClass::classify(ScaleClass::MEDIUM_MIN_CELLS),
            ScaleClass::Medium
        );
        assert_eq!(
            ScaleClass::classify(ScaleClass::HUGE_MIN_CELLS - 1),
            ScaleClass::Medium
        );
        assert_eq!(
            ScaleClass::classify(ScaleClass::HUGE_MIN_CELLS),
            ScaleClass::Huge
        );
        assert_eq!(ScaleClass::classify(usize::MAX), ScaleClass::Huge);
    }

    #[test]
    fn tokens_round_trip() {
        for class in ScaleClass::ALL {
            assert_eq!(class.as_str().parse::<ScaleClass>().unwrap(), class);
            assert_eq!(class.to_string(), class.as_str());
        }
        assert!("gigantic".parse::<ScaleClass>().is_err());
    }

    #[test]
    fn strategy_knobs_tighten_monotonically() {
        assert_eq!(ScaleClass::Small.congestion_coarsen_factor(), None);
        assert_eq!(ScaleClass::Medium.congestion_coarsen_factor(), Some(2.0));
        assert_eq!(ScaleClass::Huge.congestion_coarsen_factor(), Some(4.0));
        assert!(ScaleClass::Huge.dp_window() <= ScaleClass::Small.dp_window());
        assert!(ScaleClass::Huge.dp_passes() <= ScaleClass::Small.dp_passes());
    }
}
