//! Evaluation reports in the shape of the paper's Table II.

use std::fmt;

/// One flow's evaluation on one benchmark: the four Table II columns.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Flow name (`Commercial_Ref`, `RePlAce-like`, `PUFFER`).
    pub flow: String,
    /// Horizontal overflow ratio in percent.
    pub hof_pct: f64,
    /// Vertical overflow ratio in percent.
    pub vof_pct: f64,
    /// Routed wirelength (database units).
    pub wirelength: f64,
    /// Runtime in seconds.
    pub runtime_s: f64,
}

impl EvalRow {
    /// The paper's 1% pass criterion, per direction.
    pub fn passes_h(&self) -> bool {
        self.hof_pct < 1.0
    }

    /// Vertical pass.
    pub fn passes_v(&self) -> bool {
        self.vof_pct < 1.0
    }
}

/// Aggregate of one flow over all benchmarks, averaged the way Table II
/// averages: HOF/VOF as plain means of the values ("since the values are
/// relatively small, we compared the average value instead of the average
/// ratio"), WL and RT as geometric-mean ratios against a reference flow.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSummary {
    /// Flow name.
    pub flow: String,
    /// Mean HOF(%).
    pub avg_hof: f64,
    /// Mean VOF(%).
    pub avg_vof: f64,
    /// Geometric-mean WL ratio vs the reference flow.
    pub wl_ratio: f64,
    /// Geometric-mean RT ratio vs the reference flow.
    pub rt_ratio: f64,
    /// Benchmarks passing the 1% HOF criterion.
    pub pass_h: usize,
    /// Benchmarks passing the 1% VOF criterion.
    pub pass_v: usize,
    /// Number of benchmarks.
    pub count: usize,
}

/// A Table II style comparison across flows and benchmarks.
#[derive(Debug, Clone, Default)]
pub struct ComparisonTable {
    rows: Vec<EvalRow>,
}

impl ComparisonTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one evaluation row.
    pub fn push(&mut self, row: EvalRow) {
        self.rows.push(row);
    }

    /// All rows.
    pub fn rows(&self) -> &[EvalRow] {
        &self.rows
    }

    /// Distinct flow names in insertion order.
    pub fn flows(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for r in &self.rows {
            if !out.contains(&r.flow) {
                out.push(r.flow.clone());
            }
        }
        out
    }

    /// Distinct benchmark names in insertion order.
    pub fn benchmarks(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for r in &self.rows {
            if !out.contains(&r.benchmark) {
                out.push(r.benchmark.clone());
            }
        }
        out
    }

    fn row(&self, flow: &str, benchmark: &str) -> Option<&EvalRow> {
        self.rows
            .iter()
            .find(|r| r.flow == flow && r.benchmark == benchmark)
    }

    /// Summarises a flow with WL/RT ratios normalized against
    /// `reference_flow` (the paper normalizes against PUFFER).
    pub fn summarize(&self, flow: &str, reference_flow: &str) -> Option<FlowSummary> {
        let benches = self.benchmarks();
        let mut rows = Vec::new();
        let mut wl_log = 0.0;
        let mut rt_log = 0.0;
        // WL and RT need separate counts: a row can contribute a valid
        // wirelength ratio while its runtime fails the `> 0.0` guard (or
        // vice versa), and sharing one count would bias the other ratio
        // toward 1.0 by averaging over contributions that never happened.
        let mut wl_count = 0usize;
        let mut rt_count = 0usize;
        for b in &benches {
            let Some(r) = self.row(flow, b) else { continue };
            rows.push(r);
            if let Some(base) = self.row(reference_flow, b) {
                if base.wirelength > 0.0 && r.wirelength > 0.0 {
                    wl_log += (r.wirelength / base.wirelength).ln();
                    wl_count += 1;
                }
                if base.runtime_s > 0.0 && r.runtime_s > 0.0 {
                    rt_log += (r.runtime_s / base.runtime_s).ln();
                    rt_count += 1;
                }
            }
        }
        if rows.is_empty() {
            return None;
        }
        let n = rows.len() as f64;
        Some(FlowSummary {
            flow: flow.to_string(),
            avg_hof: rows.iter().map(|r| r.hof_pct).sum::<f64>() / n,
            avg_vof: rows.iter().map(|r| r.vof_pct).sum::<f64>() / n,
            wl_ratio: (wl_log / wl_count.max(1) as f64).exp(),
            rt_ratio: (rt_log / rt_count.max(1) as f64).exp(),
            pass_h: rows.iter().filter(|r| r.passes_h()).count(),
            pass_v: rows.iter().filter(|r| r.passes_v()).count(),
            count: rows.len(),
        })
    }

    /// Renders the table in the paper's layout: one row per benchmark, one
    /// column group (HOF/VOF/WL/RT) per flow, then averages and pass counts.
    pub fn render(&self, reference_flow: &str) -> String {
        let flows = self.flows();
        let mut out = String::new();
        // Header.
        out.push_str(&format!("{:<18}", "Benchmark"));
        for f in &flows {
            out.push_str(&format!("| {:^41} ", f));
        }
        out.push('\n');
        out.push_str(&format!("{:<18}", ""));
        for _ in &flows {
            out.push_str(&format!(
                "| {:>7} {:>7} {:>14} {:>9} ",
                "HOF(%)", "VOF(%)", "WL", "RT(s)"
            ));
        }
        out.push('\n');
        for b in self.benchmarks() {
            out.push_str(&format!("{b:<18}"));
            for f in &flows {
                match self.row(f, &b) {
                    Some(r) => out.push_str(&format!(
                        "| {:>7.2} {:>7.2} {:>14.0} {:>9.1} ",
                        r.hof_pct, r.vof_pct, r.wirelength, r.runtime_s
                    )),
                    None => {
                        out.push_str(&format!("| {:>7} {:>7} {:>14} {:>9} ", "-", "-", "-", "-"))
                    }
                }
            }
            out.push('\n');
        }
        out.push_str(&format!("{:<18}", "Average"));
        for f in &flows {
            if let Some(s) = self.summarize(f, reference_flow) {
                out.push_str(&format!(
                    "| {:>7.3} {:>7.3} {:>14.3} {:>9.3} ",
                    s.avg_hof, s.avg_vof, s.wl_ratio, s.rt_ratio
                ));
            }
        }
        out.push('\n');
        out.push_str(&format!("{:<18}", "Pass Count"));
        for f in &flows {
            if let Some(s) = self.summarize(f, reference_flow) {
                out.push_str(&format!(
                    "| {:>7} {:>7} {:>14} {:>9} ",
                    s.pass_h, s.pass_v, "-", "-"
                ));
            }
        }
        out.push('\n');
        out
    }

    /// Serialises all rows as CSV.
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("benchmark,flow,hof_pct,vof_pct,wirelength,runtime_s,pass_h,pass_v\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{:.4},{:.4},{:.1},{:.3},{},{}\n",
                r.benchmark,
                r.flow,
                r.hof_pct,
                r.vof_pct,
                r.wirelength,
                r.runtime_s,
                r.passes_h(),
                r.passes_v()
            ));
        }
        out
    }
}

impl fmt::Display for ComparisonTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let flows = self.flows();
        let reference = flows.last().cloned().unwrap_or_default();
        write!(f, "{}", self.render(&reference))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(b: &str, f: &str, hof: f64, vof: f64, wl: f64, rt: f64) -> EvalRow {
        EvalRow {
            benchmark: b.into(),
            flow: f.into(),
            hof_pct: hof,
            vof_pct: vof,
            wirelength: wl,
            runtime_s: rt,
        }
    }

    fn table() -> ComparisonTable {
        let mut t = ComparisonTable::new();
        t.push(row("A", "ref", 0.5, 0.2, 100.0, 10.0));
        t.push(row("A", "puffer", 0.4, 0.1, 110.0, 5.0));
        t.push(row("B", "ref", 2.0, 0.0, 200.0, 20.0));
        t.push(row("B", "puffer", 0.9, 0.0, 190.0, 8.0));
        t
    }

    #[test]
    fn pass_criterion() {
        let r = row("A", "f", 0.99, 1.01, 1.0, 1.0);
        assert!(r.passes_h());
        assert!(!r.passes_v());
    }

    #[test]
    fn summary_averages_match_paper_semantics() {
        let t = table();
        let s = t.summarize("ref", "puffer").unwrap();
        assert!((s.avg_hof - 1.25).abs() < 1e-12);
        assert!((s.avg_vof - 0.1).abs() < 1e-12);
        // WL ratio: geomean(100/110, 200/190).
        let expect = ((100.0f64 / 110.0).ln() / 2.0 + (200.0f64 / 190.0).ln() / 2.0).exp();
        assert!((s.wl_ratio - expect).abs() < 1e-12);
        assert_eq!(s.pass_h, 1);
        assert_eq!(s.pass_v, 2);
        // RT ratio: ref is 2x and 2.5x slower.
        assert!(s.rt_ratio > 2.0);
    }

    #[test]
    fn reference_flow_ratio_is_one() {
        let t = table();
        let s = t.summarize("puffer", "puffer").unwrap();
        assert!((s.wl_ratio - 1.0).abs() < 1e-12);
        assert!((s.rt_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn render_contains_all_benchmarks_and_flows() {
        let t = table();
        let text = t.render("puffer");
        assert!(text.contains("Benchmark"));
        assert!(text.contains('A') && text.contains('B'));
        assert!(text.contains("ref") && text.contains("puffer"));
        assert!(text.contains("Pass Count"));
    }

    #[test]
    fn csv_round_shape() {
        let t = table();
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 5); // header + 4 rows
        assert!(csv.lines().nth(1).unwrap().starts_with("A,ref,"));
    }

    #[test]
    fn missing_flow_summary_is_none() {
        let t = table();
        assert!(t.summarize("ghost", "puffer").is_none());
    }

    #[test]
    fn zero_runtime_row_does_not_skew_rt_ratio() {
        // Benchmark B has no runtime measurement (0.0) but a valid
        // wirelength: it must contribute to the WL geomean only, and the RT
        // geomean must average over benchmark A alone.
        let mut t = ComparisonTable::new();
        t.push(row("A", "ref", 0.0, 0.0, 100.0, 10.0));
        t.push(row("A", "puffer", 0.0, 0.0, 100.0, 5.0));
        t.push(row("B", "ref", 0.0, 0.0, 200.0, 0.0));
        t.push(row("B", "puffer", 0.0, 0.0, 100.0, 8.0));
        let s = t.summarize("ref", "puffer").unwrap();
        // RT: only A counts, ratio 10/5 = 2.0 exactly (was sqrt(2) with the
        // shared count).
        assert!((s.rt_ratio - 2.0).abs() < 1e-12, "{}", s.rt_ratio);
        // WL: both benchmarks count, geomean(1.0, 2.0) = sqrt(2).
        assert!((s.wl_ratio - 2.0f64.sqrt()).abs() < 1e-12, "{}", s.wl_ratio);
    }

    #[test]
    fn zero_wirelength_row_does_not_skew_wl_ratio() {
        let mut t = ComparisonTable::new();
        t.push(row("A", "ref", 0.0, 0.0, 300.0, 10.0));
        t.push(row("A", "puffer", 0.0, 0.0, 100.0, 10.0));
        t.push(row("B", "ref", 0.0, 0.0, 0.0, 20.0));
        t.push(row("B", "puffer", 0.0, 0.0, 100.0, 10.0));
        let s = t.summarize("ref", "puffer").unwrap();
        // WL: only A counts, ratio exactly 3.0.
        assert!((s.wl_ratio - 3.0).abs() < 1e-12, "{}", s.wl_ratio);
        // RT: both count, geomean(1.0, 2.0) = sqrt(2).
        assert!((s.rt_ratio - 2.0f64.sqrt()).abs() < 1e-12, "{}", s.rt_ratio);
    }
}
