//! The two comparison flows of Table II, rebuilt on the shared engine.
//!
//! * [`ReferencePlacer`] — the stand-in for the commercial placer
//!   (`Commercial_Inn`): a high-effort router-in-the-loop flow. It calls
//!   the *full global router* on intermediate placements, derives uniform
//!   cell inflation from real routing overflow, and spends extra placement
//!   iterations. This is the classic industrial recipe (cf. paper §I refs
//!   \[8\]–\[11\]): strong routability and wirelength, longest runtime.
//! * [`ReplacePlacer`] — the RePlAce-style academic baseline: when density
//!   overflow first drops below a threshold, cells are inflated in bulk
//!   from a *local-only* congestion estimate (no detour imitation, no
//!   multi-features, no recycling, no utilization schedule), and the
//!   padding is **not** inherited by legalization.
//!
//! Both produce the same [`FlowResult`] as [`crate::PufferPlacer`], so the
//! Table II harness treats all three flows uniformly.

use crate::flow::FlowResult;
use crate::PufferError;
use puffer_congest::{CongestionEstimator, EstimatorConfig};
use puffer_db::design::Design;
use puffer_db::hpwl::total_hpwl;
use puffer_legal::{check_legal, legalize};
use puffer_place::{GlobalPlacer, PlacerConfig};
use puffer_route::{GlobalRouter, RouterConfig};
use puffer_budget::clock::Stopwatch;

/// Configuration of the commercial-style reference flow.
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceConfig {
    /// Engine settings (typically more iterations than PUFFER).
    pub placer: PlacerConfig,
    /// Router used in the loop (same family as the evaluator).
    pub router: RouterConfig,
    /// Density overflow below which router-in-the-loop analysis starts.
    pub analyze_below: f64,
    /// Iterations between router calls.
    pub analyze_every: usize,
    /// Maximum router-in-the-loop calls.
    pub max_analyses: usize,
    /// Inflation added per overflowed Gcell occupant, in cell widths.
    pub inflation_step: f64,
    /// Cap on per-cell inflation, in cell widths.
    pub max_inflation: f64,
}

impl Default for ReferenceConfig {
    fn default() -> Self {
        let placer = PlacerConfig {
            max_iters: 900, // high effort
            stop_overflow: 0.06,
            ..PlacerConfig::default()
        };
        ReferenceConfig {
            placer,
            router: RouterConfig::default(),
            analyze_below: 0.45,
            analyze_every: 25,
            max_analyses: 5,
            inflation_step: 0.6,
            max_inflation: 3.0,
        }
    }
}

/// The commercial-tool stand-in: router-in-the-loop inflation.
#[derive(Debug, Clone, Default)]
pub struct ReferencePlacer {
    config: ReferenceConfig,
}

impl ReferencePlacer {
    /// Creates the flow.
    pub fn new(config: ReferenceConfig) -> Self {
        ReferencePlacer { config }
    }

    /// Runs the flow.
    ///
    /// # Errors
    ///
    /// Returns [`PufferError`] under the same conditions as the PUFFER flow.
    pub fn place(&self, design: &Design) -> Result<FlowResult, PufferError> {
        let start = Stopwatch::start();
        let mut placer = GlobalPlacer::new(design, self.config.placer.clone())
            .map_err(|e| PufferError::Place(e.to_string()))?;
        let router = GlobalRouter::new(design, self.config.router.clone());
        let netlist = design.netlist();
        let mut inflation = vec![0.0f64; netlist.num_cells()];
        let mut analyses = 0usize;
        let mut since_analysis = 0usize;

        let mut last = placer.step();
        loop {
            since_analysis += 1;
            if last.overflow < self.config.analyze_below
                && analyses < self.config.max_analyses
                && since_analysis >= self.config.analyze_every
            {
                // The expensive part: a full global route of the snapshot.
                let snapshot = placer.placement().clone();
                let report = router.route(design, &snapshot);
                let map = &report.congestion;
                for (id, cell) in netlist.iter_cells() {
                    if !cell.is_movable() {
                        continue;
                    }
                    let (ix, iy) = map.h_capacity().cell_of(snapshot.pos(id));
                    let over = map.overflow_h(ix, iy) / map.h_capacity().at(ix, iy).max(1.0)
                        + map.overflow_v(ix, iy) / map.v_capacity().at(ix, iy).max(1.0);
                    if over > 0.0 {
                        let idx = id.index();
                        inflation[idx] = (inflation[idx]
                            + self.config.inflation_step * cell.width * over.min(1.0))
                        .min(self.config.max_inflation * cell.width);
                    }
                }
                placer.set_padding(inflation.clone());
                analyses += 1;
                since_analysis = 0;
            }
            if last.iter >= self.config.placer.max_iters
                || last.overflow <= self.config.placer.stop_overflow
            {
                break;
            }
            last = placer.step();
        }
        let global_placement = placer.placement().clone();

        // Commercial flows keep soft spacing via the legalizer's own
        // density handling; inflation is dropped at legalization but the
        // spreading it caused persists.
        let zeros = vec![0u32; netlist.num_cells()];
        let outcome = legalize(design, &global_placement, &zeros)
            .map_err(|e| PufferError::Legalize(e.to_string()))?;
        check_legal(design, &outcome.placement, &zeros)
            .map_err(|e| PufferError::Legalize(e.to_string()))?;

        Ok(FlowResult {
            hpwl: total_hpwl(netlist, &outcome.placement),
            placement: outcome.placement,
            global_placement,
            gp_iterations: placer.iterations(),
            pad_rounds: analyses,
            final_overflow: placer.overflow(),
            runtime_s: start.elapsed_secs(),
            avg_displacement: outcome.avg_displacement,
            degradation: Vec::new(),
            cancelled: false,
        })
    }
}

/// Configuration of the RePlAce-style baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplaceConfig {
    /// Engine settings.
    pub placer: PlacerConfig,
    /// Estimator used for inflation (detour imitation disabled to match
    /// RePlAce's simpler model).
    pub estimator: EstimatorConfig,
    /// Density overflow below which bulk inflation is applied.
    pub inflate_below: f64,
    /// Number of bulk inflation passes.
    pub max_inflations: usize,
    /// Iterations between inflation passes.
    pub inflate_every: usize,
    /// Inflation exponent: pad = width · (max(dmd/cap, 1) − 1)^γ style
    /// bounded growth.
    pub inflation_gain: f64,
    /// Cap on per-cell inflation, in cell widths.
    pub max_inflation: f64,
}

impl Default for ReplaceConfig {
    fn default() -> Self {
        // RePlAce's published density-penalty schedule is conservative; it
        // runs noticeably more iterations than a tuned flow for the same
        // stopping overflow (Table II: 1.4x PUFFER's runtime).
        let placer = PlacerConfig {
            max_iters: 900,
            stop_overflow: 0.07,
            lambda_growth: 1.025,
            ..PlacerConfig::default()
        };
        ReplaceConfig {
            placer,
            estimator: EstimatorConfig {
                expand_detours: false,
                ..EstimatorConfig::default()
            },
            inflate_below: 0.25,
            max_inflations: 3,
            inflate_every: 30,
            inflation_gain: 1.0,
            max_inflation: 2.5,
        }
    }
}

/// The RePlAce-style baseline: bulk local-congestion inflation.
#[derive(Debug, Clone, Default)]
pub struct ReplacePlacer {
    config: ReplaceConfig,
}

impl ReplacePlacer {
    /// Creates the flow.
    pub fn new(config: ReplaceConfig) -> Self {
        ReplacePlacer { config }
    }

    /// Runs the flow.
    ///
    /// # Errors
    ///
    /// Returns [`PufferError`] under the same conditions as the PUFFER flow.
    pub fn place(&self, design: &Design) -> Result<FlowResult, PufferError> {
        let start = Stopwatch::start();
        let mut placer = GlobalPlacer::new(design, self.config.placer.clone())
            .map_err(|e| PufferError::Place(e.to_string()))?;
        let estimator = CongestionEstimator::new(design, self.config.estimator.clone());
        let netlist = design.netlist();
        let mut inflation = vec![0.0f64; netlist.num_cells()];
        let mut passes = 0usize;
        let mut since = 0usize;

        let mut last = placer.step();
        loop {
            since += 1;
            if last.overflow < self.config.inflate_below
                && passes < self.config.max_inflations
                && since >= self.config.inflate_every
            {
                let snapshot = placer.placement().clone();
                let map = estimator.estimate(design, &snapshot);
                for (id, cell) in netlist.iter_cells() {
                    if !cell.is_movable() {
                        continue;
                    }
                    // Local congestion only: the cell's own Gcell.
                    let (ix, iy) = map.h_capacity().cell_of(snapshot.pos(id));
                    let cg = map.cg(ix, iy).max(0.0);
                    if cg > 0.0 {
                        let idx = id.index();
                        inflation[idx] = (inflation[idx]
                            + self.config.inflation_gain * cell.width * cg.min(1.5))
                        .min(self.config.max_inflation * cell.width);
                    }
                }
                placer.set_padding(inflation.clone());
                passes += 1;
                since = 0;
            }
            if last.iter >= self.config.placer.max_iters
                || last.overflow <= self.config.placer.stop_overflow
            {
                break;
            }
            last = placer.step();
        }
        let global_placement = placer.placement().clone();

        // RePlAce legalizes without padding inheritance.
        let zeros = vec![0u32; netlist.num_cells()];
        let outcome = legalize(design, &global_placement, &zeros)
            .map_err(|e| PufferError::Legalize(e.to_string()))?;
        check_legal(design, &outcome.placement, &zeros)
            .map_err(|e| PufferError::Legalize(e.to_string()))?;

        Ok(FlowResult {
            hpwl: total_hpwl(netlist, &outcome.placement),
            placement: outcome.placement,
            global_placement,
            gp_iterations: placer.iterations(),
            pad_rounds: passes,
            final_overflow: placer.overflow(),
            runtime_s: start.elapsed_secs(),
            avg_displacement: outcome.avg_displacement,
            degradation: Vec::new(),
            cancelled: false,
        })
    }
}

/// Configuration of the white-space-allocation strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct WsaConfig {
    /// Engine settings.
    pub placer: PlacerConfig,
    /// Estimator for locating congested regions.
    pub estimator: EstimatorConfig,
    /// Density overflow below which allocation passes start.
    pub allocate_below: f64,
    /// Iterations between allocation passes.
    pub allocate_every: usize,
    /// Maximum allocation passes.
    pub max_allocations: usize,
    /// Virtual charge per bin, as a fraction of the bin area per unit of
    /// combined congestion (Eq. (10) value, clamped at 0).
    pub charge_gain: f64,
    /// Cap on virtual charge per bin, as a fraction of the bin area.
    pub max_charge: f64,
}

impl Default for WsaConfig {
    fn default() -> Self {
        let placer = PlacerConfig {
            max_iters: 800,
            stop_overflow: 0.07,
            ..PlacerConfig::default()
        };
        WsaConfig {
            placer,
            estimator: EstimatorConfig::default(),
            allocate_below: 0.30,
            allocate_every: 30,
            max_allocations: 3,
            charge_gain: 0.5,
            max_charge: 0.6,
        }
    }
}

/// The white-space-allocation strategy (paper §I refs \[10\]–\[11\]): an
/// *optional strategy* beyond the three Table II flows. Instead of padding
/// cells, virtual static charge is injected into congested bins of the
/// electrostatic system, so the placer itself allocates white space there.
#[derive(Debug, Clone, Default)]
pub struct WsaPlacer {
    config: WsaConfig,
}

impl WsaPlacer {
    /// Creates the flow.
    pub fn new(config: WsaConfig) -> Self {
        WsaPlacer { config }
    }

    /// Runs the flow.
    ///
    /// # Errors
    ///
    /// Returns [`PufferError`] under the same conditions as the PUFFER flow.
    pub fn place(&self, design: &Design) -> Result<FlowResult, PufferError> {
        use puffer_db::grid::Grid;
        let start = Stopwatch::start();
        let mut placer = GlobalPlacer::new(design, self.config.placer.clone())
            .map_err(|e| PufferError::Place(e.to_string()))?;
        let estimator = CongestionEstimator::new(design, self.config.estimator.clone());
        let netlist = design.netlist();
        let (mx, my) = placer.density_dims();
        let region = design.region();
        let bin_area = region.area() / (mx as f64 * my as f64);
        let mut charge: Grid<f64> = Grid::new(region, mx, my);
        let mut passes = 0usize;
        let mut since = 0usize;

        let mut last = placer.step();
        loop {
            since += 1;
            if last.overflow < self.config.allocate_below
                && passes < self.config.max_allocations
                && since >= self.config.allocate_every
            {
                let snapshot = placer.placement().clone();
                let map = estimator.estimate(design, &snapshot);
                // Accumulate virtual charge where the estimator sees
                // overflow; the charge map lives on the density bin grid,
                // sampled from the Gcell-space congestion.
                for iy in 0..my {
                    for ix in 0..mx {
                        let bin_center = charge.cell_rect(ix, iy).center();
                        let (gx, gy) = map.h_capacity().cell_of(bin_center);
                        let cg = map.cg(gx, gy).max(0.0);
                        if cg > 0.0 {
                            let c = charge.at_mut(ix, iy);
                            *c = (*c + self.config.charge_gain * cg * bin_area)
                                .min(self.config.max_charge * bin_area);
                        }
                    }
                }
                placer.set_extra_charge(charge.clone());
                passes += 1;
                since = 0;
            }
            if last.iter >= self.config.placer.max_iters
                || last.overflow <= self.config.placer.stop_overflow
            {
                break;
            }
            last = placer.step();
        }
        let global_placement = placer.placement().clone();
        let zeros = vec![0u32; netlist.num_cells()];
        let outcome = legalize(design, &global_placement, &zeros)
            .map_err(|e| PufferError::Legalize(e.to_string()))?;
        check_legal(design, &outcome.placement, &zeros)
            .map_err(|e| PufferError::Legalize(e.to_string()))?;

        Ok(FlowResult {
            hpwl: total_hpwl(netlist, &outcome.placement),
            placement: outcome.placement,
            global_placement,
            gp_iterations: placer.iterations(),
            pad_rounds: passes,
            final_overflow: placer.overflow(),
            runtime_s: start.elapsed_secs(),
            avg_displacement: outcome.avg_displacement,
            degradation: Vec::new(),
            cancelled: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_gen::{generate, GeneratorConfig};

    fn design() -> Design {
        generate(&GeneratorConfig {
            num_cells: 350,
            num_nets: 380,
            num_macros: 1,
            utilization: 0.6,
            hotspot: 0.4,
            ..GeneratorConfig::default()
        })
        .unwrap()
    }

    fn quick<T: Clone>(mut placer: PlacerConfig, f: impl FnOnce(PlacerConfig) -> T) -> T {
        placer.max_iters = 50;
        placer.stop_overflow = 0.15;
        f(placer)
    }

    #[test]
    fn reference_flow_runs_and_is_legal() {
        let d = design();
        let cfg = quick(PlacerConfig::default(), |placer| ReferenceConfig {
            placer,
            analyze_every: 10,
            max_analyses: 1,
            ..ReferenceConfig::default()
        });
        let r = ReferencePlacer::new(cfg).place(&d).unwrap();
        let zeros = vec![0u32; d.netlist().num_cells()];
        puffer_legal::check_legal(&d, &r.placement, &zeros).unwrap();
        assert!(r.hpwl > 0.0);
    }

    #[test]
    fn replace_flow_runs_and_inflates() {
        let d = design();
        let cfg = quick(PlacerConfig::default(), |placer| ReplaceConfig {
            placer,
            inflate_every: 8,
            inflate_below: 0.9,
            ..ReplaceConfig::default()
        });
        let r = ReplacePlacer::new(cfg).place(&d).unwrap();
        assert!(r.pad_rounds >= 1, "bulk inflation should fire");
        let zeros = vec![0u32; d.netlist().num_cells()];
        puffer_legal::check_legal(&d, &r.placement, &zeros).unwrap();
    }

    #[test]
    fn wsa_flow_runs_allocates_and_is_legal() {
        let d = design();
        let cfg = quick(PlacerConfig::default(), |placer| WsaConfig {
            placer,
            allocate_every: 8,
            allocate_below: 0.9,
            ..WsaConfig::default()
        });
        let r = WsaPlacer::new(cfg).place(&d).unwrap();
        assert!(r.pad_rounds >= 1, "allocation passes should fire");
        let zeros = vec![0u32; d.netlist().num_cells()];
        puffer_legal::check_legal(&d, &r.placement, &zeros).unwrap();
    }

    #[test]
    fn default_efforts_are_ordered() {
        // The reference flow must be configured as the most expensive one
        // (the commercial stand-in is the slowest flow in Table II).
        let reference = ReferenceConfig::default();
        assert!(reference.placer.max_iters > PlacerConfig::default().max_iters);
        assert!(reference.placer.stop_overflow <= PlacerConfig::default().stop_overflow);
        assert!(
            reference.max_analyses >= 1,
            "router-in-the-loop is its defining cost"
        );
    }
}
