//! On-disk flow checkpoints: a versioned plain-text journal that lets a
//! killed `PufferPlacer::place` run continue where it stopped.
//!
//! The journal captures everything the flow mutates: the placer snapshot
//! ([`puffer_place::PlacerSnapshot`] — placement, padding, λ, iteration
//! counter, Nesterov solver vectors) plus the routability optimizer's
//! [`puffer_pad::PaddingState`]. Rust's `f64` formatting round-trips
//! exactly, so a resumed flow continues the original trajectory
//! bit-for-bit; kill-then-resume reproduces the same final placement as an
//! uninterrupted run (see the flow tests).
//!
//! The format is deliberately line-based text in the spirit of
//! [`puffer_db::io`] — greppable, diffable, and dependency-free:
//!
//! ```text
//! puffer_checkpoint 1
//! design <num_cells> <name>
//! stage global | global_done
//! iter <n>
//! lambda <f> ... (scalar placer state)
//! cell <i> <x> <y> <engine_pad> <history_pad> <pad_rounds>
//! opt_scalars <a> <alpha>        (present only when the solver was live)
//! opt_u <2n floats> ...          (solver vectors, one line each)
//! degradation <step,step,...>    (present only when the ladder engaged)
//! pending_round 1                (present only when a cancellation
//!                                 suppressed this pass's padding round)
//! scale_class <small|medium|huge> (band the run resolved to; absent in
//!                                 journals from earlier builds)
//! end
//! ```
//!
//! Writes are atomic (temp file + fsync + rename), so a crash mid-write —
//! or even right after the rename — leaves a complete journal on disk, and
//! the trailing `end` marker detects files truncated by a crash mid-copy.

use crate::scale::ScaleClass;
use puffer_budget::{fsx, DegradeStep};
use puffer_db::design::{Design, Placement};
use puffer_pad::PaddingState;
use puffer_place::{NesterovState, PlacerSnapshot};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Journal format version written by this build.
pub const JOURNAL_VERSION: u32 = 1;

/// Why a journal could not be written, read, or applied.
#[derive(Debug)]
pub enum JournalError {
    /// Reading or writing the journal file failed.
    Io(std::io::Error),
    /// The journal text is malformed, truncated, or a different version.
    Parse {
        /// 1-based line of the offending text (0 for whole-file problems).
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The journal is well-formed but does not belong to this design.
    Mismatch(String),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal i/o error: {e}"),
            JournalError::Parse { line, message } => {
                write!(f, "journal parse error at line {line}: {message}")
            }
            JournalError::Mismatch(m) => write!(f, "journal/design mismatch: {m}"),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Where in the flow a checkpoint was taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowStage {
    /// Inside the global-placement loop; resuming re-enters the loop.
    GlobalPlace,
    /// Global placement finished; resuming goes straight to legalization.
    GlobalDone,
}

impl FlowStage {
    fn token(self) -> &'static str {
        match self {
            FlowStage::GlobalPlace => "global",
            FlowStage::GlobalDone => "global_done",
        }
    }

    fn from_token(s: &str) -> Option<Self> {
        match s {
            "global" => Some(FlowStage::GlobalPlace),
            "global_done" => Some(FlowStage::GlobalDone),
            _ => None,
        }
    }
}

/// When and where the flow writes checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Journal file; each write atomically replaces the previous one.
    pub path: PathBuf,
    /// Global-placement iterations between journal writes; `0` writes only
    /// the final (post-loop) checkpoint.
    pub every: usize,
    /// Keep every mid-loop checkpoint as `<path>.iter<NNNNNN>` instead of
    /// overwriting `path` (the final checkpoint still lands on `path`).
    /// Useful for post-mortems and for testing resume-from-the-middle.
    pub keep_history: bool,
}

impl CheckpointPolicy {
    /// A policy writing to `path` every 25 iterations, no history.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointPolicy {
            path: path.into(),
            every: 25,
            keep_history: false,
        }
    }

    /// Whether a mid-loop checkpoint is due at `iter`.
    pub(crate) fn due(&self, iter: usize) -> bool {
        self.every > 0 && iter > 0 && iter.is_multiple_of(self.every)
    }

    /// The file a checkpoint at `stage`/`iter` goes to.
    pub(crate) fn file_for(&self, stage: FlowStage, iter: usize) -> PathBuf {
        if self.keep_history && stage == FlowStage::GlobalPlace {
            let name = self
                .path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| "checkpoint".to_string());
            self.path.with_file_name(format!("{name}.iter{iter:06}"))
        } else {
            self.path.clone()
        }
    }
}

/// A resumable snapshot of the PUFFER flow.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowCheckpoint {
    /// Name of the design the checkpoint belongs to.
    pub design_name: String,
    /// Total cell count (movable + fixed) of that design.
    pub num_cells: usize,
    /// Flow stage at capture time.
    pub stage: FlowStage,
    /// Global placer state (placement, padding, λ, solver).
    pub placer: PlacerSnapshot,
    /// Routability-optimizer padding history.
    pub pad: PaddingState,
    /// Degradation-ladder rungs engaged before this checkpoint (in
    /// engagement order). A resumed run re-applies them so its fidelity
    /// matches the run that wrote the journal.
    pub degradation: Vec<DegradeStep>,
    /// Whether the checkpointed pass's padding round was *suppressed* by a
    /// cooperative cancellation (an exhausted budget skips the pad round on
    /// its way out of the loop). A resumed run must then re-evaluate the
    /// pad trigger at this iteration before stepping, so that resuming an
    /// interrupted run reproduces the uninterrupted trajectory exactly.
    /// Absent from journals written by earlier builds (defaults to false).
    pub pending_round: bool,
    /// Size band ([`ScaleClass`]) the run that wrote the journal resolved
    /// to. A resumed run must resolve to the same band (the coarsened
    /// congestion grid is part of the recorded trajectory). `None` in
    /// journals written by earlier builds, which skips the resume check.
    pub scale_class: Option<ScaleClass>,
}

impl FlowCheckpoint {
    /// Bundles the flow's mutable state into a checkpoint.
    pub fn capture(
        design: &Design,
        stage: FlowStage,
        placer: PlacerSnapshot,
        pad: PaddingState,
    ) -> Self {
        FlowCheckpoint {
            design_name: design.name().to_string(),
            num_cells: design.netlist().num_cells(),
            stage,
            placer,
            pad,
            degradation: Vec::new(),
            pending_round: false,
            scale_class: None,
        }
    }

    /// Records the degradation-ladder rungs engaged at capture time.
    pub fn with_degradation(mut self, steps: Vec<DegradeStep>) -> Self {
        self.degradation = steps;
        self
    }

    /// Records that a cancellation suppressed the checkpointed pass's
    /// padding round (see the field docs).
    pub fn with_pending_round(mut self, pending: bool) -> Self {
        self.pending_round = pending;
        self
    }

    /// Records the scale class the run resolved to (see the field docs).
    pub fn with_scale_class(mut self, class: Option<ScaleClass>) -> Self {
        self.scale_class = class;
        self
    }

    /// Checks that the checkpoint belongs to `design` (same cell count;
    /// the name is advisory and only mismatched counts are fatal — deeper
    /// shape validation happens in [`puffer_place::GlobalPlacer::restore`]).
    ///
    /// # Errors
    ///
    /// [`JournalError::Mismatch`] when the cell counts differ.
    pub fn matches(&self, design: &Design) -> Result<(), JournalError> {
        let n = design.netlist().num_cells();
        if self.num_cells != n {
            return Err(JournalError::Mismatch(format!(
                "checkpoint of '{}' has {} cells, design '{}' has {n}",
                self.design_name,
                self.num_cells,
                design.name()
            )));
        }
        if self.placer.placement.len() != n
            || self.placer.padding.len() != n
            || self.pad.pad.len() != n
            || self.pad.pad_count.len() != n
        {
            return Err(JournalError::Mismatch(
                "checkpoint vectors disagree with its own cell count".into(),
            ));
        }
        Ok(())
    }

    /// Serializes the checkpoint to its journal text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "puffer_checkpoint {JOURNAL_VERSION}");
        let _ = writeln!(out, "design {} {}", self.num_cells, self.design_name);
        let _ = writeln!(out, "stage {}", self.stage.token());
        let _ = writeln!(out, "iter {}", self.placer.iter);
        let _ = writeln!(out, "lambda {:?}", self.placer.lambda);
        let _ = writeln!(out, "overflow {:?}", self.placer.last_overflow);
        let _ = writeln!(out, "step_scale {:?}", self.placer.step_scale);
        let _ = writeln!(out, "recoveries {}", self.placer.recoveries);
        let _ = writeln!(out, "pad_round {}", self.pad.round);
        let _ = writeln!(out, "pad_util {:?}", self.pad.last_utilization);
        let (xs, ys) = (self.placer.placement.xs(), self.placer.placement.ys());
        for i in 0..self.num_cells {
            let _ = writeln!(
                out,
                "cell {i} {:?} {:?} {:?} {:?} {}",
                xs[i], ys[i], self.placer.padding[i], self.pad.pad[i], self.pad.pad_count[i]
            );
        }
        if let Some(opt) = &self.placer.opt {
            let _ = writeln!(out, "opt_scalars {:?} {:?}", opt.a, opt.alpha);
            for (tag, v) in [
                ("opt_u", &opt.u),
                ("opt_v", &opt.v),
                ("opt_vp", &opt.v_prev),
                ("opt_gp", &opt.g_prev),
            ] {
                out.push_str(tag);
                for x in v {
                    let _ = write!(out, " {x:?}");
                }
                out.push('\n');
            }
        }
        if !self.degradation.is_empty() {
            let list: Vec<&str> = self.degradation.iter().map(|s| s.as_str()).collect();
            let _ = writeln!(out, "degradation {}", list.join(","));
        }
        if self.pending_round {
            let _ = writeln!(out, "pending_round 1");
        }
        if let Some(class) = self.scale_class {
            let _ = writeln!(out, "scale_class {}", class.as_str());
        }
        out.push_str("end\n");
        out
    }

    /// Atomically writes the journal via [`fsx::atomic_write`]: the text
    /// goes to a sibling temp file which is fsynced and then renamed over
    /// `path` (with a parent-directory fsync to commit the rename). The
    /// sync-before-rename ordering matters: without it a crash (or power
    /// cut) shortly after the rename could persist the new name pointing at
    /// not-yet-flushed data, replacing a good journal with a truncated one.
    /// With it, a crash at any point leaves either the complete previous
    /// journal or the complete new one — never a half-record that happens
    /// to parse.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the filesystem refuses.
    pub fn save(&self, path: &Path) -> Result<(), JournalError> {
        fsx::atomic_write(path, self.render().as_bytes()).map_err(JournalError::Io)
    }

    /// Appends this checkpoint as an additional record to a multi-record
    /// journal at `path` (creating the file if absent), fsyncing afterwards
    /// (see [`fsx::append_record`]).
    ///
    /// Unlike [`FlowCheckpoint::save`], an append is *not* atomic: a crash
    /// mid-append leaves a torn final record. That is by design — the torn
    /// tail is exactly what [`FlowCheckpoint::recover`] tolerates, and the
    /// complete records before it stay intact without rewriting the file.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the filesystem refuses.
    pub fn append(&self, path: &Path) -> Result<(), JournalError> {
        fsx::append_record(path, self.render().as_bytes()).map_err(JournalError::Io)
    }

    /// Reads a journal file.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the file cannot be read and
    /// [`JournalError::Parse`] for malformed or truncated text.
    pub fn load(path: &Path) -> Result<Self, JournalError> {
        let text = std::fs::read_to_string(path).map_err(JournalError::Io)?;
        Self::parse(&text)
    }

    /// Reads a journal file, tolerating a torn (partially written) final
    /// record: the journal is split into records at `end` markers, every
    /// complete record is parsed strictly, the latest one wins, and any
    /// trailing bytes after the last `end` are dropped and reported via
    /// [`Recovered::dropped_torn_tail`] so callers can warn.
    ///
    /// This is the resume-side contract for both journal shapes: a
    /// [`FlowCheckpoint::save`] journal is one complete record (recovery is
    /// then identical to [`FlowCheckpoint::load`]), while an
    /// [`FlowCheckpoint::append`] journal may end in a record a crash cut
    /// short. Corruption *inside* a complete record is still an error —
    /// only truncation at the tail is forgiven.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the file cannot be read,
    /// [`JournalError::Parse`] when a complete record is malformed or when
    /// not a single complete record exists (nothing to resume from).
    pub fn recover(path: &Path) -> Result<Recovered, JournalError> {
        let text = std::fs::read_to_string(path).map_err(JournalError::Io)?;
        Self::recover_text(&text)
    }

    /// [`FlowCheckpoint::recover`] over in-memory journal text.
    ///
    /// # Errors
    ///
    /// See [`FlowCheckpoint::recover`].
    pub fn recover_text(text: &str) -> Result<Recovered, JournalError> {
        // The shared torn-tail rule: anything after the last complete
        // record — even a lone "end" missing its newline — is dropped.
        let journal = fsx::Journal::from_text(text, fsx::RecordShape::EndMarker("end"));
        let Some(last) = journal.last() else {
            return Err(JournalError::Parse {
                line: 0,
                message: "no complete checkpoint record (journal truncated before its first \
                          'end' marker)"
                    .into(),
            });
        };
        let checkpoint = Self::parse(last)?;
        Ok(Recovered {
            checkpoint,
            records: journal.len(),
            dropped_torn_tail: journal.dropped_torn_tail(),
        })
    }

    /// Parses journal text (see the module docs for the format).
    ///
    /// # Errors
    ///
    /// [`JournalError::Parse`] with the offending line number.
    pub fn parse(text: &str) -> Result<Self, JournalError> {
        let mut p = Parser::new(text);

        let (version,) = p.line1::<usize>("puffer_checkpoint")?;
        if version != JOURNAL_VERSION as usize {
            return Err(p.err(format!(
                "unsupported journal version {version} (this build reads {JOURNAL_VERSION})"
            )));
        }
        let (num_cells, design_name) = p.line_count_rest("design")?;
        let stage_token = p.line_rest("stage")?;
        let stage = FlowStage::from_token(stage_token.trim())
            .ok_or_else(|| p.err(format!("unknown stage '{stage_token}'")))?;
        let (iter,) = p.line1::<usize>("iter")?;
        let lambda = p.line_f64("lambda")?;
        let last_overflow = p.line_f64("overflow")?;
        let step_scale = p.line_f64("step_scale")?;
        let (recoveries,) = p.line1::<usize>("recoveries")?;
        let (pad_round,) = p.line1::<usize>("pad_round")?;
        let pad_util = p.line_f64("pad_util")?;

        let mut xs = Vec::with_capacity(num_cells);
        let mut ys = Vec::with_capacity(num_cells);
        let mut epad = Vec::with_capacity(num_cells);
        let mut hpad = Vec::with_capacity(num_cells);
        let mut counts = Vec::with_capacity(num_cells);
        for i in 0..num_cells {
            let fields = p.line_fields("cell")?;
            if fields.len() != 6 {
                return Err(p.err(format!("cell line needs 6 fields, got {}", fields.len())));
            }
            let idx: usize = p.parse_field(fields[0])?;
            if idx != i {
                return Err(p.err(format!("cell index {idx}, expected {i} (journal reordered?)")));
            }
            xs.push(p.parse_field::<f64>(fields[1])?);
            ys.push(p.parse_field::<f64>(fields[2])?);
            epad.push(p.parse_field::<f64>(fields[3])?);
            hpad.push(p.parse_field::<f64>(fields[4])?);
            counts.push(p.parse_field::<u32>(fields[5])?);
        }

        let opt = if p.peek_tag() == Some("opt_scalars") {
            let fields = p.line_fields("opt_scalars")?;
            if fields.len() != 2 {
                return Err(p.err("opt_scalars needs 2 fields".into()));
            }
            let a: f64 = p.parse_field(fields[0])?;
            let alpha: f64 = p.parse_field(fields[1])?;
            let u = p.line_f64_vec("opt_u")?;
            let v = p.line_f64_vec("opt_v")?;
            let v_prev = p.line_f64_vec("opt_vp")?;
            let g_prev = p.line_f64_vec("opt_gp")?;
            if u.len() != v.len() || v.len() != v_prev.len() || v_prev.len() != g_prev.len() {
                return Err(p.err("optimizer vectors differ in length".into()));
            }
            Some(NesterovState {
                u,
                v,
                v_prev,
                g_prev,
                a,
                alpha,
            })
        } else {
            None
        };

        let degradation = if p.peek_tag() == Some("degradation") {
            let rest = p.line_rest("degradation")?.trim().to_string();
            let mut steps = Vec::new();
            for token in rest.split(',').filter(|t| !t.is_empty()) {
                steps.push(
                    token
                        .parse::<DegradeStep>()
                        .map_err(|e| p.err(format!("bad degradation step: {e}")))?,
                );
            }
            steps
        } else {
            Vec::new()
        };

        let pending_round = if p.peek_tag() == Some("pending_round") {
            let rest = p.line_rest("pending_round")?;
            match rest.trim() {
                "1" => true,
                "0" => false,
                other => return Err(p.err(format!("bad pending_round value '{other}'"))),
            }
        } else {
            false
        };

        let scale_class = if p.peek_tag() == Some("scale_class") {
            let rest = p.line_rest("scale_class")?;
            Some(
                rest.trim()
                    .parse::<ScaleClass>()
                    .map_err(|e| p.err(format!("bad scale_class: {e}")))?,
            )
        } else {
            None
        };

        let end = p.line_rest("end").map_err(|_| JournalError::Parse {
            line: p.line_no,
            message: "missing 'end' marker (journal truncated?)".into(),
        })?;
        if !end.trim().is_empty() {
            return Err(p.err("trailing text after 'end'".into()));
        }

        Ok(FlowCheckpoint {
            design_name,
            num_cells,
            stage,
            placer: PlacerSnapshot {
                placement: Placement::from_coords(xs, ys),
                padding: epad,
                lambda,
                iter,
                last_overflow,
                step_scale,
                recoveries,
                opt,
            },
            pad: PaddingState {
                pad: hpad,
                pad_count: counts,
                round: pad_round,
                last_utilization: pad_util,
            },
            degradation,
            pending_round,
            scale_class,
        })
    }
}

/// The outcome of a lenient journal read ([`FlowCheckpoint::recover`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Recovered {
    /// The latest complete checkpoint in the journal.
    pub checkpoint: FlowCheckpoint,
    /// How many complete records the journal held.
    pub records: usize,
    /// Whether bytes after the last complete record were dropped (a torn
    /// write from a crash mid-append). Callers should surface a warning.
    pub dropped_torn_tail: bool,
}

/// Line-by-line journal reader tracking the current line number so every
/// error points at the offending text.
struct Parser<'a> {
    lines: std::str::Lines<'a>,
    line_no: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            lines: text.lines(),
            line_no: 0,
        }
    }

    fn err(&self, message: String) -> JournalError {
        JournalError::Parse {
            line: self.line_no,
            message,
        }
    }

    /// Advances to the next line, which must start with `tag`, and returns
    /// the rest of the line.
    fn line_rest(&mut self, tag: &str) -> Result<&'a str, JournalError> {
        let line = self.lines.next().ok_or(JournalError::Parse {
            line: self.line_no + 1,
            message: format!("unexpected end of journal (expected '{tag}')"),
        })?;
        self.line_no += 1;
        let rest = line.strip_prefix(tag).ok_or_else(|| {
            self.err(format!(
                "expected '{tag}', got '{}'",
                line.split_whitespace().next().unwrap_or("")
            ))
        })?;
        if !rest.is_empty() && !rest.starts_with(' ') {
            return Err(self.err(format!("expected '{tag}', got a longer token")));
        }
        Ok(rest)
    }

    /// `tag <value>` for one parseable value.
    fn line1<T: std::str::FromStr>(&mut self, tag: &str) -> Result<(T,), JournalError> {
        let rest = self.line_rest(tag)?.trim();
        let v = rest
            .parse()
            .map_err(|_| self.err(format!("cannot parse '{rest}'")))?;
        Ok((v,))
    }

    fn line_f64(&mut self, tag: &str) -> Result<f64, JournalError> {
        self.line1::<f64>(tag).map(|(v,)| v)
    }

    /// `tag <count> <rest-of-line-as-string>`.
    fn line_count_rest(&mut self, tag: &str) -> Result<(usize, String), JournalError> {
        let rest = self.line_rest(tag)?.trim();
        let mut it = rest.splitn(2, ' ');
        let count_tok = it.next().unwrap_or("");
        let count = count_tok
            .parse()
            .map_err(|_| self.err(format!("cannot parse count '{count_tok}'")))?;
        Ok((count, it.next().unwrap_or("").to_string()))
    }

    /// `tag f f f ...` whitespace-separated fields (unparsed).
    fn line_fields(&mut self, tag: &str) -> Result<Vec<&'a str>, JournalError> {
        let rest = self.line_rest(tag)?;
        Ok(rest.split_whitespace().collect())
    }

    fn line_f64_vec(&mut self, tag: &str) -> Result<Vec<f64>, JournalError> {
        let fields = self.line_fields(tag)?;
        fields
            .into_iter()
            .map(|f| self.parse_field::<f64>(f))
            .collect()
    }

    fn parse_field<T: std::str::FromStr>(&self, field: &str) -> Result<T, JournalError> {
        field
            .parse()
            .map_err(|_| self.err(format!("cannot parse '{field}'")))
    }

    /// The tag of the next line without consuming it.
    fn peek_tag(&self) -> Option<&'a str> {
        self.lines
            .clone()
            .next()
            .and_then(|l| l.split_whitespace().next())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_gen::{generate, GeneratorConfig};
    use puffer_place::{GlobalPlacer, PlacerConfig};

    fn design() -> Design {
        generate(&GeneratorConfig {
            num_cells: 60,
            num_nets: 70,
            num_macros: 1,
            ..GeneratorConfig::default()
        })
        .unwrap()
    }

    fn checkpoint_after(design: &Design, steps: usize) -> FlowCheckpoint {
        let mut placer = GlobalPlacer::new(design, PlacerConfig::default()).unwrap();
        for _ in 0..steps {
            placer.step();
        }
        FlowCheckpoint::capture(
            design,
            FlowStage::GlobalPlace,
            placer.snapshot(),
            PaddingState::new(design.netlist().num_cells()),
        )
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("puffer-checkpoint-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn render_parse_roundtrip_is_exact() {
        let d = design();
        let ckpt = checkpoint_after(&d, 5);
        assert!(ckpt.placer.opt.is_some(), "solver should be live");
        let parsed = FlowCheckpoint::parse(&ckpt.render()).unwrap();
        assert_eq!(ckpt, parsed);
    }

    #[test]
    fn roundtrip_preserves_awkward_floats() {
        let d = design();
        let mut ckpt = checkpoint_after(&d, 1);
        // Values Display would mangle but {:?} round-trips exactly.
        ckpt.placer.lambda = 0.1 + 0.2;
        ckpt.pad.last_utilization = 1e-300;
        ckpt.placer.padding[0] = f64::MIN_POSITIVE;
        let parsed = FlowCheckpoint::parse(&ckpt.render()).unwrap();
        assert_eq!(parsed.placer.lambda.to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(parsed.pad.last_utilization, 1e-300);
        assert_eq!(parsed.placer.padding[0], f64::MIN_POSITIVE);
    }

    #[test]
    fn save_load_roundtrip() {
        let d = design();
        let ckpt = checkpoint_after(&d, 3);
        let path = tmp("roundtrip.pj");
        ckpt.save(&path).unwrap();
        assert_eq!(FlowCheckpoint::load(&path).unwrap(), ckpt);
    }

    #[test]
    fn degradation_line_roundtrips() {
        let d = design();
        let ckpt = checkpoint_after(&d, 2).with_degradation(vec![
            DegradeStep::CoarseCongestion,
            DegradeStep::FreezePadding,
        ]);
        let text = ckpt.render();
        assert!(
            text.contains("degradation coarse-congestion,freeze-padding"),
            "{text}"
        );
        let parsed = FlowCheckpoint::parse(&text).unwrap();
        assert_eq!(parsed, ckpt);
        // Unknown steps are a parse error, not silently dropped.
        let bad = text.replace("coarse-congestion", "melt-everything");
        let err = FlowCheckpoint::parse(&bad).unwrap_err();
        assert!(err.to_string().contains("degradation"), "{err}");
    }

    #[test]
    fn truncated_journal_is_a_parse_error() {
        let d = design();
        let text = checkpoint_after(&d, 3).render();
        let cut = text.len() / 2;
        let err = FlowCheckpoint::parse(&text[..cut]).unwrap_err();
        assert!(matches!(err, JournalError::Parse { .. }), "{err}");
    }

    #[test]
    fn missing_end_marker_is_detected() {
        let d = design();
        let text = checkpoint_after(&d, 3).render();
        let no_end = text.strip_suffix("end\n").unwrap();
        let err = FlowCheckpoint::parse(no_end).unwrap_err();
        assert!(err.to_string().contains("end"), "{err}");
    }

    #[test]
    fn append_accumulates_records_and_recover_returns_the_latest() {
        let d = design();
        let first = checkpoint_after(&d, 1);
        let second = checkpoint_after(&d, 4);
        let path = tmp("append.pj");
        let _ = std::fs::remove_file(&path);
        first.append(&path).unwrap();
        second.append(&path).unwrap();
        let rec = FlowCheckpoint::recover(&path).unwrap();
        assert_eq!(rec.checkpoint, second, "latest record wins");
        assert_eq!(rec.records, 2);
        assert!(!rec.dropped_torn_tail);
        // A save() journal (single atomic record) recovers identically.
        let single = tmp("single.pj");
        first.save(&single).unwrap();
        let rec = FlowCheckpoint::recover(&single).unwrap();
        assert_eq!((rec.checkpoint, rec.records), (first, 1));
    }

    #[test]
    fn recover_drops_a_torn_tail_at_every_byte_boundary() {
        // Regression test for torn appends: a journal holding one complete
        // record plus the last record truncated at EVERY byte boundary must
        // always recover to the complete record, flagging the drop —
        // except at the exact end, where the tail is complete and wins.
        let d = design();
        let keep = checkpoint_after(&d, 2);
        let tail = checkpoint_after(&d, 5).render();
        let base = keep.render();
        for cut in 0..=tail.len() {
            let mut text = base.clone();
            text.push_str(&tail[..cut]);
            let rec = FlowCheckpoint::recover_text(&text)
                .unwrap_or_else(|e| panic!("cut at byte {cut}/{}: {e}", tail.len()));
            if cut == tail.len() {
                assert!(!rec.dropped_torn_tail, "full tail is a complete record");
                assert_eq!(rec.records, 2);
            } else {
                assert_eq!(rec.checkpoint, keep, "cut at byte {cut}");
                assert_eq!(rec.dropped_torn_tail, cut != 0, "cut at byte {cut}");
            }
        }
    }

    #[test]
    fn recover_without_a_complete_record_is_an_error() {
        let d = design();
        let text = checkpoint_after(&d, 2).render();
        // Truncation before the first 'end' leaves nothing to resume from.
        let err = FlowCheckpoint::recover_text(&text[..text.len() / 2]).unwrap_err();
        assert!(matches!(err, JournalError::Parse { .. }), "{err}");
        assert!(err.to_string().contains("no complete checkpoint"), "{err}");
        // Corruption inside a complete record is still rejected: recovery
        // forgives truncation, never garbage that parses as a record shape.
        let garbled = text.replacen("lambda", "lambada", 1);
        let err = FlowCheckpoint::recover_text(&garbled).unwrap_err();
        assert!(matches!(err, JournalError::Parse { .. }), "{err}");
    }

    #[test]
    fn wrong_version_is_rejected() {
        let d = design();
        let text = checkpoint_after(&d, 1).render();
        let bumped = text.replacen("puffer_checkpoint 1", "puffer_checkpoint 99", 1);
        let err = FlowCheckpoint::parse(&bumped).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn garbage_is_rejected_with_line_numbers() {
        let err = FlowCheckpoint::parse("not a journal\n").unwrap_err();
        match err {
            JournalError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn mismatched_design_is_rejected() {
        let d = design();
        let other = generate(&GeneratorConfig {
            num_cells: 10,
            num_nets: 12,
            ..GeneratorConfig::default()
        })
        .unwrap();
        let ckpt = checkpoint_after(&d, 1);
        let err = ckpt.matches(&other).unwrap_err();
        assert!(matches!(err, JournalError::Mismatch(_)), "{err}");
        ckpt.matches(&d).unwrap();
    }

    #[test]
    fn policy_history_names_and_due() {
        let p = CheckpointPolicy {
            path: PathBuf::from("/tmp/run.pj"),
            every: 10,
            keep_history: true,
        };
        assert!(!p.due(0));
        assert!(!p.due(5));
        assert!(p.due(10));
        assert_eq!(
            p.file_for(FlowStage::GlobalPlace, 10),
            PathBuf::from("/tmp/run.pj.iter000010")
        );
        assert_eq!(
            p.file_for(FlowStage::GlobalDone, 40),
            PathBuf::from("/tmp/run.pj")
        );
        let no_mid = CheckpointPolicy {
            every: 0,
            ..CheckpointPolicy::new("/tmp/x.pj")
        };
        assert!(!no_mid.due(25));
    }
}
