//! Parameter spaces for black-box exploration.
//!
//! A [`Space`] is an ordered list of named parameters. Assignments are flat
//! `Vec<f64>` aligned with the space: integers are stored rounded,
//! categorical choices as their index. This keeps the optimizer generic
//! while letting callers map values back by name.

use std::fmt;

/// The domain of one parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Domain {
    /// A real interval `[lo, hi]`.
    Continuous {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// An integer interval `[lo, hi]` (inclusive).
    Integer {
        /// Lower bound.
        lo: i64,
        /// Upper bound.
        hi: i64,
    },
    /// A choice among `choices` unordered options (stored as index).
    Categorical {
        /// Number of options.
        choices: usize,
    },
}

impl Domain {
    /// Numeric lower bound of the domain's encoding.
    pub fn lo(&self) -> f64 {
        match *self {
            Domain::Continuous { lo, .. } => lo,
            Domain::Integer { lo, .. } => lo as f64,
            Domain::Categorical { .. } => 0.0,
        }
    }

    /// Numeric upper bound of the domain's encoding.
    pub fn hi(&self) -> f64 {
        match *self {
            Domain::Continuous { hi, .. } => hi,
            Domain::Integer { hi, .. } => hi as f64,
            Domain::Categorical { choices } => (choices.max(1) - 1) as f64,
        }
    }

    /// Clamps and canonicalises an encoded value (rounds integers and
    /// categorical indices).
    pub fn canon(&self, v: f64) -> f64 {
        match *self {
            Domain::Continuous { lo, hi } => v.clamp(lo, hi),
            Domain::Integer { lo, hi } => v.round().clamp(lo as f64, hi as f64),
            Domain::Categorical { choices } => v.round().clamp(0.0, (choices.max(1) - 1) as f64),
        }
    }

    /// Midpoint of the domain (canonicalised).
    pub fn midpoint(&self) -> f64 {
        self.canon((self.lo() + self.hi()) / 2.0)
    }

    /// Whether the domain treats values as unordered choices.
    pub fn is_categorical(&self) -> bool {
        matches!(self, Domain::Categorical { .. })
    }
}

/// A named parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpec {
    /// Parameter name.
    pub name: String,
    /// Domain.
    pub domain: Domain,
}

impl ParamSpec {
    /// A continuous parameter.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn continuous(name: impl Into<String>, lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "continuous range must be non-empty");
        ParamSpec {
            name: name.into(),
            domain: Domain::Continuous { lo, hi },
        }
    }

    /// An integer parameter (inclusive bounds).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn integer(name: impl Into<String>, lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "integer range must be non-empty");
        ParamSpec {
            name: name.into(),
            domain: Domain::Integer { lo, hi },
        }
    }

    /// A categorical parameter with `choices` options.
    ///
    /// # Panics
    ///
    /// Panics if `choices == 0`.
    pub fn categorical(name: impl Into<String>, choices: usize) -> Self {
        assert!(choices > 0, "categorical needs at least one choice");
        ParamSpec {
            name: name.into(),
            domain: Domain::Categorical { choices },
        }
    }
}

impl fmt::Display for ParamSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.domain {
            Domain::Continuous { lo, hi } => write!(f, "{} ∈ [{lo}, {hi}]", self.name),
            Domain::Integer { lo, hi } => write!(f, "{} ∈ {{{lo}..{hi}}}", self.name),
            Domain::Categorical { choices } => write!(f, "{} ∈ {choices} choices", self.name),
        }
    }
}

/// An ordered parameter space.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Space {
    params: Vec<ParamSpec>,
}

impl Space {
    /// Builds a space from specs.
    ///
    /// # Panics
    ///
    /// Panics on duplicate parameter names.
    pub fn new(params: Vec<ParamSpec>) -> Self {
        for (i, p) in params.iter().enumerate() {
            for q in &params[..i] {
                assert_ne!(p.name, q.name, "duplicate parameter name '{}'", p.name);
            }
        }
        Space { params }
    }

    /// The parameter specs in order.
    pub fn params(&self) -> &[ParamSpec] {
        &self.params
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Index of a parameter by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p.name == name)
    }

    /// The midpoint assignment (Algorithm 3's final configuration rule).
    pub fn midpoint(&self) -> Vec<f64> {
        self.params.iter().map(|p| p.domain.midpoint()).collect()
    }

    /// Canonicalises an assignment in place (clamp + round).
    pub fn canon(&self, values: &mut [f64]) {
        for (v, p) in values.iter_mut().zip(&self.params) {
            *v = p.domain.canon(*v);
        }
    }

    /// A copy of the space with one parameter's continuous/integer range
    /// narrowed to `[lo, hi]` (categoricals are returned unchanged).
    pub fn with_range(&self, name: &str, lo: f64, hi: f64) -> Space {
        let mut s = self.clone();
        if let Some(i) = s.index_of(name) {
            s.params[i].domain = match s.params[i].domain {
                Domain::Continuous { .. } => Domain::Continuous {
                    lo: lo.min(hi),
                    hi: hi.max(lo + f64::EPSILON),
                },
                Domain::Integer { .. } => Domain::Integer {
                    lo: lo.round() as i64,
                    hi: (hi.round() as i64).max(lo.round() as i64),
                },
                d @ Domain::Categorical { .. } => d,
            };
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canon_clamps_and_rounds() {
        let c = Domain::Continuous { lo: 0.0, hi: 1.0 };
        assert_eq!(c.canon(2.0), 1.0);
        let i = Domain::Integer { lo: -2, hi: 7 };
        assert_eq!(i.canon(3.4), 3.0);
        assert_eq!(i.canon(99.0), 7.0);
        let k = Domain::Categorical { choices: 3 };
        assert_eq!(k.canon(1.6), 2.0);
        assert_eq!(k.canon(-4.0), 0.0);
    }

    #[test]
    fn midpoints() {
        assert_eq!(Domain::Continuous { lo: 2.0, hi: 4.0 }.midpoint(), 3.0);
        assert_eq!(Domain::Integer { lo: 0, hi: 5 }.midpoint(), 3.0); // rounds 2.5
        assert_eq!(Domain::Categorical { choices: 5 }.midpoint(), 2.0);
    }

    #[test]
    fn space_lookup_and_midpoint() {
        let s = Space::new(vec![
            ParamSpec::continuous("a", 0.0, 2.0),
            ParamSpec::integer("b", 1, 9),
            ParamSpec::categorical("c", 4),
        ]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("zz"), None);
        assert_eq!(s.midpoint(), vec![1.0, 5.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_names_panic() {
        let _ = Space::new(vec![
            ParamSpec::continuous("a", 0.0, 1.0),
            ParamSpec::continuous("a", 0.0, 2.0),
        ]);
    }

    #[test]
    fn with_range_narrows() {
        let s = Space::new(vec![ParamSpec::continuous("a", 0.0, 10.0)]);
        let n = s.with_range("a", 2.0, 4.0);
        assert_eq!(
            n.params()[0].domain,
            Domain::Continuous { lo: 2.0, hi: 4.0 }
        );
        // Unknown names are a no-op.
        let same = s.with_range("zz", 0.0, 1.0);
        assert_eq!(same, s);
    }

    #[test]
    fn integer_ranges_narrow_with_rounding() {
        let s = Space::new(vec![ParamSpec::integer("n", 0, 100)]);
        let narrowed = s.with_range("n", 10.4, 20.6);
        assert_eq!(
            narrowed.params()[0].domain,
            Domain::Integer { lo: 10, hi: 21 }
        );
        // Degenerate request never inverts.
        let tight = s.with_range("n", 50.2, 49.9);
        if let Domain::Integer { lo, hi } = tight.params()[0].domain {
            assert!(lo <= hi);
        } else {
            panic!("integer domain preserved");
        }
    }

    #[test]
    fn categorical_ranges_are_immune_to_narrowing() {
        let s = Space::new(vec![ParamSpec::categorical("k", 5)]);
        let narrowed = s.with_range("k", 1.0, 2.0);
        assert_eq!(narrowed, s);
    }

    #[test]
    fn canon_vector_applies_per_domain() {
        let s = Space::new(vec![
            ParamSpec::continuous("a", 0.0, 1.0),
            ParamSpec::integer("b", 0, 10),
        ]);
        let mut v = vec![7.0, 3.6];
        s.canon(&mut v);
        assert_eq!(v, vec![1.0, 4.0]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            ParamSpec::continuous("a", 0.0, 1.0).to_string(),
            "a ∈ [0, 1]"
        );
        assert!(ParamSpec::categorical("k", 3)
            .to_string()
            .contains("3 choices"));
    }
}
