//! SMBO driver: Algorithm 2 (parameter exploration) and Algorithm 3
//! (strategy exploration with grouped, parallel local refinement).

use crate::space::Space;
use crate::tpe::{Tpe, TpeConfig};
use std::thread;

/// Configuration for one [`explore_params`] run (Algorithm 2's `TC`/`EC`).
#[derive(Debug, Clone, PartialEq)]
pub struct ExplorationConfig {
    /// Evaluation budget `TC`.
    pub max_evals: usize,
    /// Early-stop patience `EC`: stop after this many evaluations without
    /// improvement.
    pub early_stop: usize,
    /// TPE settings.
    pub tpe: TpeConfig,
    /// Margin by which updated ranges are expanded around the good set
    /// (Algorithm 2 line 14).
    pub range_margin: f64,
}

impl Default for ExplorationConfig {
    fn default() -> Self {
        ExplorationConfig {
            max_evals: 80,
            early_stop: 25,
            tpe: TpeConfig::default(),
            range_margin: 0.10,
        }
    }
}

/// Result of an [`explore_params`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplorationOutcome {
    /// Best assignment found.
    pub best: Vec<f64>,
    /// Its objective value.
    pub best_value: f64,
    /// Whether the run ended by early stop (Algorithm 2's return flag).
    pub stopped_early: bool,
    /// The updated (narrowed) parameter ranges.
    pub narrowed: Space,
    /// Number of evaluations spent.
    pub evals: usize,
}

/// Algorithm 2: explore `space` with TPE, minimising `eval`, then narrow
/// each parameter's range around the best observations.
pub fn explore_params(
    space: &Space,
    mut eval: impl FnMut(&[f64]) -> f64,
    config: &ExplorationConfig,
) -> ExplorationOutcome {
    let mut tpe = Tpe::new(space.clone(), config.tpe.clone());
    let mut best: Option<(Vec<f64>, f64)> = None;
    let mut since_improvement = 0usize;
    let mut evals = 0usize;
    let mut stopped_early = false;

    while evals < config.max_evals {
        if since_improvement >= config.early_stop {
            stopped_early = true;
            break;
        }
        let x = tpe.suggest();
        let y = eval(&x);
        evals += 1;
        tpe.observe(x.clone(), y);
        if best.as_ref().is_none_or(|(_, by)| y < *by) {
            best = Some((x, y));
            since_improvement = 0;
        } else {
            since_improvement += 1;
        }
    }

    let narrowed = narrow_ranges(space, tpe.observations(), config);
    let (best, best_value) = best.unwrap_or_else(|| (space.midpoint(), f64::INFINITY));
    ExplorationOutcome {
        best,
        best_value,
        stopped_early,
        narrowed,
        evals,
    }
}

/// `updateParamRange` of Algorithm 2: shrink each continuous/integer range
/// to the hull of the best-quartile observations plus a margin.
fn narrow_ranges(
    space: &Space,
    observations: &[(Vec<f64>, f64)],
    config: &ExplorationConfig,
) -> Space {
    if observations.len() < 4 {
        return space.clone();
    }
    let mut order: Vec<usize> = (0..observations.len()).collect();
    order.sort_by(|&a, &b| observations[a].1.total_cmp(&observations[b].1));
    let top = &order[..(observations.len() / 4).max(2)];

    let mut out = space.clone();
    for (d, p) in space.params().iter().enumerate() {
        if p.domain.is_categorical() {
            continue;
        }
        let lo_obs = top
            .iter()
            .map(|&i| observations[i].0[d])
            .fold(f64::INFINITY, f64::min);
        let hi_obs = top
            .iter()
            .map(|&i| observations[i].0[d])
            .fold(f64::NEG_INFINITY, f64::max);
        let margin = (p.domain.hi() - p.domain.lo()) * config.range_margin;
        let lo = (lo_obs - margin).max(p.domain.lo());
        let hi = (hi_obs + margin).min(p.domain.hi());
        if hi > lo {
            out = out.with_range(&p.name, lo, hi);
        }
    }
    out
}

/// Configuration for [`explore_strategy`] (Algorithm 3).
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyConfig {
    /// Budget for the initial global exploration.
    pub global: ExplorationConfig,
    /// Budget for each group's local exploration round.
    pub local: ExplorationConfig,
    /// Outer-loop budget `TC` (rounds over all groups).
    pub max_rounds: usize,
    /// Run group explorations on parallel threads.
    pub parallel: bool,
}

impl Default for StrategyConfig {
    fn default() -> Self {
        StrategyConfig {
            global: ExplorationConfig {
                max_evals: 60,
                early_stop: 20,
                ..Default::default()
            },
            local: ExplorationConfig {
                max_evals: 30,
                early_stop: 10,
                ..Default::default()
            },
            max_rounds: 3,
            parallel: true,
        }
    }
}

/// Result of [`explore_strategy`].
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyOutcome {
    /// The final configuration: midpoints of the converged ranges
    /// (Algorithm 3's "take the median of the range").
    pub values: Vec<f64>,
    /// Best assignment observed anywhere during exploration.
    pub best_observed: Vec<f64>,
    /// Objective value of `best_observed`.
    pub best_value: f64,
    /// Total evaluations spent.
    pub evals: usize,
    /// Rounds of grouped local exploration executed.
    pub rounds: usize,
}

/// Algorithm 3: global exploration over all parameters, then repeated
/// grouped local exploration (each group explored with the other
/// parameters fixed at their range midpoints), until every group stops
/// early or the round budget is exhausted.
///
/// `groups` lists parameter names per group; parameters not mentioned in
/// any group keep their post-global ranges. The evaluation function must be
/// `Sync` because groups are explored on parallel threads (the paper notes
/// this parallelism explicitly).
pub fn explore_strategy(
    space: &Space,
    groups: &[Vec<String>],
    eval: impl Fn(&[f64]) -> f64 + Sync,
    config: &StrategyConfig,
) -> StrategyOutcome {
    // Line 1–2: initial ranges + global exploration.
    let global = explore_params(space, &eval, &config.global);
    let mut ranges = global.narrowed;
    let mut best_observed = global.best;
    let mut best_value = global.best_value;
    let mut evals = global.evals;

    let mut rounds = 0usize;
    for _ in 0..config.max_rounds {
        rounds += 1;
        // Explore each group with the others fixed at range midpoints.
        let base = ranges.midpoint();
        let group_results: Vec<(Vec<usize>, ExplorationOutcome)> = if config.parallel {
            thread::scope(|scope| {
                let handles: Vec<_> = groups
                    .iter()
                    .map(|group| {
                        let ranges = &ranges;
                        let base = &base;
                        let eval = &eval;
                        let local_cfg = &config.local;
                        scope.spawn(move || explore_group(ranges, base, group, eval, local_cfg))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("group thread panicked"))
                    .collect()
            })
        } else {
            groups
                .iter()
                .map(|group| explore_group(&ranges, &base, group, &eval, &config.local))
                .collect()
        };

        let mut all_early = true;
        for (indices, outcome) in group_results {
            evals += outcome.evals;
            all_early &= outcome.stopped_early;
            if outcome.best_value < best_value {
                best_value = outcome.best_value;
                let mut full = base.clone();
                for (slot, &i) in indices.iter().enumerate() {
                    full[i] = outcome.best[slot];
                }
                best_observed = full;
            }
            // Fold the narrowed sub-ranges back into the full space.
            for (slot, &i) in indices.iter().enumerate() {
                let p = &outcome.narrowed.params()[slot];
                let name = ranges.params()[i].name.clone();
                ranges = ranges.with_range(&name, p.domain.lo(), p.domain.hi());
            }
        }
        if all_early {
            break;
        }
    }

    StrategyOutcome {
        values: ranges.midpoint(),
        best_observed,
        best_value,
        evals,
        rounds,
    }
}

/// Runs Algorithm 2 on one group's sub-space, evaluating full assignments
/// with non-group parameters fixed at `base`.
fn explore_group(
    ranges: &Space,
    base: &[f64],
    group: &[String],
    eval: impl Fn(&[f64]) -> f64,
    config: &ExplorationConfig,
) -> (Vec<usize>, ExplorationOutcome) {
    let indices: Vec<usize> = group.iter().filter_map(|n| ranges.index_of(n)).collect();
    let sub = Space::new(
        indices
            .iter()
            .map(|&i| ranges.params()[i].clone())
            .collect(),
    );
    let outcome = explore_params(
        &sub,
        |xs| {
            let mut full = base.to_vec();
            for (slot, &i) in indices.iter().enumerate() {
                full[i] = xs[slot];
            }
            eval(&full)
        },
        config,
    );
    (indices, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ParamSpec;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn bowl(space_dim: usize) -> Space {
        Space::new(
            (0..space_dim)
                .map(|i| ParamSpec::continuous(format!("x{i}"), -10.0, 10.0))
                .collect(),
        )
    }

    #[test]
    fn explore_params_finds_the_bowl_bottom() {
        let outcome = explore_params(
            &bowl(2),
            |v| v.iter().map(|x| (x - 2.0) * (x - 2.0)).sum(),
            &ExplorationConfig {
                max_evals: 150,
                early_stop: 60,
                ..Default::default()
            },
        );
        assert!(outcome.best_value < 2.0, "best {}", outcome.best_value);
        assert!(outcome.evals <= 150);
    }

    #[test]
    fn early_stop_limits_evaluations() {
        // Constant objective: nothing ever improves after the first eval.
        let outcome = explore_params(
            &bowl(1),
            |_| 1.0,
            &ExplorationConfig {
                max_evals: 500,
                early_stop: 12,
                ..Default::default()
            },
        );
        assert!(outcome.stopped_early);
        assert!(outcome.evals <= 14);
    }

    #[test]
    fn ranges_narrow_around_the_optimum() {
        let outcome = explore_params(
            &bowl(1),
            |v| (v[0] - 4.0).abs(),
            &ExplorationConfig {
                max_evals: 120,
                early_stop: 120,
                ..Default::default()
            },
        );
        let d = outcome.narrowed.params()[0].domain;
        assert!(
            d.lo() > -10.0 || d.hi() < 10.0,
            "range should shrink: {d:?}"
        );
        assert!(
            d.lo() <= 4.0 && d.hi() >= 4.0,
            "optimum stays inside: {d:?}"
        );
    }

    #[test]
    fn strategy_exploration_converges_groupwise() {
        // Separable objective: groups can optimise independently.
        let space = bowl(4);
        let groups = vec![
            vec!["x0".to_string(), "x1".to_string()],
            vec!["x2".to_string(), "x3".to_string()],
        ];
        let target = [1.0, -2.0, 3.0, -4.0];
        let outcome = explore_strategy(
            &space,
            &groups,
            |v| v.iter().zip(&target).map(|(x, t)| (x - t) * (x - t)).sum(),
            &StrategyConfig::default(),
        );
        assert!(outcome.best_value < 20.0, "best {}", outcome.best_value);
        assert_eq!(outcome.values.len(), 4);
        // Final midpoints should be pulled towards the target.
        for (v, t) in outcome.values.iter().zip(&target) {
            assert!((v - t).abs() < 8.0, "{v} vs {t}");
        }
    }

    #[test]
    fn parallel_and_serial_agree_on_eval_counting() {
        let space = bowl(2);
        let groups = vec![vec!["x0".to_string()], vec!["x1".to_string()]];
        let count = AtomicUsize::new(0);
        let outcome = explore_strategy(
            &space,
            &groups,
            |v| {
                count.fetch_add(1, Ordering::Relaxed);
                v.iter().map(|x| x * x).sum()
            },
            &StrategyConfig {
                parallel: true,
                ..Default::default()
            },
        );
        assert_eq!(outcome.evals, count.load(Ordering::Relaxed));
    }

    #[test]
    fn unknown_group_members_are_skipped() {
        let space = bowl(1);
        let groups = vec![vec!["x0".to_string(), "ghost".to_string()]];
        let outcome = explore_strategy(
            &space,
            &groups,
            |v| v[0].abs(),
            &StrategyConfig {
                max_rounds: 1,
                parallel: false,
                ..Default::default()
            },
        );
        assert_eq!(outcome.values.len(), 1);
    }
}
