//! SMBO driver: Algorithm 2 (parameter exploration) and Algorithm 3
//! (strategy exploration with grouped, parallel local refinement).
//!
//! # Fault tolerance
//!
//! The objective is an arbitrary user callback (often a full placement
//! flow); a panic or a NaN inside one trial must not abort a long
//! exploration. Every evaluation therefore runs under
//! [`std::panic::catch_unwind`]; a failing trial becomes
//! [`TrialOutcome::Failed`] and is observed by the TPE at a
//! worse-than-worst penalty value, steering the sampler away from the
//! failing region. A run of [`ExplorationConfig::max_consecutive_failures`]
//! failures ends the exploration (an error if nothing ever succeeded).
//! With [`ExplorationConfig::journal`] set, every trial is appended to an
//! [`crate::journal::ExplorationJournal`] and replayed on restart.

use crate::error::ExploreError;
use crate::journal::ExplorationJournal;
use crate::space::Space;
use crate::tpe::{Tpe, TpeConfig};
use puffer_budget::{Budget, DegradeStep, LadderState};
use puffer_trace::Trace;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::thread;

/// Outcome of a single objective evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum TrialOutcome {
    /// The objective returned a finite value.
    Ok(f64),
    /// The objective panicked or returned a non-finite value; the payload
    /// is the panic message (or a description of the bad value).
    Failed(String),
}

impl TrialOutcome {
    /// The objective value, if the trial succeeded.
    pub fn value(&self) -> Option<f64> {
        match self {
            TrialOutcome::Ok(y) => Some(*y),
            TrialOutcome::Failed(_) => None,
        }
    }

    /// Whether the trial failed.
    pub fn is_failed(&self) -> bool {
        matches!(self, TrialOutcome::Failed(_))
    }
}

/// Configuration for one [`explore_params`] run (Algorithm 2's `TC`/`EC`).
#[derive(Debug, Clone, PartialEq)]
pub struct ExplorationConfig {
    /// Evaluation budget `TC`.
    pub max_evals: usize,
    /// Early-stop patience `EC`: stop after this many evaluations without
    /// improvement.
    pub early_stop: usize,
    /// TPE settings.
    pub tpe: TpeConfig,
    /// Margin by which updated ranges are expanded around the good set
    /// (Algorithm 2 line 14).
    pub range_margin: f64,
    /// Give up after this many failed trials in a row: stop early when
    /// something already succeeded, error out when nothing ever has.
    pub max_consecutive_failures: usize,
    /// Append every trial to this journal file; when the file already
    /// exists its trials are replayed into the model (counting against
    /// `max_evals`) before any new evaluation runs — delete the file for a
    /// fresh start.
    pub journal: Option<PathBuf>,
}

impl Default for ExplorationConfig {
    fn default() -> Self {
        ExplorationConfig {
            max_evals: 80,
            early_stop: 25,
            tpe: TpeConfig::default(),
            range_margin: 0.10,
            max_consecutive_failures: 8,
            journal: None,
        }
    }
}

/// Result of an [`explore_params`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplorationOutcome {
    /// Best assignment found.
    pub best: Vec<f64>,
    /// Its objective value.
    pub best_value: f64,
    /// Whether the run ended by early stop (Algorithm 2's return flag).
    pub stopped_early: bool,
    /// The updated (narrowed) parameter ranges.
    pub narrowed: Space,
    /// Number of evaluations spent (including failed and replayed trials).
    pub evals: usize,
    /// How many of them failed (panic or non-finite objective).
    pub failed_trials: usize,
}

/// Evaluates the objective at `x` with panics contained.
fn run_trial(eval: &mut impl FnMut(&[f64]) -> f64, x: &[f64]) -> TrialOutcome {
    match catch_unwind(AssertUnwindSafe(|| eval(x))) {
        Ok(y) if y.is_finite() => TrialOutcome::Ok(y),
        Ok(y) => TrialOutcome::Failed(format!("objective returned {y}")),
        Err(payload) => TrialOutcome::Failed(panic_message(payload.as_ref())),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Mutable bookkeeping of one Algorithm 2 run; shared between live trials
/// and journal replay so both count identically.
struct Run {
    tpe: Tpe,
    best: Option<(Vec<f64>, f64)>,
    worst: Option<f64>,
    since_improvement: usize,
    consecutive_failures: usize,
    evals: usize,
    failed: usize,
    last_failure: String,
}

impl Run {
    fn new(space: &Space, config: &ExplorationConfig) -> Self {
        Run {
            tpe: Tpe::new(space.clone(), config.tpe.clone()),
            best: None,
            worst: None,
            since_improvement: 0,
            consecutive_failures: 0,
            evals: 0,
            failed: 0,
            last_failure: String::new(),
        }
    }

    /// The value a failed trial is observed at: strictly worse than every
    /// finite observation, so the TPE's quantile split files the failing
    /// region under the "bad" density.
    fn penalty(&self) -> f64 {
        match (self.best.as_ref(), self.worst) {
            (Some((_, best)), Some(worst)) => worst + (worst - best).abs().max(1.0),
            _ => 1e300,
        }
    }

    fn observe(&mut self, x: Vec<f64>, outcome: TrialOutcome) {
        self.evals += 1;
        match outcome {
            TrialOutcome::Ok(y) => {
                self.consecutive_failures = 0;
                self.worst = Some(self.worst.map_or(y, |w| w.max(y)));
                self.tpe.observe(x.clone(), y);
                if self.best.as_ref().is_none_or(|(_, by)| y < *by) {
                    self.best = Some((x, y));
                    self.since_improvement = 0;
                } else {
                    self.since_improvement += 1;
                }
            }
            TrialOutcome::Failed(message) => {
                self.failed += 1;
                self.consecutive_failures += 1;
                self.since_improvement += 1;
                self.last_failure = message;
                let penalty = self.penalty();
                self.tpe.observe(x, penalty);
            }
        }
    }
}

/// Algorithm 2: explore `space` with TPE, minimising `eval`, then narrow
/// each parameter's range around the best observations.
///
/// Trials are panic-isolated (see the module docs): a panicking or
/// NaN-returning objective degrades the search instead of aborting it.
///
/// # Errors
///
/// [`ExploreError::AllTrialsFailed`] when the failure budget is exhausted
/// before any trial succeeds, and [`ExploreError::Journal`] when a
/// configured journal cannot be used.
pub fn explore_params(
    space: &Space,
    eval: impl FnMut(&[f64]) -> f64,
    config: &ExplorationConfig,
) -> Result<ExplorationOutcome, ExploreError> {
    explore_params_traced(space, eval, config, &Trace::disabled())
}

/// [`explore_params`] with telemetry: every live trial (journal-replayed
/// ones excluded) emits an `explore.trial` record — trial index, status,
/// objective, and the full parameter vector — to `trace`.
///
/// # Errors
///
/// Same as [`explore_params`].
pub fn explore_params_traced(
    space: &Space,
    eval: impl FnMut(&[f64]) -> f64,
    config: &ExplorationConfig,
    trace: &Trace,
) -> Result<ExplorationOutcome, ExploreError> {
    explore_params_bounded(space, eval, config, trace, &Budget::unbounded(), None)
}

/// When the [`DegradeStep::CapTrials`] rung of a degradation ladder
/// engages, this many further evaluations are allowed before the run stops
/// (enough for the TPE to bank its current suggestion, cheap enough to
/// leave the rest of the deadline to downstream stages).
pub const CAPPED_TRIALS_REMAINING: usize = 2;

/// [`explore_params_traced`] under an execution [`Budget`] and (optionally)
/// a graceful-degradation ladder.
///
/// The budget is checked before every evaluation: an expired deadline or an
/// external cancel ends the run as a clean early stop with the best
/// assignment found so far — exactly like `early_stop`, never an error
/// (unless nothing ever succeeded *and* failures occurred, which keeps
/// [`ExploreError::AllTrialsFailed`] semantics intact).
///
/// The ladder is polled once per trial; only its [`DegradeStep::CapTrials`]
/// rung applies here — on engagement the remaining evaluation budget is
/// capped at [`CAPPED_TRIALS_REMAINING`] and a `flow.degrade` record is
/// emitted. The other rungs belong to the placement flow and are ignored,
/// so pass a ladder containing just the `cap-trials` rung when driving
/// exploration standalone.
///
/// # Errors
///
/// Same as [`explore_params`].
pub fn explore_params_bounded(
    space: &Space,
    mut eval: impl FnMut(&[f64]) -> f64,
    config: &ExplorationConfig,
    trace: &Trace,
    budget: &Budget,
    mut ladder: Option<&mut LadderState>,
) -> Result<ExplorationOutcome, ExploreError> {
    let mut run = Run::new(space, config);
    let mut stopped_early = false;
    let mut max_evals = config.max_evals;

    let mut journal = match &config.journal {
        Some(path) => {
            let (journal, prior) = ExplorationJournal::open(path, space.params().len())?;
            for (x, outcome) in prior {
                run.observe(x, outcome);
            }
            Some(journal)
        }
        None => None,
    };

    while run.evals < max_evals {
        if budget.is_exhausted() {
            stopped_early = true;
            break;
        }
        if let Some(ladder) = ladder.as_deref_mut() {
            for step in ladder.poll(budget) {
                if step == DegradeStep::CapTrials {
                    max_evals = max_evals.min(run.evals + CAPPED_TRIALS_REMAINING);
                    trace
                        .record("flow.degrade")
                        .str("step", step.as_str())
                        .num("fraction_remaining", budget.fraction_remaining())
                        .int("iter", run.evals as i64)
                        .write();
                }
            }
        }
        if run.since_improvement >= config.early_stop {
            stopped_early = true;
            break;
        }
        if run.consecutive_failures >= config.max_consecutive_failures {
            if run.best.is_none() {
                return Err(ExploreError::AllTrialsFailed {
                    attempted: run.evals,
                    last_failure: run.last_failure,
                });
            }
            stopped_early = true;
            break;
        }
        let x = run.tpe.suggest();
        let outcome = run_trial(&mut eval, &x);
        if let Some(journal) = &mut journal {
            journal.record(&x, &outcome)?;
        }
        if trace.is_enabled() {
            trace.add("explore.trials", 1);
            let record = trace
                .record("explore.trial")
                .int("trial", run.evals as i64)
                .nums("params", &x);
            match &outcome {
                TrialOutcome::Ok(y) => record.str("status", "ok").num("objective", *y),
                TrialOutcome::Failed(m) => record
                    .str("status", "failed")
                    .num("objective", f64::NAN)
                    .str("error", m),
            }
            .write();
        }
        run.observe(x, outcome);
    }
    if run.best.is_none() && run.failed > 0 {
        // Budget ran out with only failures on the books.
        return Err(ExploreError::AllTrialsFailed {
            attempted: run.evals,
            last_failure: run.last_failure,
        });
    }

    let narrowed = narrow_ranges(space, run.tpe.observations(), config);
    let (best, best_value) = run
        .best
        .unwrap_or_else(|| (space.midpoint(), f64::INFINITY));
    Ok(ExplorationOutcome {
        best,
        best_value,
        stopped_early,
        narrowed,
        evals: run.evals,
        failed_trials: run.failed,
    })
}

/// `updateParamRange` of Algorithm 2: shrink each continuous/integer range
/// to the hull of the best-quartile observations plus a margin.
fn narrow_ranges(
    space: &Space,
    observations: &[(Vec<f64>, f64)],
    config: &ExplorationConfig,
) -> Space {
    if observations.len() < 4 {
        return space.clone();
    }
    let mut order: Vec<usize> = (0..observations.len()).collect();
    order.sort_by(|&a, &b| observations[a].1.total_cmp(&observations[b].1));
    let top = &order[..(observations.len() / 4).max(2)];

    let mut out = space.clone();
    for (d, p) in space.params().iter().enumerate() {
        if p.domain.is_categorical() {
            continue;
        }
        let lo_obs = top
            .iter()
            .map(|&i| observations[i].0[d])
            .fold(f64::INFINITY, f64::min);
        let hi_obs = top
            .iter()
            .map(|&i| observations[i].0[d])
            .fold(f64::NEG_INFINITY, f64::max);
        let margin = (p.domain.hi() - p.domain.lo()) * config.range_margin;
        let lo = (lo_obs - margin).max(p.domain.lo());
        let hi = (hi_obs + margin).min(p.domain.hi());
        if hi > lo {
            out = out.with_range(&p.name, lo, hi);
        }
    }
    out
}

/// Configuration for [`explore_strategy`] (Algorithm 3).
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyConfig {
    /// Budget for the initial global exploration.
    pub global: ExplorationConfig,
    /// Budget for each group's local exploration round.
    pub local: ExplorationConfig,
    /// Outer-loop budget `TC` (rounds over all groups).
    pub max_rounds: usize,
    /// Run group explorations on parallel threads.
    pub parallel: bool,
}

impl Default for StrategyConfig {
    fn default() -> Self {
        StrategyConfig {
            global: ExplorationConfig {
                max_evals: 60,
                early_stop: 20,
                ..Default::default()
            },
            local: ExplorationConfig {
                max_evals: 30,
                early_stop: 10,
                ..Default::default()
            },
            max_rounds: 3,
            parallel: true,
        }
    }
}

/// Result of [`explore_strategy`].
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyOutcome {
    /// The final configuration: midpoints of the converged ranges
    /// (Algorithm 3's "take the median of the range").
    pub values: Vec<f64>,
    /// Best assignment observed anywhere during exploration.
    pub best_observed: Vec<f64>,
    /// Objective value of `best_observed`.
    pub best_value: f64,
    /// Total evaluations spent.
    pub evals: usize,
    /// Rounds of grouped local exploration executed.
    pub rounds: usize,
    /// Trials that failed (panic or non-finite objective) across every
    /// phase.
    pub failed_trials: usize,
}

/// Algorithm 3: global exploration over all parameters, then repeated
/// grouped local exploration (each group explored with the other
/// parameters fixed at their range midpoints), until every group stops
/// early or the round budget is exhausted.
///
/// `groups` lists parameter names per group; parameters not mentioned in
/// any group keep their post-global ranges. The evaluation function must be
/// `Sync` because groups are explored on parallel threads (the paper notes
/// this parallelism explicitly). Objective panics are contained per trial
/// (see the module docs), so a crashing configuration costs one trial, not
/// the exploration. When journaling is configured, the global phase uses
/// [`ExplorationConfig::journal`] of `config.global` as-is and each group
/// round appends `.r<round>.g<group>` to the one in `config.local`.
///
/// # Errors
///
/// [`ExploreError::AllTrialsFailed`] when the global phase (or every group
/// of a round) exhausts its failure budget without a single success,
/// [`ExploreError::Journal`] for journal problems, and
/// [`ExploreError::GroupPanicked`] if an exploration thread itself dies
/// (a driver bug, not an objective failure).
pub fn explore_strategy(
    space: &Space,
    groups: &[Vec<String>],
    eval: impl Fn(&[f64]) -> f64 + Sync,
    config: &StrategyConfig,
) -> Result<StrategyOutcome, ExploreError> {
    explore_strategy_traced(space, groups, eval, config, &Trace::disabled())
}

/// [`explore_strategy`] with telemetry: every trial of the global phase and
/// of every group round emits an `explore.trial` record to `trace` (clones
/// of the handle share one sink, so parallel groups interleave safely).
///
/// # Errors
///
/// Same as [`explore_strategy`].
pub fn explore_strategy_traced(
    space: &Space,
    groups: &[Vec<String>],
    eval: impl Fn(&[f64]) -> f64 + Sync,
    config: &StrategyConfig,
    trace: &Trace,
) -> Result<StrategyOutcome, ExploreError> {
    // Line 1–2: initial ranges + global exploration.
    let global = explore_params_traced(space, &eval, &config.global, trace)?;
    let mut ranges = global.narrowed;
    let mut best_observed = global.best;
    let mut best_value = global.best_value;
    let mut evals = global.evals;
    let mut failed_trials = global.failed_trials;

    let mut rounds = 0usize;
    for round in 0..config.max_rounds {
        rounds += 1;
        // Explore each group with the others fixed at range midpoints.
        let base = ranges.midpoint();
        let configs: Vec<ExplorationConfig> = (0..groups.len())
            .map(|g| group_config(&config.local, round, g))
            .collect();
        type GroupResult = Result<(Vec<usize>, ExplorationOutcome), ExploreError>;
        let group_results: Vec<GroupResult> = if config.parallel {
            thread::scope(|scope| {
                let handles: Vec<_> = groups
                    .iter()
                    .zip(&configs)
                    .map(|(group, local_cfg)| {
                        let ranges = &ranges;
                        let base = &base;
                        let eval = &eval;
                        let trace = &*trace;
                        scope.spawn(move || {
                            explore_group(ranges, base, group, eval, local_cfg, trace)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join().unwrap_or_else(|payload| {
                            Err(ExploreError::GroupPanicked(panic_message(
                                payload.as_ref(),
                            )))
                        })
                    })
                    .collect()
            })
        } else {
            groups
                .iter()
                .zip(&configs)
                .map(|(group, local_cfg)| {
                    explore_group(&ranges, &base, group, &eval, local_cfg, trace)
                })
                .collect()
        };

        let mut all_early = true;
        let mut first_err = None;
        let mut failed_groups = 0usize;
        for result in group_results {
            let (indices, outcome) = match result {
                Ok(r) => r,
                Err(e) => {
                    // A fully-failing group cannot improve anything this
                    // round; drop its contribution but keep the others.
                    failed_groups += 1;
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                    continue;
                }
            };
            evals += outcome.evals;
            failed_trials += outcome.failed_trials;
            all_early &= outcome.stopped_early;
            if outcome.best_value < best_value {
                best_value = outcome.best_value;
                let mut full = base.clone();
                for (slot, &i) in indices.iter().enumerate() {
                    full[i] = outcome.best[slot];
                }
                best_observed = full;
            }
            // Fold the narrowed sub-ranges back into the full space.
            for (slot, &i) in indices.iter().enumerate() {
                let p = &outcome.narrowed.params()[slot];
                let name = ranges.params()[i].name.clone();
                ranges = ranges.with_range(&name, p.domain.lo(), p.domain.hi());
            }
        }
        if failed_groups == groups.len() && !groups.is_empty() {
            if let Some(err) = first_err {
                return Err(err);
            }
        }
        if all_early {
            break;
        }
    }

    Ok(StrategyOutcome {
        values: ranges.midpoint(),
        best_observed,
        best_value,
        evals,
        rounds,
        failed_trials,
    })
}

/// The local config for one group in one round, with a per-group journal
/// path derived from the shared one so parallel groups never collide.
fn group_config(base: &ExplorationConfig, round: usize, group: usize) -> ExplorationConfig {
    let mut config = base.clone();
    if let Some(path) = &base.journal {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "exploration".to_string());
        config.journal = Some(path.with_file_name(format!("{name}.r{round}.g{group}")));
    }
    config
}

/// Runs Algorithm 2 on one group's sub-space, evaluating full assignments
/// with non-group parameters fixed at `base`.
fn explore_group(
    ranges: &Space,
    base: &[f64],
    group: &[String],
    eval: impl Fn(&[f64]) -> f64,
    config: &ExplorationConfig,
    trace: &Trace,
) -> Result<(Vec<usize>, ExplorationOutcome), ExploreError> {
    let indices: Vec<usize> = group.iter().filter_map(|n| ranges.index_of(n)).collect();
    let sub = Space::new(
        indices
            .iter()
            .map(|&i| ranges.params()[i].clone())
            .collect(),
    );
    let outcome = explore_params_traced(
        &sub,
        |xs| {
            let mut full = base.to_vec();
            for (slot, &i) in indices.iter().enumerate() {
                full[i] = xs[slot];
            }
            eval(&full)
        },
        config,
        trace,
    )?;
    Ok((indices, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ParamSpec;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn bowl(space_dim: usize) -> Space {
        Space::new(
            (0..space_dim)
                .map(|i| ParamSpec::continuous(format!("x{i}"), -10.0, 10.0))
                .collect(),
        )
    }

    #[test]
    fn explore_params_finds_the_bowl_bottom() {
        let outcome = explore_params(
            &bowl(2),
            |v| v.iter().map(|x| (x - 2.0) * (x - 2.0)).sum(),
            &ExplorationConfig {
                max_evals: 150,
                early_stop: 60,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(outcome.best_value < 2.0, "best {}", outcome.best_value);
        assert!(outcome.evals <= 150);
    }

    #[test]
    fn traced_exploration_emits_one_record_per_trial() {
        let dir = std::env::temp_dir().join("puffer-explore-trace");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trials.jsonl");
        let trace = Trace::with_sink(&path).unwrap();
        let outcome = explore_params_traced(
            &bowl(1),
            |v| {
                if v[0] < 0.0 {
                    f64::NAN // a failing region → Failed trials
                } else {
                    v[0] * v[0]
                }
            },
            &ExplorationConfig {
                max_evals: 30,
                early_stop: 30,
                ..Default::default()
            },
            &trace,
        )
        .unwrap();
        trace.flush().unwrap();
        let records = puffer_trace::read_jsonl(&path).unwrap();
        let trials: Vec<_> = records
            .iter()
            .filter(|r| r.kind() == Some("explore.trial"))
            .collect();
        assert_eq!(trials.len(), outcome.evals);
        // Trial indices are the 0-based evaluation order.
        for (i, r) in trials.iter().enumerate() {
            assert_eq!(r.num("trial"), Some(i as f64));
            let status = r.str_field("status").unwrap();
            match status {
                "ok" => assert!(r.num("objective").unwrap().is_finite()),
                "failed" => assert!(r.str_field("error").is_some()),
                other => panic!("unexpected status {other:?}"),
            }
            assert!(r.get("params").is_some(), "params vector missing");
        }
        assert!(
            trials.iter().any(|r| r.str_field("status") == Some("ok")),
            "no successful trials traced"
        );
    }

    #[test]
    fn early_stop_limits_evaluations() {
        // Constant objective: nothing ever improves after the first eval.
        let outcome = explore_params(
            &bowl(1),
            |_| 1.0,
            &ExplorationConfig {
                max_evals: 500,
                early_stop: 12,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(outcome.stopped_early);
        assert!(outcome.evals <= 14);
    }

    #[test]
    fn ranges_narrow_around_the_optimum() {
        let outcome = explore_params(
            &bowl(1),
            |v| (v[0] - 4.0).abs(),
            &ExplorationConfig {
                max_evals: 120,
                early_stop: 120,
                ..Default::default()
            },
        )
        .unwrap();
        let d = outcome.narrowed.params()[0].domain;
        assert!(
            d.lo() > -10.0 || d.hi() < 10.0,
            "range should shrink: {d:?}"
        );
        assert!(
            d.lo() <= 4.0 && d.hi() >= 4.0,
            "optimum stays inside: {d:?}"
        );
    }

    #[test]
    fn strategy_exploration_converges_groupwise() {
        // Separable objective: groups can optimise independently.
        let space = bowl(4);
        let groups = vec![
            vec!["x0".to_string(), "x1".to_string()],
            vec!["x2".to_string(), "x3".to_string()],
        ];
        let target = [1.0, -2.0, 3.0, -4.0];
        let outcome = explore_strategy(
            &space,
            &groups,
            |v| v.iter().zip(&target).map(|(x, t)| (x - t) * (x - t)).sum(),
            &StrategyConfig::default(),
        )
        .unwrap();
        assert!(outcome.best_value < 20.0, "best {}", outcome.best_value);
        assert_eq!(outcome.values.len(), 4);
        // Final midpoints should be pulled towards the target.
        for (v, t) in outcome.values.iter().zip(&target) {
            assert!((v - t).abs() < 8.0, "{v} vs {t}");
        }
    }

    #[test]
    fn parallel_and_serial_agree_on_eval_counting() {
        let space = bowl(2);
        let groups = vec![vec!["x0".to_string()], vec!["x1".to_string()]];
        let count = AtomicUsize::new(0);
        let outcome = explore_strategy(
            &space,
            &groups,
            |v| {
                count.fetch_add(1, Ordering::Relaxed);
                v.iter().map(|x| x * x).sum()
            },
            &StrategyConfig {
                parallel: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(outcome.evals, count.load(Ordering::Relaxed));
    }

    #[test]
    fn unknown_group_members_are_skipped() {
        let space = bowl(1);
        let groups = vec![vec!["x0".to_string(), "ghost".to_string()]];
        let outcome = explore_strategy(
            &space,
            &groups,
            |v| v[0].abs(),
            &StrategyConfig {
                max_rounds: 1,
                parallel: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(outcome.values.len(), 1);
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("puffer-smbo-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn panicking_trials_are_isolated_and_recorded() {
        // A quarter of the domain panics; exploration must survive, count
        // the failures, and still find the bowl bottom outside the crater.
        let space = bowl(2);
        let outcome = explore_params(
            &space,
            |v| {
                if v[0] > 5.0 && v[1] > 5.0 {
                    panic!("deliberate objective crash at {v:?}");
                }
                v.iter().map(|x| x * x).sum()
            },
            &ExplorationConfig {
                max_evals: 120,
                early_stop: 120,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(outcome.failed_trials > 0, "crater was never sampled");
        assert!(outcome.best_value.is_finite());
        assert!(outcome.best_value < 25.0, "best {}", outcome.best_value);
        assert_eq!(outcome.evals, 120, "failed trials must count as evals");
    }

    #[test]
    fn always_failing_objective_is_an_error() {
        let space = bowl(1);
        let err = explore_params(
            &space,
            |_: &[f64]| -> f64 { panic!("nothing ever works") },
            &ExplorationConfig {
                max_evals: 50,
                max_consecutive_failures: 5,
                ..Default::default()
            },
        )
        .unwrap_err();
        match err {
            ExploreError::AllTrialsFailed {
                attempted,
                last_failure,
            } => {
                assert_eq!(attempted, 5, "failure budget bounds the attempts");
                assert!(last_failure.contains("nothing ever works"));
            }
            other => panic!("expected AllTrialsFailed, got {other}"),
        }
    }

    #[test]
    fn non_finite_objective_counts_as_failure() {
        let space = bowl(1);
        let outcome = explore_params(
            &space,
            |v| if v[0] < 0.0 { f64::NAN } else { v[0] },
            &ExplorationConfig {
                max_evals: 60,
                early_stop: 60,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(outcome.failed_trials > 0, "negative half never sampled");
        assert!(outcome.best_value >= 0.0);
    }

    #[test]
    fn consecutive_failures_stop_early_after_a_success() {
        let space = bowl(1);
        let evals = AtomicUsize::new(0);
        // First trial succeeds, everything after panics: the run should
        // stop at 1 success + max_consecutive_failures, not burn the budget.
        let outcome = explore_params(
            &space,
            |v| {
                if evals.fetch_add(1, Ordering::Relaxed) == 0 {
                    v[0] * v[0]
                } else {
                    panic!("flaky after warmup")
                }
            },
            &ExplorationConfig {
                max_evals: 200,
                early_stop: 200,
                max_consecutive_failures: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(outcome.stopped_early);
        assert_eq!(outcome.evals, 5);
        assert_eq!(outcome.failed_trials, 4);
        assert!(outcome.best_value.is_finite());
    }

    #[test]
    fn cancelled_budget_stops_with_best_so_far() {
        let space = bowl(1);
        let token = puffer_budget::CancelToken::new();
        let evals = AtomicUsize::new(0);
        let outcome = explore_params_bounded(
            &space,
            |v| {
                if evals.fetch_add(1, Ordering::Relaxed) == 4 {
                    token.cancel(); // cancel mid-run, after 5 evaluations
                }
                v[0] * v[0]
            },
            &ExplorationConfig {
                max_evals: 200,
                early_stop: 200,
                ..Default::default()
            },
            &Trace::disabled(),
            &Budget::unbounded().with_token(token.clone()),
            None,
        )
        .unwrap();
        assert!(outcome.stopped_early, "cancel must read as an early stop");
        assert_eq!(outcome.evals, 5, "no evaluation after the cancel");
        assert!(outcome.best_value.is_finite());
    }

    #[test]
    fn cap_trials_rung_caps_remaining_evaluations() {
        use puffer_budget::DegradationLadder;
        let space = bowl(1);
        // The first trial burns 15% of a 200 ms deadline, dropping the
        // remaining fraction below the rung's 0.9 threshold: the next poll
        // engages cap-trials and the run stops after exactly
        // CAPPED_TRIALS_REMAINING further (instant) evaluations — long
        // before the deadline itself would have.
        let ladder = DegradationLadder::parse("cap-trials@0.9").unwrap();
        let mut state = LadderState::new(ladder);
        let evals = AtomicUsize::new(0);
        let outcome = explore_params_bounded(
            &space,
            |v| {
                if evals.fetch_add(1, Ordering::Relaxed) == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(30));
                }
                v[0] * v[0]
            },
            &ExplorationConfig {
                max_evals: 500,
                early_stop: 500,
                ..Default::default()
            },
            &Trace::disabled(),
            &Budget::with_deadline(std::time::Duration::from_millis(200)),
            Some(&mut state),
        )
        .unwrap();
        assert!(state.is_engaged(DegradeStep::CapTrials));
        assert_eq!(
            outcome.evals,
            1 + CAPPED_TRIALS_REMAINING,
            "cap must stop the run right after engaging"
        );
    }

    #[test]
    fn journal_replay_skips_completed_trials() {
        let path = tmp("resume.ej");
        let space = bowl(2);
        let objective = |v: &[f64]| -> f64 {
            if v[0] > 8.0 {
                panic!("edge crash");
            }
            v.iter().map(|x| x * x).sum()
        };
        let config = ExplorationConfig {
            max_evals: 40,
            early_stop: 40,
            journal: Some(path.clone()),
            ..Default::default()
        };

        let live = AtomicUsize::new(0);
        let first = explore_params(
            &space,
            |v| {
                live.fetch_add(1, Ordering::Relaxed);
                objective(v)
            },
            &config,
        )
        .unwrap();
        assert_eq!(live.load(Ordering::Relaxed), 40);
        assert_eq!(first.evals, 40);

        // Same budget, same journal: every trial is replayed from disk and
        // the objective never runs again.
        let live2 = AtomicUsize::new(0);
        let second = explore_params(
            &space,
            |v| {
                live2.fetch_add(1, Ordering::Relaxed);
                objective(v)
            },
            &config,
        )
        .unwrap();
        assert_eq!(live2.load(Ordering::Relaxed), 0, "no evaluation repeated");
        assert_eq!(second.evals, 40);
        assert_eq!(second.failed_trials, first.failed_trials);
        assert_eq!(second.best_value, first.best_value);

        // A larger budget resumes: 40 replayed + 20 live.
        let live3 = AtomicUsize::new(0);
        let third = explore_params(
            &space,
            |v| {
                live3.fetch_add(1, Ordering::Relaxed);
                objective(v)
            },
            &ExplorationConfig {
                max_evals: 60,
                early_stop: 60,
                ..config.clone()
            },
        )
        .unwrap();
        assert_eq!(live3.load(Ordering::Relaxed), 20);
        assert_eq!(third.evals, 60);
        assert!(third.best_value <= first.best_value);
    }

    #[test]
    fn strategy_exploration_survives_a_panicking_region() {
        let space = bowl(2);
        let groups = vec![vec!["x0".to_string()], vec!["x1".to_string()]];
        let outcome = explore_strategy(
            &space,
            &groups,
            |v| {
                if v[0] < -9.0 {
                    panic!("strategy crash corner");
                }
                v.iter().map(|x| x * x).sum()
            },
            &StrategyConfig::default(),
        )
        .unwrap();
        assert!(outcome.best_value.is_finite());
        assert!(outcome.best_value < 20.0, "best {}", outcome.best_value);
    }

    #[test]
    fn strategy_group_journals_get_distinct_paths() {
        let base = ExplorationConfig {
            journal: Some(std::path::PathBuf::from("/tmp/run.ej")),
            ..Default::default()
        };
        let a = group_config(&base, 0, 0).journal.unwrap();
        let b = group_config(&base, 0, 1).journal.unwrap();
        let c = group_config(&base, 1, 0).journal.unwrap();
        assert_eq!(a, std::path::PathBuf::from("/tmp/run.ej.r0.g0"));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert!(group_config(&base, 2, 3).journal.is_some());
        assert!(group_config(&ExplorationConfig::default(), 0, 0)
            .journal
            .is_none());
    }
}
