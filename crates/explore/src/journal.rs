//! Append-only trial journal: every evaluated point and its outcome, one
//! line per trial, so a long exploration can be killed and resumed.
//!
//! Resuming replays the recorded trials into the TPE model (they count
//! against the evaluation budget) instead of re-running the expensive
//! objective. Unlike the placement checkpoint journal, a resumed
//! exploration is *not* bit-identical to an uninterrupted one — the
//! sampler's random stream restarts — but it is deterministic given the
//! journal contents, and no evaluation is ever repeated.
//!
//! ```text
//! puffer_exploration 1 <dim>
//! trial ok <y> <x0> ... <xdim-1>
//! trial failed <x0> ... <xdim-1> | <failure message>
//! ```
//!
//! A final line torn by a crash mid-write is dropped on load; malformed
//! text anywhere else is an error.

use crate::error::ExploreError;
use crate::smbo::TrialOutcome;
use puffer_budget::fsx;
use std::fmt::Write as _;
use std::path::Path;

/// Journal format version written by this build.
pub const JOURNAL_VERSION: u32 = 1;

/// An open, append-mode trial journal.
///
/// Writes go through [`fsx::AppendSink`] with a per-record fsync
/// ([`fsx::FsyncPolicy::EveryRecord`]): a trial is minutes of work, so a
/// recorded outcome must survive a crash the instant `record` returns.
#[derive(Debug)]
pub struct ExplorationJournal {
    sink: fsx::AppendSink,
}

/// One recorded trial: the evaluated point and what became of it.
pub type RecordedTrial = (Vec<f64>, TrialOutcome);

impl ExplorationJournal {
    /// Opens `path` for appending, creating it (with a header) when new,
    /// and returns the journal together with the trials already recorded —
    /// the resume set, empty for a fresh file.
    ///
    /// # Errors
    ///
    /// [`ExploreError::Journal`] when the file cannot be opened, is not a
    /// trial journal, or records a different dimensionality than `dim`.
    pub fn open(
        path: &Path,
        dim: usize,
    ) -> Result<(Self, Vec<RecordedTrial>), ExploreError> {
        let prior = if path.exists() {
            load(path, dim)?
        } else {
            Vec::new()
        };
        let empty = std::fs::metadata(path).map(|m| m.len() == 0).unwrap_or(true);
        let mut sink = fsx::AppendSink::append(path, fsx::FsyncPolicy::EveryRecord)
            .map_err(|e| ExploreError::Journal(format!("cannot open {}: {e}", path.display())))?;
        if empty {
            sink.write_record(
                format!("puffer_exploration {JOURNAL_VERSION} {dim}\n").as_bytes(),
            )
            .map_err(|e| ExploreError::Journal(format!("cannot write header: {e}")))?;
        }
        Ok((ExplorationJournal { sink }, prior))
    }

    /// Appends one trial as a single fsynced write, so a kill loses at
    /// most the line being written (which `open` then drops as torn).
    ///
    /// # Errors
    ///
    /// [`ExploreError::Journal`] when the write fails.
    pub fn record(&mut self, x: &[f64], outcome: &TrialOutcome) -> Result<(), ExploreError> {
        let mut line = String::from("trial");
        match outcome {
            TrialOutcome::Ok(y) => {
                let _ = write!(line, " ok {y:?}");
                for v in x {
                    let _ = write!(line, " {v:?}");
                }
            }
            TrialOutcome::Failed(msg) => {
                line.push_str(" failed");
                for v in x {
                    let _ = write!(line, " {v:?}");
                }
                // The message goes last, after a separator, so it may
                // contain spaces; newlines are flattened to keep the
                // one-line-per-trial invariant.
                let _ = write!(line, " | {}", msg.replace('\n', " "));
            }
        }
        line.push('\n');
        self.sink
            .write_record(line.as_bytes())
            .map_err(|e| ExploreError::Journal(format!("cannot append trial: {e}")))
    }
}

/// Reads all trials from a journal file (see the module docs for the
/// torn-tail rule).
fn load(path: &Path, dim: usize) -> Result<Vec<RecordedTrial>, ExploreError> {
    // The shared torn-tail rule (fsx): a final line a kill cut short is
    // dropped before validation; everything else must parse.
    let journal = fsx::read_journal_tail_tolerant(path, fsx::RecordShape::Line)
        .map_err(|e| ExploreError::Journal(format!("cannot read {}: {e}", path.display())))?;
    let mut lines = journal.records().iter().map(String::as_str).enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| ExploreError::Journal("empty journal".into()))?;
    let mut it = header.split_whitespace();
    if it.next() != Some("puffer_exploration") {
        return Err(ExploreError::Journal("not an exploration journal".into()));
    }
    let version: u32 = it
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| ExploreError::Journal("bad header version".into()))?;
    if version != JOURNAL_VERSION {
        return Err(ExploreError::Journal(format!(
            "unsupported journal version {version}"
        )));
    }
    let journal_dim: usize = it
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| ExploreError::Journal("bad header dimension".into()))?;
    if journal_dim != dim {
        return Err(ExploreError::Journal(format!(
            "journal is {journal_dim}-dimensional, space is {dim}-dimensional"
        )));
    }

    let mut trials = Vec::with_capacity(journal.len().saturating_sub(1));
    for (line_no, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        match parse_trial(line, dim) {
            Some(t) => trials.push(t),
            None => {
                return Err(ExploreError::Journal(format!(
                    "malformed trial at line {}",
                    line_no + 1
                )))
            }
        }
    }
    Ok(trials)
}

fn parse_trial(line: &str, dim: usize) -> Option<RecordedTrial> {
    let rest = line.strip_prefix("trial ")?;
    if let Some(rest) = rest.strip_prefix("ok ") {
        let fields: Vec<&str> = rest.split_whitespace().collect();
        if fields.len() != dim + 1 {
            return None;
        }
        let y: f64 = fields[0].parse().ok()?;
        let x = parse_floats(&fields[1..])?;
        y.is_finite().then_some((x, TrialOutcome::Ok(y)))
    } else if let Some(rest) = rest.strip_prefix("failed ") {
        let (coords, msg) = match rest.split_once(" | ") {
            Some((c, m)) => (c, m.to_string()),
            None => (rest, String::new()),
        };
        let fields: Vec<&str> = coords.split_whitespace().collect();
        if fields.len() != dim {
            return None;
        }
        let x = parse_floats(&fields)?;
        Some((x, TrialOutcome::Failed(msg)))
    } else {
        None
    }
}

fn parse_floats(fields: &[&str]) -> Option<Vec<f64>> {
    fields.iter().map(|f| f.parse().ok()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("puffer-explore-journal");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn record_and_reload_roundtrip() {
        let path = tmp("roundtrip.ej");
        let (mut j, prior) = ExplorationJournal::open(&path, 2).unwrap();
        assert!(prior.is_empty());
        j.record(&[1.5, -2.0], &TrialOutcome::Ok(0.25)).unwrap();
        j.record(
            &[0.0, 3.0],
            &TrialOutcome::Failed("boom: index 7 out of range".into()),
        )
        .unwrap();
        drop(j);
        let (_, replay) = ExplorationJournal::open(&path, 2).unwrap();
        assert_eq!(
            replay,
            vec![
                (vec![1.5, -2.0], TrialOutcome::Ok(0.25)),
                (
                    vec![0.0, 3.0],
                    TrialOutcome::Failed("boom: index 7 out of range".into())
                ),
            ]
        );
    }

    #[test]
    fn torn_tail_is_dropped() {
        let path = tmp("torn.ej");
        let (mut j, _) = ExplorationJournal::open(&path, 1).unwrap();
        j.record(&[1.0], &TrialOutcome::Ok(2.0)).unwrap();
        drop(j);
        // Emulate a kill mid-write: an incomplete trailing line.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("trial ok 3.0");
        text.truncate(text.len() - 4); // "trial ok" — no value, no coords
        std::fs::write(&path, text).unwrap();
        let (_, replay) = ExplorationJournal::open(&path, 1).unwrap();
        assert_eq!(replay.len(), 1);
    }

    #[test]
    fn malformed_middle_line_is_an_error() {
        let path = tmp("midcorrupt.ej");
        std::fs::write(
            &path,
            "puffer_exploration 1 1\ntrial ok NOTANUMBER 1.0\ntrial ok 2.0 1.0\n",
        )
        .unwrap();
        let err = ExplorationJournal::open(&path, 1).unwrap_err();
        assert!(err.to_string().contains("malformed"), "{err}");
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let path = tmp("dim.ej");
        let (mut j, _) = ExplorationJournal::open(&path, 2).unwrap();
        j.record(&[1.0, 2.0], &TrialOutcome::Ok(1.0)).unwrap();
        drop(j);
        let err = ExplorationJournal::open(&path, 3).unwrap_err();
        assert!(err.to_string().contains("dimensional"), "{err}");
    }

    #[test]
    fn non_journal_file_is_rejected() {
        let path = tmp("njf.ej");
        std::fs::write(&path, "hello\n").unwrap();
        let err = ExplorationJournal::open(&path, 1).unwrap_err();
        assert!(err.to_string().contains("not an exploration"), "{err}");
    }
}
