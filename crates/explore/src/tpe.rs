//! The tree-structured Parzen estimator (Bergstra et al., NeurIPS 2011).
//!
//! TPE models `p(x | y < y*)` and `p(x | y ≥ y*)` — the densities of
//! parameter values among the best γ fraction of observations (`l(x)`) and
//! the rest (`g(x)`) — with Parzen (kernel) estimators, and suggests the
//! candidate maximizing the ratio `l(x)/g(x)`, which is monotone in the
//! expected improvement.

use crate::space::{Domain, Space};
use puffer_rng::StdRng;

/// TPE configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TpeConfig {
    /// Fraction of observations treated as "good" (`γ`).
    pub gamma: f64,
    /// Random suggestions before the model kicks in.
    pub n_startup: usize,
    /// Candidates drawn from `l(x)` per suggestion.
    pub n_candidates: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpeConfig {
    fn default() -> Self {
        TpeConfig {
            gamma: 0.25,
            n_startup: 10,
            n_candidates: 24,
            seed: 7,
        }
    }
}

/// A TPE sampler over a fixed [`Space`].
#[derive(Debug, Clone)]
pub struct Tpe {
    space: Space,
    config: TpeConfig,
    observations: Vec<(Vec<f64>, f64)>,
    rng: StdRng,
}

impl Tpe {
    /// Creates a sampler.
    pub fn new(space: Space, config: TpeConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        Tpe {
            space,
            config,
            observations: Vec::new(),
            rng,
        }
    }

    /// The space being sampled.
    pub fn space(&self) -> &Space {
        &self.space
    }

    /// All `(assignment, value)` observations so far.
    pub fn observations(&self) -> &[(Vec<f64>, f64)] {
        &self.observations
    }

    /// Records an evaluated assignment (`obs = obs ∪ (x, y)` of Alg. 2).
    ///
    /// # Panics
    ///
    /// Panics if the assignment length does not match the space.
    pub fn observe(&mut self, x: Vec<f64>, y: f64) {
        assert_eq!(x.len(), self.space.len(), "assignment length mismatch");
        self.observations.push((x, y));
    }

    /// Suggests the next assignment to evaluate (`getParam` of Alg. 2).
    pub fn suggest(&mut self) -> Vec<f64> {
        if self.observations.len() < self.config.n_startup || self.space.is_empty() {
            return self.random_assignment();
        }
        // Split at the γ quantile (at least one observation on each side).
        let mut order: Vec<usize> = (0..self.observations.len()).collect();
        order.sort_by(|&a, &b| self.observations[a].1.total_cmp(&self.observations[b].1));
        let n_good = ((self.observations.len() as f64 * self.config.gamma).ceil() as usize)
            .clamp(1, self.observations.len() - 1);
        let good: Vec<Vec<f64>> = order[..n_good]
            .iter()
            .map(|&i| self.observations[i].0.clone())
            .collect();
        let bad: Vec<Vec<f64>> = order[n_good..]
            .iter()
            .map(|&i| self.observations[i].0.clone())
            .collect();

        // Seed `best` with a first draw so the selection never starts empty,
        // then keep the highest-scoring of the remaining candidates.
        let first = self.draw_from(&good);
        let first_score = self.log_ratio(&first, &good, &bad);
        let mut best: (Vec<f64>, f64) = (first, first_score);
        for _ in 1..self.config.n_candidates.max(1) {
            let cand = self.draw_from(&good);
            let score = self.log_ratio(&cand, &good, &bad);
            if score > best.1 {
                best = (cand, score);
            }
        }
        let mut out = best.0;
        self.space.canon(&mut out);
        out
    }

    fn random_assignment(&mut self) -> Vec<f64> {
        let mut v: Vec<f64> = self
            .space
            .params()
            .iter()
            .map(|p| match p.domain {
                Domain::Continuous { lo, hi } => self.rng.gen_range(lo..hi),
                Domain::Integer { lo, hi } => self.rng.gen_range(lo..=hi) as f64,
                Domain::Categorical { choices } => self.rng.gen_range(0..choices) as f64,
            })
            .collect();
        self.space.canon(&mut v);
        v
    }

    /// Draws a candidate from the Parzen mixture of the good set: pick a
    /// kernel centre uniformly, perturb with the per-dimension bandwidth.
    fn draw_from(&mut self, good: &[Vec<f64>]) -> Vec<f64> {
        let centre = good[self.rng.gen_range(0..good.len())].clone();
        let mut out = Vec::with_capacity(centre.len());
        for (d, p) in self.space.params().iter().enumerate() {
            match p.domain {
                Domain::Categorical { choices } => {
                    // Resample from the smoothed categorical of the good set.
                    let mut counts = vec![1.0; choices]; // +1 prior
                    for g in good {
                        counts[g[d] as usize] += 1.0;
                    }
                    let total: f64 = counts.iter().sum();
                    let mut u = self.rng.gen_range(0.0..total);
                    let mut pick = choices - 1;
                    for (i, &c) in counts.iter().enumerate() {
                        if u < c {
                            pick = i;
                            break;
                        }
                        u -= c;
                    }
                    out.push(pick as f64);
                }
                _ => {
                    let bw = bandwidth(p.domain.lo(), p.domain.hi(), good.len());
                    // Box–Muller normal perturbation.
                    let u1: f64 = self.rng.gen_range(1e-12..1.0);
                    let u2: f64 = self.rng.gen_range(0.0..std::f64::consts::TAU);
                    let z = (-2.0 * u1.ln()).sqrt() * u2.cos();
                    out.push(p.domain.canon(centre[d] + z * bw));
                }
            }
        }
        out
    }

    /// `log l(x) − log g(x)` under the two Parzen mixtures.
    fn log_ratio(&self, x: &[f64], good: &[Vec<f64>], bad: &[Vec<f64>]) -> f64 {
        self.log_density(x, good) - self.log_density(x, bad)
    }

    fn log_density(&self, x: &[f64], set: &[Vec<f64>]) -> f64 {
        let mut log_p = 0.0;
        for (d, p) in self.space.params().iter().enumerate() {
            match p.domain {
                Domain::Categorical { choices } => {
                    let mut counts = vec![1.0; choices];
                    for s in set {
                        counts[s[d] as usize] += 1.0;
                    }
                    let total: f64 = counts.iter().sum();
                    log_p += (counts[x[d] as usize] / total).ln();
                }
                _ => {
                    let bw = bandwidth(p.domain.lo(), p.domain.hi(), set.len());
                    // Mixture of Gaussians at the set's values.
                    let mut density = 0.0;
                    for s in set {
                        let z = (x[d] - s[d]) / bw;
                        density += (-0.5 * z * z).exp();
                    }
                    density /= set.len() as f64 * bw * (std::f64::consts::TAU).sqrt();
                    log_p += density.max(1e-300).ln();
                }
            }
        }
        log_p
    }
}

/// Scott-style bandwidth: range shrinking with the number of kernels.
fn bandwidth(lo: f64, hi: f64, n: usize) -> f64 {
    let range = (hi - lo).max(1e-12);
    range / (1.0 + (n as f64).powf(0.4))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ParamSpec;

    fn space1d() -> Space {
        Space::new(vec![ParamSpec::continuous("x", 0.0, 10.0)])
    }

    #[test]
    fn startup_phase_is_random_and_in_bounds() {
        let mut tpe = Tpe::new(space1d(), TpeConfig::default());
        for _ in 0..20 {
            let s = tpe.suggest();
            assert!(s[0] >= 0.0 && s[0] <= 10.0);
        }
    }

    #[test]
    fn suggestions_concentrate_near_optimum() {
        // f(x) = (x-3)^2; after observations TPE should propose near 3.
        let mut tpe = Tpe::new(
            space1d(),
            TpeConfig {
                seed: 3,
                ..TpeConfig::default()
            },
        );
        for _ in 0..60 {
            let x = tpe.suggest();
            let y = (x[0] - 3.0) * (x[0] - 3.0);
            tpe.observe(x, y);
        }
        let late: Vec<f64> = (0..20)
            .map(|_| {
                let x = tpe.suggest();
                let v = x[0];
                let y = (v - 3.0) * (v - 3.0);
                tpe.observe(x, y);
                v
            })
            .collect();
        let mean_dist = late.iter().map(|v| (v - 3.0).abs()).sum::<f64>() / late.len() as f64;
        assert!(
            mean_dist < 2.0,
            "late suggestions too far: mean |x-3| = {mean_dist}"
        );
    }

    #[test]
    fn categorical_learns_the_good_choice() {
        let space = Space::new(vec![ParamSpec::categorical("k", 4)]);
        let mut tpe = Tpe::new(
            space,
            TpeConfig {
                seed: 5,
                ..TpeConfig::default()
            },
        );
        for _ in 0..60 {
            let x = tpe.suggest();
            let y = if x[0] as usize == 2 { 0.0 } else { 1.0 };
            tpe.observe(x, y);
        }
        let picks: Vec<usize> = (0..20)
            .map(|_| {
                let x = tpe.suggest();
                let k = x[0] as usize;
                tpe.observe(x.clone(), if k == 2 { 0.0 } else { 1.0 });
                k
            })
            .collect();
        let hits = picks.iter().filter(|&&k| k == 2).count();
        assert!(hits >= 10, "picked the good category only {hits}/20 times");
    }

    #[test]
    fn integer_suggestions_are_integral() {
        let space = Space::new(vec![ParamSpec::integer("n", 1, 6)]);
        let mut tpe = Tpe::new(space, TpeConfig::default());
        for _ in 0..30 {
            let x = tpe.suggest();
            assert_eq!(x[0], x[0].round());
            assert!((1.0..=6.0).contains(&x[0]));
            tpe.observe(x.clone(), x[0]);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let run = || {
            let mut tpe = Tpe::new(
                space1d(),
                TpeConfig {
                    seed: 11,
                    ..TpeConfig::default()
                },
            );
            let mut xs = Vec::new();
            for _ in 0..15 {
                let x = tpe.suggest();
                tpe.observe(x.clone(), x[0]);
                xs.push(x[0]);
            }
            xs
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn observe_checks_length() {
        let mut tpe = Tpe::new(space1d(), TpeConfig::default());
        tpe.observe(vec![1.0, 2.0], 0.0);
    }
}
