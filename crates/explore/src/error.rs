//! Typed errors for the exploration crate.

use std::fmt;

/// Why an exploration run failed outright (individual trial failures are
/// tolerated and recorded; see `TrialOutcome`).
#[derive(Debug)]
pub enum ExploreError {
    /// The objective failed (panicked or returned a non-finite value) on
    /// every attempt, so there is nothing to model or return.
    AllTrialsFailed {
        /// Trials attempted before giving up.
        attempted: usize,
        /// Message of the most recent failure.
        last_failure: String,
    },
    /// A trial journal could not be written, read, or replayed.
    Journal(String),
    /// A group-exploration thread died outside the panic-isolated
    /// objective — a bug in the exploration driver itself.
    GroupPanicked(String),
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::AllTrialsFailed {
                attempted,
                last_failure,
            } => write!(
                f,
                "all {attempted} exploration trials failed (last: {last_failure})"
            ),
            ExploreError::Journal(m) => write!(f, "exploration journal failed: {m}"),
            ExploreError::GroupPanicked(m) => {
                write!(f, "group exploration thread panicked: {m}")
            }
        }
    }
}

impl std::error::Error for ExploreError {}
