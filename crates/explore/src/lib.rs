//! Bayesian strategy exploration via SMBO with the tree-structured Parzen
//! estimator (paper §III-C, Algorithms 2–3).
//!
//! Placement is an evaluation-expensive, derivative-free black box; instead
//! of manual tuning, PUFFER searches its strategy space with sequential
//! model-based optimization (SMBO) using the TPE of Bergstra et al. This
//! crate implements the scheme generically so it works for "other black-box
//! problems with configurable strategy parameters", as the paper claims:
//!
//! * [`space`] — parameter spaces (continuous / integer / categorical);
//! * [`tpe`] — the TPE sampler: split observations at the γ quantile, model
//!   the good and bad sets with Parzen (kernel) density estimators, and
//!   suggest the candidate maximizing `l(x)/g(x)`;
//! * [`smbo`] — Algorithm 2 (parameter exploration with an early-stop
//!   counter and range updating) and Algorithm 3 (global exploration, then
//!   grouped local exploration — groups run in parallel threads).
//!
//! # Example
//!
//! ```
//! use puffer_explore::{Domain, ParamSpec, Space, explore_params, ExplorationConfig};
//! let space = Space::new(vec![
//!     ParamSpec::continuous("x", -5.0, 5.0),
//!     ParamSpec::continuous("y", -5.0, 5.0),
//! ]);
//! // Minimise a shifted bowl.
//! let outcome = explore_params(
//!     &space,
//!     |v| (v[0] - 1.0).powi(2) + (v[1] + 2.0).powi(2),
//!     &ExplorationConfig { max_evals: 120, ..ExplorationConfig::default() },
//! ).unwrap();
//! assert!(outcome.best_value < 1.0);
//! # let _ = Domain::Continuous { lo: 0.0, hi: 1.0 };
//! ```

#![forbid(unsafe_code)]

pub mod error;
pub mod journal;
pub mod smbo;
pub mod space;
pub mod tpe;

pub use error::ExploreError;
pub use journal::ExplorationJournal;
pub use smbo::{
    explore_params, explore_params_bounded, explore_params_traced, explore_strategy,
    explore_strategy_traced, ExplorationConfig, ExplorationOutcome, StrategyConfig,
    StrategyOutcome, TrialOutcome, CAPPED_TRIALS_REMAINING,
};
pub use space::{Domain, ParamSpec, Space};
pub use tpe::{Tpe, TpeConfig};
