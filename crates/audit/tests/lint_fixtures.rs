//! Fixture workspaces for the lint driver: each rule must trip on a
//! minimal source that violates it and stay quiet on the clean variant,
//! and the waiver machinery must suppress, budget, and stale-check.

use puffer_audit::{lint_workspace, LintConfig, LintError, LintReport};
use std::path::PathBuf;

const FORBID: &str = "#![forbid(unsafe_code)]\n";

/// A throwaway fixture workspace under the system temp dir.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Fixture {
        let root = std::env::temp_dir().join("puffer-lint-fixtures").join(name);
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("crates")).unwrap();
        Fixture { root }
    }

    /// Adds `crates/<dir>` with a manifest naming `package`, workspace
    /// dependencies `deps`, and the given `lib.rs` source.
    fn add_crate(&self, dir: &str, package: &str, deps: &[&str], lib: &str) -> &Fixture {
        let c = self.root.join("crates").join(dir);
        std::fs::create_dir_all(c.join("src")).unwrap();
        let mut manifest = format!("[package]\nname = \"{package}\"\n\n[dependencies]\n");
        for d in deps {
            manifest.push_str(&format!("{d}.workspace = true\n"));
        }
        std::fs::write(c.join("Cargo.toml"), manifest).unwrap();
        std::fs::write(c.join("src/lib.rs"), lib).unwrap();
        self
    }

    fn write(&self, rel: &str, content: &str) -> &Fixture {
        let path = self.root.join(rel);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, content).unwrap();
        self
    }

    fn lint(&self) -> Result<LintReport, LintError> {
        lint_workspace(&LintConfig {
            root: self.root.clone(),
        })
    }
}

fn rules_of(report: &LintReport) -> Vec<&str> {
    report.findings.iter().map(|f| f.rule).collect()
}

#[test]
fn clean_crate_produces_no_findings() {
    let fx = Fixture::new("clean");
    fx.add_crate(
        "db",
        "puffer-db",
        &[],
        &format!("{FORBID}pub fn ok() -> Option<u8> {{ None }}\n"),
    );
    let report = fx.lint().unwrap();
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.crates_scanned, 1);
    assert_eq!(report.files_scanned, 1);
}

#[test]
fn unwrap_in_library_code_is_a_no_panic_finding() {
    let fx = Fixture::new("no-panic");
    fx.add_crate(
        "db",
        "puffer-db",
        &[],
        &format!("{FORBID}pub fn bad(v: Option<u8>) -> u8 {{ v.unwrap() }}\n"),
    );
    let report = fx.lint().unwrap();
    assert_eq!(rules_of(&report), vec!["no-panic"]);
    assert_eq!(report.findings[0].line, 2);
    assert_eq!(report.findings[0].path, "crates/db/src/lib.rs");
}

#[test]
fn test_blocks_strings_and_comments_do_not_trip_no_panic() {
    let fx = Fixture::new("masked");
    let lib = format!(
        "{FORBID}\
         // a comment mentioning x.unwrap() is fine\n\
         pub const HINT: &str = \"call .unwrap() at your peril\";\n\
         #[cfg(test)]\n\
         mod tests {{\n\
             #[test]\n\
             fn t() {{ Some(1).unwrap(); panic!(\"in tests this is fine\") }}\n\
         }}\n"
    );
    fx.add_crate("db", "puffer-db", &[], &lib);
    let report = fx.lint().unwrap();
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn binary_roots_are_exempt_from_no_panic() {
    let fx = Fixture::new("bin-exempt");
    fx.add_crate(
        "db",
        "puffer-db",
        &[],
        &format!("{FORBID}pub fn ok() {{}}\n"),
    );
    fx.write(
        "crates/db/src/main.rs",
        &format!("{FORBID}fn main() {{ std::env::args().next().unwrap(); }}\n"),
    );
    let report = fx.lint().unwrap();
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn bare_thread_spawn_is_always_a_finding() {
    let fx = Fixture::new("spawn");
    // Even in the sanctioned scoped-thread crates, bare spawn is banned.
    fx.add_crate(
        "route",
        "puffer-route",
        &[],
        &format!("{FORBID}pub fn run() {{ std::thread::spawn(|| ()); }}\n"),
    );
    let report = fx.lint().unwrap();
    assert_eq!(rules_of(&report), vec!["no-bare-spawn"]);
}

#[test]
fn thread_scope_is_sanctioned_only_in_route_and_congest() {
    let scope_src = format!("{FORBID}pub fn run() {{ std::thread::scope(|_| ()); }}\n");

    let fx = Fixture::new("scope-ok");
    fx.add_crate("congest", "puffer-congest", &[], &scope_src);
    assert!(fx.lint().unwrap().findings.is_empty());

    let fx = Fixture::new("scope-bad");
    fx.add_crate("db", "puffer-db", &[], &scope_src);
    let report = fx.lint().unwrap();
    assert_eq!(rules_of(&report), vec!["no-bare-spawn"]);
}

#[test]
fn thread_scope_in_the_fork_join_layer_is_sanctioned() {
    // puffer-par *is* the deterministic fork-join layer: its scoped
    // threads are the one place the workspace is allowed to spawn.
    let fx = Fixture::new("scope-par-ok");
    fx.add_crate(
        "par",
        "puffer-par",
        &[],
        &format!("{FORBID}pub fn run() {{ std::thread::scope(|_| ()); }}\n"),
    );
    let report = fx.lint().unwrap();
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn thread_scope_elsewhere_recommends_puffer_par() {
    // A kernel crate reaching for thread::scope directly must be pointed
    // at the sanctioned fork-join layer instead.
    let fx = Fixture::new("scope-place-bad");
    fx.add_crate(
        "place",
        "puffer-place",
        &[],
        &format!("{FORBID}pub fn run() {{ std::thread::scope(|_| ()); }}\n"),
    );
    let report = fx.lint().unwrap();
    assert_eq!(rules_of(&report), vec!["no-bare-spawn"]);
    assert!(
        report.findings[0].message.contains("puffer-par"),
        "finding should point at the fork-join layer: {}",
        report.findings[0].message
    );
}

#[test]
fn missing_forbid_unsafe_is_a_finding() {
    let fx = Fixture::new("forbid");
    fx.add_crate("db", "puffer-db", &[], "pub fn ok() {}\n");
    let report = fx.lint().unwrap();
    assert_eq!(rules_of(&report), vec!["forbid-unsafe"]);
    assert_eq!(report.findings[0].line, 0);
}

#[test]
fn upward_dependency_is_a_layering_finding() {
    let fx = Fixture::new("layering-up");
    // puffer-db (layer 0) depending on puffer (layer 4) points upward.
    fx.add_crate(
        "db",
        "puffer-db",
        &["puffer"],
        &format!("{FORBID}pub fn ok() {{}}\n"),
    );
    let report = fx.lint().unwrap();
    assert_eq!(rules_of(&report), vec!["layering"]);
    assert!(report.findings[0].message.contains("strictly downward"));
}

#[test]
fn unknown_crate_is_a_layering_finding() {
    let fx = Fixture::new("layering-unknown");
    fx.add_crate(
        "mystery",
        "puffer-mystery",
        &[],
        &format!("{FORBID}pub fn ok() {{}}\n"),
    );
    let report = fx.lint().unwrap();
    assert_eq!(rules_of(&report), vec!["layering"]);
    assert!(report.findings[0].message.contains("layer table"));
}

#[test]
fn waiver_suppresses_a_finding_and_counts_it() {
    let fx = Fixture::new("waive");
    fx.add_crate(
        "db",
        "puffer-db",
        &[],
        &format!("{FORBID}pub fn bad(v: Option<u8>) -> u8 {{ v.unwrap() }}\n"),
    );
    fx.write(
        "lint-allow.toml",
        "[[allow]]\n\
         rule = \"no-panic\"\n\
         path = \"crates/db/src/lib.rs\"\n\
         reason = \"fixture exercising the waiver machinery\"\n",
    );
    let report = fx.lint().unwrap();
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.waived, 1);
}

#[test]
fn stale_waiver_is_itself_a_finding() {
    let fx = Fixture::new("stale-waiver");
    fx.add_crate(
        "db",
        "puffer-db",
        &[],
        &format!("{FORBID}pub fn ok() {{}}\n"),
    );
    fx.write(
        "lint-allow.toml",
        "[[allow]]\n\
         rule = \"no-panic\"\n\
         path = \"crates/db/src/lib.rs\"\n\
         reason = \"nothing here fires any more\"\n",
    );
    let report = fx.lint().unwrap();
    assert_eq!(rules_of(&report), vec!["waiver"]);
    assert!(report.findings[0].message.contains("stale"));
}

#[test]
fn waiver_budget_is_enforced() {
    let fx = Fixture::new("waiver-budget");
    fx.add_crate(
        "db",
        "puffer-db",
        &[],
        &format!("{FORBID}pub fn ok() {{}}\n"),
    );
    let mut allow = String::new();
    for i in 0..11 {
        allow.push_str(&format!(
            "[[allow]]\nrule = \"no-panic\"\npath = \"crates/db/src/f{i}.rs\"\n\
             reason = \"padding out the waiver budget\"\n"
        ));
    }
    fx.write("lint-allow.toml", &allow);
    let err = fx.lint().unwrap_err();
    assert!(matches!(err, LintError::Waiver(_)), "{err}");
    assert!(err.to_string().contains("budget"));
}

#[test]
fn waiver_without_a_real_reason_is_rejected() {
    let fx = Fixture::new("waiver-reason");
    fx.add_crate(
        "db",
        "puffer-db",
        &[],
        &format!("{FORBID}pub fn ok() {{}}\n"),
    );
    fx.write(
        "lint-allow.toml",
        "[[allow]]\nrule = \"no-panic\"\npath = \"crates/db/src/lib.rs\"\nreason = \"because\"\n",
    );
    let err = fx.lint().unwrap_err();
    assert!(matches!(err, LintError::Waiver(_)), "{err}");
    assert!(err.to_string().contains("justification"));
}

#[test]
fn missing_crates_dir_is_a_bad_root() {
    let root = std::env::temp_dir()
        .join("puffer-lint-fixtures")
        .join("not-a-workspace");
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    let err = lint_workspace(&LintConfig { root }).unwrap_err();
    assert!(matches!(err, LintError::BadRoot(_)), "{err}");
}

#[test]
fn the_real_workspace_passes_its_own_lint() {
    // CARGO_MANIFEST_DIR is crates/audit; the workspace root is two up.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .unwrap()
        .to_path_buf();
    let report = lint_workspace(&LintConfig { root }).unwrap();
    assert!(
        report.findings.is_empty(),
        "the repository must lint clean:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn bare_numeric_cast_in_a_hot_crate_is_a_finding() {
    let fx = Fixture::new("cast-hot");
    fx.add_crate(
        "db",
        "puffer-db",
        &[],
        &format!("{FORBID}pub fn bin(x: f64) -> usize {{ x as usize }}\n"),
    );
    let report = fx.lint().unwrap();
    assert_eq!(rules_of(&report), vec!["cast"]);
    assert_eq!(report.findings[0].line, 2);
    assert!(report.findings[0].message.contains("`as usize`"));
    assert!(report.findings[0].message.contains("puffer_db::cast"));
}

#[test]
fn casts_in_tests_the_helper_module_and_cold_crates_are_exempt() {
    // cast.rs is the sanctioned home of the bare casts the helpers wrap.
    let fx = Fixture::new("cast-exempt");
    fx.add_crate(
        "db",
        "puffer-db",
        &[],
        &format!(
            "{FORBID}pub mod cast;\n\
             #[cfg(test)]\n\
             mod tests {{\n\
                 #[test]\n\
                 fn t() {{ assert_eq!(3.7 as usize, crate::cast::trunc_idx(3.7)); }}\n\
             }}\n"
        ),
    );
    fx.write(
        "crates/db/src/cast.rs",
        "pub fn trunc_idx(x: f64) -> usize {\n    x as usize\n}\n",
    );
    // Cold crates (not in the hot list) may still cast bare.
    fx.add_crate(
        "trace",
        "puffer-trace",
        &[],
        &format!("{FORBID}pub fn pct(n: usize) -> f64 {{ n as f64 }}\n"),
    );
    let report = fx.lint().unwrap();
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn hash_map_in_library_code_is_an_unordered_iter_finding() {
    let fx = Fixture::new("unordered");
    fx.add_crate(
        "trace",
        "puffer-trace",
        &[],
        &format!(
            "{FORBID}use std::collections::HashMap;\n\
             pub fn build() -> HashMap<String, u32> {{ HashMap::new() }}\n"
        ),
    );
    let report = fx.lint().unwrap();
    assert_eq!(rules_of(&report), vec!["unordered-iter", "unordered-iter"]);
    assert!(report.findings[0].message.contains("random order"));
}

#[test]
fn btree_map_and_test_only_hash_map_are_clean() {
    let fx = Fixture::new("unordered-clean");
    fx.add_crate(
        "trace",
        "puffer-trace",
        &[],
        &format!(
            "{FORBID}use std::collections::BTreeMap;\n\
             pub fn build() -> BTreeMap<String, u32> {{ BTreeMap::new() }}\n\
             #[cfg(test)]\n\
             mod tests {{\n\
                 use std::collections::HashMap;\n\
                 #[test]\n\
                 fn t() {{ let _ = HashMap::<u8, u8>::new(); }}\n\
             }}\n"
        ),
    );
    let report = fx.lint().unwrap();
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn instant_now_outside_the_clock_crates_is_a_wallclock_finding() {
    let fx = Fixture::new("wallclock");
    fx.add_crate(
        "place",
        "puffer-place",
        &[],
        &format!(
            "{FORBID}pub fn stamp() -> std::time::Instant {{ std::time::Instant::now() }}\n"
        ),
    );
    let report = fx.lint().unwrap();
    assert_eq!(rules_of(&report), vec!["wallclock"]);
    assert!(report.findings[0].message.contains("puffer_budget::clock"));
}

#[test]
fn the_clock_crates_may_read_the_wall_clock() {
    // puffer-budget and puffer-trace *implement* the timing facade.
    let src =
        format!("{FORBID}pub fn stamp() -> std::time::Instant {{ std::time::Instant::now() }}\n");
    let fx = Fixture::new("wallclock-exempt");
    fx.add_crate("budget", "puffer-budget", &[], &src);
    fx.add_crate("trace", "puffer-trace", &["puffer-budget"], &src);
    let report = fx.lint().unwrap();
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn raw_mutex_lock_is_a_lock_order_finding() {
    let fx = Fixture::new("raw-lock");
    fx.add_crate(
        "trace",
        "puffer-trace",
        &[],
        &format!(
            "{FORBID}pub fn peek(m: &std::sync::Mutex<u32>) {{ let _g = m.lock(); }}\n"
        ),
    );
    let report = fx.lint().unwrap();
    assert_eq!(rules_of(&report), vec!["lock-order"]);
    assert!(report.findings[0].message.contains("lock_ordered"));
}

/// The rank registry a lock-order fixture workspace needs: the analysis
/// parses it from `crates/budget/src/lockcheck.rs`, exactly like the real
/// workspace.
const FIXTURE_RANKS: &str = "\
    use super::LockClass;\n\
    pub mod classes {\n\
        pub static SERVE_QUEUE: LockClass = LockClass::new(\"serve.queue\", 10);\n\
        pub static SERVE_JOBS: LockClass = LockClass::new(\"serve.jobs\", 20);\n\
    }\n";

fn lock_order_fixture(name: &str, body: &str) -> Fixture {
    let fx = Fixture::new(name);
    fx.add_crate(
        "budget",
        "puffer-budget",
        &[],
        &format!("{FORBID}pub mod lockcheck;\n"),
    );
    fx.write("crates/budget/src/lockcheck.rs", FIXTURE_RANKS);
    fx.add_crate(
        "serve",
        "puffer-serve",
        &["puffer-budget"],
        &format!("{FORBID}use puffer_budget::lockcheck::{{classes, lock_ordered}};\n{body}"),
    );
    fx
}

#[test]
fn inverted_lock_acquisition_contradicts_the_declared_order() {
    let fx = lock_order_fixture(
        "lock-inverted",
        "pub fn inverted(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {\n\
             let hi = lock_ordered(b, &classes::SERVE_JOBS);\n\
             let lo = lock_ordered(a, &classes::SERVE_QUEUE);\n\
             *hi + *lo\n\
         }\n",
    );
    let report = fx.lint().unwrap();
    assert_eq!(rules_of(&report), vec!["lock-order"]);
    assert!(
        report.findings[0]
            .message
            .contains("'serve.queue' (rank 10) while 'serve.jobs' (rank 20)"),
        "{}",
        report.findings[0].message
    );
}

#[test]
fn in_order_lock_acquisition_passes() {
    let fx = lock_order_fixture(
        "lock-ordered",
        "pub fn ordered(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {\n\
             let lo = lock_ordered(a, &classes::SERVE_QUEUE);\n\
             let hi = lock_ordered(b, &classes::SERVE_JOBS);\n\
             *lo + *hi\n\
         }\n",
    );
    let report = fx.lint().unwrap();
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn raw_write_primitives_in_library_code_are_raw_io_findings() {
    let fx = Fixture::new("raw-io");
    fx.add_crate(
        "trace",
        "puffer-trace",
        &[],
        &format!(
            "{FORBID}use std::fs::{{self, File}};\n\
             pub fn bad(p: &std::path::Path) -> std::io::Result<()> {{\n\
                 let f = File::create(p)?;\n\
                 fs::write(p, b\"x\")?;\n\
                 fs::rename(p, p)?;\n\
                 f.sync_all()\n\
             }}\n"
        ),
    );
    let report = fx.lint().unwrap();
    assert_eq!(
        rules_of(&report),
        vec!["raw-io", "raw-io", "raw-io", "raw-io"]
    );
    assert_eq!(report.findings[0].line, 4);
    assert!(
        report.findings[0].message.contains("fsx::atomic_write"),
        "{}",
        report.findings[0].message
    );
}

#[test]
fn raw_io_is_sanctioned_in_fsx_binaries_and_tests() {
    let raw = "pub fn w(p: &std::path::Path) {\n    let _ = std::fs::write(p, b\"x\");\n}\n";
    // The durable layer itself is the one sanctioned home of the
    // primitives it wraps.
    let fx = Fixture::new("raw-io-exempt");
    fx.add_crate(
        "budget",
        "puffer-budget",
        &[],
        &format!("{FORBID}pub mod fsx;\n"),
    );
    fx.write("crates/budget/src/fsx.rs", raw);
    // Binary roots and #[cfg(test)] blocks are outside the rule, like
    // every other library-only lint.
    fx.write(
        "crates/budget/src/main.rs",
        &format!("{FORBID}fn main() {{ let _ = std::fs::write(\"x\", b\"y\"); }}\n"),
    );
    fx.add_crate(
        "trace",
        "puffer-trace",
        &["puffer-budget"],
        &format!(
            "{FORBID}pub fn ok() {{}}\n\
             #[cfg(test)]\n\
             mod tests {{\n\
                 #[test]\n\
                 fn t() {{ std::fs::write(\"t\", b\"fixture\").unwrap(); }}\n\
             }}\n"
        ),
    );
    let report = fx.lint().unwrap();
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn waiver_for_a_deleted_file_is_a_finding() {
    let fx = Fixture::new("waiver-gone");
    fx.add_crate(
        "db",
        "puffer-db",
        &[],
        &format!("{FORBID}pub fn ok() {{}}\n"),
    );
    fx.write(
        "lint-allow.toml",
        "[[allow]]\n\
         rule = \"no-panic\"\n\
         path = \"crates/db/src/deleted_module.rs\"\n\
         reason = \"this file was removed in a refactor\"\n",
    );
    let report = fx.lint().unwrap();
    assert_eq!(rules_of(&report), vec!["waiver"]);
    assert!(
        report.findings[0].message.contains("no longer exists"),
        "{}",
        report.findings[0].message
    );
}

#[test]
fn json_lines_emits_one_flat_object_per_finding() {
    let fx = Fixture::new("json");
    fx.add_crate(
        "db",
        "puffer-db",
        &[],
        &format!("{FORBID}pub fn bad(v: Option<u8>) -> u8 {{ v.unwrap() }}\n"),
    );
    let report = fx.lint().unwrap();
    let json = report.json_lines();
    let lines: Vec<&str> = json.lines().collect();
    assert_eq!(lines.len(), 1);
    assert!(lines[0].starts_with("{\"rule\":\"no-panic\""), "{json}");
    assert!(lines[0].contains("\"path\":\"crates/db/src/lib.rs\""), "{json}");
    assert!(lines[0].contains("\"line\":2"), "{json}");
    assert!(lines[0].ends_with('}'), "{json}");
    assert!(json.ends_with('\n'), "json_lines output must be newline-terminated");
}
