//! Static analysis and invariant verification for the PUFFER workspace.
//!
//! The placement flow's quality claims only hold when the substrate is
//! silently correct: a NaN that leaks out of a Nesterov step, a net with a
//! dangling pin from the generator, or a congestion map whose demand no
//! longer matches its histogram all corrupt results without failing any
//! test. This crate makes both classes of defect loud:
//!
//! * [`lint`] — a zero-dependency, hand-rolled static-analysis driver that
//!   scans `crates/*/src` and every `Cargo.toml` and enforces repo policy
//!   (no panicking calls in library code, no unsanctioned threading,
//!   `#![forbid(unsafe_code)]` in every crate root, crate layering).
//!   Violations can be waived — with a justification — in the repo-root
//!   `lint-allow.toml`. Exposed as `puffer lint`.
//! * [`lockgraph`] — the static lock-order analysis behind the `lock-order`
//!   lint rule: it parses the rank table out of
//!   `puffer_budget::lockcheck::classes`, extracts every classed-mutex
//!   acquisition site over a per-crate call graph, and reports edges that
//!   contradict the declared ranks (or cycles in the acquired-while-held
//!   graph) — each one a latent deadlock.
//! * [`validate`] — the [`Validate`] trait plus deep invariant checkers
//!   for designs/netlists, placements, congestion maps, padding state,
//!   checkpoint journals, and metrics JSONL files, including cross-file
//!   consistency between a journal and the telemetry of the run that
//!   wrote it. Exposed as `puffer audit <design|journal|metrics|run>` and
//!   as the `--validate` flow hook via [`flow_validator`].

#![forbid(unsafe_code)]

pub mod lint;
pub mod lockgraph;
pub mod validate;

pub use lint::{lint_workspace, LintConfig, LintError, LintFinding, LintReport};
pub use validate::{
    audit_metrics, audit_run, flow_validator, MetricsSummary, PadAudit, PlacementAudit,
    PlacementStage,
};

use std::fmt;

/// One violated invariant: which check tripped and what it saw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Short stable name of the check (e.g. `finite-coords`).
    pub check: &'static str,
    /// What was wrong, with enough context to locate the defect.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.check, self.message)
    }
}

/// The result of a failed [`Validate::validate`] call: the audited subject
/// plus every violated invariant (checkers never stop at the first hit).
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// What was audited (e.g. `design 'or1200'`).
    pub subject: String,
    /// All violations found, in check order.
    pub violations: Vec<Violation>,
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} invariant violation(s)",
            self.subject,
            self.violations.len()
        )?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

impl std::error::Error for AuditReport {}

/// Deep invariant verification. Implementors walk their whole structure
/// and report *every* violation, each with a precise message, instead of
/// bailing at the first defect.
pub trait Validate {
    /// Short label naming the audited subject, used in reports.
    fn subject(&self) -> String;

    /// Appends every invariant violation to `out`.
    fn check_into(&self, out: &mut Vec<Violation>);

    /// Runs all checks; `Err` carries the full report.
    ///
    /// # Errors
    ///
    /// [`AuditReport`] listing each violated invariant.
    fn validate(&self) -> Result<(), AuditReport> {
        let mut violations = Vec::new();
        self.check_into(&mut violations);
        if violations.is_empty() {
            Ok(())
        } else {
            Err(AuditReport {
                subject: self.subject(),
                violations,
            })
        }
    }
}
