//! Static lock-order analysis: the `lock-order` lint rule.
//!
//! The runtime sanitizer in `puffer_budget::lockcheck` catches inversions
//! only on code paths a test actually drives. This pass closes the gap
//! statically: it rebuilds the *acquired-while-held* relation from source
//! and checks it against the declared ranks, so a lock-order deadlock is a
//! lint failure even when no test interleaves the two locks.
//!
//! The analysis is textual (the same stripped/masked source the other lint
//! rules see), per crate, and deliberately conservative:
//!
//! 1. The rank table is parsed straight out of
//!    `crates/budget/src/lockcheck.rs` — one `pub static NAME: LockClass =
//!    LockClass::new("dotted.name", rank);` per line — so the declared
//!    order has exactly one copy.
//! 2. Every function in a crate is extracted (brace matching over the
//!    stripped source), and every `classes::IDENT` occurrence in a body is
//!    an acquisition site. Calls to same-crate helpers whose signature
//!    returns `Locked<…>` (e.g. the serve engine's `jobs()` and the
//!    queue's `lock()`) are acquisition sites too, holding the helper's
//!    own classes.
//! 3. Each acquisition holds its classes over a *held region*: to the end
//!    of the enclosing block when the guard is bound (`let g = …;` or
//!    `g = …;`, truncated at an explicit `drop(g)`), otherwise to the end
//!    of the statement — which for an `if let` scrutinee correctly spans
//!    the body, matching Rust's temporary-lifetime extension.
//! 4. Inside a held region, every further acquisition site adds an edge
//!    `held → acquired`, and every call to a same-crate function adds
//!    edges to the callee's transitive lockset (a fixpoint over the
//!    per-crate call graph). Calls are resolved by name only, so
//!    ubiquitous std/collection/trait method names (`len`, `get`,
//!    `clone`, …) and names with multiple same-crate definitions are left
//!    unresolved rather than guessed — missing an edge is conservative,
//!    inventing one is a false positive.
//! 5. Sites whose statement re-wraps a condvar-returned guard
//!    (`Locked::from_guard(…)`) are *re*-acquisitions after the wait
//!    released the mutex: they open their own held region but are never
//!    edge targets.
//!
//! A finding is produced for an edge whose source rank is not strictly
//! below its target rank (including same-class reentry), for a cycle in
//! the edge graph, and for a `classes::IDENT` that the rank table does not
//! declare. Cross-crate call chains are out of scope here — that is what
//! the `lockcheck` runtime sanitizer is for.

use crate::lint::{
    mask_tests, read_dir_sorted, read_file, rel_path, rust_files, strip_literals, LintError,
    LintFinding,
};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Call names never resolved against the per-crate function table:
/// ubiquitous method names that a crate-local `fn` of the same name would
/// otherwise shadow into false lock edges. `len` covers the queue's
/// `len()` resolving from a `VecDeque::len()` call made while the queue
/// lock is already held; `cancel` covers `CancelToken::cancel()` (a
/// cross-crate method) resolving to the serve engine's `cancel()` from
/// inside its own job-table critical section.
const UNRESOLVED_NAMES: &[&str] = &[
    "clone", "drop", "default", "fmt", "eq", "ne", "cmp", "partial_cmp", "hash", "next", "len",
    "is_empty", "new", "from", "into", "get", "get_mut", "insert", "remove", "push", "pop", "map",
    "take", "iter", "clear", "contains", "deref", "deref_mut", "index", "index_mut", "cancel",
];

/// Keywords that precede `(` in expression position without being calls.
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "let", "in", "as", "impl", "where",
    "move", "unsafe", "else", "use", "mod", "pub", "struct", "enum", "trait", "type", "const",
    "static", "break", "continue", "dyn", "ref", "mut", "box", "crate", "super", "self", "Self",
];

/// One declared lock class from the rank table.
#[derive(Debug, Clone)]
struct ClassDecl {
    /// Dotted display name, e.g. `serve.jobs`.
    name: String,
    /// Global acquisition rank.
    rank: u16,
}

/// One `classes::IDENT` acquisition site inside a function body.
#[derive(Debug)]
struct Site {
    /// The `IDENT` after `classes::`.
    class: String,
    /// Byte offset of the site in its file.
    pos: usize,
    /// Byte offset where the held region ends.
    end: usize,
    /// Whether the statement re-wraps a condvar-returned guard
    /// (`Locked::from_guard`): a re-acquisition, never an edge target.
    reacquire: bool,
}

/// One `ident(` call site inside a function body.
#[derive(Debug)]
struct Call {
    name: String,
    pos: usize,
}

/// One extracted function.
#[derive(Debug)]
struct FnDef {
    name: String,
    /// Index into the crate's file list.
    file: usize,
    /// Whether the signature returns `Locked<…>` — a guard-returning
    /// helper whose call sites are acquisition sites.
    guard_returning: bool,
    sites: Vec<Site>,
    calls: Vec<Call>,
}

/// One scanned source file (stripped + test-masked).
struct FileSrc {
    rel: String,
    text: String,
}

/// Runs the lock-order analysis over the workspace at `root`, appending
/// findings (rule `lock-order`).
///
/// # Errors
///
/// [`LintError::Io`] when a source file cannot be read. A missing rank
/// table is not an error: classed acquisitions are then all "unknown
/// class" findings, and a workspace with neither table nor acquisitions
/// (the fixture case) passes vacuously.
pub fn check_lock_order(root: &Path, findings: &mut Vec<LintFinding>) -> Result<(), LintError> {
    let table_path = root.join("crates").join("budget").join("src").join("lockcheck.rs");
    let table_rel = rel_path(root, &table_path);
    let table = if table_path.is_file() {
        parse_rank_table(&read_file(&table_path)?, &table_rel, findings)
    } else {
        BTreeMap::new()
    };

    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<_> = read_dir_sorted(&crates_dir)?
        .into_iter()
        .filter(|p| p.join("Cargo.toml").is_file() && p.join("src").is_dir())
        .collect();
    if root.join("Cargo.toml").is_file() && root.join("src").is_dir() {
        crate_dirs.push(root.to_path_buf());
    }

    for dir in &crate_dirs {
        let mut files = Vec::new();
        for path in rust_files(&dir.join("src"))? {
            let text = mask_tests(&strip_literals(&read_file(&path)?));
            files.push(FileSrc {
                rel: rel_path(root, &path),
                text,
            });
        }
        check_crate(&files, &table, &table_rel, findings);
    }
    Ok(())
}

/// Parses the `classes` rank table from the raw `lockcheck.rs` source:
/// one `pub static IDENT: LockClass = LockClass::new("name", rank);` per
/// line. Malformed declarations become findings rather than errors, so a
/// half-edited table fails the lint instead of silently weakening it.
fn parse_rank_table(
    raw: &str,
    table_rel: &str,
    findings: &mut Vec<LintFinding>,
) -> BTreeMap<String, ClassDecl> {
    let mut table = BTreeMap::new();
    for (i, line) in raw.lines().enumerate() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix("pub static ") else {
            continue;
        };
        if !rest.contains("LockClass::new(") {
            continue;
        }
        let decl = (|| {
            let ident = rest.split(':').next()?.trim().to_string();
            let args = rest.split("LockClass::new(").nth(1)?;
            let name = args.split('"').nth(1)?.to_string();
            let rank_txt = args.split(',').nth(1)?;
            let rank: u16 = rank_txt.trim().trim_end_matches(");").trim().parse().ok()?;
            Some((ident, ClassDecl { name, rank }))
        })();
        match decl {
            Some((ident, class)) => {
                table.insert(ident, class);
            }
            None => findings.push(LintFinding {
                rule: "lock-order",
                path: table_rel.to_string(),
                line: i + 1,
                message: "malformed LockClass declaration — expected \
                          `pub static IDENT: LockClass = LockClass::new(\"name\", rank);`"
                    .to_string(),
            }),
        }
    }
    table
}

/// Analyzes one crate: extracts functions, computes transitive locksets,
/// derives acquired-while-held edges, and reports rank contradictions and
/// cycles.
fn check_crate(
    files: &[FileSrc],
    table: &BTreeMap<String, ClassDecl>,
    table_rel: &str,
    findings: &mut Vec<LintFinding>,
) {
    let mut fns = Vec::new();
    for (file_idx, f) in files.iter().enumerate() {
        extract_fns(file_idx, &f.text, &mut fns);
    }
    if fns.iter().all(|f| f.sites.is_empty()) {
        return;
    }

    // Name → definition indices; only unambiguous non-ubiquitous names
    // resolve.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        by_name.entry(&f.name).or_default().push(i);
    }
    let resolve = |name: &str| -> Option<usize> {
        if UNRESOLVED_NAMES.contains(&name) {
            return None;
        }
        match by_name.get(name).map(Vec::as_slice) {
            Some([one]) => Some(*one),
            _ => None,
        }
    };

    // Transitive locksets: every class a call into `f` may acquire.
    let mut locksets: Vec<BTreeSet<String>> = fns
        .iter()
        .map(|f| f.sites.iter().map(|s| s.class.clone()).collect())
        .collect();
    loop {
        let mut changed = false;
        for i in 0..fns.len() {
            for c in &fns[i].calls {
                let Some(callee) = resolve(&c.name) else { continue };
                let add: Vec<String> = locksets[callee]
                    .iter()
                    .filter(|cl| !locksets[i].contains(*cl))
                    .cloned()
                    .collect();
                if !add.is_empty() {
                    changed = true;
                    locksets[i].extend(add);
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Unknown classes: every site must name a declared class.
    for f in &fns {
        for s in &f.sites {
            if !table.contains_key(&s.class) {
                let file = &files[f.file];
                findings.push(LintFinding {
                    rule: "lock-order",
                    path: file.rel.clone(),
                    line: line_of(&file.text, s.pos),
                    message: format!(
                        "unknown lock class `classes::{}` — declare it (with a rank) in \
                         puffer_budget::lockcheck::classes",
                        s.class
                    ),
                });
            }
        }
    }

    // Acquired-while-held edges. An "event" is anything that starts a held
    // region: a direct `classes::` site, or a call to a guard-returning
    // same-crate helper (holding the helper's own direct classes).
    let mut edges: BTreeMap<(String, String), (usize, usize)> = BTreeMap::new();
    for f in &fns {
        let text = &files[f.file].text;
        let mut events: Vec<(Vec<String>, usize, usize)> = f
            .sites
            .iter()
            .map(|s| (vec![s.class.clone()], s.pos, s.end))
            .collect();
        for c in &f.calls {
            let Some(callee) = resolve(&c.name) else { continue };
            if !fns[callee].guard_returning || fns[callee].sites.is_empty() {
                continue;
            }
            let classes: Vec<String> = fns[callee].sites.iter().map(|s| s.class.clone()).collect();
            // Compute the region from inside the call's parentheses, the
            // same vantage point a direct `classes::` site has.
            let (_, end) = held_region(text, c.pos + c.name.len() + 1);
            events.push((classes, c.pos, end));
        }
        for (held, start, end) in &events {
            for s in &f.sites {
                if s.pos > *start && s.pos <= *end && !s.reacquire {
                    for a in held {
                        edges
                            .entry((a.clone(), s.class.clone()))
                            .or_insert((f.file, s.pos));
                    }
                }
            }
            for c in &f.calls {
                if c.pos <= *start || c.pos > *end {
                    continue;
                }
                let Some(callee) = resolve(&c.name) else { continue };
                for b in &locksets[callee] {
                    for a in held {
                        edges
                            .entry((a.clone(), b.clone()))
                            .or_insert((f.file, c.pos));
                    }
                }
            }
        }
    }

    // Rank contradictions (includes same-class reentry, rank r ≥ r).
    let mut valid_edges = Vec::new();
    for ((a, b), (file_idx, pos)) in &edges {
        let (Some(ca), Some(cb)) = (table.get(a), table.get(b)) else {
            continue; // unknown classes already reported above
        };
        if ca.rank < cb.rank {
            valid_edges.push((a.clone(), b.clone()));
        } else {
            let file = &files[*file_idx];
            findings.push(LintFinding {
                rule: "lock-order",
                path: file.rel.clone(),
                line: line_of(&file.text, *pos),
                message: format!(
                    "acquires '{}' (rank {}) while '{}' (rank {}) may be held — \
                     contradicts the declared lock order in puffer_budget::lockcheck::classes",
                    cb.name, cb.rank, ca.name, ca.rank
                ),
            });
        }
    }

    // Cycles among the rank-valid edges. With strict distinct ranks these
    // cannot cycle (the relation is a sub-relation of `<`); this is the
    // belt-and-braces check for a degenerate table (duplicate ranks) where
    // no single edge contradicts but the graph still loops. Contradiction
    // edges are excluded — they are already findings of their own.
    if let Some(cycle) = find_cycle(valid_edges.iter()) {
        findings.push(LintFinding {
            rule: "lock-order",
            path: table_rel.to_string(),
            line: 0,
            message: format!(
                "lock-order graph has a cycle: {} — some execution can deadlock",
                cycle.join(" -> ")
            ),
        });
    }
}

/// Finds one cycle in the directed edge set, as the list of class idents
/// along it (first repeated at the end), using iterative DFS coloring.
fn find_cycle<'a>(edges: impl Iterator<Item = &'a (String, String)>) -> Option<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges {
        adj.entry(a).or_default().push(b);
        adj.entry(b).or_default();
    }
    // 0 = unvisited, 1 = on stack, 2 = done.
    let mut color: BTreeMap<&str, u8> = adj.keys().map(|k| (*k, 0u8)).collect();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for start in nodes {
        if color[start] != 0 {
            continue;
        }
        // Stack of (node, next-neighbor index); `path` mirrors the stack.
        let mut stack = vec![(start, 0usize)];
        let mut path = vec![start];
        color.insert(start, 1);
        while let Some(top) = stack.last_mut() {
            let node = top.0;
            let idx = top.1;
            top.1 += 1;
            let neighbors = &adj[node];
            if idx < neighbors.len() {
                let n = neighbors[idx];
                match color[n] {
                    0 => {
                        color.insert(n, 1);
                        stack.push((n, 0));
                        path.push(n);
                    }
                    1 => {
                        let from = path.iter().position(|p| *p == n).unwrap_or(0);
                        let mut cycle: Vec<String> =
                            path[from..].iter().map(|s| (*s).to_string()).collect();
                        cycle.push(n.to_string());
                        return Some(cycle);
                    }
                    _ => {}
                }
            } else {
                color.insert(node, 2);
                stack.pop();
                path.pop();
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Function extraction
// ---------------------------------------------------------------------------

/// Extracts every function definition in (stripped, masked) `text`,
/// including its acquisition sites and call sites, appending to `out`.
fn extract_fns(file: usize, text: &str, out: &mut Vec<FnDef>) {
    let bytes = text.as_bytes();
    let mut i = 0;
    while let Some(off) = text[i..].find("fn ") {
        let at = i + off;
        i = at + 3;
        if at > 0 && is_ident_byte(bytes[at - 1]) {
            continue; // e.g. `graph_fn `
        }
        let mut j = i;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        let name_start = j;
        while j < bytes.len() && is_ident_byte(bytes[j]) {
            j += 1;
        }
        if j == name_start {
            continue; // `fn(` pointer type
        }
        let name = text[name_start..j].to_string();

        // Signature runs to the body `{` (or `;` for a bodiless trait
        // method) at paren depth 0.
        let mut depth = 0i32;
        let mut k = j;
        let body_start = loop {
            if k >= bytes.len() {
                break None;
            }
            match bytes[k] {
                b'(' => depth += 1,
                b')' => depth -= 1,
                b'{' if depth == 0 => break Some(k),
                b';' if depth == 0 => break None,
                _ => {}
            }
            k += 1;
        };
        let Some(bs) = body_start else { continue };
        let guard_returning = text[j..bs].contains("-> Locked<");
        let be = match_brace(bytes, bs);

        let mut def = FnDef {
            name,
            file,
            guard_returning,
            sites: Vec::new(),
            calls: Vec::new(),
        };
        collect_sites(text, bs, be, &mut def.sites);
        collect_calls(text, bs, be, &mut def.calls);
        out.push(def);
        // Resume after the name so nested `fn`s are extracted too.
    }
}

/// Index just past the `}` matching the `{` at `open` (or `len`).
fn match_brace(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return k + 1;
                }
            }
            _ => {}
        }
    }
    bytes.len()
}

/// Collects `classes::IDENT` acquisition sites in `text[start..end]`, with
/// their held regions.
fn collect_sites(text: &str, start: usize, end: usize, out: &mut Vec<Site>) {
    let bytes = text.as_bytes();
    let needle = "classes::";
    let mut i = start;
    while let Some(off) = text[i..end].find(needle) {
        let at = i + off;
        i = at + needle.len();
        if at > start && is_ident_byte(bytes[at - 1]) {
            continue;
        }
        let mut j = i;
        while j < end && is_ident_byte(bytes[j]) {
            j += 1;
        }
        if j == i {
            continue;
        }
        let class = text[i..j].to_string();
        let stmt_start = statement_start(bytes, at);
        let reacquire = text[stmt_start..at].contains("from_guard");
        let (_, region_end) = held_region(text, at);
        out.push(Site {
            class,
            pos: at,
            end: region_end.min(end),
            reacquire,
        });
    }
}

/// Collects `ident(` call sites in `text[start..end]`, skipping keywords
/// and the `fn` name of a definition.
fn collect_calls(text: &str, start: usize, end: usize, out: &mut Vec<Call>) {
    let bytes = text.as_bytes();
    let mut i = start;
    while i < end {
        if !is_ident_start(bytes[i]) || (i > 0 && is_ident_byte(bytes[i - 1])) {
            i += 1;
            continue;
        }
        let s = i;
        while i < end && is_ident_byte(bytes[i]) {
            i += 1;
        }
        if i >= end || bytes[i] != b'(' {
            continue;
        }
        let name = &text[s..i];
        if KEYWORDS.contains(&name) {
            continue;
        }
        // `fn name(` is the definition, not a call.
        let mut p = s;
        while p > start && bytes[p - 1].is_ascii_whitespace() {
            p -= 1;
        }
        if p >= 2 && &text[p - 2..p] == "fn" && (p == 2 || !is_ident_byte(bytes[p - 3])) {
            continue;
        }
        out.push(Call {
            name: name.to_string(),
            pos: s,
        });
    }
}

// ---------------------------------------------------------------------------
// Held regions
// ---------------------------------------------------------------------------

/// The held region for an acquisition at `pos`: `(bound, end)` where
/// `bound` says whether the guard is let/assignment-bound.
///
/// * Bound (`let g = lock(…);` / `g = lock(…);` with nothing chained on
///   the call): held to the end of the enclosing block, truncated at an
///   explicit `drop(g)`.
/// * Otherwise a statement temporary: held to the first `;` at the site's
///   brace depth (or the close of the enclosing block) — which spans an
///   `if let` body when the guard is the scrutinee, matching Rust's
///   temporary-lifetime extension.
fn held_region(text: &str, pos: usize) -> (bool, usize) {
    let bytes = text.as_bytes();
    let stmt_start = statement_start(bytes, pos);
    let binding = whole_statement_binding(text, stmt_start, pos);
    match binding {
        Some(name) => (true, bound_region_end(text, pos, &name)),
        None => (false, statement_end(bytes, pos)),
    }
}

/// Byte offset where the statement containing `pos` begins (just past the
/// nearest `;`, `{`, or `}` before it).
fn statement_start(bytes: &[u8], pos: usize) -> usize {
    let mut i = pos;
    while i > 0 {
        match bytes[i - 1] {
            b';' | b'{' | b'}' => return i,
            _ => i -= 1,
        }
    }
    0
}

/// When the acquisition at `pos` is the entire right-hand side of a `let`
/// or assignment statement, the binding's name; `None` for chained or
/// otherwise temporary guards.
fn whole_statement_binding(text: &str, stmt_start: usize, pos: usize) -> Option<String> {
    let bytes = text.as_bytes();
    // The enclosing call must end the statement: find the `)` that closes
    // the paren depth open at `pos`, then require `;` next.
    let mut depth = 0i32;
    let mut i = pos;
    let close = loop {
        if i >= bytes.len() {
            return None;
        }
        match bytes[i] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth < 0 {
                    break i;
                }
            }
            b';' | b'{' | b'}' => return None,
            _ => {}
        }
        i += 1;
    };
    let mut j = close + 1;
    while j < bytes.len() && bytes[j].is_ascii_whitespace() {
        j += 1;
    }
    if j >= bytes.len() || bytes[j] != b';' {
        return None;
    }
    let prefix = text[stmt_start..pos].trim_start();
    let after_let = prefix.strip_prefix("let ").map(|r| r.trim_start());
    let rest = match after_let {
        Some(r) => r.strip_prefix("mut ").unwrap_or(r).trim_start(),
        None => prefix,
    };
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        return None;
    }
    // `let name = …` or `name = …` (not `==`); anything else (tuple
    // patterns, field stores) is treated as a temporary.
    let tail = rest[name.len()..].trim_start();
    if tail.starts_with('=') && !tail.starts_with("==") {
        Some(name)
    } else {
        None
    }
}

/// End of the enclosing block for a bound guard acquired at `pos`,
/// truncated at an explicit `drop(binding)`.
fn bound_region_end(text: &str, pos: usize, binding: &str) -> usize {
    let bytes = text.as_bytes();
    let mut depth = 0i32;
    let mut i = pos;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            b'd' if text[i..].starts_with("drop(") => {
                let mut j = i + 5;
                while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                    j += 1;
                }
                if text[j..].starts_with(binding) {
                    let after = j + binding.len();
                    let mut k = after;
                    while k < bytes.len() && bytes[k].is_ascii_whitespace() {
                        k += 1;
                    }
                    if k < bytes.len() && bytes[k] == b')' {
                        return i;
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    bytes.len()
}

/// End of the statement containing a temporary guard acquired at `pos`:
/// the first `;` at the site's brace depth, or the close of the enclosing
/// block.
fn statement_end(bytes: &[u8], pos: usize) -> usize {
    let mut depth = 0i32;
    let mut i = pos;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            b';' if depth == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    bytes.len()
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

/// 1-based line of byte offset `pos` in `text`.
fn line_of(text: &str, pos: usize) -> usize {
    text[..pos].bytes().filter(|b| *b == b'\n').count() + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    const TABLE: &str = r#"
pub mod classes {
    /// Outer.
    pub static LOW: LockClass = LockClass::new("test.low", 10);
    /// Inner.
    pub static HIGH: LockClass = LockClass::new("test.high", 20);
}
"#;

    fn table() -> BTreeMap<String, ClassDecl> {
        let mut findings = Vec::new();
        let t = parse_rank_table(TABLE, "t.rs", &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
        t
    }

    fn run(body: &str) -> Vec<LintFinding> {
        let files = vec![FileSrc {
            rel: "crates/x/src/lib.rs".to_string(),
            text: body.to_string(),
        }];
        let mut findings = Vec::new();
        check_crate(&files, &table(), "t.rs", &mut findings);
        findings
    }

    #[test]
    fn rank_table_parses_names_and_ranks() {
        let t = table();
        assert_eq!(t["LOW"].name, "test.low");
        assert_eq!(t["LOW"].rank, 10);
        assert_eq!(t["HIGH"].rank, 20);
    }

    #[test]
    fn malformed_declaration_is_a_finding() {
        let mut findings = Vec::new();
        parse_rank_table(
            "pub static BAD: LockClass = LockClass::new(oops);\n",
            "t.rs",
            &mut findings,
        );
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("malformed"));
    }

    #[test]
    fn in_order_nesting_is_clean() {
        let f = run(
            "fn ok(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
             let g = lock_ordered(a, &classes::LOW);\n\
             let h = lock_ordered(b, &classes::HIGH);\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn inverted_nesting_contradicts_the_ranks() {
        let f = run(
            "fn bad(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
             let g = lock_ordered(b, &classes::HIGH);\n\
             let h = lock_ordered(a, &classes::LOW);\n\
             }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "lock-order");
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("'test.low' (rank 10)"));
        assert!(f[0].message.contains("'test.high' (rank 20)"));
    }

    #[test]
    fn same_class_reentry_is_flagged() {
        let f = run(
            "fn twice(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
             let g = lock_ordered(a, &classes::LOW);\n\
             let h = lock_ordered(b, &classes::LOW);\n\
             }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("'test.low' (rank 10) while 'test.low'"));
    }

    #[test]
    fn drop_ends_the_held_region() {
        let f = run(
            "fn ok(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
             let g = lock_ordered(b, &classes::HIGH);\n\
             drop(g);\n\
             let h = lock_ordered(a, &classes::LOW);\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn statement_temporary_does_not_span_the_next_statement() {
        // `lock(…).field` is a temporary dropped at the `;`.
        let f = run(
            "fn ok(a: &Mutex<S>, b: &Mutex<u32>) {\n\
             lock_ordered(b, &classes::HIGH).field = 1;\n\
             let h = lock_ordered(a, &classes::LOW);\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn inner_block_scopes_the_guard() {
        let f = run(
            "fn ok(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
             let v = {\n\
             let g = lock_ordered(b, &classes::HIGH);\n\
             *g\n\
             };\n\
             let h = lock_ordered(a, &classes::LOW);\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn from_guard_reacquisition_is_not_an_edge_target() {
        // The condvar wait released the mutex; re-wrapping the returned
        // guard must not read as HIGH acquired while HIGH is held.
        let f = run(
            "fn waits(a: &Mutex<u32>, cv: &Condvar) {\n\
             let mut g = lock_ordered(a, &classes::HIGH);\n\
             loop {\n\
             let (raw, _) = cv.wait_timeout(g.into_guard(), step).unwrap();\n\
             g = Locked::from_guard(raw, &classes::HIGH);\n\
             }\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn inversion_through_a_helper_call_is_found() {
        // `inner` acquires LOW; calling it while HIGH is held inverts the
        // declared order even though no single function nests the locks.
        let f = run(
            "fn inner(a: &Mutex<u32>) {\n\
             let g = lock_ordered(a, &classes::LOW);\n\
             }\n\
             fn outer(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
             let g = lock_ordered(b, &classes::HIGH);\n\
             inner(a);\n\
             }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 6);
        assert!(f[0].message.contains("'test.low'"));
    }

    #[test]
    fn guard_returning_helper_calls_are_acquisition_sites() {
        let f = run(
            "fn low(&self) -> Locked<'_, u32> {\n\
             lock_ordered(&self.a, &classes::LOW)\n\
             }\n\
             fn ok(&self, b: &Mutex<u32>) {\n\
             let g = low(&self);\n\
             let h = lock_ordered(b, &classes::HIGH);\n\
             }\n\
             fn bad(&self, b: &Mutex<u32>) {\n\
             let g = lock_ordered(b, &classes::HIGH);\n\
             let h = low(&self);\n\
             }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 10);
    }

    #[test]
    fn ubiquitous_method_names_do_not_resolve() {
        // A crate-local `fn len` that locks must not turn every
        // `Vec::len()` call under a guard into a lock edge.
        let f = run(
            "fn len(&self) -> usize {\n\
             let g = lock_ordered(&self.a, &classes::LOW);\n\
             g.items.len()\n\
             }\n\
             fn ok(&self) {\n\
             let g = lock_ordered(&self.a, &classes::LOW);\n\
             let n = g.items.len();\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unknown_class_is_reported() {
        let f = run(
            "fn f(a: &Mutex<u32>) {\n\
             let g = lock_ordered(a, &classes::MYSTERY);\n\
             }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("unknown lock class `classes::MYSTERY`"));
    }

    #[test]
    fn cycle_detection_reports_the_loop() {
        let edges = [
            ("A".to_string(), "B".to_string()),
            ("B".to_string(), "C".to_string()),
            ("C".to_string(), "A".to_string()),
        ];
        let cycle = find_cycle(edges.iter()).expect("cycle");
        assert_eq!(cycle.first(), cycle.last());
        assert!(cycle.len() == 4);
    }

    #[test]
    fn acyclic_edges_have_no_cycle() {
        let edges = [
            ("A".to_string(), "B".to_string()),
            ("A".to_string(), "C".to_string()),
            ("B".to_string(), "C".to_string()),
        ];
        assert!(find_cycle(edges.iter()).is_none());
    }
}
