//! The workspace lint driver behind `puffer lint`: a hand-rolled static
//! analysis pass over `crates/*/src` and every `Cargo.toml`, with no
//! dependency on rustc or external parsers.
//!
//! Enforced policy:
//!
//! * `no-panic` — no `.unwrap()`, `.expect(`, `panic!`, `todo!`, or
//!   `unimplemented!` in non-test *library* code (binary roots under
//!   `src/bin/` and `src/main.rs` are exempt; `#[cfg(test)]` blocks, doc
//!   comments, and string literals are masked out before matching).
//! * `no-bare-spawn` — `thread::spawn` is banned everywhere; scoped
//!   threads (`thread::scope`) are sanctioned only in `par` (the
//!   deterministic fork-join layer every other parallel loop must go
//!   through) and in the `route`/`congest` crates, whose panic-draining
//!   workers predate it and now delegate to puffer-par.
//! * `forbid-unsafe` — every crate root (`src/lib.rs`, `src/main.rs`,
//!   `src/bin/*.rs`) must declare `#![forbid(unsafe_code)]`.
//! * `layering` — crate dependencies parsed from the workspace manifests
//!   must respect the architecture layers (e.g. `db` depends on nothing,
//!   only the assembly layers may depend on `core`), so erosion becomes a
//!   build failure instead of a review comment.
//! * `cast` — no bare numeric `as` casts in non-test library code of the
//!   hot crates ([`HOT_CAST_CRATES`]). A line-based linter cannot type-infer
//!   which casts cross the float/int boundary, so the rule bans them all
//!   there; conversions go through the named, tested helpers in
//!   `puffer_db::cast` (whose own source is the one sanctioned home of the
//!   underlying `as` expressions) or a lossless `From`/`Into`.
//! * `unordered-iter` — no `HashMap`/`HashSet` in non-test library code,
//!   anywhere in the workspace. Their iteration order varies run to run and
//!   has already produced nondeterministic telemetry; use `BTreeMap`/
//!   `BTreeSet`, an index-keyed `Vec`, or sort before iterating.
//! * `wallclock` — no `Instant::now`/`SystemTime::now` in non-test library
//!   code outside `puffer-trace` and `puffer-budget`. Timing feeds back
//!   into results only through those two crates' facades
//!   (`puffer_budget::clock`, trace spans), keeping every other crate
//!   reproducible by construction.
//! * `raw-io` — no `File::create`, `fs::write(`, `fs::rename(`, or
//!   `.sync_all(` in non-test library code outside `puffer_budget::fsx`.
//!   Those primitives are exactly the ones whose crash-ordering the durable
//!   I/O layer exists to get right (tmp + fsync + rename + dir fsync, one
//!   fsynced record per append); a raw call bypasses both the durability
//!   contract and the `chaos` fault-injection hook, so filesystem faults
//!   would silently skip it. Write through `fsx::atomic_write`,
//!   `fsx::AppendSink`, or `fsx::append_record` instead.
//! * `lock-order` — raw `Mutex::lock` calls outside `puffer-budget` are
//!   findings (stdio handle locks excepted): classed mutexes are acquired
//!   through `puffer_budget::lockcheck::lock_ordered`. On top of that,
//!   [`crate::lockgraph`] builds a static lock-order graph from the
//!   acquisition sites and per-crate call graphs and fails the run on a
//!   cycle or an edge contradicting the declared ranks.
//!
//! Violations can be waived in the repo-root `lint-allow.toml`, each entry
//! naming the rule, the file, and a justification; the waiver budget is
//! capped at [`MAX_WAIVERS`] entries and stale waivers — including entries
//! whose path no longer exists — are themselves findings.

use crate::lockgraph;
use std::fmt;
use std::path::{Path, PathBuf};

/// Hard cap on `lint-allow.toml` entries: the waiver file documents
/// deliberate exceptions, not a parallel policy.
pub const MAX_WAIVERS: usize = 10;

/// Architecture layers, bottom-up. A crate may only depend on workspace
/// crates with a strictly lower layer; a workspace crate missing from this
/// table is itself a finding, so the table can never silently rot.
const LAYERS: &[(&str, u8)] = &[
    // Substrate: no workspace dependencies at all.
    ("puffer-budget", 0),
    ("puffer-rng", 0),
    ("puffer-db", 0),
    // Telemetry sits one layer up: its mutexes are classed through the
    // budget crate's lockcheck registry.
    ("puffer-trace", 1),
    // Deterministic fork-join over the budget substrate.
    ("puffer-par", 1),
    // Numerics over the fork-join layer.
    ("puffer-fft", 2),
    // Geometry / generation / legalization over the database.
    ("puffer-flute", 2),
    ("puffer-gen", 2),
    ("puffer-legal", 2),
    // Analysis engines.
    ("puffer-congest", 3),
    ("puffer-place", 3),
    ("puffer-explore", 3),
    // Optimizers composing the engines.
    ("puffer-pad", 4),
    ("puffer-route", 4),
    ("puffer-dp", 4),
    // The assembled flow.
    ("puffer", 5),
    // Verification over the assembled flow.
    ("puffer-audit", 6),
    // The job daemon: supervision (queueing, retry, recovery) over the
    // assembled flow — every lint gate applies to it like any other crate.
    ("puffer-serve", 7),
    // Tooling over the whole stack.
    ("puffer-cli", 8),
    ("puffer-bench", 8),
    ("puffer-suite", 9),
];

/// Crates whose `thread::scope` use is sanctioned: `par` is the
/// deterministic fork-join layer itself, and the `route`/`congest`
/// panic-draining pools (reviewed in PR 2) now delegate to it. Everything
/// else must route parallel work through puffer-par or carry a waiver.
const SCOPED_THREAD_CRATES: &[&str] = &["route", "congest", "par"];

const PANIC_TOKENS: &[&str] = &[".unwrap()", ".expect(", "panic!", "todo!(", "unimplemented!("];

/// Crates whose non-test library code may not contain bare numeric `as`
/// casts (short names, without the `puffer-` prefix): the numeric hot path,
/// where an anonymous rounding direction has already caused Gcell-boundary
/// bugs. Conversions go through `puffer_db::cast` instead.
pub const HOT_CAST_CRATES: &[&str] = &["db", "congest", "route", "place", "flute", "pad"];

/// The one file allowed to contain the bare casts the helpers wrap.
const CAST_EXEMPT_FILES: &[&str] = &["crates/db/src/cast.rs"];

/// Crates allowed to read the wall clock: everything else must go through
/// `puffer_budget::clock` or trace spans, so results never depend on time.
const WALLCLOCK_CRATES: &[&str] = &["trace", "budget"];

/// Raw filesystem-write primitives banned outside the durable I/O layer:
/// each one is a crash-consistency or fault-injection bypass when called
/// directly (see the `raw-io` rule in the module docs).
const RAW_IO_TOKENS: &[&str] = &["File::create", "fs::write(", "fs::rename(", ".sync_all("];

/// The one sanctioned home of the raw primitives the `raw-io` rule bans:
/// the durable I/O layer that wraps them in the correct crash ordering.
const RAW_IO_EXEMPT_FILES: &[&str] = &["crates/budget/src/fsx.rs"];

/// Numeric primitive names that make an `as` cast a `cast` finding.
const NUMERIC_TYPES: &[&str] = &[
    "usize", "isize", "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128",
    "f32", "f64",
];

/// Configuration for a lint run.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Workspace root: the directory holding `crates/` and
    /// `lint-allow.toml`.
    pub root: PathBuf,
}

/// A failure of the lint run itself (as opposed to findings in the code).
#[derive(Debug)]
pub enum LintError {
    /// A file could not be read.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// `lint-allow.toml` is malformed or over budget.
    Waiver(String),
    /// The root does not look like the workspace.
    BadRoot(PathBuf),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io { path, source } => write!(f, "cannot read {}: {source}", path.display()),
            LintError::Waiver(m) => write!(f, "lint-allow.toml: {m}"),
            LintError::BadRoot(p) => {
                write!(f, "{} does not contain a crates/ directory", p.display())
            }
        }
    }
}

impl std::error::Error for LintError {}

/// One policy violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Which rule tripped (`no-panic`, `no-bare-spawn`, `forbid-unsafe`,
    /// `layering`, or `waiver` for stale allow-entries).
    pub rule: &'static str,
    /// Path relative to the workspace root, with forward slashes.
    pub path: String,
    /// 1-based line, or 0 for whole-file findings.
    pub line: usize,
    /// What was found.
    pub message: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.path, self.rule, self.message)
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.path, self.line, self.rule, self.message
            )
        }
    }
}

impl LintFinding {
    /// The finding as one flat JSON object (no trailing newline), for
    /// `puffer lint --json`: `{"rule":…,"path":…,"line":…,"message":…}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"rule\":\"");
        json_escape_into(self.rule, &mut out);
        out.push_str("\",\"path\":\"");
        json_escape_into(&self.path, &mut out);
        out.push_str("\",\"line\":");
        out.push_str(&self.line.to_string());
        out.push_str(",\"message\":\"");
        json_escape_into(&self.message, &mut out);
        out.push_str("\"}");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// The outcome of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Unwaived findings; the run fails when this is non-empty.
    pub findings: Vec<LintFinding>,
    /// Source files scanned.
    pub files_scanned: usize,
    /// Crates scanned.
    pub crates_scanned: usize,
    /// Findings suppressed by `lint-allow.toml` entries.
    pub waived: usize,
}

impl LintReport {
    /// All findings as JSONL: one flat JSON object per line, in report
    /// order, with a trailing newline after each (empty string when the
    /// run is clean). Machine-readable output for `puffer lint --json`.
    #[must_use]
    pub fn json_lines(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_json());
            out.push('\n');
        }
        out
    }
}

/// One `[[allow]]` entry from `lint-allow.toml`.
#[derive(Debug, Default, Clone)]
struct Waiver {
    rule: String,
    path: String,
    reason: String,
    line: usize,
}

/// Lints the workspace rooted at `config.root`.
///
/// # Errors
///
/// [`LintError`] when the root is not a workspace, a source file cannot be
/// read, or the waiver file is malformed / over its entry budget.
/// Policy violations are *not* errors — they come back in the report.
pub fn lint_workspace(config: &LintConfig) -> Result<LintReport, LintError> {
    let root = &config.root;
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(LintError::BadRoot(root.clone()));
    }
    let mut report = LintReport::default();
    let mut findings = Vec::new();

    let mut crate_dirs: Vec<PathBuf> = read_dir_sorted(&crates_dir)?
        .into_iter()
        .filter(|p| p.join("Cargo.toml").is_file())
        .collect();
    // The workspace root package participates too (umbrella crate).
    if root.join("Cargo.toml").is_file() && root.join("src").is_dir() {
        crate_dirs.push(root.clone());
    }

    for dir in &crate_dirs {
        report.crates_scanned += 1;
        let manifest_path = dir.join("Cargo.toml");
        let manifest = read_file(&manifest_path)?;
        let rel_manifest = rel_path(root, &manifest_path);
        let (package, deps) = parse_manifest(&manifest);
        let Some(package) = package else {
            findings.push(LintFinding {
                rule: "layering",
                path: rel_manifest,
                line: 0,
                message: "manifest has no [package] name".to_string(),
            });
            continue;
        };
        check_layering(&package, &deps, &rel_manifest, &mut findings);

        let crate_short = package.strip_prefix("puffer-").unwrap_or(&package);
        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut roots = vec![src.join("lib.rs"), src.join("main.rs")];
        let bin = src.join("bin");
        if bin.is_dir() {
            roots.extend(
                read_dir_sorted(&bin)?
                    .into_iter()
                    .filter(|p| p.extension().is_some_and(|e| e == "rs")),
            );
        }
        let crate_roots: Vec<PathBuf> = roots.into_iter().filter(|p| p.is_file()).collect();

        for file in rust_files(&src)? {
            report.files_scanned += 1;
            let rel = rel_path(root, &file);
            let text = read_file(&file)?;
            let is_binary_root = file
                .parent()
                .is_some_and(|p| p.file_name().is_some_and(|n| n == "bin"))
                || file.file_name().is_some_and(|n| n == "main.rs");
            if crate_roots.contains(&file) && !text.contains("#![forbid(unsafe_code)]") {
                findings.push(LintFinding {
                    rule: "forbid-unsafe",
                    path: rel.clone(),
                    line: 0,
                    message: "crate root lacks #![forbid(unsafe_code)]".to_string(),
                });
            }
            scan_source(&text, &rel, crate_short, !is_binary_root, &mut findings);
        }
    }

    let waivers = load_waivers(&root.join("lint-allow.toml"))?;
    apply_waivers(root, &waivers, findings, &mut report);
    lockgraph::check_lock_order(root, &mut report.findings)?;
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(report)
}

// ---------------------------------------------------------------------------
// Source scanning
// ---------------------------------------------------------------------------

/// Scans one source file (already read) and appends findings. `library`
/// selects whether the `no-panic` rule applies; threading rules always do.
fn scan_source(
    text: &str,
    rel: &str,
    crate_short: &str,
    library: bool,
    findings: &mut Vec<LintFinding>,
) {
    let masked = mask_tests(&strip_literals(text));
    for (i, line) in masked.lines().enumerate() {
        let line_no = i + 1;
        if library {
            for token in PANIC_TOKENS {
                if line.contains(token) {
                    findings.push(LintFinding {
                        rule: "no-panic",
                        path: rel.to_string(),
                        line: line_no,
                        message: format!("{token} in non-test library code"),
                    });
                }
            }
        }
        if line.contains("thread::spawn(") {
            findings.push(LintFinding {
                rule: "no-bare-spawn",
                path: rel.to_string(),
                line: line_no,
                message: "bare thread::spawn (unjoined threads outlive their work)".to_string(),
            });
        }
        if line.contains("thread::scope(") && !SCOPED_THREAD_CRATES.contains(&crate_short) {
            findings.push(LintFinding {
                rule: "no-bare-spawn",
                path: rel.to_string(),
                line: line_no,
                message: format!(
                    "direct thread::scope outside the sanctioned crates ({}) — route the \
                     work through puffer-par instead",
                    SCOPED_THREAD_CRATES.join(", ")
                ),
            });
        }
        if library
            && HOT_CAST_CRATES.contains(&crate_short)
            && !CAST_EXEMPT_FILES.contains(&rel)
        {
            if let Some(ty) = bare_numeric_cast(line) {
                findings.push(LintFinding {
                    rule: "cast",
                    path: rel.to_string(),
                    line: line_no,
                    message: format!(
                        "bare `as {ty}` cast in a hot crate — name the conversion through \
                         puffer_db::cast (or a lossless From/Into) so the rounding \
                         direction is explicit and tested"
                    ),
                });
            }
        }
        if library {
            for ty in ["HashMap", "HashSet"] {
                if contains_word(line, ty) {
                    findings.push(LintFinding {
                        rule: "unordered-iter",
                        path: rel.to_string(),
                        line: line_no,
                        message: format!(
                            "{ty} in non-test library code iterates in a random order — \
                             use BTreeMap/BTreeSet, an index-keyed Vec, or sort before \
                             iterating"
                        ),
                    });
                }
            }
        }
        if library && !WALLCLOCK_CRATES.contains(&crate_short) {
            for token in ["Instant::now", "SystemTime::now"] {
                if line.contains(token) {
                    findings.push(LintFinding {
                        rule: "wallclock",
                        path: rel.to_string(),
                        line: line_no,
                        message: format!(
                            "{token} outside puffer-trace/puffer-budget — go through \
                             puffer_budget::clock (Stopwatch/Deadline) so results never \
                             depend on wall-clock time"
                        ),
                    });
                }
            }
        }
        if library && !RAW_IO_EXEMPT_FILES.contains(&rel) {
            for token in RAW_IO_TOKENS {
                if line.contains(token) {
                    findings.push(LintFinding {
                        rule: "raw-io",
                        path: rel.to_string(),
                        line: line_no,
                        message: format!(
                            "{token} outside puffer_budget::fsx bypasses the durable \
                             I/O layer (crash ordering + chaos fault injection) — use \
                             fsx::atomic_write, fsx::AppendSink, or fsx::append_record"
                        ),
                    });
                }
            }
        }
        if library
            && crate_short != "budget"
            && line.contains(".lock(")
            && !line.contains("self.lock(")
            && !["stdout", "stderr", "stdin"].iter().any(|h| line.contains(h))
        {
            findings.push(LintFinding {
                rule: "lock-order",
                path: rel.to_string(),
                line: line_no,
                message: "raw Mutex::lock — acquire classed mutexes through \
                          puffer_budget::lockcheck::lock_ordered so the declared lock \
                          order is checked"
                    .to_string(),
            });
        }
    }
}

/// Returns the target type of the first bare numeric `as` cast on the
/// (stripped) line, if any.
fn bare_numeric_cast(line: &str) -> Option<&'static str> {
    for (pos, _) in line.match_indices(" as ") {
        let rest = &line[pos + 4..];
        let rest = rest.trim_start();
        for ty in NUMERIC_TYPES {
            if let Some(after) = rest.strip_prefix(ty) {
                let boundary = after
                    .chars()
                    .next()
                    .is_none_or(|c| !c.is_alphanumeric() && c != '_');
                if boundary {
                    return Some(ty);
                }
            }
        }
    }
    None
}

/// Whether `line` contains `word` with non-identifier characters (or the
/// line edges) on both sides.
fn contains_word(line: &str, word: &str) -> bool {
    for (pos, _) in line.match_indices(word) {
        let before_ok = pos == 0
            || line[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| !c.is_alphanumeric() && c != '_');
        let after = &line[pos + word.len()..];
        let after_ok = after
            .chars()
            .next()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if before_ok && after_ok {
            return true;
        }
    }
    false
}

/// Blanks comments and the contents of string/char literals, preserving
/// line structure, so token matching never fires inside documentation or
/// data. Handles nested block comments, escapes, raw strings with any
/// number of `#`s, and distinguishes char literals from lifetimes.
pub(crate) fn strip_literals(text: &str) -> String {
    let chars: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '/' if chars.get(i + 1) == Some(&'/') => {
                // Line comment (incl. doc comments): blank to end of line.
                while i < chars.len() && chars[i] != '\n' {
                    out.push(' ');
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let mut depth = 1;
                out.push_str("  ");
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        out.push_str("  ");
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        out.push_str("  ");
                        i += 2;
                    } else {
                        out.push(if chars[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                }
            }
            'r' | 'b' if starts_raw_string(&chars, i) => {
                // r"...", r#"..."#, br##"..."## — find the opening quote,
                // count hashes, blank until the matching close.
                let mut j = i;
                while chars[j] != '"' {
                    out.push(chars[j]);
                    j += 1;
                }
                let hashes = chars[i..j].iter().filter(|&&c| c == '#').count();
                out.push('"');
                j += 1;
                loop {
                    if j >= chars.len() {
                        break;
                    }
                    if chars[j] == '"' && closes_raw(&chars, j, hashes) {
                        out.push('"');
                        for _ in 0..hashes {
                            out.push('#');
                        }
                        j += 1 + hashes;
                        break;
                    }
                    out.push(if chars[j] == '\n' { '\n' } else { ' ' });
                    j += 1;
                }
                i = j;
            }
            '"' => {
                out.push('"');
                i += 1;
                while i < chars.len() && chars[i] != '"' {
                    if chars[i] == '\\' {
                        out.push(' ');
                        i += 1;
                        if i < chars.len() {
                            out.push(if chars[i] == '\n' { '\n' } else { ' ' });
                            i += 1;
                        }
                    } else {
                        out.push(if chars[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                }
                if i < chars.len() {
                    out.push('"');
                    i += 1;
                }
            }
            '\'' => {
                // Char literal or lifetime. 'x' / '\n' / '\'' are literals;
                // 'ident (no closing quote right after) is a lifetime.
                if chars.get(i + 1) == Some(&'\\') {
                    out.push('\'');
                    i += 2; // consume the backslash
                    out.push(' ');
                    while i < chars.len() && chars[i] != '\'' {
                        out.push(' ');
                        i += 1;
                    }
                    if i < chars.len() {
                        out.push('\'');
                        i += 1;
                    }
                } else if chars.get(i + 2) == Some(&'\'') {
                    out.push('\'');
                    out.push(' ');
                    out.push('\'');
                    i += 3;
                } else {
                    out.push('\'');
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

fn starts_raw_string(chars: &[char], i: usize) -> bool {
    // r" r#" b" (byte strings share the handler) br" — scan forward over
    // [br]+#* and require a quote.
    let mut j = i;
    while j < chars.len() && (chars[j] == 'r' || chars[j] == 'b') && j - i < 2 {
        j += 1;
    }
    if j == i {
        return false;
    }
    while j < chars.len() && chars[j] == '#' {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

fn closes_raw(chars: &[char], at: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| chars.get(at + k) == Some(&'#'))
}

/// Blanks every `#[cfg(test)]`-guarded block in already-stripped source,
/// preserving line structure. Tracks brace depth character-wise; the
/// attribute arms a skip that engages at the next `{` (a `;` first, e.g. a
/// guarded `use`, disarms it and blanks just that item's line).
pub(crate) fn mask_tests(stripped: &str) -> String {
    let mut out = String::with_capacity(stripped.len());
    let mut depth: i64 = 0;
    let mut armed = false;
    let mut skip_target: Option<i64> = None;
    for line in stripped.lines() {
        if skip_target.is_none() && line.contains("#[cfg(test)]") {
            armed = true;
        }
        for c in line.chars() {
            match c {
                '{' => {
                    if armed && skip_target.is_none() {
                        skip_target = Some(depth);
                        armed = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if skip_target.is_some_and(|t| depth <= t) {
                        skip_target = None;
                        out.push(' ');
                        continue;
                    }
                }
                ';' if armed && skip_target.is_none() => armed = false,
                _ => {}
            }
            out.push(if skip_target.is_some() { ' ' } else { c });
        }
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// Manifest parsing & layering
// ---------------------------------------------------------------------------

/// Extracts the package name and the `[dependencies]` keys from a
/// manifest. Hand-rolled for the subset of TOML the workspace uses:
/// section headers and `key = ...` / `key.workspace = true` lines.
/// Dev-dependencies are deliberately ignored — tests may cross layers.
fn parse_manifest(text: &str) -> (Option<String>, Vec<String>) {
    let mut section = String::new();
    let mut package = None;
    let mut deps = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(h) = line.strip_prefix('[') {
            section = h.trim_end_matches(']').trim().to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if section == "package" && key == "name" {
            package = Some(value.trim().trim_matches('"').to_string());
        }
        if section == "dependencies" {
            // `puffer-db.workspace = true` parses as key "puffer-db.workspace".
            let name = key.split('.').next().unwrap_or(key);
            deps.push(name.to_string());
        }
    }
    (package, deps)
}

fn layer_of(package: &str) -> Option<u8> {
    LAYERS
        .iter()
        .find(|(name, _)| *name == package)
        .map(|&(_, l)| l)
}

fn check_layering(
    package: &str,
    deps: &[String],
    rel_manifest: &str,
    findings: &mut Vec<LintFinding>,
) {
    let Some(layer) = layer_of(package) else {
        findings.push(LintFinding {
            rule: "layering",
            path: rel_manifest.to_string(),
            line: 0,
            message: format!(
                "crate '{package}' is not in the architecture layer table; add it to \
                 LAYERS in puffer-audit"
            ),
        });
        return;
    };
    for dep in deps {
        if !dep.starts_with("puffer") {
            continue; // external deps are policed by the offline-build rule, not layering
        }
        match layer_of(dep) {
            None => findings.push(LintFinding {
                rule: "layering",
                path: rel_manifest.to_string(),
                line: 0,
                message: format!("dependency '{dep}' is not in the architecture layer table"),
            }),
            Some(dep_layer) if dep_layer >= layer => findings.push(LintFinding {
                rule: "layering",
                path: rel_manifest.to_string(),
                line: 0,
                message: format!(
                    "'{package}' (layer {layer}) may not depend on '{dep}' (layer \
                     {dep_layer}); dependencies must point strictly downward"
                ),
            }),
            Some(_) => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Waivers
// ---------------------------------------------------------------------------

fn load_waivers(path: &Path) -> Result<Vec<Waiver>, LintError> {
    if !path.is_file() {
        return Ok(Vec::new());
    }
    let text = read_file(path)?;
    let mut waivers: Vec<Waiver> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            waivers.push(Waiver {
                line: i + 1,
                ..Waiver::default()
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(LintError::Waiver(format!("line {}: expected key = \"value\"", i + 1)));
        };
        let Some(entry) = waivers.last_mut() else {
            return Err(LintError::Waiver(format!(
                "line {}: key outside an [[allow]] entry",
                i + 1
            )));
        };
        let value = value.trim();
        let Some(value) = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
        else {
            return Err(LintError::Waiver(format!(
                "line {}: value must be a double-quoted string",
                i + 1
            )));
        };
        match key.trim() {
            "rule" => entry.rule = value.to_string(),
            "path" => entry.path = value.to_string(),
            "reason" => entry.reason = value.to_string(),
            other => {
                return Err(LintError::Waiver(format!(
                    "line {}: unknown key '{other}' (expected rule/path/reason)",
                    i + 1
                )))
            }
        }
    }
    if waivers.len() > MAX_WAIVERS {
        return Err(LintError::Waiver(format!(
            "{} entries exceed the budget of {MAX_WAIVERS}; fix violations instead of \
             waiving them",
            waivers.len()
        )));
    }
    for w in &waivers {
        if w.rule.is_empty() || w.path.is_empty() {
            return Err(LintError::Waiver(format!(
                "entry at line {}: rule and path are required",
                w.line
            )));
        }
        if w.reason.trim().len() < 10 {
            return Err(LintError::Waiver(format!(
                "entry at line {} ({} in {}): a justification of at least 10 characters \
                 is required",
                w.line, w.rule, w.path
            )));
        }
    }
    Ok(waivers)
}

/// Splits findings into waived and reported, and flags stale waivers —
/// both entries whose rule no longer fires and entries whose waived path
/// no longer exists at all.
fn apply_waivers(
    root: &Path,
    waivers: &[Waiver],
    findings: Vec<LintFinding>,
    report: &mut LintReport,
) {
    let mut used = vec![false; waivers.len()];
    for finding in findings {
        let slot = waivers
            .iter()
            .position(|w| w.rule == finding.rule && w.path == finding.path);
        match slot {
            Some(i) => {
                used[i] = true;
                report.waived += 1;
            }
            None => report.findings.push(finding),
        }
    }
    for (w, used) in waivers.iter().zip(used) {
        if !root.join(&w.path).is_file() {
            report.findings.push(LintFinding {
                rule: "waiver",
                path: w.path.clone(),
                line: 0,
                message: format!(
                    "lint-allow.toml entry (line {}) waives rule '{}' in a file that \
                     no longer exists — delete the waiver",
                    w.line, w.rule
                ),
            });
        } else if !used {
            report.findings.push(LintFinding {
                rule: "waiver",
                path: w.path.clone(),
                line: 0,
                message: format!(
                    "stale lint-allow.toml entry (line {}): rule '{}' no longer fires \
                     in this file — delete the waiver",
                    w.line, w.rule
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Filesystem helpers
// ---------------------------------------------------------------------------

pub(crate) fn read_file(path: &Path) -> Result<String, LintError> {
    std::fs::read_to_string(path).map_err(|source| LintError::Io {
        path: path.to_path_buf(),
        source,
    })
}

pub(crate) fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, LintError> {
    let entries = std::fs::read_dir(dir).map_err(|source| LintError::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    let mut out = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|source| LintError::Io {
            path: dir.to_path_buf(),
            source,
        })?;
        out.push(entry.path());
    }
    out.sort();
    Ok(out)
}

/// All `.rs` files under `dir`, recursively, sorted for stable output.
pub(crate) fn rust_files(dir: &Path) -> Result<Vec<PathBuf>, LintError> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for p in read_dir_sorted(&d)? {
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

pub(crate) fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripper_blanks_comments_strings_and_doc_examples() {
        let src = r###"
/// Doc example: x.unwrap() never trips.
// neither does this panic!("x")
fn f() {
    let s = "panic!(\"inside a string\")";
    let r = r#"thread::spawn( in a raw string "quoted" "#;
    let c = '"';
    let l: &'static str = s;
    g(s, r, c, l)
}
"###;
        let stripped = strip_literals(src);
        assert!(!stripped.contains("unwrap"), "{stripped}");
        assert!(!stripped.contains("panic!"), "{stripped}");
        assert!(!stripped.contains("thread::spawn"), "{stripped}");
        // Code outside literals survives.
        assert!(stripped.contains("fn f()"));
        assert!(stripped.contains("&'static str"));
        assert_eq!(stripped.lines().count(), src.lines().count());
    }

    #[test]
    fn test_blocks_are_masked() {
        let src = "
fn live() { x.unwrap() }
#[cfg(test)]
mod tests {
    fn t() { y.unwrap(); panic!(\"boom\") }
}
fn also_live() { z.expect(\"msg\") }
";
        let masked = mask_tests(&strip_literals(src));
        let hits: Vec<usize> = masked
            .lines()
            .enumerate()
            .filter(|(_, l)| PANIC_TOKENS.iter().any(|t| l.contains(t)))
            .map(|(i, _)| i + 1)
            .collect();
        assert_eq!(hits, vec![2, 7], "{masked}");
    }

    #[test]
    fn cfg_test_on_a_single_item_does_not_swallow_the_file() {
        let src = "
#[cfg(test)]
use std::fmt;
fn live() { x.unwrap() }
";
        let masked = mask_tests(&strip_literals(src));
        assert!(masked.contains(".unwrap()"), "{masked}");
    }

    #[test]
    fn manifest_parser_reads_name_and_dependencies_only() {
        let toml = "
[package]
name = \"puffer-db\"
version.workspace = true

[dependencies]
puffer-rng.workspace = true
libm = \"0.2\"

[dev-dependencies]
puffer-gen.workspace = true
";
        let (name, deps) = parse_manifest(toml);
        assert_eq!(name.as_deref(), Some("puffer-db"));
        assert_eq!(deps, vec!["puffer-rng".to_string(), "libm".to_string()]);
    }

    #[test]
    fn layering_rejects_upward_and_unknown_dependencies() {
        let mut findings = Vec::new();
        check_layering(
            "puffer-db",
            &["puffer-place".to_string()],
            "crates/db/Cargo.toml",
            &mut findings,
        );
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("strictly downward"));

        findings.clear();
        check_layering(
            "puffer-cli",
            &["puffer-mystery".to_string()],
            "crates/cli/Cargo.toml",
            &mut findings,
        );
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("not in the architecture layer table"));

        findings.clear();
        check_layering(
            "puffer-pad",
            &["puffer-congest".to_string(), "puffer-db".to_string()],
            "crates/pad/Cargo.toml",
            &mut findings,
        );
        assert!(findings.is_empty(), "{findings:?}");
    }
}
