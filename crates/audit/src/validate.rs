//! Deep invariant checkers: [`Validate`] implementations for the data
//! structures the flow hands between stages, plus file-level audits for
//! checkpoint journals and metrics JSONL, and the cross-file consistency
//! check between the two.
//!
//! Every checker reports *all* violations it finds, each with enough
//! context (cell/net/record index, offending value) to locate the defect
//! without a debugger.

use crate::{Validate, Violation};
use puffer::checkpoint::{FlowCheckpoint, FlowStage};
use puffer::flow::{StageObserver, StagePoint};
use puffer_congest::CongestionMap;
use puffer_db::design::{Design, Placement};
use puffer_db::netlist::CellKind;
use puffer_pad::{PaddingState, PaddingStrategy};
use puffer_trace::{ParsedRecord, Value};
use std::path::Path;

/// Absolute slack for geometric containment checks, scaled by the extent
/// of the quantity under test so large coordinates don't trip on rounding.
fn geom_eps(extent: f64) -> f64 {
    1e-9 * (1.0 + extent.abs())
}

// ---------------------------------------------------------------------------
// Design / netlist
// ---------------------------------------------------------------------------

impl Validate for Design {
    fn subject(&self) -> String {
        format!("design '{}'", self.name())
    }

    fn check_into(&self, out: &mut Vec<Violation>) {
        let region = self.region();
        let positive = |v: f64| v.is_finite() && v > 0.0;
        if !positive(region.width()) || !positive(region.height()) {
            out.push(Violation {
                check: "region",
                message: format!("degenerate core region {region}"),
            });
        }
        let tech = self.tech();
        if !positive(tech.row_height) || !positive(tech.site_width) {
            out.push(Violation {
                check: "technology",
                message: format!(
                    "non-positive row height {} or site width {}",
                    tech.row_height, tech.site_width
                ),
            });
        }

        let nl = self.netlist();
        for (id, cell) in nl.iter_cells() {
            if !cell.width.is_finite()
                || !cell.height.is_finite()
                || cell.width <= 0.0
                || cell.height <= 0.0
            {
                out.push(Violation {
                    check: "zero-area-cell",
                    message: format!(
                        "cell {} '{}' has degenerate shape {} x {}",
                        id.index(),
                        cell.name,
                        cell.width,
                        cell.height
                    ),
                });
            }
            for &pid in nl.cell_pins(id) {
                if nl.pin(pid).cell != id {
                    out.push(Violation {
                        check: "pin-backref",
                        message: format!(
                            "cell {} lists pin {} which claims cell {}",
                            id.index(),
                            pid.index(),
                            nl.pin(pid).cell.index()
                        ),
                    });
                }
            }
            if cell.kind == CellKind::FixedMacro && self.fixed_position(id).is_none() {
                out.push(Violation {
                    check: "unplaced-macro",
                    message: format!("macro {} '{}' has no fixed position", id.index(), cell.name),
                });
            }
        }

        for (id, net) in nl.iter_nets() {
            if !net.weight.is_finite() || net.weight < 0.0 {
                out.push(Violation {
                    check: "net-weight",
                    message: format!(
                        "net {} '{}' has invalid weight {}",
                        id.index(),
                        net.name,
                        net.weight
                    ),
                });
            }
            if net.weight > 0.0 && nl.net_degree(id) < 2 {
                out.push(Violation {
                    check: "degenerate-net",
                    message: format!(
                        "net {} '{}' has weight {} but only {} pin(s); it can never \
                         contribute wirelength",
                        id.index(),
                        net.name,
                        net.weight,
                        nl.net_degree(id)
                    ),
                });
            }
            for &pid in nl.net_pins(id) {
                if nl.pin(pid).net != id {
                    out.push(Violation {
                        check: "pin-backref",
                        message: format!(
                            "net {} lists pin {} which claims net {}",
                            id.index(),
                            pid.index(),
                            nl.pin(pid).net.index()
                        ),
                    });
                }
            }
        }

        // A dangling pin is one reachable from neither its cell nor its
        // net — it exists in the pin table but nothing references it, so
        // wirelength and density silently ignore it.
        let mut referenced = vec![false; nl.num_pins()];
        for (id, _) in nl.iter_cells() {
            for &pid in nl.cell_pins(id) {
                referenced[pid.index()] = true;
            }
        }
        for (id, _) in nl.iter_nets() {
            for &pid in nl.net_pins(id) {
                referenced[pid.index()] = true;
            }
        }
        for (i, (seen, pin)) in referenced.iter().zip(nl.pins()).enumerate() {
            if !seen {
                out.push(Violation {
                    check: "dangling-pin",
                    message: format!(
                        "pin {i} (cell {}, net {}) is referenced by neither its cell nor \
                         its net",
                        pin.cell.index(),
                        pin.net.index()
                    ),
                });
            }
            let cell = nl.cell(pin.cell);
            let (hw, hh) = (cell.width / 2.0, cell.height / 2.0);
            if !pin.offset.x.is_finite()
                || !pin.offset.y.is_finite()
                || pin.offset.x.abs() > hw + geom_eps(cell.width)
                || pin.offset.y.abs() > hh + geom_eps(cell.height)
            {
                out.push(Violation {
                    check: "pin-outside-cell",
                    message: format!(
                        "pin {i} offset ({}, {}) lies outside cell {} '{}' \
                         ({} x {}, half-extent {hw} x {hh})",
                        pin.offset.x,
                        pin.offset.y,
                        pin.cell.index(),
                        cell.name,
                        cell.width,
                        cell.height
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Placement
// ---------------------------------------------------------------------------

/// Which containment guarantee a placement carries at this point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementStage {
    /// Mid-flow: the Nesterov projector keeps movable cell *centers*
    /// inside the core region, but cell edges may still poke out.
    Global,
    /// Post-legalization: every movable cell rectangle lies fully inside
    /// the core region.
    Legal,
}

/// Audits a placement against its design: finite coordinates, the right
/// cell count, and the containment guarantee of `stage`.
pub struct PlacementAudit<'a> {
    /// The design the placement belongs to.
    pub design: &'a Design,
    /// The placement under audit.
    pub placement: &'a Placement,
    /// Which containment guarantee to enforce.
    pub stage: PlacementStage,
}

impl Validate for PlacementAudit<'_> {
    fn subject(&self) -> String {
        format!(
            "{:?} placement of design '{}'",
            self.stage,
            self.design.name()
        )
    }

    fn check_into(&self, out: &mut Vec<Violation>) {
        let nl = self.design.netlist();
        if self.placement.len() != nl.num_cells() {
            out.push(Violation {
                check: "cell-count",
                message: format!(
                    "placement holds {} cells but the design has {}",
                    self.placement.len(),
                    nl.num_cells()
                ),
            });
            return; // every per-cell check below would index out of bounds
        }
        let region = self.design.region();
        let (ex, ey) = (geom_eps(region.width()), geom_eps(region.height()));
        for id in nl.movable_cells() {
            let p = self.placement.pos(id);
            if !p.x.is_finite() || !p.y.is_finite() {
                out.push(Violation {
                    check: "finite-coords",
                    message: format!(
                        "cell {} '{}' is at non-finite ({}, {})",
                        id.index(),
                        nl.cell(id).name,
                        p.x,
                        p.y
                    ),
                });
                continue;
            }
            let cell = nl.cell(id);
            let (margin_x, margin_y) = match self.stage {
                PlacementStage::Global => (0.0, 0.0),
                PlacementStage::Legal => (cell.width / 2.0, cell.height / 2.0),
            };
            if p.x < region.xl + margin_x - ex
                || p.x > region.xh - margin_x + ex
                || p.y < region.yl + margin_y - ey
                || p.y > region.yh - margin_y + ey
            {
                out.push(Violation {
                    check: "outside-core",
                    message: format!(
                        "cell {} '{}' at ({}, {}) violates the {:?}-stage containment \
                         of region {region}",
                        id.index(),
                        cell.name,
                        p.x,
                        p.y,
                        self.stage
                    ),
                });
            }
        }
        for id in nl.fixed_macros() {
            if let Some(fixed) = self.design.fixed_position(id) {
                let p = self.placement.pos(id);
                if p != fixed {
                    out.push(Violation {
                        check: "macro-moved",
                        message: format!(
                            "macro {} is at ({}, {}) but is fixed at ({}, {})",
                            id.index(),
                            p.x,
                            p.y,
                            fixed.x,
                            fixed.y
                        ),
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Congestion map
// ---------------------------------------------------------------------------

impl Validate for CongestionMap {
    fn subject(&self) -> String {
        format!("congestion map ({} x {} Gcells)", self.nx(), self.ny())
    }

    fn check_into(&self, out: &mut Vec<Violation>) {
        let grids: [(&str, &puffer_db::grid::Grid<f64>); 4] = [
            ("h_capacity", self.h_capacity()),
            ("v_capacity", self.v_capacity()),
            ("h_demand", self.h_demand()),
            ("v_demand", self.v_demand()),
        ];
        for (name, grid) in grids {
            for ((ix, iy), &v) in grid.iter() {
                if !v.is_finite() || v < 0.0 {
                    out.push(Violation {
                        check: "nonneg-grid",
                        message: format!("{name}[{ix}, {iy}] = {v} (must be finite and >= 0)"),
                    });
                }
            }
        }
        // Histogram conservation: bucketing every Gcell's congestion must
        // account for exactly nx * ny cells in each direction — the same
        // invariant `audit metrics` enforces on the emitted h_hist/v_hist.
        let gcells = self.nx() * self.ny();
        for (name, horizontal) in [("h", true), ("v", false)] {
            let mut hist = [0usize; 8];
            for iy in 0..self.ny() {
                for ix in 0..self.nx() {
                    let cg = if horizontal {
                        self.cg_h(ix, iy)
                    } else {
                        self.cg_v(ix, iy)
                    };
                    if cg.is_nan() {
                        out.push(Violation {
                            check: "histogram-conservation",
                            message: format!("{name}-congestion at [{ix}, {iy}] is NaN"),
                        });
                        continue;
                    }
                    hist[((cg / 0.25) as usize).min(7)] += 1;
                }
            }
            let total: usize = hist.iter().sum();
            if total != gcells {
                out.push(Violation {
                    check: "histogram-conservation",
                    message: format!(
                        "{name}-congestion histogram sums to {total} but the map has \
                         {gcells} Gcells"
                    ),
                });
            }
        }
        if self.congested_cells() > gcells {
            out.push(Violation {
                check: "congested-count",
                message: format!(
                    "{} congested Gcells reported out of {gcells}",
                    self.congested_cells()
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Padding state
// ---------------------------------------------------------------------------

/// Audits a padding history against its design and strategy: the padded
/// width of every cell must be at least its physical width (pad >= 0),
/// respect the per-cell cap, leave macros untouched, and the claimed
/// utilization must stay within the strategy's `pu_high` cap.
pub struct PadAudit<'a> {
    /// The design the padding belongs to.
    pub design: &'a Design,
    /// The padding history under audit.
    pub state: &'a PaddingState,
    /// The strategy whose caps apply.
    pub strategy: &'a PaddingStrategy,
}

impl Validate for PadAudit<'_> {
    fn subject(&self) -> String {
        format!(
            "padding state (round {}) of design '{}'",
            self.state.round,
            self.design.name()
        )
    }

    fn check_into(&self, out: &mut Vec<Violation>) {
        let nl = self.design.netlist();
        if self.state.pad.len() != nl.num_cells() || self.state.pad_count.len() != nl.num_cells() {
            out.push(Violation {
                check: "cell-count",
                message: format!(
                    "padding vectors hold {} / {} entries but the design has {} cells",
                    self.state.pad.len(),
                    self.state.pad_count.len(),
                    nl.num_cells()
                ),
            });
            return;
        }
        for (id, cell) in nl.iter_cells() {
            let pad = self.state.pad[id.index()];
            if !pad.is_finite() || pad < 0.0 {
                out.push(Violation {
                    check: "pad-width",
                    message: format!(
                        "cell {} '{}' has padding {pad}; padded width must stay >= the \
                         physical width",
                        id.index(),
                        cell.name
                    ),
                });
                continue;
            }
            if cell.kind == CellKind::FixedMacro && pad > 0.0 {
                out.push(Violation {
                    check: "macro-pad",
                    message: format!("macro {} '{}' carries padding {pad}", id.index(), cell.name),
                });
            }
            let cap = self.strategy.max_pad_widths * cell.width;
            if pad > cap + geom_eps(cap) {
                out.push(Violation {
                    check: "pad-cap",
                    message: format!(
                        "cell {} '{}' padding {pad} exceeds the per-cell cap {cap} \
                         ({} cell widths)",
                        id.index(),
                        cell.name,
                        self.strategy.max_pad_widths
                    ),
                });
            }
            if self.state.pad_count[id.index()] as usize > self.state.round {
                out.push(Violation {
                    check: "pad-count",
                    message: format!(
                        "cell {} was padded in {} rounds but only {} ran",
                        id.index(),
                        self.state.pad_count[id.index()],
                        self.state.round
                    ),
                });
            }
        }
        // Utilization cap of Eq. (16): the padding may claim at most
        // pu_high of the macro-free core area.
        let padded_area: f64 = nl
            .iter_cells()
            .map(|(id, cell)| self.state.pad[id.index()].max(0.0) * cell.height)
            .sum();
        let available = self.design.free_area();
        if available > 0.0 {
            let utilization = padded_area / available;
            if utilization > self.strategy.pu_high + 1e-6 {
                out.push(Violation {
                    check: "utilization-cap",
                    message: format!(
                        "padding claims {utilization:.4} of the available area; the \
                         strategy caps it at pu_high = {}",
                        self.strategy.pu_high
                    ),
                });
            }
        }
        if self.state.last_utilization.is_nan() || self.state.last_utilization < 0.0 {
            out.push(Violation {
                check: "utilization-cap",
                message: format!(
                    "last_utilization is {} (must be >= 0; +inf marks a fresh state)",
                    self.state.last_utilization
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Checkpoint journal
// ---------------------------------------------------------------------------

impl Validate for FlowCheckpoint {
    fn subject(&self) -> String {
        format!(
            "checkpoint of design '{}' at iteration {}",
            self.design_name, self.placer.iter
        )
    }

    fn check_into(&self, out: &mut Vec<Violation>) {
        if self.design_name.is_empty() {
            out.push(Violation {
                check: "journal-design",
                message: "checkpoint carries an empty design name".to_string(),
            });
        }
        if self.placer.placement.len() != self.num_cells {
            out.push(Violation {
                check: "cell-count",
                message: format!(
                    "checkpoint placement holds {} cells but claims {}",
                    self.placer.placement.len(),
                    self.num_cells
                ),
            });
        }
        for (i, (&x, &y)) in self
            .placer
            .placement
            .xs()
            .iter()
            .zip(self.placer.placement.ys())
            .enumerate()
        {
            if !x.is_finite() || !y.is_finite() {
                out.push(Violation {
                    check: "finite-coords",
                    message: format!("checkpoint cell {i} is at non-finite ({x}, {y})"),
                });
            }
        }
        if !self.placer.lambda.is_finite() || self.placer.lambda <= 0.0 {
            out.push(Violation {
                check: "placer-scalars",
                message: format!("lambda = {} (must be finite and > 0)", self.placer.lambda),
            });
        }
        if !self.placer.step_scale.is_finite()
            || self.placer.step_scale <= 0.0
            || self.placer.step_scale > 1.0
        {
            out.push(Violation {
                check: "placer-scalars",
                message: format!(
                    "step_scale = {} (must be in (0, 1])",
                    self.placer.step_scale
                ),
            });
        }
        if self.pad.pad.len() != self.num_cells || self.pad.pad_count.len() != self.num_cells {
            out.push(Violation {
                check: "cell-count",
                message: format!(
                    "checkpoint padding vectors hold {} / {} entries but the design has \
                     {} cells",
                    self.pad.pad.len(),
                    self.pad.pad_count.len(),
                    self.num_cells
                ),
            });
        }
        for (i, &p) in self.pad.pad.iter().enumerate() {
            if !p.is_finite() || p < 0.0 {
                out.push(Violation {
                    check: "pad-width",
                    message: format!("checkpoint padding[{i}] = {p}"),
                });
            }
        }
        if let Some(opt) = &self.placer.opt {
            let n = opt.u.len();
            if opt.v.len() != n || opt.v_prev.len() != n || opt.g_prev.len() != n {
                out.push(Violation {
                    check: "optimizer-state",
                    message: format!(
                        "optimizer vectors have inconsistent lengths {} / {} / {} / {}",
                        n,
                        opt.v.len(),
                        opt.v_prev.len(),
                        opt.g_prev.len()
                    ),
                });
            }
            if !opt.a.is_finite() || !opt.alpha.is_finite() || opt.alpha <= 0.0 {
                out.push(Violation {
                    check: "optimizer-state",
                    message: format!(
                        "optimizer scalars a = {}, alpha = {} (alpha must be finite > 0)",
                        opt.a, opt.alpha
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Metrics JSONL
// ---------------------------------------------------------------------------

/// What `audit metrics` extracted from a telemetry file, for cross-file
/// checks and CLI reporting.
#[derive(Debug, Clone, Default)]
pub struct MetricsSummary {
    /// Total records in the file.
    pub records: usize,
    /// Highest `place.iter` iteration seen.
    pub last_iter: Option<usize>,
    /// Number of `pad.round` records.
    pub pad_rounds: usize,
    /// Gcell count the congestion histograms agreed on (updated when a
    /// recorded `coarse-congestion` degradation shrinks the grid mid-run).
    pub gcells: Option<usize>,
    /// `gp_iterations` claimed by the `flow.done` record.
    pub done_iterations: Option<usize>,
    /// `pad_rounds` claimed by the `flow.done` record.
    pub done_pad_rounds: Option<usize>,
}

fn hist_sum(record: &ParsedRecord, field: &str, index: usize, out: &mut Vec<Violation>) -> Option<f64> {
    let Some(Value::Arr(items)) = record.get(field) else {
        out.push(Violation {
            check: "histogram-conservation",
            message: format!("congest.round record {index} is missing the {field} array"),
        });
        return None;
    };
    let mut sum = 0.0;
    for (i, item) in items.iter().enumerate() {
        match item {
            Some(v) if v.is_finite() && *v >= 0.0 && v.fract() == 0.0 => sum += v,
            other => {
                out.push(Violation {
                    check: "histogram-conservation",
                    message: format!(
                        "congest.round record {index} {field}[{i}] = {other:?} (buckets \
                         must be non-negative integers)"
                    ),
                });
                return None;
            }
        }
    }
    Some(sum)
}

/// Audits a metrics JSONL file: every record parses and carries a kind and
/// timestamp, per-iteration quantities are finite, the congestion
/// histograms of every round bucket exactly the same number of Gcells in
/// both directions, and the `flow.done` totals agree with the per-record
/// streams.
///
/// # Errors
///
/// [`crate::AuditReport`] listing each violated invariant.
pub fn audit_metrics(path: &Path) -> Result<MetricsSummary, crate::AuditReport> {
    let mut out = Vec::new();
    let mut summary = MetricsSummary::default();
    let records = match puffer_trace::read_jsonl(path) {
        Ok(r) => r,
        Err(e) => {
            return Err(crate::AuditReport {
                subject: format!("metrics file {}", path.display()),
                violations: vec![Violation {
                    check: "jsonl-parse",
                    message: e.to_string(),
                }],
            })
        }
    };
    summary.records = records.len();
    let mut congest_index = 0usize;
    let mut pending_coarsen = false;
    for (i, r) in records.iter().enumerate() {
        let Some(kind) = r.kind() else {
            out.push(Violation {
                check: "record-kind",
                message: format!("record {i} has no \"t\" kind field"),
            });
            continue;
        };
        if r.num("elapsed_s").is_none_or(|t| !t.is_finite() || t < 0.0) {
            out.push(Violation {
                check: "record-timestamp",
                message: format!("{kind} record {i} lacks a finite elapsed_s timestamp"),
            });
        }
        match kind {
            "place.iter" => {
                let iter = r.num("iter").unwrap_or(-1.0);
                if iter < 1.0 || iter.fract() != 0.0 {
                    out.push(Violation {
                        check: "place-iter",
                        message: format!("place.iter record {i} has invalid iter {iter}"),
                    });
                } else {
                    let iter = iter as usize;
                    if let Some(prev) = summary.last_iter {
                        if iter <= prev {
                            out.push(Violation {
                                check: "place-iter",
                                message: format!(
                                    "place.iter record {i} repeats iteration {iter} \
                                     (previous record was {prev})"
                                ),
                            });
                        }
                    }
                    summary.last_iter = Some(summary.last_iter.unwrap_or(0).max(iter));
                }
                for field in ["hpwl", "overflow", "lambda"] {
                    if r.num(field).is_none_or(|v| !v.is_finite()) {
                        out.push(Violation {
                            check: "place-iter",
                            message: format!("place.iter record {i} has non-finite {field}"),
                        });
                    }
                }
            }
            "pad.round" => summary.pad_rounds += 1,
            "flow.degrade" if r.str_field("step") == Some("coarse-congestion") => {
                pending_coarsen = true;
            }
            "congest.round" => {
                let h = hist_sum(r, "h_hist", congest_index, &mut out);
                let v = hist_sum(r, "v_hist", congest_index, &mut out);
                if let (Some(h), Some(v)) = (h, v) {
                    if h != v {
                        out.push(Violation {
                            check: "histogram-conservation",
                            message: format!(
                                "congest.round record {congest_index}: h_hist sums to {h} \
                                 but v_hist sums to {v} (both bucket the same grid)"
                            ),
                        });
                    }
                    let gcells = h as usize;
                    match summary.gcells {
                        None => summary.gcells = Some(gcells),
                        // A recorded coarse-congestion degradation shrinks
                        // the estimation grid; later rounds bucket fewer
                        // Gcells, never more.
                        Some(expected) if pending_coarsen && gcells < expected => {
                            summary.gcells = Some(gcells);
                            pending_coarsen = false;
                        }
                        Some(expected) if expected != gcells => {
                            out.push(Violation {
                                check: "histogram-conservation",
                                message: format!(
                                    "congest.round record {congest_index} buckets {gcells} \
                                     Gcells but earlier rounds bucketed {expected}"
                                ),
                            });
                        }
                        Some(_) => {}
                    }
                    if r.num("congested").is_some_and(|c| c > h) {
                        out.push(Violation {
                            check: "congested-count",
                            message: format!(
                                "congest.round record {congest_index} reports more \
                                 congested Gcells than the grid holds"
                            ),
                        });
                    }
                }
                congest_index += 1;
            }
            "congest.dirty" => {
                // Dirty-region bookkeeping from the incremental estimator:
                // counts are non-negative integers, dirty subsets never
                // exceed their universe, every dirty net is rebuilt, and
                // the reuse rate is a proper fraction.
                let mut count = |field: &str| -> Option<f64> {
                    match r.num(field) {
                        Some(v) if v.is_finite() && v >= 0.0 && v.fract() == 0.0 => Some(v),
                        other => {
                            out.push(Violation {
                                check: "dirty-tracking",
                                message: format!(
                                    "congest.dirty record {i} {field} = {other:?} \
                                     (must be a non-negative integer)"
                                ),
                            });
                            None
                        }
                    }
                };
                let nets = count("nets");
                let nets_dirty = count("nets_dirty");
                let nets_rebuilt = count("nets_rebuilt");
                let chunks = count("chunks");
                let chunks_dirty = count("chunks_dirty");
                count("gcells_dirty");
                count("rsmt_hits");
                count("rsmt_misses");
                for (name, sub, sup_name, sup) in [
                    ("nets_dirty", nets_dirty, "nets", nets),
                    ("nets_rebuilt", nets_rebuilt, "nets", nets),
                    ("nets_dirty", nets_dirty, "nets_rebuilt", nets_rebuilt),
                    ("chunks_dirty", chunks_dirty, "chunks", chunks),
                ] {
                    if let (Some(a), Some(b)) = (sub, sup) {
                        if a > b {
                            out.push(Violation {
                                check: "dirty-tracking",
                                message: format!(
                                    "congest.dirty record {i}: {name} = {a} exceeds \
                                     {sup_name} = {b}"
                                ),
                            });
                        }
                    }
                }
                if r.num("reuse").is_none_or(|v| !(0.0..=1.0).contains(&v)) {
                    out.push(Violation {
                        check: "dirty-tracking",
                        message: format!(
                            "congest.dirty record {i} reuse must be a fraction in [0, 1]"
                        ),
                    });
                }
            }
            "flow.done" => {
                summary.done_iterations = r.num("gp_iterations").map(|v| v as usize);
                summary.done_pad_rounds = r.num("pad_rounds").map(|v| v as usize);
                if r.num("hpwl").is_none_or(|v| !v.is_finite() || v < 0.0) {
                    out.push(Violation {
                        check: "flow-done",
                        message: format!("flow.done record {i} has invalid hpwl"),
                    });
                }
            }
            _ => {}
        }
    }
    // A resumed run appends to a fresh file, so per-record streams may
    // cover only a suffix of the totals — they must never exceed them.
    if let (Some(done), Some(last)) = (summary.done_iterations, summary.last_iter) {
        if last > done {
            out.push(Violation {
                check: "flow-done",
                message: format!(
                    "flow.done claims {done} GP iterations but place.iter records reach \
                     iteration {last}"
                ),
            });
        }
    }
    if let Some(done) = summary.done_pad_rounds {
        if summary.pad_rounds > done {
            out.push(Violation {
                check: "flow-done",
                message: format!(
                    "flow.done claims {done} padding rounds but the file holds {} \
                     pad.round records",
                    summary.pad_rounds
                ),
            });
        }
    }
    if out.is_empty() {
        Ok(summary)
    } else {
        Err(crate::AuditReport {
            subject: format!("metrics file {}", path.display()),
            violations: out,
        })
    }
}

// ---------------------------------------------------------------------------
// Cross-file consistency
// ---------------------------------------------------------------------------

/// Audits a checkpoint journal against the metrics JSONL of the run that
/// wrote it: both files must be internally valid, and their shared
/// quantities (iteration counts, padding rounds) must agree.
///
/// # Errors
///
/// [`crate::AuditReport`] listing each violated invariant, including
/// parse failures of either file.
pub fn audit_run(journal: &Path, metrics: &Path) -> Result<MetricsSummary, crate::AuditReport> {
    let subject = format!(
        "run consistency ({} vs {})",
        journal.display(),
        metrics.display()
    );
    let mut out = Vec::new();
    let checkpoint = match FlowCheckpoint::load(journal) {
        Ok(c) => Some(c),
        Err(e) => {
            out.push(Violation {
                check: "journal-parse",
                message: e.to_string(),
            });
            None
        }
    };
    if let Some(c) = &checkpoint {
        c.check_into(&mut out);
    }
    let summary = match audit_metrics(metrics) {
        Ok(s) => Some(s),
        Err(report) => {
            out.extend(report.violations);
            None
        }
    };
    if let (Some(c), Some(s)) = (&checkpoint, &summary) {
        // The journal is written mid-run or at GlobalDone; the metrics file
        // of the same run must have advanced at least as far.
        if let Some(last) = s.last_iter {
            if c.placer.iter > last {
                out.push(Violation {
                    check: "run-consistency",
                    message: format!(
                        "journal was written at iteration {} but the metrics only \
                         reach iteration {last}",
                        c.placer.iter
                    ),
                });
            }
        }
        if c.stage == FlowStage::GlobalDone {
            if let Some(done) = s.done_iterations {
                if done != c.placer.iter {
                    out.push(Violation {
                        check: "run-consistency",
                        message: format!(
                            "completed journal records {} GP iterations but flow.done \
                             claims {done}",
                            c.placer.iter
                        ),
                    });
                }
            }
            if let Some(done) = s.done_pad_rounds {
                if done != c.pad.round {
                    out.push(Violation {
                        check: "run-consistency",
                        message: format!(
                            "completed journal records {} padding rounds but flow.done \
                             claims {done}",
                            c.pad.round
                        ),
                    });
                }
            }
        }
    }
    match (out.is_empty(), summary) {
        (true, Some(s)) => Ok(s),
        (true, None) => Ok(MetricsSummary::default()),
        (false, _) => Err(crate::AuditReport {
            subject,
            violations: out,
        }),
    }
}

// ---------------------------------------------------------------------------
// Flow stage observer
// ---------------------------------------------------------------------------

/// Builds the `--validate` stage observer: at every flow stage boundary it
/// re-checks the design (once, at init), the placement (global containment
/// mid-flow, full containment after legalization), the padding state, and
/// that the reported density overflow is sane. The first failing boundary
/// aborts the flow with the full violation report.
pub fn flow_validator() -> StageObserver {
    StageObserver::new(|r| {
        let mut violations = Vec::new();
        if r.point == StagePoint::Init {
            r.design.check_into(&mut violations);
        }
        let stage = match r.point {
            StagePoint::Legalized => PlacementStage::Legal,
            _ => PlacementStage::Global,
        };
        PlacementAudit {
            design: r.design,
            placement: r.placement,
            stage,
        }
        .check_into(&mut violations);
        PadAudit {
            design: r.design,
            state: r.padding,
            strategy: r.strategy,
        }
        .check_into(&mut violations);
        if !r.overflow.is_finite() || r.overflow < 0.0 {
            violations.push(Violation {
                check: "overflow-bounds",
                message: format!(
                    "density overflow {} at iteration {} (must be finite and >= 0)",
                    r.overflow, r.iter
                ),
            });
        }
        if violations.is_empty() {
            Ok(())
        } else {
            let lines: Vec<String> = violations.iter().map(|v| v.to_string()).collect();
            Err(format!(
                "{} invariant violation(s): {}",
                lines.len(),
                lines.join("; ")
            ))
        }
    })
}
