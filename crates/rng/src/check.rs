//! A tiny property-test harness — the workspace's offline replacement for
//! `proptest`.
//!
//! [`run_cases`] drives a property over `n` deterministic random cases: the
//! generator closure builds an input from an [`StdRng`], the property
//! returns `Err(message)` on violation, and the harness panics with the
//! case index, the seed that reproduces it, and the message. No shrinking —
//! the reproducing seed plus a debug-printable input is enough for the
//! workspace's invariant tests.
//!
//! ```
//! use puffer_rng::check::run_cases;
//! run_cases(64, 0xC0FFEE, |rng| rng.gen_range(0..100u32), |&x| {
//!     if x < 100 { Ok(()) } else { Err(format!("{x} out of range")) }
//! });
//! ```

use crate::StdRng;
use std::fmt::Debug;

/// Runs `property` over `cases` inputs produced by `gen` from a
/// deterministic stream seeded with `seed`.
///
/// # Panics
///
/// Panics on the first failing case, reporting the case index, the
/// per-case seed (rerun with `run_cases(1, that_seed, ...)` to reproduce),
/// the input, and the property's message.
pub fn run_cases<T: Debug>(
    cases: usize,
    seed: u64,
    mut gen: impl FnMut(&mut StdRng) -> T,
    mut property: impl FnMut(&T) -> Result<(), String>,
) {
    for case in 0..cases {
        // Each case gets its own sub-seed so any case reproduces alone.
        let case_seed = seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(case_seed);
        let input = gen(&mut rng);
        if let Err(msg) = property(&input) {
            panic!(
                "property failed on case {case}/{cases} (seed {case_seed:#x}):\n  \
                 input: {input:?}\n  {msg}"
            );
        }
    }
}

/// Convenience: asserts a condition inside a property, mirroring
/// `prop_assert!`.
#[macro_export]
macro_rules! prop_check {
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
}

/// Generates a `Vec<T>` with a length drawn from `len_range`.
pub fn vec_of<T>(
    rng: &mut StdRng,
    len_range: std::ops::Range<usize>,
    mut item: impl FnMut(&mut StdRng) -> T,
) -> Vec<T> {
    let n = rng.gen_range(len_range);
    (0..n).map(|_| item(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut seen = 0usize;
        run_cases(
            32,
            1,
            |rng| rng.gen_range(0.0..1.0),
            |&x| {
                seen += 1;
                if (0.0..1.0).contains(&x) {
                    Ok(())
                } else {
                    Err("out of range".into())
                }
            },
        );
        assert_eq!(seen, 32);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics_with_context() {
        run_cases(
            16,
            2,
            |rng| rng.gen_range(0..100u32),
            |&x| {
                if x < 10 {
                    Ok(())
                } else {
                    Err(format!("{x} >= 10"))
                }
            },
        );
    }

    #[test]
    fn prop_check_macro_formats() {
        fn prop(x: u32) -> Result<(), String> {
            prop_check!(x < 10, "x was {x}");
            prop_check!(x != 5);
            Ok(())
        }
        assert!(prop(3).is_ok());
        assert_eq!(prop(12).unwrap_err(), "x was 12");
        assert!(prop(5).unwrap_err().contains("x != 5"));
    }

    #[test]
    fn vec_of_respects_length_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let v = vec_of(&mut rng, 2..7, |r| r.gen_range(0..5u8));
            assert!((2..7).contains(&v.len()));
        }
    }
}
