//! Deterministic pseudo-random numbers for the PUFFER workspace.
//!
//! The workspace must build and test with no network access, so instead of
//! depending on the external `rand` crate this crate provides the small
//! slice of its API the placement framework actually uses:
//!
//! * [`StdRng`] — a xoshiro256++ generator seeded via splitmix64, with
//!   [`StdRng::seed_from_u64`], [`StdRng::gen_range`] over integer and
//!   float ranges, [`StdRng::gen_bool`], and [`StdRng::shuffle`];
//! * [`check`] — a tiny property-test harness replacing `proptest` for the
//!   workspace's randomized invariant tests.
//!
//! Everything is deterministic: the same seed always produces the same
//! stream, on every platform (only integer ops and IEEE-754 arithmetic).
//!
//! # Example
//!
//! ```
//! use puffer_rng::StdRng;
//! let mut rng = StdRng::seed_from_u64(42);
//! let x = rng.gen_range(0..10);
//! assert!((0..10).contains(&x));
//! let f = rng.gen_range(0.0..1.0);
//! assert!((0.0..1.0).contains(&f));
//! let again = StdRng::seed_from_u64(42).gen_range(0..10);
//! assert_eq!(x, again);
//! ```

#![forbid(unsafe_code)]

pub mod check;

use std::ops::{Range, RangeInclusive};

/// Splitmix64 step: seeds the main generator and breaks up weak seeds.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A xoshiro256++ generator (Blackman & Vigna) — the workspace's standard
/// RNG. Fast, 256-bit state, passes BigCrush; more than enough for
/// synthetic-benchmark generation and TPE sampling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` (53 random mantissa bits).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform value in `range` (see [`SampleRange`] for supported range
    /// types: half-open and inclusive ranges over the common integer types
    /// and `f64`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.uniform_usize(i + 1);
            slice.swap(i, j);
        }
    }

    /// Uniform integer in `[0, bound)`, unbiased via rejection sampling.
    #[inline]
    fn uniform_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Reject the first (2^64 mod bound) values so the modulo is exact.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let v = self.next_u64();
            if v >= threshold {
                return v % bound;
            }
        }
    }

    #[inline]
    fn uniform_usize(&mut self, bound: usize) -> usize {
        self.uniform_u64(bound as u64) as usize
    }
}

/// Range types [`StdRng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.uniform_u64(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every value is valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.uniform_u64(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(
            self.start < self.end && self.start.is_finite() && self.end.is_finite(),
            "gen_range: empty or non-finite float range"
        );
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Guard against rounding up to the (excluded) end.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample(self, rng: &mut StdRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(
            lo <= hi && lo.is_finite() && hi.is_finite(),
            "gen_range: empty or non-finite float range"
        );
        lo + rng.next_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let u = rng.gen_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&v));
            let w = rng.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn int_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "{hits}");
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        let mut rng = StdRng::seed_from_u64(6);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(5..5);
    }
}
