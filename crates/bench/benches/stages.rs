//! Criterion micro-benchmarks: one group per pipeline stage, so the
//! runtime composition behind the Table II RT column can be traced.
//!
//! ```text
//! cargo bench -p puffer-bench
//! ```

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use puffer_congest::{CongestionEstimator, EstimatorConfig};
use puffer_db::design::{Design, Placement};
use puffer_db::geom::Point;
use puffer_dp::{refine, DetailedConfig};
use puffer_fft::{dct2, dct3, Complex};
use puffer_flute::Topology;
use puffer_gen::{generate, GeneratorConfig};
use puffer_legal::legalize;
use puffer_pad::{extract_features, padding_round, FeatureConfig, PaddingState, PaddingStrategy};
use puffer_place::{
    quadratic_placement, DensityModel, GlobalPlacer, PlacerConfig, QuadraticConfig,
};
use puffer_route::{assign_layers, GlobalRouter, LayerConfig, RouterConfig};

fn bench_design() -> Design {
    generate(&GeneratorConfig {
        name: "bench".into(),
        num_cells: 2000,
        num_nets: 2300,
        num_macros: 4,
        hotspot: 0.5,
        ..GeneratorConfig::default()
    })
    .expect("bench design")
}

/// A semi-spread snapshot (mid-global-placement shape).
fn snapshot(design: &Design) -> Placement {
    let r = design.region();
    let c = r.center();
    let n = design.netlist().movable_cells().count();
    let cols = (n as f64).sqrt().ceil() as usize;
    let mut p = design.initial_placement();
    for (i, id) in design.netlist().movable_cells().enumerate() {
        let fx = ((i % cols) as f64 + 0.5) / cols as f64 - 0.5;
        let fy = ((i / cols) as f64 + 0.5) / cols as f64 - 0.5;
        p.set(
            id,
            Point::new(c.x + fx * 0.6 * r.width(), c.y + fy * 0.6 * r.height()),
        );
    }
    p
}

fn fft_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    let data: Vec<f64> = (0..256).map(|i| (i as f64 * 0.37).sin()).collect();
    g.bench_function("dct2_256", |b| b.iter(|| dct2(std::hint::black_box(&data))));
    g.bench_function("dct3_256", |b| b.iter(|| dct3(std::hint::black_box(&data))));
    let cdata: Vec<Complex> = (0..1024)
        .map(|i| Complex::new((i as f64).sin(), 0.0))
        .collect();
    g.bench_function("fft_1024", |b| {
        b.iter_batched(
            || cdata.clone(),
            |mut v| puffer_fft::fft(&mut v),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn rsmt_benches(c: &mut Criterion) {
    let design = bench_design();
    let placement = snapshot(&design);
    let nets: Vec<_> = design.netlist().iter_nets().map(|(id, _)| id).collect();
    let mut g = c.benchmark_group("rsmt");
    g.bench_function("all_nets_2k", |b| {
        b.iter(|| {
            let mut wl = 0.0;
            for &net in &nets {
                wl += Topology::for_net(design.netlist(), &placement, net).wirelength();
            }
            wl
        })
    });
    g.finish();
}

fn congestion_benches(c: &mut Criterion) {
    let design = bench_design();
    let placement = snapshot(&design);
    let est = CongestionEstimator::new(&design, EstimatorConfig::default());
    let no_detour = CongestionEstimator::new(
        &design,
        EstimatorConfig {
            expand_detours: false,
            ..EstimatorConfig::default()
        },
    );
    let mut g = c.benchmark_group("congestion");
    g.bench_function("estimate_full", |b| {
        b.iter(|| est.estimate(&design, &placement))
    });
    g.bench_function("estimate_no_detour", |b| {
        b.iter(|| no_detour.estimate(&design, &placement))
    });
    g.finish();
}

fn feature_benches(c: &mut Criterion) {
    let design = bench_design();
    let placement = snapshot(&design);
    let est = CongestionEstimator::new(&design, EstimatorConfig::default());
    let map = est.estimate(&design, &placement);
    let mut g = c.benchmark_group("padding");
    g.bench_function("extract_features", |b| {
        b.iter(|| extract_features(&design, &placement, &map, &FeatureConfig::default()))
    });
    let features = extract_features(&design, &placement, &map, &FeatureConfig::default());
    let strategy = PaddingStrategy::default();
    g.bench_function("padding_round", |b| {
        b.iter_batched(
            || PaddingState::new(design.netlist().num_cells()),
            |mut state| padding_round(design.netlist(), &features, &strategy, &mut state, 1e6),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn density_benches(c: &mut Criterion) {
    let design = bench_design();
    let placement = snapshot(&design);
    let widths: Vec<f64> = design.netlist().cells().iter().map(|c| c.width).collect();
    let model = DensityModel::new(&design, 64, 64);
    let mut g = c.benchmark_group("density");
    g.bench_function("evaluate_64x64", |b| {
        b.iter(|| model.evaluate(design.netlist(), &placement, &widths, 1.0))
    });
    g.finish();
}

fn placer_benches(c: &mut Criterion) {
    let design = bench_design();
    let mut g = c.benchmark_group("placer");
    g.sample_size(10);
    g.bench_function("ten_nesterov_steps", |b| {
        b.iter_batched(
            || GlobalPlacer::new(&design, PlacerConfig::default()).expect("placer"),
            |mut placer| {
                for _ in 0..10 {
                    placer.step();
                }
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn router_benches(c: &mut Criterion) {
    let design = bench_design();
    let placement = snapshot(&design);
    let router = GlobalRouter::new(&design, RouterConfig::default());
    let pattern_only = GlobalRouter::new(
        &design,
        RouterConfig {
            max_rounds: 0,
            ..RouterConfig::default()
        },
    );
    let mut g = c.benchmark_group("router");
    g.sample_size(10);
    g.bench_function("route_full", |b| {
        b.iter(|| router.route(&design, &placement))
    });
    g.bench_function("route_pattern_only", |b| {
        b.iter(|| pattern_only.route(&design, &placement))
    });
    g.finish();
}

fn legalize_benches(c: &mut Criterion) {
    let design = bench_design();
    let placement = snapshot(&design);
    let zeros = vec![0u32; design.netlist().num_cells()];
    // Light padding (avg half a site) so the padded design still fits at
    // the bench design's utilization.
    let padded: Vec<u32> = (0..design.netlist().num_cells())
        .map(|i| (i % 2) as u32)
        .collect();
    let mut g = c.benchmark_group("legalize");
    g.sample_size(10);
    g.bench_function("abacus_plain", |b| {
        b.iter(|| legalize(&design, &placement, &zeros).expect("legalize"))
    });
    g.bench_function("abacus_padded", |b| {
        b.iter(|| legalize(&design, &placement, &padded).expect("legalize"))
    });
    g.finish();
}

fn quadratic_benches(c: &mut Criterion) {
    let design = bench_design();
    let init = design.initial_placement();
    let mut g = c.benchmark_group("quadratic");
    g.sample_size(10);
    g.bench_function("b2b_cg_solve", |b| {
        b.iter(|| quadratic_placement(&design, &init, &QuadraticConfig::default()))
    });
    g.finish();
}

fn dp_benches(c: &mut Criterion) {
    let design = bench_design();
    let zeros = vec![0u32; design.netlist().num_cells()];
    let legal = legalize(&design, &snapshot(&design), &zeros).expect("legalize");
    let mut g = c.benchmark_group("detailed_place");
    g.sample_size(10);
    g.bench_function("refine_3_passes", |b| {
        b.iter(|| {
            refine(
                &design,
                &legal.placement,
                &zeros,
                &DetailedConfig::default(),
            )
        })
    });
    g.finish();
}

fn layer_benches(c: &mut Criterion) {
    let design = bench_design();
    let placement = snapshot(&design);
    let router = GlobalRouter::new(&design, RouterConfig::default());
    let report = router.route(&design, &placement);
    let mut g = c.benchmark_group("layers");
    g.sample_size(10);
    g.bench_function("assign_layers", |b| {
        b.iter(|| assign_layers(&design, &report.paths, &LayerConfig::default()))
    });
    g.finish();
}

fn tpe_benches(c: &mut Criterion) {
    use puffer_explore::{ParamSpec, Space, Tpe, TpeConfig};
    let space = Space::new(
        (0..8)
            .map(|i| ParamSpec::continuous(format!("p{i}"), 0.0, 1.0))
            .collect(),
    );
    let mut g = c.benchmark_group("tpe");
    g.bench_function("suggest_after_100_obs", |b| {
        b.iter_batched(
            || {
                let mut tpe = Tpe::new(space.clone(), TpeConfig::default());
                for k in 0..100 {
                    let x: Vec<f64> = (0..8).map(|d| ((k * 7 + d) % 10) as f64 / 10.0).collect();
                    let y = x.iter().map(|v| (v - 0.3) * (v - 0.3)).sum();
                    tpe.observe(x, y);
                }
                tpe
            },
            |mut tpe| tpe.suggest(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    fft_benches,
    rsmt_benches,
    congestion_benches,
    feature_benches,
    density_benches,
    placer_benches,
    router_benches,
    legalize_benches,
    quadratic_benches,
    dp_benches,
    layer_benches,
    tpe_benches
);
criterion_main!(benches);
