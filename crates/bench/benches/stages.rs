//! Micro-benchmarks: one group per pipeline stage, so the runtime
//! composition behind the Table II RT column can be traced.
//!
//! Uses a small self-contained timing harness (no external bench
//! framework) so the workspace builds fully offline:
//!
//! ```text
//! cargo bench -p puffer-bench
//! ```
//!
//! Each benchmark is run for a fixed number of timed iterations after a
//! warm-up, and the per-iteration mean and minimum are reported.

use std::hint::black_box;
use std::time::Instant;

use puffer_congest::{CongestionEstimator, EstimatorConfig};
use puffer_db::design::{Design, Placement};
use puffer_db::geom::Point;
use puffer_dp::{refine, DetailedConfig};
use puffer_fft::{dct2, dct3, Complex};
use puffer_flute::Topology;
use puffer_gen::{generate, GeneratorConfig};
use puffer_legal::legalize;
use puffer_pad::{extract_features, padding_round, FeatureConfig, PaddingState, PaddingStrategy};
use puffer_place::{
    quadratic_placement, DensityModel, GlobalPlacer, PlacerConfig, QuadraticConfig,
};
use puffer_route::{assign_layers, GlobalRouter, LayerConfig, RouterConfig};

/// Times `f` for `iters` iterations after `warmup` untimed ones and
/// prints per-iteration statistics. The closure's result is passed
/// through [`black_box`] so the work is not optimized away.
fn bench<T, F: FnMut() -> T>(group: &str, name: &str, warmup: usize, iters: usize, mut f: F) {
    for _ in 0..warmup {
        black_box(f());
    }
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(f());
        samples.push(t0.elapsed().as_secs_f64());
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "{group:<14} {name:<28} mean {:>12}  min {:>12}  ({iters} iters)",
        fmt_secs(mean),
        fmt_secs(min)
    );
}

fn fmt_secs(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.1} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

fn bench_design() -> Design {
    generate(&GeneratorConfig {
        name: "bench".into(),
        num_cells: 2000,
        num_nets: 2300,
        num_macros: 4,
        hotspot: 0.5,
        ..GeneratorConfig::default()
    })
    .expect("bench design")
}

/// A semi-spread snapshot (mid-global-placement shape).
fn snapshot(design: &Design) -> Placement {
    let r = design.region();
    let c = r.center();
    let n = design.netlist().movable_cells().count();
    let cols = (n as f64).sqrt().ceil() as usize;
    let mut p = design.initial_placement();
    for (i, id) in design.netlist().movable_cells().enumerate() {
        let fx = ((i % cols) as f64 + 0.5) / cols as f64 - 0.5;
        let fy = ((i / cols) as f64 + 0.5) / cols as f64 - 0.5;
        p.set(
            id,
            Point::new(c.x + fx * 0.6 * r.width(), c.y + fy * 0.6 * r.height()),
        );
    }
    p
}

fn fft_benches() {
    let data: Vec<f64> = (0..256).map(|i| (i as f64 * 0.37).sin()).collect();
    bench("fft", "dct2_256", 10, 100, || dct2(black_box(&data)));
    bench("fft", "dct3_256", 10, 100, || dct3(black_box(&data)));
    let cdata: Vec<Complex> = (0..1024)
        .map(|i| Complex::new((i as f64).sin(), 0.0))
        .collect();
    bench("fft", "fft_1024", 10, 100, || {
        let mut v = cdata.clone();
        puffer_fft::fft(&mut v);
        v
    });
}

fn rsmt_benches() {
    let design = bench_design();
    let placement = snapshot(&design);
    let nets: Vec<_> = design.netlist().iter_nets().map(|(id, _)| id).collect();
    bench("rsmt", "all_nets_2k", 2, 20, || {
        let mut wl = 0.0;
        for &net in &nets {
            wl += Topology::for_net(design.netlist(), &placement, net).wirelength();
        }
        wl
    });
}

fn congestion_benches() {
    let design = bench_design();
    let placement = snapshot(&design);
    let est = CongestionEstimator::new(&design, EstimatorConfig::default());
    let no_detour = CongestionEstimator::new(
        &design,
        EstimatorConfig {
            expand_detours: false,
            ..EstimatorConfig::default()
        },
    );
    bench("congestion", "estimate_full", 2, 20, || {
        est.estimate(&design, &placement)
    });
    bench("congestion", "estimate_no_detour", 2, 20, || {
        no_detour.estimate(&design, &placement)
    });

    // Incremental re-estimation after a small perturbation: what a padding
    // round actually pays once warm state exists. `estimate_incremental`
    // on a fresh estimator is a full build, so warm it once outside the
    // timed loop, then alternate between two nearby placements so every
    // timed call sees real (small) dirt.
    let moved = {
        let r = design.region();
        let mut p = placement.clone();
        for (i, id) in design.netlist().movable_cells().enumerate() {
            if i % 16 == 0 {
                let pos = p.pos(id);
                p.set(
                    id,
                    Point::new(
                        (pos.x + 3.0).clamp(r.xl, r.xh),
                        (pos.y - 3.0).clamp(r.yl, r.yh),
                    ),
                );
            }
        }
        p
    };
    let mut inc = CongestionEstimator::new(&design, EstimatorConfig::default());
    inc.estimate_incremental(&design, &placement);
    let mut flip = false;
    bench("congestion", "estimate_incremental", 2, 20, move || {
        flip = !flip;
        let p = if flip { &moved } else { &placement };
        inc.estimate_incremental(&design, p)
    });
}

fn feature_benches() {
    let design = bench_design();
    let placement = snapshot(&design);
    let est = CongestionEstimator::new(&design, EstimatorConfig::default());
    let map = est.estimate(&design, &placement);
    bench("padding", "extract_features", 2, 20, || {
        extract_features(&design, &placement, &map, &FeatureConfig::default())
    });
    let features = extract_features(&design, &placement, &map, &FeatureConfig::default());
    let strategy = PaddingStrategy::default();
    bench("padding", "padding_round", 2, 20, || {
        let mut state = PaddingState::new(design.netlist().num_cells());
        padding_round(design.netlist(), &features, &strategy, &mut state, 1e6)
    });
}

fn density_benches() {
    let design = bench_design();
    let placement = snapshot(&design);
    let widths: Vec<f64> = design.netlist().cells().iter().map(|c| c.width).collect();
    let model = DensityModel::new(&design, 64, 64);
    bench("density", "evaluate_64x64", 2, 20, || {
        model.evaluate(design.netlist(), &placement, &widths, 1.0)
    });
}

fn placer_benches() {
    let design = bench_design();
    bench("placer", "ten_nesterov_steps", 1, 10, || {
        let mut placer = GlobalPlacer::new(&design, PlacerConfig::default()).expect("placer");
        for _ in 0..10 {
            placer.step();
        }
    });
}

fn budget_benches() {
    use puffer_budget::Budget;
    use std::time::Duration;

    // The raw cost of one cooperative cancellation check, for both budget
    // shapes the flow uses.
    let unbounded = Budget::unbounded();
    let deadline = Budget::with_deadline(Duration::from_secs(3600));
    bench("budget", "check_unbounded", 100, 1000, || {
        for _ in 0..1000 {
            black_box(black_box(&unbounded).check().is_ok());
        }
    });
    bench("budget", "check_deadline", 100, 1000, || {
        for _ in 0..1000 {
            black_box(black_box(&deadline).check().is_ok());
        }
    });

    // The flow-level question: ten GP steps with the per-iteration budget
    // check the bounded flow adds, versus the same ten steps without it.
    // The delta is the cancellation-check overhead on the GP loop (<1%).
    let design = bench_design();
    bench("budget", "ten_gp_steps_unchecked", 1, 10, || {
        let mut placer = GlobalPlacer::new(&design, PlacerConfig::default()).expect("placer");
        for _ in 0..10 {
            placer.step();
        }
    });
    bench("budget", "ten_gp_steps_budgeted", 1, 10, || {
        let mut placer = GlobalPlacer::new(&design, PlacerConfig::default()).expect("placer");
        for _ in 0..10 {
            if deadline.is_exhausted() {
                break;
            }
            placer.step();
        }
    });
}

fn router_benches() {
    let design = bench_design();
    let placement = snapshot(&design);
    let router = GlobalRouter::new(&design, RouterConfig::default());
    let pattern_only = GlobalRouter::new(
        &design,
        RouterConfig {
            max_rounds: 0,
            ..RouterConfig::default()
        },
    );
    bench("router", "route_full", 1, 10, || {
        router.route(&design, &placement)
    });
    bench("router", "route_pattern_only", 1, 10, || {
        pattern_only.route(&design, &placement)
    });
}

fn legalize_benches() {
    let design = bench_design();
    let placement = snapshot(&design);
    let zeros = vec![0u32; design.netlist().num_cells()];
    // Light padding (avg half a site) so the padded design still fits at
    // the bench design's utilization.
    let padded: Vec<u32> = (0..design.netlist().num_cells())
        .map(|i| (i % 2) as u32)
        .collect();
    bench("legalize", "abacus_plain", 1, 10, || {
        legalize(&design, &placement, &zeros).expect("legalize")
    });
    bench("legalize", "abacus_padded", 1, 10, || {
        legalize(&design, &placement, &padded).expect("legalize")
    });
}

fn quadratic_benches() {
    let design = bench_design();
    let init = design.initial_placement();
    bench("quadratic", "b2b_cg_solve", 1, 10, || {
        quadratic_placement(&design, &init, &QuadraticConfig::default())
    });
}

fn dp_benches() {
    let design = bench_design();
    let zeros = vec![0u32; design.netlist().num_cells()];
    let legal = legalize(&design, &snapshot(&design), &zeros).expect("legalize");
    bench("detailed_place", "refine_3_passes", 1, 10, || {
        refine(
            &design,
            &legal.placement,
            &zeros,
            &DetailedConfig::default(),
        )
    });
}

fn layer_benches() {
    let design = bench_design();
    let placement = snapshot(&design);
    let router = GlobalRouter::new(&design, RouterConfig::default());
    let report = router.route(&design, &placement);
    bench("layers", "assign_layers", 1, 10, || {
        assign_layers(&design, &report.paths, &LayerConfig::default())
    });
}

fn tpe_benches() {
    use puffer_explore::{ParamSpec, Space, Tpe, TpeConfig};
    let space = Space::new(
        (0..8)
            .map(|i| ParamSpec::continuous(format!("p{i}"), 0.0, 1.0))
            .collect(),
    );
    bench("tpe", "suggest_after_100_obs", 2, 20, || {
        let mut tpe = Tpe::new(space.clone(), TpeConfig::default());
        for k in 0..100 {
            let x: Vec<f64> = (0..8).map(|d| ((k * 7 + d) % 10) as f64 / 10.0).collect();
            let y = x.iter().map(|v| (v - 0.3) * (v - 0.3)).sum();
            tpe.observe(x, y);
        }
        tpe.suggest()
    });
}

fn trace_benches() {
    use puffer_trace::Trace;
    let design = bench_design();
    // Ten Nesterov steps with and without a telemetry handle attached.
    // The disabled/no-sink rows must stay within noise of the untraced
    // row: a disabled sink is a no-op and allocates nothing per step.
    let step_run = |trace: Option<Trace>| {
        let mut placer = GlobalPlacer::new(&design, PlacerConfig::default()).expect("placer");
        if let Some(t) = trace {
            placer.set_trace(t);
        }
        for _ in 0..10 {
            placer.step();
        }
    };
    bench("trace", "ten_steps_untraced", 1, 10, || step_run(None));
    bench("trace", "ten_steps_disabled", 1, 10, || {
        step_run(Some(Trace::disabled()))
    });
    bench("trace", "ten_steps_no_sink", 1, 10, || {
        step_run(Some(Trace::enabled()))
    });
    let dir = std::env::temp_dir().join("puffer-bench-trace");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("steps.jsonl");
    bench("trace", "ten_steps_jsonl_sink", 1, 10, || {
        step_run(Some(Trace::with_sink(&path).expect("sink")))
    });
    // Micro-costs of the primitives themselves.
    let disabled = Trace::disabled();
    bench("trace", "span_disabled", 10, 100, || {
        for _ in 0..1000 {
            let _s = disabled.span("x");
        }
    });
    let enabled = Trace::enabled();
    bench("trace", "span_enabled", 10, 100, || {
        for _ in 0..1000 {
            let _s = enabled.span("x");
        }
    });
}

fn par_benches() {
    use puffer_bench::par::{serial_transform2d, serial_wa_reference, THREADS};
    use puffer_fft::transform2d_threaded;
    use puffer_place::wa_wirelength_grad_threaded;

    let design = bench_design();
    let placement = snapshot(&design);
    let nl = design.netlist();

    // WA wirelength gradient: unchunked serial reference, then the
    // chunked deterministic-parallel path at 1/2/4/8 threads.
    bench("par", "wa_grad_serial_ref", 2, 20, || {
        serial_wa_reference(nl, &placement, 4.0)
    });
    for t in THREADS {
        bench("par", &format!("wa_grad_{t}t"), 2, 20, || {
            wa_wirelength_grad_threaded(nl, &placement, 4.0, t)
        });
    }

    // Electrostatic density evaluation (scatter + Poisson + gather).
    let widths: Vec<f64> = nl.cells().iter().map(|c| c.width).collect();
    let model = DensityModel::new(&design, 64, 64);
    for t in THREADS {
        bench("par", &format!("density_eval_{t}t"), 2, 20, || {
            model.evaluate_threaded(nl, &placement, &widths, 1.0, t)
        });
    }

    // 2-D DCT on a Poisson-solver-sized grid.
    let (nx, ny) = (256, 256);
    let data: Vec<f64> = (0..nx * ny).map(|i| (i as f64 * 0.13).sin()).collect();
    bench("par", "transform2d_serial_ref", 2, 20, || {
        serial_transform2d(&data, nx, ny, dct2)
    });
    for t in THREADS {
        bench("par", &format!("transform2d_{t}t"), 2, 20, || {
            transform2d_threaded(&data, nx, ny, dct2, t)
        });
    }
}

fn audit_benches() {
    use puffer::{PufferConfig, PufferPlacer};
    use puffer_audit::Validate;
    let design = bench_design();
    let mut config = PufferConfig::default();
    config.placer.max_iters = 40;
    config.strategy.max_rounds = 1;
    // The full flow with and without the `--validate` stage observers.
    // The off row IS the no-observer baseline: when no observer is set the
    // stage boundaries skip straight past the hook, so having the audit
    // layer in the codebase costs nothing unless it is switched on.
    let flow_run = |validate: bool| {
        let mut placer = PufferPlacer::new(config.clone());
        if validate {
            placer = placer.with_observer(puffer_audit::flow_validator());
        }
        placer.place(&design).expect("place")
    };
    bench("audit", "flow_validate_off", 1, 5, || flow_run(false));
    bench("audit", "flow_validate_on", 1, 5, || flow_run(true));
    // The standalone checkers, for sizing the per-boundary cost.
    bench("audit", "design_validate", 2, 20, || design.validate());
    let placement = design.initial_placement();
    bench("audit", "placement_validate", 2, 20, || {
        puffer_audit::PlacementAudit {
            design: &design,
            placement: &placement,
            stage: puffer_audit::PlacementStage::Global,
        }
        .validate()
    });
    // The full-workspace static analysis exactly as the `puffer lint` CI
    // gate runs it: every source rule (panic/threading/cast/unordered-iter/
    // wallclock/layering) plus the lock-order graph build over the
    // per-crate call graphs. Keeps the gate's wall-clock cost visible as
    // the rule set grows.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf();
    bench("audit", "workspace_lint", 1, 5, || {
        puffer_audit::lint_workspace(&puffer_audit::LintConfig { root: root.clone() })
            .expect("workspace lint")
    });
}

fn main() {
    // `cargo bench` passes flags like `--bench`; the first non-flag
    // argument (if any) filters the groups to run.
    let filter = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .unwrap_or_default();
    let groups: [(&str, fn()); 16] = [
        ("fft", fft_benches),
        ("par", par_benches),
        ("budget", budget_benches),
        ("rsmt", rsmt_benches),
        ("congestion", congestion_benches),
        ("padding", feature_benches),
        ("density", density_benches),
        ("placer", placer_benches),
        ("router", router_benches),
        ("legalize", legalize_benches),
        ("quadratic", quadratic_benches),
        ("detailed_place", dp_benches),
        ("layers", layer_benches),
        ("tpe", tpe_benches),
        ("trace", trace_benches),
        ("audit", audit_benches),
    ];
    for (name, run) in groups {
        if filter.is_empty() || name.contains(&filter) {
            run();
        }
    }
}
