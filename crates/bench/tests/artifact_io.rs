//! Regression gate for the bench harness's artifact I/O: every benchmark
//! binary must route the tables and figures it writes through
//! `puffer_budget::fsx::atomic_write` — a bench run killed mid-write must
//! never leave a half-written `table2.csv` that a later comparison step
//! silently ingests. Binary roots sit outside the `raw-io` lint (it is a
//! library-code rule), so this test is the gate for them.

use std::path::PathBuf;

fn bin_sources() -> Vec<(String, String)> {
    let bin_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("src/bin");
    let mut sources = Vec::new();
    for entry in std::fs::read_dir(&bin_dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "rs") {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            sources.push((name, std::fs::read_to_string(&path).unwrap()));
        }
    }
    sources.sort();
    assert!(
        sources.len() >= 6,
        "expected the full bench binary set, found {sources:?}"
    );
    sources
}

#[test]
fn bench_binaries_write_artifacts_through_the_durable_layer() {
    for (name, text) in bin_sources() {
        for raw in ["std::fs::write(", "fs::File::create(", "File::create("] {
            assert!(
                !text.contains(raw),
                "{name} writes an artifact with {raw}; route it through \
                 puffer_budget::fsx::atomic_write so a killed bench run \
                 cannot leave a torn table/figure behind"
            );
        }
    }
}

#[test]
fn every_artifact_writing_binary_uses_atomic_write() {
    for (name, text) in bin_sources() {
        // A bench binary that produces an on-disk artifact mentions its
        // output directory helper; those must commit via atomic_write.
        if text.contains("ensure_out_dir") {
            assert!(
                text.contains("fsx::atomic_write("),
                "{name} prepares an output dir but never commits through \
                 fsx::atomic_write"
            );
        }
    }
}
