//! Shared harness utilities for the table/figure regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation section:
//!
//! | Binary | Artifact |
//! |---|---|
//! | `table1` | Table I — benchmark statistics |
//! | `table2` | Table II — HOF/VOF/WL/RT comparison of the three flows |
//! | `fig5` | Fig. 5 — congestion maps for MEDIA_SUBSYS |
//! | `explore` | §III-C protocol — strategy exploration on a small design |
//! | `ablation` | DESIGN.md ablations — each PUFFER mechanism toggled off |
//!
//! All binaries accept `--scale <f>` (default from the binary), `--designs
//! <a,b,...>` (Table I names), and `--out <dir>` (artifact directory,
//! default `target/paper`). Designs are generated deterministically, so
//! artifacts are reproducible run-to-run.

#![forbid(unsafe_code)]

use puffer::{
    evaluate, EvalRow, PufferConfig, PufferPlacer, ReferenceConfig, ReferencePlacer, ReplaceConfig,
    ReplacePlacer,
};
use puffer_db::design::Design;
use puffer_gen::{generate, presets, GeneratorConfig};
use std::path::PathBuf;

/// Which of the three Table II flows to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowKind {
    /// The commercial stand-in (router-in-the-loop inflation).
    Reference,
    /// The RePlAce-style baseline (bulk local inflation).
    ReplaceLike,
    /// PUFFER itself.
    Puffer,
}

impl FlowKind {
    /// All flows in the paper's column order.
    pub fn all() -> [FlowKind; 3] {
        [FlowKind::Reference, FlowKind::ReplaceLike, FlowKind::Puffer]
    }

    /// The display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            FlowKind::Reference => "Commercial_Ref",
            FlowKind::ReplaceLike => "RePlAce-like",
            FlowKind::Puffer => "PUFFER",
        }
    }
}

/// Command-line arguments shared by all harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Benchmark scale factor (fraction of Table I sizes).
    pub scale: f64,
    /// Subset of Table I design names (lowercase ok); `None` = all ten.
    pub designs: Option<Vec<String>>,
    /// Output directory for CSV/map artifacts.
    pub out_dir: PathBuf,
}

impl HarnessArgs {
    /// Parses `--scale`, `--designs`, `--out` from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse(default_scale: f64) -> Self {
        let mut args = HarnessArgs {
            scale: default_scale,
            designs: None,
            out_dir: PathBuf::from("target/paper"),
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--scale" => {
                    args.scale = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--scale needs a positive number");
                }
                "--designs" => {
                    args.designs = Some(
                        it.next()
                            .expect("--designs needs a comma-separated list")
                            .split(',')
                            .map(|s| s.trim().to_string())
                            .collect(),
                    );
                }
                "--out" => {
                    args.out_dir = PathBuf::from(it.next().expect("--out needs a directory"));
                }
                "--help" | "-h" => {
                    eprintln!(
                        "usage: [--scale <f>] [--designs a,b,...] [--out <dir>]\n\
                         designs: {}",
                        presets::all(1.0)
                            .iter()
                            .map(|c| c.name.clone())
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag '{other}' (try --help)"),
            }
        }
        assert!(args.scale > 0.0, "--scale must be positive");
        args
    }

    /// The selected generator configs at the requested scale.
    ///
    /// # Panics
    ///
    /// Panics if a requested design name is unknown.
    pub fn configs(&self) -> Vec<GeneratorConfig> {
        match &self.designs {
            None => presets::all(self.scale),
            Some(names) => names
                .iter()
                .map(|n| {
                    presets::by_name(n, self.scale)
                        .unwrap_or_else(|| panic!("unknown design '{n}'"))
                })
                .collect(),
        }
    }

    /// Creates the output directory and returns it.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created.
    pub fn ensure_out_dir(&self) -> &PathBuf {
        std::fs::create_dir_all(&self.out_dir).expect("create output directory");
        &self.out_dir
    }
}

/// Runs one flow on one design and evaluates it with the shared router.
///
/// # Panics
///
/// Panics if the flow fails (harness binaries treat that as fatal).
pub fn run_flow(design: &Design, flow: FlowKind) -> EvalRow {
    let result = match flow {
        FlowKind::Reference => ReferencePlacer::new(ReferenceConfig::default()).place(design),
        FlowKind::ReplaceLike => ReplacePlacer::new(ReplaceConfig::default()).place(design),
        FlowKind::Puffer => PufferPlacer::new(PufferConfig::default()).place(design),
    }
    .unwrap_or_else(|e| panic!("{} failed on {}: {e}", flow.name(), design.name()));
    let report = evaluate(design, &result.placement);
    EvalRow {
        benchmark: design.name().to_string(),
        flow: flow.name().to_string(),
        hof_pct: report.hof_pct,
        vof_pct: report.vof_pct,
        wirelength: report.wirelength,
        runtime_s: result.runtime_s,
    }
}

/// Generates a design from a config, logging progress to stderr.
///
/// # Panics
///
/// Panics if generation fails.
pub fn generate_logged(config: &GeneratorConfig) -> Design {
    eprintln!(
        "[gen] {} (cells {}, nets {}, macros {})",
        config.name, config.num_cells, config.num_nets, config.num_macros
    );
    let design = generate(config).expect("benchmark generation failed");
    let s = design.stats();
    eprintln!(
        "[gen] {} ready: {} movable, {} nets, {} pins, utilization {:.2}",
        design.name(),
        s.movable_cells,
        s.nets,
        s.movable_pins,
        design.utilization()
    );
    design
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_names_are_stable() {
        assert_eq!(FlowKind::Puffer.name(), "PUFFER");
        assert_eq!(FlowKind::all().len(), 3);
        // PUFFER is last: the paper normalizes WL/RT against it.
        assert_eq!(FlowKind::all()[2], FlowKind::Puffer);
    }

    #[test]
    fn configs_selects_subset() {
        let args = HarnessArgs {
            scale: 0.01,
            designs: Some(vec!["or1200".into(), "CT_TOP".into()]),
            out_dir: PathBuf::from("/tmp/x"),
        };
        let cfgs = args.configs();
        assert_eq!(cfgs.len(), 2);
        assert_eq!(cfgs[0].name, "OR1200");
        assert_eq!(cfgs[1].name, "CT_TOP");
    }

    #[test]
    fn run_flow_produces_row() {
        let cfg = GeneratorConfig {
            num_cells: 250,
            num_nets: 280,
            num_macros: 1,
            utilization: 0.55,
            name: "tiny".into(),
            ..GeneratorConfig::default()
        };
        let d = generate(&cfg).unwrap();
        let row = run_flow(&d, FlowKind::Puffer);
        assert_eq!(row.benchmark, "tiny");
        assert_eq!(row.flow, "PUFFER");
        assert!(row.wirelength > 0.0);
        assert!(row.runtime_s > 0.0);
    }
}
