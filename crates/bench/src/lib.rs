//! Shared harness utilities for the table/figure regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation section:
//!
//! | Binary | Artifact |
//! |---|---|
//! | `table1` | Table I — benchmark statistics |
//! | `table2` | Table II — HOF/VOF/WL/RT comparison of the three flows |
//! | `fig5` | Fig. 5 — congestion maps for MEDIA_SUBSYS |
//! | `explore` | §III-C protocol — strategy exploration on a small design |
//! | `ablation` | DESIGN.md ablations — each PUFFER mechanism toggled off |
//!
//! All binaries accept `--scale <f>` (default from the binary), `--designs
//! <a,b,...>` (Table I names), and `--out <dir>` (artifact directory,
//! default `target/paper`). Designs are generated deterministically, so
//! artifacts are reproducible run-to-run.

#![forbid(unsafe_code)]

use puffer::{
    evaluate, EvalRow, PufferConfig, PufferPlacer, ReferenceConfig, ReferencePlacer, ReplaceConfig,
    ReplacePlacer,
};
use puffer_db::design::Design;
use puffer_gen::{generate, presets, GeneratorConfig};
use std::path::PathBuf;

/// Which of the three Table II flows to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowKind {
    /// The commercial stand-in (router-in-the-loop inflation).
    Reference,
    /// The RePlAce-style baseline (bulk local inflation).
    ReplaceLike,
    /// PUFFER itself.
    Puffer,
}

impl FlowKind {
    /// All flows in the paper's column order.
    pub fn all() -> [FlowKind; 3] {
        [FlowKind::Reference, FlowKind::ReplaceLike, FlowKind::Puffer]
    }

    /// The display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            FlowKind::Reference => "Commercial_Ref",
            FlowKind::ReplaceLike => "RePlAce-like",
            FlowKind::Puffer => "PUFFER",
        }
    }
}

/// Command-line arguments shared by all harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Benchmark scale factor (fraction of Table I sizes).
    pub scale: f64,
    /// Subset of Table I design names (lowercase ok); `None` = all ten.
    pub designs: Option<Vec<String>>,
    /// Output directory for CSV/map artifacts.
    pub out_dir: PathBuf,
    /// `benchflow` only: skip the flow and run just the single-thread
    /// incremental-congestion gate on each design (other binaries accept
    /// and ignore the flag).
    pub congest_gate: bool,
    /// `benchflow` only: million-cell smoke — place one Table I-sized
    /// design under a bounded peak-RSS assertion (other binaries accept
    /// and ignore the flag).
    pub scale_gate: bool,
}

impl HarnessArgs {
    /// Parses `--scale`, `--designs`, `--out`, `--congest-gate`, and
    /// `--scale-gate` from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse(default_scale: f64) -> Self {
        let mut args = HarnessArgs {
            scale: default_scale,
            designs: None,
            out_dir: PathBuf::from("target/paper"),
            congest_gate: false,
            scale_gate: false,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--scale" => {
                    args.scale = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--scale needs a positive number");
                }
                "--designs" => {
                    args.designs = Some(
                        it.next()
                            .expect("--designs needs a comma-separated list")
                            .split(',')
                            .map(|s| s.trim().to_string())
                            .collect(),
                    );
                }
                "--out" => {
                    args.out_dir = PathBuf::from(it.next().expect("--out needs a directory"));
                }
                "--congest-gate" => {
                    args.congest_gate = true;
                }
                "--scale-gate" => {
                    args.scale_gate = true;
                }
                "--help" | "-h" => {
                    eprintln!(
                        "usage: [--scale <f>] [--designs a,b,...] [--out <dir>] [--congest-gate]\n\
                         \x20      [--scale-gate]\n\
                         designs: {}",
                        presets::all(1.0)
                            .expect("scale 1.0 is valid")
                            .iter()
                            .map(|c| c.name.clone())
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag '{other}' (try --help)"),
            }
        }
        assert!(args.scale > 0.0, "--scale must be positive");
        args
    }

    /// The selected generator configs at the requested scale.
    ///
    /// # Panics
    ///
    /// Panics if a requested design name is unknown.
    pub fn configs(&self) -> Vec<GeneratorConfig> {
        match &self.designs {
            None => presets::all(self.scale)
                .unwrap_or_else(|e| panic!("invalid --scale: {e}")),
            Some(names) => names
                .iter()
                .map(|n| {
                    presets::by_name(n, self.scale)
                        .unwrap_or_else(|e| panic!("invalid --scale: {e}"))
                        .unwrap_or_else(|| panic!("unknown design '{n}'"))
                })
                .collect(),
        }
    }

    /// Creates the output directory and returns it.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created.
    pub fn ensure_out_dir(&self) -> &PathBuf {
        std::fs::create_dir_all(&self.out_dir).expect("create output directory");
        &self.out_dir
    }
}

/// Runs one flow on one design and evaluates it with the shared router.
///
/// # Panics
///
/// Panics if the flow fails (harness binaries treat that as fatal).
pub fn run_flow(design: &Design, flow: FlowKind) -> EvalRow {
    let result = match flow {
        FlowKind::Reference => ReferencePlacer::new(ReferenceConfig::default()).place(design),
        FlowKind::ReplaceLike => ReplacePlacer::new(ReplaceConfig::default()).place(design),
        FlowKind::Puffer => PufferPlacer::new(PufferConfig::default()).place(design),
    }
    .unwrap_or_else(|e| panic!("{} failed on {}: {e}", flow.name(), design.name()));
    let report = evaluate(design, &result.placement);
    EvalRow {
        benchmark: design.name().to_string(),
        flow: flow.name().to_string(),
        hof_pct: report.hof_pct,
        vof_pct: report.vof_pct,
        wirelength: report.wirelength,
        runtime_s: result.runtime_s,
    }
}

/// Generates a design from a config, logging progress to stderr.
///
/// # Panics
///
/// Panics if generation fails.
pub fn generate_logged(config: &GeneratorConfig) -> Design {
    eprintln!(
        "[gen] {} (cells {}, nets {}, macros {})",
        config.name, config.num_cells, config.num_nets, config.num_macros
    );
    let design = generate(config).expect("benchmark generation failed");
    let s = design.stats();
    eprintln!(
        "[gen] {} ready: {} movable, {} nets, {} pins, utilization {:.2}",
        design.name(),
        s.movable_cells,
        s.nets,
        s.movable_pins,
        design.utilization()
    );
    design
}

/// Support for the deterministic-parallelism (`par`) bench group: serial
/// reference kernels and a noise-robust timer.
///
/// The serial references are *unchunked* single-pass implementations of the
/// kernels `puffer-par` parallelises. They exist only as performance
/// baselines: the chunked 1-thread path pays for per-chunk partial buffers
/// and the ordered merge even when no worker threads are spawned, and CI
/// gates that this overhead stays under 10% (`benchflow`'s `par` section).
pub mod par {
    use puffer_db::design::Placement;
    use puffer_db::netlist::Netlist;
    use std::hint::black_box;
    use puffer_budget::clock::Stopwatch;

    /// Thread counts exercised by the bench group and `benchflow`.
    pub const THREADS: [usize; 4] = [1, 2, 4, 8];

    /// Minimum per-iteration time of `f` over `iters` timed runs after
    /// `warmup` untimed ones. The minimum — not the mean — is used because
    /// the regression gate compares two code paths and must shrug off
    /// scheduler noise.
    pub fn time_min<T>(warmup: usize, iters: usize, mut f: impl FnMut() -> T) -> f64 {
        for _ in 0..warmup {
            black_box(f());
        }
        let mut min = f64::INFINITY;
        for _ in 0..iters {
            let t0 = Stopwatch::start();
            black_box(f());
            min = min.min(t0.elapsed_secs());
        }
        min
    }

    /// Unchunked single-pass WA wirelength gradient: the serial baseline
    /// the chunked 1-thread `wa_wirelength_grad_threaded` path is gated
    /// against. Same math as `puffer-place`, but one accumulation buffer
    /// and no partial merge.
    pub fn serial_wa_reference(
        netlist: &Netlist,
        placement: &Placement,
        gamma: f64,
    ) -> (f64, Vec<f64>, Vec<f64>) {
        assert!(gamma > 0.0, "gamma must be positive");
        let n = netlist.num_cells();
        let mut value = 0.0;
        let mut grad_x = vec![0.0; n];
        let mut grad_y = vec![0.0; n];
        let mut coords: Vec<f64> = Vec::with_capacity(16);
        let mut exps_p: Vec<f64> = Vec::with_capacity(16);
        let mut exps_m: Vec<f64> = Vec::with_capacity(16);
        let mut grads: Vec<f64> = Vec::with_capacity(16);
        let inv_gamma = 1.0 / gamma;
        for (id, net) in netlist.iter_nets() {
            let net_pins = netlist.net_pins(id);
            if net_pins.len() < 2 || net.weight == 0.0 {
                continue;
            }
            for axis in 0..2 {
                coords.clear();
                for &pid in net_pins {
                    let p = placement.pin_pos(netlist, pid);
                    coords.push(if axis == 0 { p.x } else { p.y });
                }
                let (max, min) = coords
                    .iter()
                    .fold((f64::NEG_INFINITY, f64::INFINITY), |(mx, mn), &x| {
                        (mx.max(x), mn.min(x))
                    });
                exps_p.clear();
                exps_m.clear();
                let (mut sp, mut sxp, mut sm, mut sxm) = (0.0, 0.0, 0.0, 0.0);
                for &x in &coords {
                    let ep = ((x - max) * inv_gamma).exp();
                    let em = ((min - x) * inv_gamma).exp();
                    exps_p.push(ep);
                    exps_m.push(em);
                    sp += ep;
                    sxp += x * ep;
                    sm += em;
                    sxm += x * em;
                }
                value += net.weight * (sxp / sp - sxm / sm);
                let inv_sp2 = 1.0 / (sp * sp);
                let inv_sm2 = 1.0 / (sm * sm);
                let w = net.weight;
                grads.clear();
                for j in 0..coords.len() {
                    let x = coords[j];
                    let ep = exps_p[j];
                    let em = exps_m[j];
                    let dp =
                        ((1.0 + x * inv_gamma) * ep * sp - ep * sxp * inv_gamma) * inv_sp2;
                    let dm =
                        ((1.0 - x * inv_gamma) * em * sm + em * sxm * inv_gamma) * inv_sm2;
                    grads.push(w * (dp - dm));
                }
                for (j, &pid) in net_pins.iter().enumerate() {
                    let cell = netlist.pin(pid).cell.index();
                    if axis == 0 {
                        grad_x[cell] += grads[j];
                    } else {
                        grad_y[cell] += grads[j];
                    }
                }
            }
        }
        (value, grad_x, grad_y)
    }

    /// Unchunked 2-D separable transform (rows, then columns): the serial
    /// baseline for `transform2d_threaded`.
    pub fn serial_transform2d(
        data: &[f64],
        nx: usize,
        ny: usize,
        f: impl Fn(&[f64]) -> Vec<f64>,
    ) -> Vec<f64> {
        assert_eq!(data.len(), nx * ny, "matrix shape mismatch");
        let mut rows = Vec::with_capacity(nx * ny);
        for iy in 0..ny {
            rows.extend_from_slice(&f(&data[iy * nx..(iy + 1) * nx]));
        }
        let mut out = vec![0.0; nx * ny];
        let mut col = vec![0.0; ny];
        for ix in 0..nx {
            for (iy, c) in col.iter_mut().enumerate() {
                *c = rows[iy * nx + ix];
            }
            for (iy, v) in f(&col).into_iter().enumerate() {
                out[iy * nx + ix] = v;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_names_are_stable() {
        assert_eq!(FlowKind::Puffer.name(), "PUFFER");
        assert_eq!(FlowKind::all().len(), 3);
        // PUFFER is last: the paper normalizes WL/RT against it.
        assert_eq!(FlowKind::all()[2], FlowKind::Puffer);
    }

    #[test]
    fn configs_selects_subset() {
        let args = HarnessArgs {
            scale: 0.01,
            designs: Some(vec!["or1200".into(), "CT_TOP".into()]),
            out_dir: PathBuf::from("/tmp/x"),
            congest_gate: false,
            scale_gate: false,
        };
        let cfgs = args.configs();
        assert_eq!(cfgs.len(), 2);
        assert_eq!(cfgs[0].name, "OR1200");
        assert_eq!(cfgs[1].name, "CT_TOP");
    }

    #[test]
    fn serial_references_match_the_library_kernels() {
        let cfg = GeneratorConfig {
            num_cells: 200,
            num_nets: 230,
            name: "ref".into(),
            ..GeneratorConfig::default()
        };
        let d = generate(&cfg).unwrap();
        let p = d.initial_placement();
        let (value, gx, gy) = par::serial_wa_reference(d.netlist(), &p, 4.0);
        let lib = puffer_place::wa_wirelength_grad(d.netlist(), &p, 4.0);
        // Same math, different accumulation parenthesization (the library
        // merges per-chunk partials): compare numerically, not bitwise.
        assert!((value - lib.value).abs() <= 1e-9 * lib.value.abs().max(1.0));
        for (a, b) in gx.iter().zip(&lib.grad_x) {
            assert!((a - b).abs() <= 1e-9, "{a} vs {b}");
        }
        for (a, b) in gy.iter().zip(&lib.grad_y) {
            assert!((a - b).abs() <= 1e-9, "{a} vs {b}");
        }

        // Transforms write disjoint outputs — no accumulation — so the
        // serial reference is bit-identical to the library path.
        let data: Vec<f64> = (0..32 * 16).map(|i| (i as f64 * 0.31).sin()).collect();
        let serial = par::serial_transform2d(&data, 32, 16, puffer_fft::dct2);
        let lib = puffer_fft::transform2d(&data, 32, 16, puffer_fft::dct2);
        assert_eq!(
            serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            lib.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn run_flow_produces_row() {
        let cfg = GeneratorConfig {
            num_cells: 250,
            num_nets: 280,
            num_macros: 1,
            utilization: 0.55,
            name: "tiny".into(),
            ..GeneratorConfig::default()
        };
        let d = generate(&cfg).unwrap();
        let row = run_flow(&d, FlowKind::Puffer);
        assert_eq!(row.benchmark, "tiny");
        assert_eq!(row.flow, "PUFFER");
        assert!(row.wirelength > 0.0);
        assert!(row.runtime_s > 0.0);
    }
}
