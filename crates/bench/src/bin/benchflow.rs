//! Machine-readable flow benchmark.
//!
//! Runs the full PUFFER flow under telemetry on each selected design and
//! writes one `BENCH_<design>.json` per design into the output directory:
//! the per-stage wall-times from the span timers (init / gp / gp-pad /
//! legal / route) plus the Table II quantities (HOF, VOF, WL, RT).
//!
//! ```text
//! cargo run --release -p puffer-bench --bin benchflow -- \
//!     --scale 0.003 --designs or1200 --out target/bench
//! ```
//!
//! `scripts/bench.sh` wraps this binary; CI keeps the JSON as artifacts.

#![forbid(unsafe_code)]

use puffer::{evaluate_traced, PufferConfig, PufferPlacer};
use puffer_bench::par::{serial_transform2d, serial_wa_reference, time_min, THREADS};
use puffer_bench::{generate_logged, HarnessArgs};
use puffer_fft::{dct2, transform2d_threaded};
use puffer_place::{wa_wirelength_grad_threaded, DensityModel};
use puffer_route::RouterConfig;
use puffer_trace::Trace;
use std::fmt::Write as _;

/// Allowed slowdown of the chunked 1-thread kernel path over the
/// unchunked serial reference: the deterministic-parallelism layer must
/// cost less than 10% when no worker threads are spawned.
const PAR_GATE_FACTOR: f64 = 1.10;

/// Per-kernel timings for the `par` JSON section: the serial reference
/// (where one exists) and the chunked path at [`THREADS`].
struct ParTimes {
    serial_s: Option<f64>,
    by_threads: [f64; THREADS.len()],
}

impl ParTimes {
    fn speedup_4t(&self) -> f64 {
        self.by_threads[0] / self.by_threads[2]
    }
}

/// Times the deterministic-parallel kernels on the placed design.
fn par_times(
    design: &puffer_db::design::Design,
    placement: &puffer_db::design::Placement,
) -> [(&'static str, ParTimes); 3] {
    let nl = design.netlist();
    let widths: Vec<f64> = nl.cells().iter().map(|c| c.width).collect();
    let model = DensityModel::new(design, 64, 64);
    let (nx, ny) = (256, 256);
    let data: Vec<f64> = (0..nx * ny).map(|i| (i as f64 * 0.13).sin()).collect();

    let wa = ParTimes {
        serial_s: Some(time_min(2, 9, || serial_wa_reference(nl, placement, 4.0))),
        by_threads: THREADS
            .map(|t| time_min(2, 9, || wa_wirelength_grad_threaded(nl, placement, 4.0, t))),
    };
    let density = ParTimes {
        serial_s: None,
        by_threads: THREADS.map(|t| {
            time_min(2, 9, || {
                model.evaluate_threaded(nl, placement, &widths, 1.0, t)
            })
        }),
    };
    let transform = ParTimes {
        serial_s: Some(time_min(2, 9, || serial_transform2d(&data, nx, ny, dct2))),
        by_threads: THREADS.map(|t| time_min(2, 9, || transform2d_threaded(&data, nx, ny, dct2, t))),
    };
    [
        ("wa_grad", wa),
        ("density", density),
        ("transform2d", transform),
    ]
}

/// Appends `"key": value` (6 decimal places, non-finite becomes `null`).
fn field(json: &mut String, indent: &str, key: &str, value: f64, last: bool) {
    let comma = if last { "" } else { "," };
    if value.is_finite() {
        let _ = writeln!(json, "{indent}\"{key}\": {value:.6}{comma}");
    } else {
        let _ = writeln!(json, "{indent}\"{key}\": null{comma}");
    }
}

fn main() {
    let args = HarnessArgs::parse(0.003);
    let out_dir = args.ensure_out_dir().clone();
    for config in args.configs() {
        let design = generate_logged(&config);
        let trace = Trace::enabled();
        let result = PufferPlacer::new(PufferConfig::default())
            .with_trace(trace.clone())
            .place(&design)
            .unwrap_or_else(|e| panic!("PUFFER failed on {}: {e}", design.name()));
        let report = evaluate_traced(&design, &result.placement, &RouterConfig::default(), &trace);

        let spans = trace.span_stats();
        let total = |label: &str| {
            spans
                .iter()
                .find(|(l, _)| l == label)
                .map_or(0.0, |(_, s)| s.total)
        };

        let mut json = String::from("{\n");
        // Preset names are plain ASCII identifiers; no escaping needed.
        let _ = writeln!(json, "  \"design\": \"{}\",", design.name());
        let _ = writeln!(json, "  \"cells\": {},", design.stats().movable_cells);
        json.push_str("  \"stages_s\": {\n");
        field(&mut json, "    ", "init", total("init"), false);
        field(&mut json, "    ", "gp", total("gp"), false);
        field(&mut json, "    ", "gp_pad", total("gp/pad"), false);
        field(&mut json, "    ", "legal", total("legal"), false);
        field(&mut json, "    ", "route", total("route"), true);
        json.push_str("  },\n");
        json.push_str("  \"metrics\": {\n");
        field(&mut json, "    ", "hof_pct", report.hof_pct, false);
        field(&mut json, "    ", "vof_pct", report.vof_pct, false);
        field(&mut json, "    ", "wirelength", report.wirelength, false);
        field(&mut json, "    ", "hpwl", result.hpwl, false);
        field(&mut json, "    ", "runtime_s", result.runtime_s, false);
        let _ = writeln!(json, "    \"gp_iterations\": {},", result.gp_iterations);
        let _ = writeln!(json, "    \"pad_rounds\": {}", result.pad_rounds);
        json.push_str("  },\n");

        // Deterministic-parallelism kernels: serial reference vs the
        // chunked path at 1/2/4/8 threads, plus the 4-thread speedup.
        // CI gates the 1-thread path against the serial reference below.
        let kernels = par_times(&design, &result.placement);
        json.push_str("  \"par\": {\n");
        for (ki, (name, times)) in kernels.iter().enumerate() {
            let _ = writeln!(json, "    \"{name}\": {{");
            if let Some(serial) = times.serial_s {
                field(&mut json, "      ", "serial_s", serial, false);
            }
            for (t, secs) in THREADS.iter().zip(times.by_threads) {
                field(&mut json, "      ", &format!("threads_{t}_s"), secs, false);
            }
            field(&mut json, "      ", "speedup_4t", times.speedup_4t(), true);
            let comma = if ki + 1 == kernels.len() { "" } else { "," };
            let _ = writeln!(json, "    }}{comma}");
        }
        json.push_str("  }\n}\n");

        for (name, times) in &kernels {
            let Some(serial) = times.serial_s else { continue };
            let one_thread = times.by_threads[0];
            if one_thread > serial * PAR_GATE_FACTOR {
                eprintln!(
                    "par regression gate: {name} 1-thread path {:.1} us exceeds \
                     {PAR_GATE_FACTOR}x the serial reference {:.1} us",
                    one_thread * 1e6,
                    serial * 1e6
                );
                std::process::exit(1);
            }
            eprintln!(
                "[par] {name}: serial {:.1} us, 1t {:.1} us ({:+.1}%), 4t speedup {:.2}x",
                serial * 1e6,
                one_thread * 1e6,
                (one_thread / serial - 1.0) * 100.0,
                times.speedup_4t()
            );
        }

        let path = out_dir.join(format!("BENCH_{}.json", design.name()));
        std::fs::write(&path, json)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        println!("{}", path.display());
        eprint!("{}", trace.summary_table());
    }
}
