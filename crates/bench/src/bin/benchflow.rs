//! Machine-readable flow benchmark.
//!
//! Runs the full PUFFER flow under telemetry on each selected design and
//! writes one `BENCH_<design>.json` per design into the output directory:
//! the per-stage wall-times from the span timers (init / gp / gp-pad /
//! legal / route) plus the Table II quantities (HOF, VOF, WL, RT).
//!
//! ```text
//! cargo run --release -p puffer-bench --bin benchflow -- \
//!     --scale 0.003 --designs or1200 --out target/bench
//! ```
//!
//! `scripts/bench.sh` wraps this binary; CI keeps the JSON as artifacts.

#![forbid(unsafe_code)]

use puffer::{evaluate_traced, PufferConfig, PufferPlacer};
use puffer_bench::{generate_logged, HarnessArgs};
use puffer_route::RouterConfig;
use puffer_trace::Trace;
use std::fmt::Write as _;

/// Appends `"key": value` (6 decimal places, non-finite becomes `null`).
fn field(json: &mut String, indent: &str, key: &str, value: f64, last: bool) {
    let comma = if last { "" } else { "," };
    if value.is_finite() {
        let _ = writeln!(json, "{indent}\"{key}\": {value:.6}{comma}");
    } else {
        let _ = writeln!(json, "{indent}\"{key}\": null{comma}");
    }
}

fn main() {
    let args = HarnessArgs::parse(0.003);
    let out_dir = args.ensure_out_dir().clone();
    for config in args.configs() {
        let design = generate_logged(&config);
        let trace = Trace::enabled();
        let result = PufferPlacer::new(PufferConfig::default())
            .with_trace(trace.clone())
            .place(&design)
            .unwrap_or_else(|e| panic!("PUFFER failed on {}: {e}", design.name()));
        let report = evaluate_traced(&design, &result.placement, &RouterConfig::default(), &trace);

        let spans = trace.span_stats();
        let total = |label: &str| {
            spans
                .iter()
                .find(|(l, _)| l == label)
                .map_or(0.0, |(_, s)| s.total)
        };

        let mut json = String::from("{\n");
        // Preset names are plain ASCII identifiers; no escaping needed.
        let _ = writeln!(json, "  \"design\": \"{}\",", design.name());
        let _ = writeln!(json, "  \"cells\": {},", design.stats().movable_cells);
        json.push_str("  \"stages_s\": {\n");
        field(&mut json, "    ", "init", total("init"), false);
        field(&mut json, "    ", "gp", total("gp"), false);
        field(&mut json, "    ", "gp_pad", total("gp/pad"), false);
        field(&mut json, "    ", "legal", total("legal"), false);
        field(&mut json, "    ", "route", total("route"), true);
        json.push_str("  },\n");
        json.push_str("  \"metrics\": {\n");
        field(&mut json, "    ", "hof_pct", report.hof_pct, false);
        field(&mut json, "    ", "vof_pct", report.vof_pct, false);
        field(&mut json, "    ", "wirelength", report.wirelength, false);
        field(&mut json, "    ", "hpwl", result.hpwl, false);
        field(&mut json, "    ", "runtime_s", result.runtime_s, false);
        let _ = writeln!(json, "    \"gp_iterations\": {},", result.gp_iterations);
        let _ = writeln!(json, "    \"pad_rounds\": {}", result.pad_rounds);
        json.push_str("  }\n}\n");

        let path = out_dir.join(format!("BENCH_{}.json", design.name()));
        std::fs::write(&path, json)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        println!("{}", path.display());
        eprint!("{}", trace.summary_table());
    }
}
