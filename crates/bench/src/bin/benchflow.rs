//! Machine-readable flow benchmark.
//!
//! Runs the full PUFFER flow under telemetry on each selected design and
//! writes one `BENCH_<design>.json` per design into the output directory:
//! the per-stage wall-times from the span timers (init / gp / gp-pad /
//! legal / route) plus the Table II quantities (HOF, VOF, WL, RT).
//!
//! ```text
//! cargo run --release -p puffer-bench --bin benchflow -- \
//!     --scale 0.003 --designs or1200 --out target/bench
//! ```
//!
//! `scripts/bench.sh` wraps this binary; CI keeps the JSON as artifacts.

#![forbid(unsafe_code)]

use puffer::{evaluate_traced, PufferConfig, PufferPlacer};
use puffer_bench::par::{serial_transform2d, serial_wa_reference, time_min, THREADS};
use puffer_bench::{generate_logged, HarnessArgs};
use puffer_fft::{dct2, transform2d_threaded};
use puffer_place::{wa_wirelength_grad_threaded, DensityModel};
use puffer_route::RouterConfig;
use puffer_trace::Trace;
use std::fmt::Write as _;

/// Allowed slowdown of the chunked 1-thread kernel path over the
/// unchunked serial reference: the deterministic-parallelism layer must
/// cost less than 10% when no worker threads are spawned.
const PAR_GATE_FACTOR: f64 = 1.10;

/// Required single-thread speedup of a warm incremental congestion
/// re-estimate over a from-scratch rebuild, enforced under
/// `--congest-gate` (run at scale >= 0.5 so chunk reuse dominates).
const CONGEST_GATE_FACTOR: f64 = 2.0;

/// Peak-RSS ceiling for the `--scale-gate` million-cell placement smoke.
/// The dominant terms are the netlist (struct-of-arrays pins plus CSR
/// membership), the placer's per-cell state vectors, and the FFT grids;
/// all grow linearly in cells/pins. The full flow on CT_TOP at scale 1.0
/// (1.27M cells, 3.8M pins) measures ~0.63 GiB high-water; the ceiling
/// sits ~3x above that to catch superlinear regressions, not noise.
const SCALE_GATE_MAX_RSS: u64 = 2 * 1024 * 1024 * 1024;

/// Minimum design size the `--scale-gate` smoke accepts: the gate exists
/// to prove million-cell capability, so smaller configs are a usage error.
const SCALE_GATE_MIN_CELLS: usize = 1_000_000;

/// GP iterations for the scale gate. The gate bounds *memory*, not
/// quality: a few iterations touch every allocation the full flow makes
/// (placer state, congestion grids, padding, legalization scratch).
const SCALE_GATE_GP_ITERS: usize = 6;

/// Per-kernel timings for the `par` JSON section: the serial reference
/// (where one exists) and the chunked path at [`THREADS`].
struct ParTimes {
    serial_s: Option<f64>,
    by_threads: [f64; THREADS.len()],
}

impl ParTimes {
    fn speedup_4t(&self) -> f64 {
        self.by_threads[0] / self.by_threads[2]
    }
}

/// Times the deterministic-parallel kernels on the placed design.
fn par_times(
    design: &puffer_db::design::Design,
    placement: &puffer_db::design::Placement,
) -> [(&'static str, ParTimes); 3] {
    let nl = design.netlist();
    let widths: Vec<f64> = nl.cells().iter().map(|c| c.width).collect();
    let model = DensityModel::new(design, 64, 64);
    let (nx, ny) = (256, 256);
    let data: Vec<f64> = (0..nx * ny).map(|i| (i as f64 * 0.13).sin()).collect();

    let wa = ParTimes {
        serial_s: Some(time_min(2, 9, || serial_wa_reference(nl, placement, 4.0))),
        by_threads: THREADS
            .map(|t| time_min(2, 9, || wa_wirelength_grad_threaded(nl, placement, 4.0, t))),
    };
    let density = ParTimes {
        serial_s: None,
        by_threads: THREADS.map(|t| {
            time_min(2, 9, || {
                model.evaluate_threaded(nl, placement, &widths, 1.0, t)
            })
        }),
    };
    let transform = ParTimes {
        serial_s: Some(time_min(2, 9, || serial_transform2d(&data, nx, ny, dct2))),
        by_threads: THREADS.map(|t| time_min(2, 9, || transform2d_threaded(&data, nx, ny, dct2, t))),
    };
    [
        ("wa_grad", wa),
        ("density", density),
        ("transform2d", transform),
    ]
}

/// The moved placement the incremental path is timed against: one
/// contiguous ~6% window of the movable cells nudged diagonally (clamped
/// to the region). Cell padding spreads a congestion *hotspot*, so the
/// per-round dirt between consecutive estimates is spatially localized —
/// a contiguous index window models that (generated netlists are built
/// cluster-by-cluster, so index-adjacent cells share nets and Gcells).
fn perturbed(
    design: &puffer_db::design::Design,
    placement: &puffer_db::design::Placement,
) -> puffer_db::design::Placement {
    let r = design.region();
    let mut p = placement.clone();
    let n = design.netlist().movable_cells().count();
    let window = n / 3..n / 3 + n / 16;
    for (i, id) in design.netlist().movable_cells().enumerate() {
        if window.contains(&i) {
            let pos = p.pos(id);
            p.set(
                id,
                puffer_db::geom::Point::new(
                    (pos.x + 3.0).clamp(r.xl, r.xh),
                    (pos.y - 3.0).clamp(r.yl, r.yh),
                ),
            );
        }
    }
    p
}

/// Single-thread congestion timings: `(full_s, incremental_s)` — the
/// before/after pair of the dirty-region re-estimation work. The full
/// rebuild and the warm incremental path see the same alternating pair of
/// placements, so both pay identical deposit work for the dirty nets.
fn congest_times(
    design: &puffer_db::design::Design,
    placement: &puffer_db::design::Placement,
) -> (f64, f64) {
    use puffer_congest::{CongestionEstimator, EstimatorConfig};
    let cfg = EstimatorConfig {
        threads: 1,
        ..EstimatorConfig::default()
    };
    let moved = perturbed(design, placement);
    let full = CongestionEstimator::new(design, cfg.clone());
    let mut flip = false;
    let full_s = time_min(1, 5, || {
        flip = !flip;
        full.estimate(design, if flip { &moved } else { placement })
    });
    let mut inc = CongestionEstimator::new(design, cfg);
    inc.estimate_incremental(design, placement); // warm the chunk state
    let mut flip = false;
    let inc_s = time_min(1, 5, || {
        flip = !flip;
        inc.estimate_incremental(design, if flip { &moved } else { placement })
    });
    (full_s, inc_s)
}

/// Appends `"key": value` (6 decimal places, non-finite becomes `null`).
fn field(json: &mut String, indent: &str, key: &str, value: f64, last: bool) {
    let comma = if last { "" } else { "," };
    if value.is_finite() {
        let _ = writeln!(json, "{indent}\"{key}\": {value:.6}{comma}");
    } else {
        let _ = writeln!(json, "{indent}\"{key}\": null{comma}");
    }
}

/// `--congest-gate`: skip the flow; on each design, time a single-thread
/// full congestion rebuild against the warm incremental path on a
/// mid-placement snapshot, record the before/after pair as
/// `BENCH_<design>.json`, and exit nonzero under [`CONGEST_GATE_FACTOR`].
fn run_congest_gate(args: &HarnessArgs, out_dir: &std::path::Path) {
    let mut failed = false;
    for config in args.configs() {
        let design = generate_logged(&config);
        // A mid-global-placement shape: semi-spread grid over the region.
        let r = design.region();
        let c = r.center();
        let n = design.netlist().movable_cells().count();
        let cols = (n as f64).sqrt().ceil() as usize;
        let mut placement = design.initial_placement();
        for (i, id) in design.netlist().movable_cells().enumerate() {
            let fx = ((i % cols) as f64 + 0.5) / cols as f64 - 0.5;
            let fy = ((i / cols) as f64 + 0.5) / cols as f64 - 0.5;
            placement.set(
                id,
                puffer_db::geom::Point::new(
                    c.x + fx * 0.6 * r.width(),
                    c.y + fy * 0.6 * r.height(),
                ),
            );
        }
        let (full_s, inc_s) = congest_times(&design, &placement);
        let speedup = full_s / inc_s;
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"design\": \"{}\",", design.name());
        let _ = writeln!(json, "  \"cells\": {},", design.stats().movable_cells);
        json.push_str("  \"congest\": {\n");
        field(&mut json, "    ", "full_s", full_s, false);
        field(&mut json, "    ", "incremental_s", inc_s, false);
        field(&mut json, "    ", "speedup", speedup, true);
        json.push_str("  }\n}\n");
        let path = out_dir.join(format!("BENCH_{}.json", design.name()));
        puffer_budget::fsx::atomic_write(&path, json.as_bytes())
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        println!("{}", path.display());
        eprintln!(
            "[congest] {}: full {:.1} ms, incremental {:.1} ms ({speedup:.2}x)",
            design.name(),
            full_s * 1e3,
            inc_s * 1e3
        );
        if speedup < CONGEST_GATE_FACTOR {
            eprintln!(
                "congest gate: incremental re-estimate is only {speedup:.2}x faster than \
                 a full rebuild (need {CONGEST_GATE_FACTOR}x) on {}",
                design.name()
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// `--scale-gate`: million-cell capability smoke. Generates one Table
/// I-sized design (CT_TOP at scale 1.0 unless `--designs` selects others),
/// runs a short PUFFER flow on it with the size-aware strategy ladder in
/// `auto`, and asserts the process peak RSS stayed under
/// [`SCALE_GATE_MAX_RSS`]. Writes `BENCH_<design>.json` with the measured
/// numbers and exits nonzero when the ceiling is breached.
fn run_scale_gate(args: &HarnessArgs, out_dir: &std::path::Path) {
    let configs = if args.designs.is_some() {
        args.configs()
    } else {
        // CT_TOP: 1.27M cells and the cleanest congestion profile, so the
        // smoke measures memory scaling rather than pathological padding.
        vec![puffer_gen::presets::ct_top(1.0).expect("scale 1.0 is valid")]
    };
    let mut failed = false;
    for config in configs {
        assert!(
            config.num_cells >= SCALE_GATE_MIN_CELLS,
            "--scale-gate needs a {SCALE_GATE_MIN_CELLS}+ cell design, got {} ({} cells); \
             run at --scale 1.0",
            config.name,
            config.num_cells
        );
        let design = generate_logged(&config);
        let scale_class = puffer::ScaleClass::classify(design.netlist().num_cells());
        let mut cfg = PufferConfig::default();
        cfg.placer.max_iters = SCALE_GATE_GP_ITERS;
        let result = PufferPlacer::new(cfg)
            .place(&design)
            .unwrap_or_else(|e| panic!("scale gate flow failed on {}: {e}", design.name()));
        let peak = puffer_budget::mem::peak_rss_bytes()
            .expect("scale gate needs /proc/self/status (Linux)");

        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"design\": \"{}\",", design.name());
        let _ = writeln!(json, "  \"cells\": {},", design.stats().movable_cells);
        let _ = writeln!(json, "  \"scale_class\": \"{scale_class}\",");
        json.push_str("  \"scale_gate\": {\n");
        let _ = writeln!(json, "    \"peak_rss_bytes\": {peak},");
        let _ = writeln!(json, "    \"max_rss_bytes\": {SCALE_GATE_MAX_RSS},");
        let _ = writeln!(json, "    \"gp_iterations\": {},", result.gp_iterations);
        field(&mut json, "    ", "hpwl", result.hpwl, false);
        field(&mut json, "    ", "runtime_s", result.runtime_s, true);
        json.push_str("  }\n}\n");
        let path = out_dir.join(format!("BENCH_{}.json", design.name()));
        puffer_budget::fsx::atomic_write(&path, json.as_bytes())
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        println!("{}", path.display());
        eprintln!(
            "[scale] {}: {} cells ({scale_class}), peak RSS {:.2} GiB (ceiling {:.0} GiB), \
             {:.1}s",
            design.name(),
            design.stats().movable_cells,
            peak as f64 / (1u64 << 30) as f64,
            SCALE_GATE_MAX_RSS as f64 / (1u64 << 30) as f64,
            result.runtime_s
        );
        if peak > SCALE_GATE_MAX_RSS {
            eprintln!(
                "scale gate: peak RSS {peak} bytes exceeds the {SCALE_GATE_MAX_RSS}-byte \
                 ceiling on {}",
                design.name()
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn main() {
    let args = HarnessArgs::parse(0.003);
    let out_dir = args.ensure_out_dir().clone();
    if args.congest_gate {
        run_congest_gate(&args, &out_dir);
        return;
    }
    if args.scale_gate {
        run_scale_gate(&args, &out_dir);
        return;
    }
    for config in args.configs() {
        let design = generate_logged(&config);
        let trace = Trace::enabled();
        let result = PufferPlacer::new(PufferConfig::default())
            .with_trace(trace.clone())
            .place(&design)
            .unwrap_or_else(|e| panic!("PUFFER failed on {}: {e}", design.name()));
        let report = evaluate_traced(&design, &result.placement, &RouterConfig::default(), &trace);

        let spans = trace.span_stats();
        let total = |label: &str| {
            spans
                .iter()
                .find(|(l, _)| l == label)
                .map_or(0.0, |(_, s)| s.total)
        };

        let mut json = String::from("{\n");
        // Preset names are plain ASCII identifiers; no escaping needed.
        let _ = writeln!(json, "  \"design\": \"{}\",", design.name());
        let _ = writeln!(json, "  \"cells\": {},", design.stats().movable_cells);
        json.push_str("  \"stages_s\": {\n");
        field(&mut json, "    ", "init", total("init"), false);
        field(&mut json, "    ", "gp", total("gp"), false);
        field(&mut json, "    ", "gp_pad", total("gp/pad"), false);
        field(&mut json, "    ", "legal", total("legal"), false);
        field(&mut json, "    ", "route", total("route"), true);
        json.push_str("  },\n");
        json.push_str("  \"metrics\": {\n");
        field(&mut json, "    ", "hof_pct", report.hof_pct, false);
        field(&mut json, "    ", "vof_pct", report.vof_pct, false);
        field(&mut json, "    ", "wirelength", report.wirelength, false);
        field(&mut json, "    ", "hpwl", result.hpwl, false);
        field(&mut json, "    ", "runtime_s", result.runtime_s, false);
        let _ = writeln!(json, "    \"gp_iterations\": {},", result.gp_iterations);
        let _ = writeln!(json, "    \"pad_rounds\": {}", result.pad_rounds);
        json.push_str("  },\n");

        // Deterministic-parallelism kernels: serial reference vs the
        // chunked path at 1/2/4/8 threads, plus the 4-thread speedup.
        // CI gates the 1-thread path against the serial reference below.
        let kernels = par_times(&design, &result.placement);
        json.push_str("  \"par\": {\n");
        for (ki, (name, times)) in kernels.iter().enumerate() {
            let _ = writeln!(json, "    \"{name}\": {{");
            if let Some(serial) = times.serial_s {
                field(&mut json, "      ", "serial_s", serial, false);
            }
            for (t, secs) in THREADS.iter().zip(times.by_threads) {
                field(&mut json, "      ", &format!("threads_{t}_s"), secs, false);
            }
            field(&mut json, "      ", "speedup_4t", times.speedup_4t(), true);
            let comma = if ki + 1 == kernels.len() { "" } else { "," };
            let _ = writeln!(json, "    }}{comma}");
        }
        json.push_str("  },\n");

        // Incremental congestion: the before (full rebuild) / after (warm
        // dirty-region re-estimate) pair, both single-threaded. The 2x
        // gate itself runs separately via --congest-gate at scale >= 0.5;
        // here the pair is just recorded alongside the flow numbers.
        let (full_s, inc_s) = congest_times(&design, &result.placement);
        json.push_str("  \"congest\": {\n");
        field(&mut json, "    ", "full_s", full_s, false);
        field(&mut json, "    ", "incremental_s", inc_s, false);
        field(&mut json, "    ", "speedup", full_s / inc_s, true);
        json.push_str("  }\n}\n");
        eprintln!(
            "[congest] full {:.1} ms, incremental {:.1} ms ({:.2}x)",
            full_s * 1e3,
            inc_s * 1e3,
            full_s / inc_s
        );

        for (name, times) in &kernels {
            let Some(serial) = times.serial_s else { continue };
            let one_thread = times.by_threads[0];
            if one_thread > serial * PAR_GATE_FACTOR {
                eprintln!(
                    "par regression gate: {name} 1-thread path {:.1} us exceeds \
                     {PAR_GATE_FACTOR}x the serial reference {:.1} us",
                    one_thread * 1e6,
                    serial * 1e6
                );
                std::process::exit(1);
            }
            eprintln!(
                "[par] {name}: serial {:.1} us, 1t {:.1} us ({:+.1}%), 4t speedup {:.2}x",
                serial * 1e6,
                one_thread * 1e6,
                (one_thread / serial - 1.0) * 100.0,
                times.speedup_4t()
            );
        }

        let path = out_dir.join(format!("BENCH_{}.json", design.name()));
        puffer_budget::fsx::atomic_write(&path, json.as_bytes())
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        println!("{}", path.display());
        eprint!("{}", trace.summary_table());
    }
}
