//! Regenerates **Table II**: HOF/VOF/WL/RT of the three placement flows on
//! the benchmark suite, with the paper's averaging and pass-count rows.
//!
//! ```text
//! cargo run -p puffer-bench --release --bin table2 \
//!     [--scale 0.01] [--designs or1200,media_subsys] [--out target/paper]
//! ```
//!
//! Every flow is judged by the same global router (the Innovus-GR
//! substitute). WL and RT averages are ratios normalized against PUFFER,
//! exactly as in the paper; HOF/VOF averages are plain means. Expect the
//! *shape* of the paper's table, not its absolute numbers (see
//! EXPERIMENTS.md).

#![forbid(unsafe_code)]

use puffer::ComparisonTable;
use puffer_bench::{generate_logged, run_flow, FlowKind, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse(0.01);
    let out_dir = args.ensure_out_dir().clone();

    let mut table = ComparisonTable::new();
    for config in args.configs() {
        let design = generate_logged(&config);
        for flow in FlowKind::all() {
            eprintln!("[run] {} / {}", design.name(), flow.name());
            let row = run_flow(&design, flow);
            eprintln!(
                "[run] {} / {}: HOF {:.2}% VOF {:.2}% WL {:.0} RT {:.1}s",
                row.benchmark, row.flow, row.hof_pct, row.vof_pct, row.wirelength, row.runtime_s
            );
            table.push(row);
        }
    }

    println!(
        "\nTable II — comparison on the benchmark suite (scale {}):\n",
        args.scale
    );
    println!("{}", table.render(FlowKind::Puffer.name()));

    let csv_path = out_dir.join("table2.csv");
    puffer_budget::fsx::atomic_write(&csv_path, table.to_csv().as_bytes()).expect("write table2.csv");
    eprintln!("wrote {}", csv_path.display());

    // Headline claims, PUFFER vs each baseline.
    if let (Some(puffer), Some(reference), Some(replace)) = (
        table.summarize(FlowKind::Puffer.name(), FlowKind::Puffer.name()),
        table.summarize(FlowKind::Reference.name(), FlowKind::Puffer.name()),
        table.summarize(FlowKind::ReplaceLike.name(), FlowKind::Puffer.name()),
    ) {
        println!("Headline (paper: 2.7x / 1.4x speedups, best average HOF+VOF):");
        println!(
            "  speedup vs {:<15}: {:.2}x   (their avg HOF {:.3}, VOF {:.3})",
            reference.flow, reference.rt_ratio, reference.avg_hof, reference.avg_vof
        );
        println!(
            "  speedup vs {:<15}: {:.2}x   (their avg HOF {:.3}, VOF {:.3})",
            replace.flow, replace.rt_ratio, replace.avg_hof, replace.avg_vof
        );
        println!(
            "  PUFFER avg HOF {:.3}, VOF {:.3}, pass {}/{} (H) {}/{} (V)",
            puffer.avg_hof,
            puffer.avg_vof,
            puffer.pass_h,
            puffer.count,
            puffer.pass_v,
            puffer.count
        );
    }
}
