//! Regenerates **Fig. 5**: horizontal and vertical congestion maps of
//! MEDIA_SUBSYS for the three placement flows, as reported by the shared
//! global router.
//!
//! ```text
//! cargo run -p puffer-bench --release --bin fig5 [--scale 0.01] [--out target/paper]
//! ```
//!
//! For each flow the binary writes `fig5_<flow>_{h,v}.csv` (per-Gcell
//! utilisation grids) to the output directory and prints ASCII heatmaps —
//! the darker the glyph, the higher demand/capacity, mirroring the paper's
//! red zones.

#![forbid(unsafe_code)]

use puffer::{
    evaluate, PufferConfig, PufferPlacer, ReferenceConfig, ReferencePlacer, ReplaceConfig,
    ReplacePlacer,
};
use puffer_bench::{generate_logged, FlowKind, HarnessArgs};

fn main() {
    let mut args = HarnessArgs::parse(0.01);
    if args.designs.is_none() {
        args.designs = Some(vec!["media_subsys".into()]);
    }
    let out_dir = args.ensure_out_dir().clone();

    for config in args.configs() {
        let design = generate_logged(&config);
        for flow in FlowKind::all() {
            eprintln!("[run] {} / {}", design.name(), flow.name());
            let placement = match flow {
                FlowKind::Reference => {
                    ReferencePlacer::new(ReferenceConfig::default()).place(&design)
                }
                FlowKind::ReplaceLike => {
                    ReplacePlacer::new(ReplaceConfig::default()).place(&design)
                }
                FlowKind::Puffer => PufferPlacer::new(PufferConfig::default()).place(&design),
            }
            .expect("flow failed")
            .placement;
            let report = evaluate(&design, &placement);
            let tag = flow.name().to_lowercase().replace(['-', '_'], "");
            for (horizontal, suffix) in [(true, "h"), (false, "v")] {
                let stem = format!("fig5_{}_{}_{}", design.name().to_lowercase(), tag, suffix);
                let csv_path = out_dir.join(format!("{stem}.csv"));
                puffer_budget::fsx::atomic_write(&csv_path, report.congestion.to_csv(horizontal).as_bytes())
                    .expect("write congestion csv");
                let pgm_path = out_dir.join(format!("{stem}.pgm"));
                puffer_budget::fsx::atomic_write(&pgm_path, &report.congestion.to_pgm(horizontal))
                    .expect("write congestion pgm");
                eprintln!("wrote {} (+ .pgm)", csv_path.display());
            }
            println!(
                "\n=== {} / {} — HOF {:.2}% VOF {:.2}% ===",
                design.name(),
                flow.name(),
                report.hof_pct,
                report.vof_pct
            );
            println!("horizontal congestion:");
            println!("{}", report.congestion.render_ascii(true));
            println!("vertical congestion:");
            println!("{}", report.congestion.render_ascii(false));
        }
    }
}
