//! Ablation study over PUFFER's mechanisms (the design choices DESIGN.md
//! calls out): each variant disables exactly one ingredient of §III.
//!
//! ```text
//! cargo run -p puffer-bench --release --bin ablation \
//!     [--scale 0.01] [--designs media_subsys,a53_adb_wrap] [--out target/paper]
//! ```
//!
//! Variants:
//! * `full`            — PUFFER as published;
//! * `no-detour`       — congestion estimation without the detour-imitating
//!   expansion (§III-A.3);
//! * `local-only`      — padding formula sees only the local features
//!   (CNN/GNN feature weights zeroed, §III-B.1);
//! * `no-recycle`      — padding recycling disabled (ζ → ∞, §III-B.3);
//! * `no-inherit`      — legalization without padding inheritance (§III-D);
//! * `no-padding`      — routability optimizer never triggers (pure ePlace);
//! * `wsa`             — white-space allocation instead of padding (the
//!   alternative strategy family of §I refs \[10\]–\[11\]).

#![forbid(unsafe_code)]

use puffer::{
    evaluate, ComparisonTable, EvalRow, PufferConfig, PufferPlacer, WsaConfig, WsaPlacer,
};
use puffer_bench::{generate_logged, HarnessArgs};

fn variants() -> Vec<(&'static str, PufferConfig)> {
    let base = PufferConfig::default();

    let mut no_detour = base.clone();
    no_detour.estimator.expand_detours = false;

    let mut local_only = base.clone();
    local_only.strategy.alpha[2] = 0.0; // surrounding congestion
    local_only.strategy.alpha[3] = 0.0; // surrounding pin density
    local_only.strategy.alpha[4] = 0.0; // pin congestion

    let mut no_recycle = base.clone();
    no_recycle.strategy.zeta = 1e12;

    let mut no_inherit = base.clone();
    no_inherit.inherit_padding = false;

    let mut no_padding = base.clone();
    no_padding.strategy.max_rounds = 0;

    vec![
        ("full", base),
        ("no-detour", no_detour),
        ("local-only", local_only),
        ("no-recycle", no_recycle),
        ("no-inherit", no_inherit),
        ("no-padding", no_padding),
    ]
}

fn main() {
    let mut args = HarnessArgs::parse(0.01);
    if args.designs.is_none() {
        args.designs = Some(vec!["media_subsys".into(), "a53_adb_wrap".into()]);
    }
    let out_dir = args.ensure_out_dir().clone();

    let mut table = ComparisonTable::new();
    for config in args.configs() {
        let design = generate_logged(&config);
        type FlowRunner<'a> = Box<dyn Fn() -> Result<puffer::FlowResult, puffer::PufferError> + 'a>;
        let mut flows: Vec<(&str, FlowRunner)> = Vec::new();
        for (name, cfg) in variants() {
            let d = &design;
            flows.push((
                name,
                Box::new(move || PufferPlacer::new(cfg.clone()).place(d)),
            ));
        }
        {
            let d = &design;
            flows.push((
                "wsa",
                Box::new(move || WsaPlacer::new(WsaConfig::default()).place(d)),
            ));
        }
        for (name, run) in flows {
            eprintln!("[run] {} / {}", design.name(), name);
            let result = run().expect("variant failed");
            let report = evaluate(&design, &result.placement);
            eprintln!(
                "[run] {} / {}: HOF {:.2}% VOF {:.2}% WL {:.0} RT {:.1}s",
                design.name(),
                name,
                report.hof_pct,
                report.vof_pct,
                report.wirelength,
                result.runtime_s
            );
            table.push(EvalRow {
                benchmark: design.name().to_string(),
                flow: name.to_string(),
                hof_pct: report.hof_pct,
                vof_pct: report.vof_pct,
                wirelength: report.wirelength,
                runtime_s: result.runtime_s,
            });
        }
    }

    println!(
        "\nAblation over PUFFER mechanisms (scale {}):\n",
        args.scale
    );
    println!("{}", table.render("full"));
    let path = out_dir.join("ablation.csv");
    puffer_budget::fsx::atomic_write(&path, table.to_csv().as_bytes()).expect("write ablation.csv");
    eprintln!("wrote {}", path.display());
}
