//! Regenerates **Table I**: statistics of the benchmarks.
//!
//! ```text
//! cargo run -p puffer-bench --release --bin table1 [--scale 0.02]
//! ```
//!
//! Prints #Macros / #Cells / #Nets / #Pins per design in the paper's
//! format (`K` counts) and writes `table1.csv` to the output directory.

#![forbid(unsafe_code)]

use puffer_bench::{generate_logged, HarnessArgs};
use puffer_db::stats::format_k;
use std::fmt::Write as _;

fn main() {
    let args = HarnessArgs::parse(0.02);
    let out_dir = args.ensure_out_dir().clone();

    println!(
        "Table I — statistics of the benchmarks (scale {}):\n",
        args.scale
    );
    println!(
        "{:<18} {:>8} {:>9} {:>9} {:>9}",
        "Benchmark", "#Macros", "#Cells", "#Nets", "#Pins"
    );
    let mut csv = String::from("benchmark,macros,cells,nets,pins\n");
    for config in args.configs() {
        let design = generate_logged(&config);
        let s = design.stats();
        println!(
            "{:<18} {:>8} {:>9} {:>9} {:>9}",
            design.name(),
            s.macros,
            format_k(s.movable_cells),
            format_k(s.nets),
            format_k(s.movable_pins)
        );
        let _ = writeln!(
            csv,
            "{},{},{},{},{}",
            design.name(),
            s.macros,
            s.movable_cells,
            s.nets,
            s.movable_pins
        );
    }
    let path = out_dir.join("table1.csv");
    puffer_budget::fsx::atomic_write(&path, csv.as_bytes()).expect("write table1.csv");
    eprintln!("\nwrote {}", path.display());
}
