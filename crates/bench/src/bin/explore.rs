//! Runs the **§III-C strategy exploration protocol**: tune the padding
//! strategy with SMBO/TPE on a small congested design, then report the
//! configuration to transfer to the large benchmarks.
//!
//! ```text
//! cargo run -p puffer-bench --release --bin explore \
//!     [--scale 0.004] [--designs media_subsys] [--out target/paper]
//! ```
//!
//! The objective is the total overflow ratio of both directions reported
//! by the shared global router (the paper's objective). The exploration
//! uses Algorithm 3: a global TPE pass over all parameters, then grouped
//! local refinement with groups explored on parallel threads.

#![forbid(unsafe_code)]

use puffer::{evaluate, strategy_space, tuned_strategy, PufferConfig, PufferPlacer};
use puffer_bench::{generate_logged, HarnessArgs};
use puffer_explore::{explore_strategy, ExplorationConfig, StrategyConfig};
use puffer_pad::PaddingStrategy;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};

fn main() {
    let mut args = HarnessArgs::parse(0.004);
    if args.designs.is_none() {
        // The paper tunes on "a small design with the routability problem".
        args.designs = Some(vec!["media_subsys".into()]);
    }
    let out_dir = args.ensure_out_dir().clone();
    let config = args.configs().remove(0);
    let design = generate_logged(&config);

    let space = strategy_space();
    let groups = PaddingStrategy::parameter_groups();
    let evals = AtomicUsize::new(0);

    let objective = |values: &[f64]| -> f64 {
        let mut cfg = PufferConfig {
            strategy: tuned_strategy(&space, values),
            ..PufferConfig::default()
        };
        // Reduced placement budget for tuning evaluations.
        cfg.placer.max_iters = 260;
        cfg.placer.stop_overflow = 0.09;
        let result = match PufferPlacer::new(cfg).place(&design) {
            Ok(r) => r,
            Err(_) => return f64::INFINITY, // infeasible strategy
        };
        let report = evaluate(&design, &result.placement);
        let score = report.hof_pct + report.vof_pct;
        let n = evals.fetch_add(1, Ordering::Relaxed) + 1;
        eprintln!("[eval {n}] HOF+VOF = {score:.3}");
        score
    };

    let strategy_cfg = StrategyConfig {
        global: ExplorationConfig {
            max_evals: 24,
            early_stop: 12,
            ..Default::default()
        },
        local: ExplorationConfig {
            max_evals: 8,
            early_stop: 4,
            ..Default::default()
        },
        max_rounds: 1,
        parallel: false, // evaluations already use all cores via the router
    };
    let outcome = explore_strategy(&space, &groups, objective, &strategy_cfg)
        .expect("strategy exploration failed");

    println!("\nStrategy exploration finished:");
    println!("  evaluations: {}", outcome.evals);
    println!("  rounds of grouped local exploration: {}", outcome.rounds);
    println!("  best observed HOF+VOF: {:.3}", outcome.best_value);
    println!("\nFinal configuration (range midpoints, §III-C):");
    let mut csv = String::from("parameter,final_midpoint,best_observed\n");
    for (i, p) in space.params().iter().enumerate() {
        println!(
            "  {:<12} = {:>8.4}   (best observed {:>8.4})",
            p.name, outcome.values[i], outcome.best_observed[i]
        );
        let _ = writeln!(
            csv,
            "{},{},{}",
            p.name, outcome.values[i], outcome.best_observed[i]
        );
    }
    let path = out_dir.join("explore.csv");
    puffer_budget::fsx::atomic_write(&path, csv.as_bytes()).expect("write explore.csv");
    eprintln!("\nwrote {}", path.display());

    // Sanity: evaluate the tuned strategy once at full placement budget.
    let cfg = PufferConfig {
        strategy: tuned_strategy(&space, &outcome.best_observed),
        ..PufferConfig::default()
    };
    let result = PufferPlacer::new(cfg)
        .place(&design)
        .expect("tuned flow failed");
    let report = evaluate(&design, &result.placement);
    println!(
        "\nTuned strategy at full budget on {}: HOF {:.2}% VOF {:.2}% WL {:.0}",
        design.name(),
        report.hof_pct,
        report.vof_pct,
        report.wirelength
    );
}
