//! Append-only JSONL sink plus the minimal writer/parser it needs.
//!
//! The workspace is dependency-free, so both directions are hand-rolled and
//! intentionally small: records are *flat* JSON objects whose values are
//! strings, numbers, `null`, or arrays of numbers/`null`. That is exactly
//! what [`crate::Trace::record`] can emit, and the parser here exists so
//! tests and the `puffer trace` CLI command can validate a metrics file
//! without pulling in a JSON crate.
//!
//! Crash discipline matches the checkpoint journal: every record is one
//! line, flushed before `write_line` returns, so a crash can only lose (or
//! truncate) the final line. [`read_jsonl`] therefore skips an unterminated
//! trailing line but treats any other malformed line as corruption.

use puffer_budget::fsx;
use std::fmt;
use std::path::{Path, PathBuf};

/// One-write-per-record append sink over [`fsx::AppendSink`].
///
/// The fsync policy is [`fsx::FsyncPolicy::OnSync`]: every record is pushed
/// to the OS as one write (so a crash loses at most the line in flight) and
/// durability is settled by [`JsonlSink::flush`] — telemetry does not pay a
/// per-record `fsync`.
#[derive(Debug)]
pub(crate) struct JsonlSink {
    sink: fsx::AppendSink,
    path: PathBuf,
}

impl JsonlSink {
    /// Creates (truncating) the sink file.
    pub(crate) fn create(path: &Path) -> std::io::Result<Self> {
        Ok(JsonlSink {
            sink: fsx::AppendSink::create(path, fsx::FsyncPolicy::OnSync)?,
            path: path.to_path_buf(),
        })
    }

    /// The file this sink appends to (for error context).
    pub(crate) fn path(&self) -> &Path {
        &self.path
    }

    /// Appends `line` plus a newline in a single write, so previously
    /// written records survive any later crash.
    pub(crate) fn write_line(&mut self, line: &str) -> std::io::Result<()> {
        let mut record = Vec::with_capacity(line.len() + 1);
        record.extend_from_slice(line.as_bytes());
        record.push(b'\n');
        self.sink.write_record(&record)
    }

    /// Forces the sink's records to stable storage (`fsync`).
    pub(crate) fn flush(&mut self) -> std::io::Result<()> {
        self.sink.sync()
    }
}

/// Appends `s` to `out` with JSON string escaping.
pub(crate) fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Appends `,"key":<value>` to `line`; non-finite values become `null`.
pub(crate) fn push_num(line: &mut String, key: &str, value: f64) {
    line.push_str(",\"");
    escape_into(key, line);
    line.push_str("\":");
    push_num_value(line, value);
}

/// Appends a bare JSON number (or `null` when non-finite).
pub(crate) fn push_num_value(line: &mut String, value: f64) {
    if value.is_finite() {
        line.push_str(&format!("{value}"));
    } else {
        line.push_str("null");
    }
}

/// Errors from [`read_jsonl`].
#[derive(Debug)]
pub enum TraceError {
    /// The file could not be read.
    Io {
        /// The file being read.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A line (other than an unterminated trailing one) is not a valid
    /// record.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io { path, source } => {
                write!(f, "cannot read {}: {source}", path.display())
            }
            TraceError::Parse { line, message } => {
                write!(f, "line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io { source, .. } => Some(source),
            TraceError::Parse { .. } => None,
        }
    }
}

/// A field value in a parsed record.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A finite JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// `null` (how the writer encodes non-finite numbers).
    Null,
    /// An array of numbers, with `None` for `null` entries.
    Arr(Vec<Option<f64>>),
}

impl Value {
    /// Whether this value is JSON `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// One parsed JSONL record: an ordered list of `(key, value)` fields.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedRecord {
    /// Fields in file order; the first is normally `("t", kind)`.
    pub fields: Vec<(String, Value)>,
}

impl ParsedRecord {
    /// Looks up a field by key (first occurrence).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The record kind: the `"t"` field, when it is a string.
    pub fn kind(&self) -> Option<&str> {
        self.str_field("t")
    }

    /// A numeric field, when present and finite.
    pub fn num(&self, key: &str) -> Option<f64> {
        match self.get(key)? {
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// A string field, when present.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        match self.get(key)? {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one flat-object JSON line.
///
/// # Errors
///
/// Returns a human-readable message when the line is not a flat JSON
/// object of string/number/null/number-array values.
pub fn parse_record(line: &str) -> Result<ParsedRecord, String> {
    let mut p = Parser {
        chars: line.char_indices().peekable(),
        src: line,
    };
    p.skip_ws();
    p.expect_char('{')?;
    let mut fields = Vec::new();
    p.skip_ws();
    if p.eat('}') {
        p.expect_end()?;
        return Ok(ParsedRecord { fields });
    }
    loop {
        p.skip_ws();
        let key = p.parse_string()?;
        p.skip_ws();
        p.expect_char(':')?;
        p.skip_ws();
        let value = p.parse_value()?;
        fields.push((key, value));
        p.skip_ws();
        if p.eat(',') {
            continue;
        }
        p.expect_char('}')?;
        p.expect_end()?;
        return Ok(ParsedRecord { fields });
    }
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    src: &'a str,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
            self.chars.next();
        }
    }

    fn eat(&mut self, want: char) -> bool {
        if matches!(self.chars.peek(), Some((_, c)) if *c == want) {
            self.chars.next();
            true
        } else {
            false
        }
    }

    fn expect_char(&mut self, want: char) -> Result<(), String> {
        match self.chars.next() {
            Some((_, c)) if c == want => Ok(()),
            Some((i, c)) => Err(format!("expected '{want}' at byte {i}, found '{c}'")),
            None => Err(format!("expected '{want}', found end of line")),
        }
    }

    fn expect_end(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.chars.next() {
            None => Ok(()),
            Some((i, c)) => Err(format!("trailing content at byte {i}: '{c}'")),
        }
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        match self.chars.peek() {
            Some((_, '"')) => Ok(Value::Str(self.parse_string()?)),
            Some((_, '[')) => self.parse_array(),
            Some((_, 'n')) => {
                self.parse_literal("null")?;
                Ok(Value::Null)
            }
            Some((_, c)) if *c == '-' || c.is_ascii_digit() => {
                Ok(Value::Num(self.parse_number()?))
            }
            Some((i, c)) => Err(format!("unexpected value at byte {i}: '{c}'")),
            None => Err("expected a value, found end of line".to_string()),
        }
    }

    fn parse_literal(&mut self, lit: &str) -> Result<(), String> {
        for want in lit.chars() {
            match self.chars.next() {
                Some((_, c)) if c == want => {}
                _ => return Err(format!("invalid literal (expected '{lit}')")),
            }
        }
        Ok(())
    }

    fn parse_number(&mut self) -> Result<f64, String> {
        let start = match self.chars.peek() {
            Some((i, _)) => *i,
            None => return Err("expected a number".to_string()),
        };
        let mut end = start;
        while let Some((i, c)) = self.chars.peek() {
            if matches!(c, '-' | '+' | '.' | 'e' | 'E') || c.is_ascii_digit() {
                end = i + c.len_utf8();
                self.chars.next();
            } else {
                break;
            }
        }
        self.src[start..end]
            .parse::<f64>()
            .map_err(|_| format!("invalid number '{}'", &self.src[start..end]))
    }

    fn parse_array(&mut self) -> Result<Value, String> {
        self.expect_char('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(']') {
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            match self.chars.peek() {
                Some((_, 'n')) => {
                    self.parse_literal("null")?;
                    items.push(None);
                }
                _ => items.push(Some(self.parse_number()?)),
            }
            self.skip_ws();
            if self.eat(',') {
                continue;
            }
            self.expect_char(']')?;
            return Ok(Value::Arr(items));
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect_char('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                None => return Err("unterminated string".to_string()),
                Some((_, '"')) => return Ok(out),
                Some((_, '\\')) => match self.chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'b')) => out.push('\u{8}'),
                    Some((_, 'f')) => out.push('\u{c}'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = match self.chars.next() {
                                Some((_, c)) => c
                                    .to_digit(16)
                                    .ok_or_else(|| "invalid \\u escape".to_string())?,
                                None => return Err("truncated \\u escape".to_string()),
                            };
                            code = code * 16 + d;
                        }
                        match char::from_u32(code) {
                            Some(c) => out.push(c),
                            None => return Err(format!("invalid \\u{code:04x} escape")),
                        }
                    }
                    Some((i, c)) => {
                        return Err(format!("invalid escape '\\{c}' at byte {i}"));
                    }
                    None => return Err("truncated escape".to_string()),
                },
                Some((_, c)) => out.push(c),
            }
        }
    }
}

/// Reads and validates a metrics file.
///
/// Every line must parse as a flat-object record, except that a final line
/// with no terminating newline is allowed to be malformed (a crash while
/// writing it) and is silently skipped.
///
/// # Errors
///
/// [`TraceError::Io`] when the file cannot be read, [`TraceError::Parse`]
/// when any fully written line is malformed.
pub fn read_jsonl(path: impl AsRef<Path>) -> Result<Vec<ParsedRecord>, TraceError> {
    let path = path.as_ref();
    // The shared torn-tail rule (fsx): a final line without its newline is
    // the crash-truncated tail and is dropped before validation.
    let journal = fsx::read_journal_tail_tolerant(path, fsx::RecordShape::Line).map_err(
        |source| TraceError::Io {
            path: path.to_path_buf(),
            source,
        },
    )?;
    let mut records = Vec::with_capacity(journal.len());
    for (idx, line) in journal.records().iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_record(line) {
            Ok(r) => records.push(r),
            Err(message) => {
                return Err(TraceError::Parse {
                    line: idx + 1,
                    message,
                });
            }
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_flat_record() {
        let r = parse_record(
            r#"{"t":"place.iter","iter":3,"hpwl":1.25e2,"bad":null,"note":"a\"b\n","hist":[1,null,2.5]}"#,
        )
        .unwrap();
        assert_eq!(r.kind(), Some("place.iter"));
        assert_eq!(r.num("iter"), Some(3.0));
        assert_eq!(r.num("hpwl"), Some(125.0));
        assert!(r.get("bad").unwrap().is_null());
        assert_eq!(r.str_field("note"), Some("a\"b\n"));
        assert_eq!(
            r.get("hist"),
            Some(&Value::Arr(vec![Some(1.0), None, Some(2.5)]))
        );
        assert_eq!(r.num("missing"), None);
    }

    #[test]
    fn parse_empty_object() {
        assert!(parse_record("{}").unwrap().fields.is_empty());
        assert!(parse_record("  { }  ").unwrap().fields.is_empty());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_record("").is_err());
        assert!(parse_record("{").is_err());
        assert!(parse_record(r#"{"a":}"#).is_err());
        assert!(parse_record(r#"{"a":1} extra"#).is_err());
        assert!(parse_record(r#"{"a":true}"#).is_err());
        assert!(parse_record(r#"{"a":{"nested":1}}"#).is_err());
        assert!(parse_record(r#"{"a":"unterminated}"#).is_err());
    }

    #[test]
    fn escape_roundtrip() {
        let original = "tabs\t \"quotes\" \\slashes\\ \u{1}control \u{263a}";
        let mut line = String::from("{\"t\":\"");
        escape_into(original, &mut line);
        line.push_str("\"}");
        let r = parse_record(&line).unwrap();
        assert_eq!(r.kind(), Some(original));
    }

    #[test]
    fn nonfinite_numbers_become_null() {
        let mut line = String::from("{\"t\":\"x\"");
        push_num(&mut line, "a", f64::INFINITY);
        push_num(&mut line, "b", 2.5);
        line.push('}');
        let r = parse_record(&line).unwrap();
        assert!(r.get("a").unwrap().is_null());
        assert_eq!(r.num("b"), Some(2.5));
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("puffer-trace-jsonl-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn read_jsonl_skips_only_unterminated_trailing_line() {
        let path = tmp("truncated.jsonl");
        std::fs::write(&path, "{\"t\":\"a\"}\n{\"t\":\"b\"}\n{\"t\":\"tru").unwrap();
        let records = read_jsonl(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].kind(), Some("b"));

        // The same malformed line *with* a newline is corruption.
        let bad = tmp("corrupt.jsonl");
        std::fs::write(&bad, "{\"t\":\"a\"}\n{\"t\":\"tru\n{\"t\":\"b\"}\n").unwrap();
        let err = read_jsonl(&bad).unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn read_jsonl_missing_file_is_io_error() {
        let err = read_jsonl(tmp("does-not-exist.jsonl")).unwrap_err();
        assert!(matches!(err, TraceError::Io { .. }), "{err}");
    }
}
