//! Hierarchical RAII span timers and their aggregated statistics.

use crate::Inner;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Aggregated timing of one span path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanStats {
    /// Number of times the span closed.
    pub count: u64,
    /// Total seconds across all closes.
    pub total: f64,
    /// Shortest single span in seconds.
    pub min: f64,
    /// Longest single span in seconds.
    pub max: f64,
}

impl SpanStats {
    fn new() -> Self {
        SpanStats {
            count: 0,
            total: 0.0,
            min: f64::INFINITY,
            max: 0.0,
        }
    }

    fn observe(&mut self, elapsed: f64) {
        self.count += 1;
        self.total += elapsed;
        self.min = self.min.min(elapsed);
        self.max = self.max.max(elapsed);
    }

    /// Mean seconds per close (`0.0` before the first close).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total / self.count as f64
        }
    }
}

/// The per-handle span state: the stack of currently open labels plus the
/// per-path statistics.
#[derive(Debug, Default)]
pub(crate) struct SpanRegistry {
    stack: Vec<&'static str>,
    stats: BTreeMap<String, SpanStats>,
}

impl SpanRegistry {
    /// Pushes a label and returns the depth the matching guard must
    /// truncate back to on drop.
    pub(crate) fn open(&mut self, label: &'static str) -> usize {
        self.stack.push(label);
        self.stack.len() - 1
    }

    /// Closes the span opened at `depth`, folding `elapsed` into the stats
    /// of its full path. Truncation (rather than a pop) keeps the stack
    /// consistent even if inner guards were leaked by a caller panic.
    pub(crate) fn close(&mut self, depth: usize, elapsed: f64) {
        if depth >= self.stack.len() {
            return; // already closed by an outer guard's truncation
        }
        let path = self.stack[..=depth].join("/");
        self.stack.truncate(depth);
        self.stats.entry(path).or_insert_with(SpanStats::new).observe(elapsed);
    }

    pub(crate) fn stats(&self) -> Vec<(String, SpanStats)> {
        self.stats.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }
}

/// RAII guard returned by [`crate::Trace::span`]; records the elapsed time
/// when dropped. A guard from a disabled trace does nothing.
#[derive(Debug)]
pub struct SpanGuard {
    state: Option<(Arc<Inner>, usize, Instant)>,
}

impl SpanGuard {
    pub(crate) fn noop() -> Self {
        SpanGuard { state: None }
    }

    pub(crate) fn open(inner: Arc<Inner>, depth: usize) -> Self {
        SpanGuard {
            state: Some((inner, depth, Instant::now())),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((inner, depth, start)) = self.state.take() {
            crate::Trace::close_span(&inner, depth, start.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_paths_join_with_slash() {
        let mut r = SpanRegistry::default();
        let a = r.open("flow");
        let b = r.open("gp");
        r.close(b, 0.25);
        r.close(a, 1.0);
        let stats = r.stats();
        assert_eq!(stats[0].0, "flow");
        assert_eq!(stats[1].0, "flow/gp");
        assert_eq!(stats[1].1.count, 1);
        assert!((stats[1].1.total - 0.25).abs() < 1e-12);
    }

    #[test]
    fn out_of_order_close_is_tolerated() {
        let mut r = SpanRegistry::default();
        let outer = r.open("outer");
        let inner = r.open("inner");
        // Outer closes first (e.g. the inner guard leaked across a panic):
        // the truncation retires "inner" too, and the late close is ignored.
        r.close(outer, 1.0);
        r.close(inner, 0.5);
        let stats = r.stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].0, "outer");
    }

    #[test]
    fn mean_of_empty_stats_is_zero() {
        assert_eq!(SpanStats::new().mean(), 0.0);
    }
}
