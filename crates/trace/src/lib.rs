//! Flow observability for PUFFER: span timers, counters/gauges, and a
//! per-iteration telemetry sink.
//!
//! The strategy exploration of the paper (§II-E) tunes the whole flow from
//! a single scalar objective; this crate provides the instrumentation that
//! shows *why* a trial behaved the way it did. It is deliberately
//! zero-dependency and pay-for-what-you-use:
//!
//! * [`Trace`] — a cheaply cloneable handle threaded through the flow. A
//!   disabled trace ([`Trace::disabled`], the default everywhere) is a
//!   no-op: every instrumentation call checks one `Option` and returns
//!   without allocating, so hot loops cost nothing when nobody listens.
//! * [`SpanGuard`] — RAII scope timers with nesting. Dropping the guard
//!   records the elapsed time under the span's *path* (`"gp/pad/congest"`),
//!   and per-path statistics (count/total/min/max/mean) accumulate in the
//!   handle; see [`Trace::span`] and [`Trace::span_stats`].
//! * counters and gauges — monotonic [`Trace::add`] and last-value
//!   [`Trace::gauge`] metrics by name.
//! * the JSONL sink — [`Trace::with_sink`] appends one JSON object per
//!   [`Trace::record`] to a file, one line per record, flushed at line
//!   granularity so a crash can lose at most the line being written (the
//!   reader skips an unterminated trailing line). This is the same
//!   crash-discipline as the checkpoint journal: previously written state
//!   is never corrupted by a later failure.
//!
//! # Record schema
//!
//! Every record is a flat JSON object whose `"t"` field names the record
//! kind. The kinds emitted by the workspace crates:
//!
//! | kind | emitted by | fields |
//! |---|---|---|
//! | `place.iter` | `puffer-place` | `iter`, `hpwl`, `wa`, `overflow`, `gamma`, `lambda`, `alpha`, `recoveries` |
//! | `congest.round` | `puffer-congest` | `overflow_h`, `overflow_v`, `demand`, `capacity`, `congested`, `h_hist`, `v_hist` |
//! | `pad.round` | `puffer-pad` | `round`, `utilization`, `target_utilization`, `padded_cells`, `recycled_cells`, `scale` |
//! | `explore.trial` | `puffer-explore` | `trial`, `status`, `objective`, `params` |
//! | `flow.init` | `puffer` (core) | `scale_class`, `cells`, `congest_coarsen` |
//! | `flow.done` | `puffer` (core) | `runtime_s`, `gp_iterations`, `pad_rounds`, `hpwl`, `overflow` |
//! | `route.done` | `puffer` (core) | `hof_pct`, `vof_pct`, `wirelength`, `overflow_gcells`, `rounds` |
//! | `flow.degrade` | `puffer` (core) | `step`, `fraction_remaining`, `iter` |
//! | `watchdog.stall` | `puffer` (core) | `stage`, `stalled_s`, `window_s`, `action`, `iter` |
//! | `chaos.inject` | `puffer` (core) / cli | `class`, `at`, `magnitude`, `seed` |
//! | `span` | [`Trace::write_summary`] | `label`, `count`, `total_s`, `mean_s`, `min_s`, `max_s` |
//! | `counter` | [`Trace::write_summary`] | `name`, `value` |
//! | `gauge` | [`Trace::write_summary`] | `name`, `value` |
//!
//! ## Schema versions
//!
//! The flow-telemetry records above predate explicit versioning and carry
//! no version field — readers should treat a missing `"v"` as **v1**. The
//! `puffer-serve` job-engine records (`serve.*`, `job.spec`, and the
//! request kinds) are **v2** and declare it with a `"v": 2` field on every
//! record; they reuse this crate's record shape (flat JSON object, `"t"`
//! kind field), so [`parse_record`]/[`read_jsonl`] read both generations.
//! Any future breaking change to either family must bump `"v"` rather
//! than silently change field meanings.
//!
//! # Example
//!
//! ```
//! use puffer_trace::Trace;
//! let trace = Trace::enabled();
//! {
//!     let _flow = trace.span("flow");
//!     let _gp = trace.span("gp");
//!     trace.record("place.iter").int("iter", 1).num("hpwl", 123.5).write();
//!     trace.add("recoveries", 1);
//! }
//! let stats = trace.span_stats();
//! assert_eq!(stats[1].0, "flow/gp");
//! assert!(trace.summary_table().contains("flow/gp"));
//! ```

#![forbid(unsafe_code)]

pub mod jsonl;
pub mod span;

pub use jsonl::{parse_record, read_jsonl, ParsedRecord, TraceError, Value};
pub use span::{SpanGuard, SpanStats};

use jsonl::JsonlSink;
use puffer_budget::lockcheck::{classes, lock_ordered};
use span::SpanRegistry;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

#[derive(Debug)]
struct Inner {
    start: Instant,
    spans: Mutex<SpanRegistry>,
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    heartbeats: Mutex<BTreeMap<String, Heartbeat>>,
    sink: Option<Mutex<JsonlSink>>,
    /// First sink write error, reported by [`Trace::flush`].
    error: Mutex<Option<std::io::Error>>,
}

/// Liveness record of one named stage: its latest progress counter and
/// when that counter last advanced.
#[derive(Debug, Clone, Copy)]
struct Heartbeat {
    progress: u64,
    last_advance: Instant,
}

/// A cheaply cloneable telemetry handle.
///
/// Clones share the same span statistics, metrics, and sink. The default
/// handle is [`Trace::disabled`], under which every method is a no-op that
/// performs no allocation.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    inner: Option<Arc<Inner>>,
}

impl Trace {
    /// The no-op handle: every instrumentation call returns immediately.
    pub fn disabled() -> Self {
        Trace { inner: None }
    }

    /// An in-memory handle: spans, counters, and gauges accumulate, but
    /// [`Trace::record`] goes nowhere (no sink).
    pub fn enabled() -> Self {
        Trace {
            inner: Some(Arc::new(Inner {
                start: Instant::now(),
                spans: Mutex::new(SpanRegistry::default()),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                heartbeats: Mutex::new(BTreeMap::new()),
                sink: None,
                error: Mutex::new(None),
            })),
        }
    }

    /// A handle writing one JSON line per [`Trace::record`] to `path`
    /// (truncating an existing file), in addition to the in-memory
    /// statistics of [`Trace::enabled`].
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be created.
    pub fn with_sink(path: impl AsRef<Path>) -> Result<Self, std::io::Error> {
        let sink = JsonlSink::create(path.as_ref())?;
        Ok(Trace {
            inner: Some(Arc::new(Inner {
                start: Instant::now(),
                spans: Mutex::new(SpanRegistry::default()),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                heartbeats: Mutex::new(BTreeMap::new()),
                sink: Some(Mutex::new(sink)),
                error: Mutex::new(None),
            })),
        })
    }

    /// Whether this handle observes anything. Hot paths may use this to
    /// skip computing values that exist only for telemetry.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a nested RAII span: the time between this call and the
    /// returned guard's drop is recorded under the concatenated path of all
    /// currently open spans (e.g. `"gp/pad/congest"`).
    ///
    /// Nesting is tracked per handle, not per thread: open spans from one
    /// logical control flow (the placement stages). Worker threads should
    /// emit records or counters instead.
    pub fn span(&self, label: &'static str) -> SpanGuard {
        match &self.inner {
            None => SpanGuard::noop(),
            Some(inner) => {
                let depth = lock_ordered(&inner.spans, &classes::TRACE_SPANS).open(label);
                SpanGuard::open(Arc::clone(inner), depth)
            }
        }
    }

    pub(crate) fn close_span(inner: &Arc<Inner>, depth: usize, elapsed: f64) {
        lock_ordered(&inner.spans, &classes::TRACE_SPANS).close(depth, elapsed);
    }

    /// Adds `delta` to the named monotonic counter.
    pub fn add(&self, counter: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            let mut counters = lock_ordered(&inner.counters, &classes::TRACE_COUNTERS);
            match counters.get_mut(counter) {
                Some(v) => *v += delta,
                None => {
                    counters.insert(counter.to_string(), delta);
                }
            }
        }
    }

    /// Sets the named gauge to its latest value.
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            lock_ordered(&inner.gauges, &classes::TRACE_GAUGES).insert(name.to_string(), value);
        }
    }

    /// Records liveness for a named stage. The heartbeat's timestamp is
    /// refreshed only when `progress` differs from the last observed value,
    /// so [`Trace::heartbeat_age`] measures time since the stage last made
    /// *progress*, not time since it last phoned home. A stalled loop that
    /// keeps heartbeating the same counter therefore still ages.
    pub fn heartbeat(&self, name: &str, progress: u64) {
        if let Some(inner) = &self.inner {
            let mut beats = lock_ordered(&inner.heartbeats, &classes::TRACE_HEARTBEATS);
            match beats.get_mut(name) {
                Some(hb) if hb.progress == progress => {}
                Some(hb) => {
                    hb.progress = progress;
                    hb.last_advance = Instant::now();
                }
                None => {
                    beats.insert(
                        name.to_string(),
                        Heartbeat {
                            progress,
                            last_advance: Instant::now(),
                        },
                    );
                }
            }
        }
    }

    /// Time since the named stage's heartbeat counter last advanced, or
    /// `None` when the stage has never heartbeat (or the handle is
    /// disabled).
    pub fn heartbeat_age(&self, name: &str) -> Option<std::time::Duration> {
        let inner = self.inner.as_ref()?;
        lock_ordered(&inner.heartbeats, &classes::TRACE_HEARTBEATS)
            .get(name)
            .map(|hb| hb.last_advance.elapsed())
    }

    /// Snapshot of all heartbeats as `(stage, progress, age)`, sorted by
    /// stage name.
    pub fn heartbeats(&self) -> Vec<(String, u64, std::time::Duration)> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => lock_ordered(&inner.heartbeats, &classes::TRACE_HEARTBEATS)
                .iter()
                .map(|(k, hb)| (k.clone(), hb.progress, hb.last_advance.elapsed()))
                .collect(),
        }
    }

    /// Starts a telemetry record of the given kind. Fields are added with
    /// the builder methods and the record is appended to the sink by
    /// [`Record::write`]. With no sink (or a disabled handle) the builder
    /// is a no-op that never allocates.
    pub fn record(&self, kind: &str) -> Record<'_> {
        match &self.inner {
            Some(inner) if inner.sink.is_some() => {
                let mut line = String::with_capacity(96);
                line.push_str("{\"t\":\"");
                jsonl::escape_into(kind, &mut line);
                line.push('"');
                jsonl::push_num(&mut line, "elapsed_s", inner.start.elapsed().as_secs_f64());
                Record {
                    dst: Some((inner, line)),
                }
            }
            _ => Record { dst: None },
        }
    }

    /// Snapshot of all span statistics, sorted by path.
    pub fn span_stats(&self) -> Vec<(String, SpanStats)> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => lock_ordered(&inner.spans, &classes::TRACE_SPANS).stats(),
        }
    }

    /// Snapshot of all counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => lock_ordered(&inner.counters, &classes::TRACE_COUNTERS)
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
        }
    }

    /// Snapshot of all gauges, sorted by name.
    pub fn gauges(&self) -> Vec<(String, f64)> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => lock_ordered(&inner.gauges, &classes::TRACE_GAUGES)
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
        }
    }

    /// Renders the per-stage timing table (one row per span path).
    pub fn summary_table(&self) -> String {
        let stats = self.span_stats();
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>7} {:>12} {:>12} {:>12} {:>12}\n",
            "stage", "calls", "total", "mean", "min", "max"
        ));
        for (path, s) in &stats {
            out.push_str(&format!(
                "{:<28} {:>7} {:>12} {:>12} {:>12} {:>12}\n",
                path,
                s.count,
                fmt_secs(s.total),
                fmt_secs(s.mean()),
                fmt_secs(s.min),
                fmt_secs(s.max)
            ));
        }
        for (name, v) in self.counters() {
            out.push_str(&format!("counter {name:<20} {v}\n"));
        }
        out
    }

    /// Writes one `span` record per span path, one `counter` record per
    /// counter, and one `gauge` record per gauge to the sink, so the JSONL
    /// file is self-contained. Call once, at the end of a run.
    pub fn write_summary(&self) {
        for (path, s) in self.span_stats() {
            self.record("span")
                .str("label", &path)
                .int("count", s.count as i64)
                .num("total_s", s.total)
                .num("mean_s", s.mean())
                .num("min_s", s.min)
                .num("max_s", s.max)
                .write();
        }
        for (name, v) in self.counters() {
            self.record("counter")
                .str("name", &name)
                .int("value", v as i64)
                .write();
        }
        for (name, v) in self.gauges() {
            self.record("gauge").str("name", &name).num("value", v).write();
        }
    }

    /// Flushes the sink to stable storage (`fsync`) and reports the first
    /// write error encountered since the last flush (record writes
    /// themselves never fail the flow).
    ///
    /// # Errors
    ///
    /// A structured [`TraceError::Io`] naming the sink file, wrapping the
    /// stored write error or the fsync failure — records are never
    /// silently dropped: either they are durable or this reports why not.
    pub fn flush(&self) -> Result<(), TraceError> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        let Some(sink) = &inner.sink else {
            return Ok(());
        };
        let mut guard = lock_ordered(sink, &classes::TRACE_SINK);
        let path = guard.path().to_path_buf();
        let synced = guard.flush();
        drop(guard);
        if let Err(source) = synced {
            return Err(TraceError::Io { path, source });
        }
        match lock_ordered(&inner.error, &classes::TRACE_ERROR).take() {
            Some(source) => Err(TraceError::Io { path, source }),
            None => Ok(()),
        }
    }
}

/// Formats a duration in adaptive units.
fn fmt_secs(s: f64) -> String {
    if !s.is_finite() {
        "-".to_string()
    } else if s < 1e-6 {
        format!("{:.1} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

/// Builder for one JSONL record; see [`Trace::record`]. Dropping the
/// builder without calling [`Record::write`] discards the record.
#[must_use = "call .write() to append the record to the sink"]
pub struct Record<'a> {
    /// The owning trace and the partially built JSON line; `None` when the
    /// trace is disabled or has no sink.
    dst: Option<(&'a Inner, String)>,
}

impl Record<'_> {
    /// Adds a numeric field (non-finite values become JSON `null`).
    pub fn num(mut self, key: &str, value: f64) -> Self {
        if let Some((_, line)) = &mut self.dst {
            jsonl::push_num(line, key, value);
        }
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, value: i64) -> Self {
        if let Some((_, line)) = &mut self.dst {
            line.push_str(",\"");
            jsonl::escape_into(key, line);
            line.push_str("\":");
            line.push_str(&value.to_string());
        }
        self
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        if let Some((_, line)) = &mut self.dst {
            line.push_str(",\"");
            jsonl::escape_into(key, line);
            line.push_str("\":\"");
            jsonl::escape_into(value, line);
            line.push('"');
        }
        self
    }

    /// Adds an array-of-numbers field (non-finite entries become `null`).
    pub fn nums(mut self, key: &str, values: &[f64]) -> Self {
        if let Some((_, line)) = &mut self.dst {
            line.push_str(",\"");
            jsonl::escape_into(key, line);
            line.push_str("\":[");
            for (i, v) in values.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                jsonl::push_num_value(line, *v);
            }
            line.push(']');
        }
        self
    }

    /// Closes the record and appends it to the sink (one line, flushed).
    /// Write failures are stored on the trace and surfaced by
    /// [`Trace::flush`]; they never interrupt the instrumented flow.
    pub fn write(self) {
        let Some((inner, mut line)) = self.dst else {
            return;
        };
        line.push('}');
        let Some(sink) = inner.sink.as_ref() else {
            return; // record() only hands out a dst when a sink exists
        };
        if let Err(e) = lock_ordered(sink, &classes::TRACE_SINK).write_line(&line) {
            let mut slot = lock_ordered(&inner.error, &classes::TRACE_ERROR);
            if slot.is_none() {
                *slot = Some(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_is_a_noop() {
        let t = Trace::disabled();
        assert!(!t.is_enabled());
        {
            let _s = t.span("x");
            t.add("c", 3);
            t.gauge("g", 1.0);
            t.record("k").num("a", 1.0).int("b", 2).str("c", "d").write();
        }
        assert!(t.span_stats().is_empty());
        assert!(t.counters().is_empty());
        assert!(t.gauges().is_empty());
        t.flush().unwrap();
    }

    #[test]
    fn spans_nest_into_paths() {
        let t = Trace::enabled();
        {
            let _a = t.span("flow");
            {
                let _b = t.span("gp");
                let _c = t.span("pad");
            }
            let _d = t.span("legal");
        }
        let paths: Vec<String> = t.span_stats().into_iter().map(|(p, _)| p).collect();
        assert_eq!(paths, vec!["flow", "flow/gp", "flow/gp/pad", "flow/legal"]);
    }

    #[test]
    fn span_stats_accumulate() {
        let t = Trace::enabled();
        for _ in 0..5 {
            let _s = t.span("loop");
        }
        let stats = t.span_stats();
        assert_eq!(stats.len(), 1);
        let (path, s) = &stats[0];
        assert_eq!(path, "loop");
        assert_eq!(s.count, 5);
        assert!(s.total >= s.max && s.max >= s.min && s.min >= 0.0);
        assert!(s.mean() <= s.max);
    }

    #[test]
    fn counters_and_gauges() {
        let t = Trace::enabled();
        t.add("recoveries", 1);
        t.add("recoveries", 2);
        t.gauge("overflow", 0.5);
        t.gauge("overflow", 0.25);
        assert_eq!(t.counters(), vec![("recoveries".to_string(), 3)]);
        assert_eq!(t.gauges(), vec![("overflow".to_string(), 0.25)]);
    }

    #[test]
    fn summary_table_lists_stages_and_counters() {
        let t = Trace::enabled();
        {
            let _s = t.span("gp");
        }
        t.add("steps", 7);
        let table = t.summary_table();
        assert!(table.contains("gp"), "{table}");
        assert!(table.contains("steps"), "{table}");
        assert!(table.contains("stage"), "{table}");
    }

    #[test]
    fn heartbeats_age_only_without_progress() {
        let t = Trace::enabled();
        assert!(t.heartbeat_age("gp").is_none());
        t.heartbeat("gp", 1);
        let a1 = t.heartbeat_age("gp").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(5));
        t.heartbeat("gp", 1); // same counter: the heartbeat keeps aging
        let a2 = t.heartbeat_age("gp").unwrap();
        assert!(a2 >= a1);
        assert!(a2 >= std::time::Duration::from_millis(4));
        t.heartbeat("gp", 2); // progress: age resets
        let a3 = t.heartbeat_age("gp").unwrap();
        assert!(a3 < a2);
        let beats = t.heartbeats();
        assert_eq!(beats.len(), 1);
        assert_eq!(beats[0].0, "gp");
        assert_eq!(beats[0].1, 2);

        let d = Trace::disabled();
        d.heartbeat("gp", 1);
        assert!(d.heartbeat_age("gp").is_none());
        assert!(d.heartbeats().is_empty());
    }

    #[test]
    fn clones_share_state() {
        let t = Trace::enabled();
        let u = t.clone();
        u.add("shared", 2);
        assert_eq!(t.counters(), vec![("shared".to_string(), 2)]);
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("puffer-trace-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn sink_roundtrip() {
        let path = tmp("roundtrip.jsonl");
        let t = Trace::with_sink(&path).unwrap();
        t.record("place.iter")
            .int("iter", 3)
            .num("hpwl", 123.25)
            .num("bad", f64::NAN)
            .str("note", "a \"quoted\" stage\n")
            .nums("hist", &[1.0, 2.5])
            .write();
        {
            let _s = t.span("gp");
        }
        t.add("steps", 1);
        t.gauge("overflow", 0.5);
        t.write_summary();
        t.flush().unwrap();

        let records = read_jsonl(&path).unwrap();
        assert!(records.len() >= 4, "{}", records.len());
        let first = &records[0];
        assert_eq!(first.kind(), Some("place.iter"));
        assert_eq!(first.num("iter"), Some(3.0));
        assert_eq!(first.num("hpwl"), Some(123.25));
        assert!(first.get("bad").unwrap().is_null());
        assert_eq!(first.str_field("note"), Some("a \"quoted\" stage\n"));
        assert_eq!(
            first.get("hist"),
            Some(&Value::Arr(vec![Some(1.0), Some(2.5)]))
        );
        assert!(first.num("elapsed_s").unwrap() >= 0.0);
        let kinds: Vec<&str> = records.iter().filter_map(|r| r.kind()).collect();
        assert!(kinds.contains(&"span"));
        assert!(kinds.contains(&"counter"));
        assert!(kinds.contains(&"gauge"));
    }

    #[test]
    fn sink_errors_surface_in_flush() {
        // Write into a directory path: creation already fails.
        let dir = tmp("as-dir");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(Trace::with_sink(&dir).is_err());
    }
}
