//! Synthetic industrial benchmark generator for PUFFER.
//!
//! The paper evaluates on ten proprietary industrial designs (Table I).
//! Those netlists are not available, so this crate generates synthetic
//! designs whose *routability-relevant* characteristics are controlled
//! explicitly:
//!
//! * clustered connectivity (cells are grouped into logical clusters; most
//!   nets are intra-cluster, a configurable fraction is global) — this is
//!   what makes cells bunch up during global placement, the phenomenon
//!   PUFFER's congestion estimator is built around (§III-A);
//! * a fanout distribution with a geometric tail, reproducing the
//!   nets ≈ cells and pins/net ≈ 3–4 ratios of Table I;
//! * fixed macros acting as placement and routing blockages;
//! * a `hotspot` knob concentrating extra pin-dense, high-fanout logic into
//!   one region to reproduce the congested designs (MEDIA_SUBSYS,
//!   A53_ADB_WRAP) where the paper's Table II shows the largest spreads.
//!
//! [`presets`] provides ten named configurations mirroring the Table I rows
//! at a configurable scale.
//!
//! # Example
//!
//! ```
//! use puffer_gen::{generate, presets};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = presets::or1200(0.01)?; // 1% scale for a quick run
//! let design = generate(&config)?;
//! assert!(design.stats().movable_cells > 1000);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

use puffer_db::design::Design;
use puffer_db::error::DbError;
use puffer_db::geom::{Point, Rect};
use puffer_db::netlist::{CellId, CellKind, NetlistBuilder};
use puffer_db::tech::Technology;
use puffer_rng::StdRng;

pub mod presets;

/// Errors produced while building a generator configuration (as opposed to
/// [`DbError`], which [`generate`] returns when a *valid* configuration
/// still yields a degenerate design).
#[derive(Debug, Clone, PartialEq)]
pub enum GenError {
    /// The scale factor passed to [`GeneratorConfig::scaled`] (or a
    /// [`presets`] function) was zero, negative, or non-finite.
    Scale {
        /// The offending factor.
        factor: f64,
    },
}

impl std::fmt::Display for GenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenError::Scale { factor } => {
                write!(f, "scale factor must be positive and finite, got {factor}")
            }
        }
    }
}

impl std::error::Error for GenError {}

/// Configuration of a synthetic design.
///
/// All counts are *targets*; tiny rounding differences can occur (e.g. the
/// last cluster may be smaller). Use [`presets`] for Table I shaped
/// configurations, or construct directly for custom experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Design name.
    pub name: String,
    /// Number of movable standard cells.
    pub num_cells: usize,
    /// Number of fixed macros.
    pub num_macros: usize,
    /// Number of nets.
    pub num_nets: usize,
    /// Target average pins per net (≥ 2); the tail is geometric.
    pub avg_net_degree: f64,
    /// Placement utilization (movable area / free area), typically 0.6–0.85.
    pub utilization: f64,
    /// Mean logical cluster size in cells.
    pub cluster_size: usize,
    /// Probability that a net stays inside one cluster.
    pub locality: f64,
    /// Extra congestion pressure in `[0, 1]`: concentrates high-fanout,
    /// pin-dense logic into a hotspot covering ~10% of clusters.
    pub hotspot: f64,
    /// Fraction of the region edge covered by each macro (per side), before
    /// jitter; macros are sized relative to the region.
    pub macro_fraction: f64,
    /// RNG seed; identical configs generate identical designs.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            name: "synthetic".into(),
            num_cells: 10_000,
            num_macros: 8,
            num_nets: 11_000,
            avg_net_degree: 3.4,
            utilization: 0.72,
            cluster_size: 48,
            locality: 0.90,
            hotspot: 0.0,
            macro_fraction: 0.06,
            seed: 42,
        }
    }
}

impl GeneratorConfig {
    /// Scales cell/net/macro counts by `factor` (min 1 macro kept when the
    /// original had any), returning a new config. Used by [`presets`].
    ///
    /// # Errors
    ///
    /// [`GenError::Scale`] when `factor` is zero, negative, or non-finite.
    pub fn scaled(mut self, factor: f64) -> Result<Self, GenError> {
        if !factor.is_finite() || factor <= 0.0 {
            return Err(GenError::Scale { factor });
        }
        self.num_cells = ((self.num_cells as f64 * factor) as usize).max(16);
        self.num_nets = ((self.num_nets as f64 * factor) as usize).max(16);
        if self.num_macros > 0 {
            self.num_macros = ((self.num_macros as f64 * factor.sqrt()) as usize).clamp(1, 400);
        }
        Ok(self)
    }
}

/// Generates a design from a configuration.
///
/// The generated design has all macros placed, rows filled, and passes
/// [`Design::check_macros_placed`]. Identical configs produce identical
/// designs.
///
/// # Errors
///
/// Returns [`DbError`] if the configuration produces a degenerate floorplan
/// (e.g. `utilization` ≥ 1 with macros that leave no free area).
pub fn generate(config: &GeneratorConfig) -> Result<Design, DbError> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let tech = Technology::default();

    // --- Cell sizes --------------------------------------------------------
    // Widths in sites: mostly 2-6 sites, pin-dense cells wider.
    let mut nb = NetlistBuilder::with_capacity(
        config.num_cells + config.num_macros,
        config.num_nets,
        (config.num_nets as f64 * config.avg_net_degree) as usize,
    );
    let site = tech.site_width;
    let row_h = tech.row_height;
    let mut movable_area = 0.0;
    let mut cell_ids = Vec::with_capacity(config.num_cells);
    let mut cell_widths = Vec::with_capacity(config.num_cells);
    for i in 0..config.num_cells {
        let sites = match rng.gen_range(0..100) {
            0..=39 => 2,
            40..=69 => 3,
            70..=84 => 4,
            85..=94 => 6,
            _ => 8,
        };
        let w = sites as f64 * site;
        movable_area += w * row_h;
        cell_ids.push(nb.add_cell(format!("c{i}"), w, row_h, CellKind::Movable));
        cell_widths.push(w);
    }

    // --- Floorplan ---------------------------------------------------------
    // Estimate macro area as a fraction of the core, then solve for the core
    // side so that movable_area / (core - macro_area) == utilization.
    let per_macro_frac = config.macro_fraction * config.macro_fraction;
    let macro_area_frac = (config.num_macros as f64 * per_macro_frac).min(0.35);
    let core_area = movable_area / config.utilization / (1.0 - macro_area_frac);
    let side = core_area.sqrt();
    // Snap height to whole rows and width to whole sites.
    let height = (side / row_h).ceil() * row_h;
    let width = (side / site).ceil() * site;
    let region = Rect::new(0.0, 0.0, width, height);

    // --- Macros ------------------------------------------------------------
    let mut macro_ids = Vec::with_capacity(config.num_macros);
    for i in 0..config.num_macros {
        let frac = config.macro_fraction * rng.gen_range(0.6..1.4);
        let mw = ((width * frac) / site).max(4.0).round() * site;
        let mh = ((height * frac) / row_h).max(4.0).round() * row_h;
        macro_ids.push(nb.add_cell(format!("m{i}"), mw, mh, CellKind::FixedMacro));
    }

    // --- Clusters ----------------------------------------------------------
    let n_clusters = (config.num_cells / config.cluster_size.max(1)).max(1);
    let hotspot_clusters = ((n_clusters as f64 * 0.10).ceil() as usize).max(1);

    // --- Nets --------------------------------------------------------------
    // Geometric fanout tail: degree = 2 + Geometric(p), clipped.
    let mean_extra = (config.avg_net_degree - 2.0).max(0.05);
    let p_stop = 1.0 / (1.0 + mean_extra);
    let max_degree = 24usize;
    for i in 0..config.num_nets {
        let net = nb.add_net(format!("n{i}"));
        // Hotspot nets are denser and more numerous inside the hotspot.
        let in_hotspot = rng.gen_bool((config.hotspot * 0.35).clamp(0.0, 1.0));
        let cluster = if in_hotspot {
            rng.gen_range(0..hotspot_clusters)
        } else {
            rng.gen_range(0..n_clusters)
        };
        let mut degree = 2;
        while degree < max_degree && !rng.gen_bool(p_stop) {
            degree += 1;
        }
        if in_hotspot {
            degree = (degree + 2).min(max_degree);
        }
        let local = rng.gen_bool(config.locality.clamp(0.0, 1.0));
        let mut used = Vec::with_capacity(degree);
        for _ in 0..degree {
            let cell = if local {
                // Pick within the chosen cluster (contiguous index range).
                let lo = cluster * config.num_cells / n_clusters;
                let hi = (((cluster + 1) * config.num_cells) / n_clusters).max(lo + 1);
                rng.gen_range(lo..hi)
            } else {
                rng.gen_range(0..config.num_cells)
            };
            if used.contains(&cell) {
                continue; // skip duplicate connections on the same net
            }
            used.push(cell);
            let c = cell_ids[cell];
            let (w, h) = (cell_widths[cell], row_h);
            let dx = rng.gen_range(-0.4..0.4) * w;
            let dy = rng.gen_range(-0.4..0.4) * h;
            nb.connect(net, c, Point::new(dx, dy))?;
        }
        // A net needs at least two distinct pins to contribute wirelength;
        // duplicate picks above may have left it degenerate, so top it up
        // with fresh cells (bounded re-draws keep this loop finite).
        let mut attempts = 0;
        while used.len() < 2 && config.num_cells >= 2 && attempts < 64 {
            attempts += 1;
            let cell = rng.gen_range(0..config.num_cells);
            if used.contains(&cell) {
                continue;
            }
            used.push(cell);
            let c = cell_ids[cell];
            let (w, h) = (cell_widths[cell], row_h);
            let dx = rng.gen_range(-0.4..0.4) * w;
            let dy = rng.gen_range(-0.4..0.4) * h;
            nb.connect(net, c, Point::new(dx, dy))?;
        }
        // Occasionally tie a net to a macro pin (I/O of the block).
        if !macro_ids.is_empty() && rng.gen_bool(0.02) {
            let m = macro_ids[rng.gen_range(0..macro_ids.len())];
            nb.connect(net, m, Point::ORIGIN)?;
        }
    }

    // A few extra pins on hotspot cells to raise local pin density.
    if config.hotspot > 0.0 {
        let hot_cells = hotspot_clusters * config.num_cells / n_clusters;
        let extra_nets = (config.hotspot * hot_cells as f64 * 0.4) as usize;
        for i in 0..extra_nets {
            let net = nb.add_net(format!("hot{i}"));
            for _ in 0..2 {
                let cell = rng.gen_range(0..hot_cells.max(2));
                nb.connect(net, cell_ids[cell], Point::ORIGIN)?;
            }
        }
    }

    let netlist = nb.build()?;
    let mut design = Design::new(config.name.clone(), netlist, tech, region)?;

    // --- Macro placement ---------------------------------------------------
    // Macros go on a jittered coarse grid with a margin, skipping overlaps.
    place_macros(&mut design, &macro_ids, &mut rng)?;
    design.check_macros_placed()?;
    Ok(design)
}

fn place_macros(
    design: &mut Design,
    macro_ids: &[CellId],
    rng: &mut StdRng,
) -> Result<(), DbError> {
    let region = design.region();
    let mut placed: Vec<Rect> = Vec::new();
    for &m in macro_ids {
        let cell = design.netlist().cell(m).clone();
        let mut done = false;
        for attempt in 0..400 {
            // Bias towards the periphery like real floorplans, drifting to
            // fully random placement if the periphery is packed.
            let t = attempt as f64 / 400.0;
            let (x, y) = if t < 0.5 && rng.gen_bool(0.7) {
                let side = rng.gen_range(0..4);
                let along = rng.gen_range(0.05..0.95);
                let depth = rng.gen_range(0.02..0.18 + t * 0.5);
                match side {
                    0 => (
                        region.xl + along * region.width(),
                        region.yl + depth * region.height(),
                    ),
                    1 => (
                        region.xl + along * region.width(),
                        region.yh - depth * region.height(),
                    ),
                    2 => (
                        region.xl + depth * region.width(),
                        region.yl + along * region.height(),
                    ),
                    _ => (
                        region.xh - depth * region.width(),
                        region.yl + along * region.height(),
                    ),
                }
            } else {
                (
                    rng.gen_range(region.xl..region.xh),
                    rng.gen_range(region.yl..region.yh),
                )
            };
            let x = x.clamp(region.xl + cell.width / 2.0, region.xh - cell.width / 2.0);
            let y = y.clamp(region.yl + cell.height / 2.0, region.yh - cell.height / 2.0);
            let shape = Rect::from_center(Point::new(x, y), cell.width, cell.height);
            let margin = shape.expanded((cell.width.min(cell.height)) * 0.15);
            if placed.iter().any(|r| r.overlaps(&margin)) {
                continue;
            }
            design.place_macro(m, Point::new(x, y))?;
            placed.push(shape);
            done = true;
            break;
        }
        if !done {
            // Fall back to anywhere legal, overlaps allowed as a last resort
            // (mirrors messy real floorplans rather than failing).
            let x = rng.gen_range(
                region.xl + cell.width / 2.0
                    ..(region.xh - cell.width / 2.0).max(region.xl + cell.width / 2.0 + 1e-9),
            );
            let y = rng.gen_range(
                region.yl + cell.height / 2.0
                    ..(region.yh - cell.height / 2.0).max(region.yl + cell.height / 2.0 + 1e-9),
            );
            design.place_macro(m, Point::new(x, y))?;
            placed.push(Rect::from_center(Point::new(x, y), cell.width, cell.height));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> GeneratorConfig {
        GeneratorConfig {
            num_cells: 800,
            num_nets: 900,
            num_macros: 3,
            ..GeneratorConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = small();
        let a = generate(&cfg).unwrap();
        let b = generate(&cfg).unwrap();
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.region(), b.region());
        let ma: Vec<_> = a.macro_shapes().iter().map(|(_, r)| *r).collect();
        let mb: Vec<_> = b.macro_shapes().iter().map(|(_, r)| *r).collect();
        assert_eq!(ma, mb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&small()).unwrap();
        let b = generate(&GeneratorConfig {
            seed: 43,
            ..small()
        })
        .unwrap();
        let ra: Vec<_> = a.macro_shapes().iter().map(|(_, r)| *r).collect();
        let rb: Vec<_> = b.macro_shapes().iter().map(|(_, r)| *r).collect();
        assert_ne!(ra, rb);
    }

    #[test]
    fn stats_hit_targets() {
        let cfg = small();
        let d = generate(&cfg).unwrap();
        let s = d.stats();
        assert_eq!(s.movable_cells, 800);
        assert_eq!(s.macros, 3);
        assert!(s.nets >= 900); // hotspot nets may add more
                                // Average net degree in a sane band.
        let avg = d.netlist().num_pins() as f64 / s.nets as f64;
        assert!((2.0..6.0).contains(&avg), "avg degree {avg}");
    }

    #[test]
    fn utilization_is_near_target() {
        let cfg = small();
        let d = generate(&cfg).unwrap();
        let u = d.utilization();
        assert!(
            (cfg.utilization * 0.7..=cfg.utilization * 1.3).contains(&u),
            "utilization {u} vs target {}",
            cfg.utilization
        );
    }

    #[test]
    fn macros_are_inside_region() {
        let d = generate(&GeneratorConfig {
            num_macros: 10,
            ..small()
        })
        .unwrap();
        for (_, r) in d.macro_shapes() {
            assert!(r.xl >= d.region().xl - 1e-9 && r.xh <= d.region().xh + 1e-9);
            assert!(r.yl >= d.region().yl - 1e-9 && r.yh <= d.region().yh + 1e-9);
        }
        assert!(d.check_macros_placed().is_ok());
    }

    #[test]
    fn hotspot_raises_pin_concentration() {
        let calm = generate(&GeneratorConfig {
            hotspot: 0.0,
            ..small()
        })
        .unwrap();
        let hot = generate(&GeneratorConfig {
            hotspot: 1.0,
            ..small()
        })
        .unwrap();
        // Hotspot config adds extra nets and pins on the first cells.
        let pins_on_first = |d: &Design| -> usize {
            (0..80)
                .map(|i| d.netlist().cell_pins(CellId(i)).len())
                .sum()
        };
        assert!(pins_on_first(&hot) > pins_on_first(&calm));
    }

    #[test]
    fn scaled_reduces_counts() {
        let cfg = presets::bit_coin(0.01).unwrap();
        assert!(cfg.num_cells < 10_000);
        assert!(cfg.num_cells >= 16);
        let d = generate(&cfg).unwrap();
        assert!(d.stats().movable_cells > 5000);
    }

    #[test]
    fn degenerate_scale_factors_are_structured_errors() {
        // Regression: these were an `assert!` panic; callers (CLI flags,
        // daemon job specs) need a recoverable error instead.
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = GeneratorConfig::default().scaled(bad).unwrap_err();
            assert!(matches!(err, GenError::Scale { .. }), "{err}");
            assert!(err.to_string().contains("scale factor"), "{err}");
            if !bad.is_nan() {
                assert!(err.to_string().contains(&bad.to_string()), "{err}");
            }
        }
        assert!(GeneratorConfig::default().scaled(0.5).is_ok());
    }

    #[test]
    fn fanout_distribution_has_geometric_tail() {
        let d = generate(&GeneratorConfig {
            num_cells: 2000,
            num_nets: 2500,
            num_macros: 0,
            avg_net_degree: 3.4,
            ..GeneratorConfig::default()
        })
        .unwrap();
        let mut degree_counts = [0usize; 30];
        for (id, _) in d.netlist().iter_nets() {
            degree_counts[d.netlist().net_degree(id).min(29)] += 1;
        }
        // 2-pin nets dominate, higher degrees decay, a tail exists.
        assert!(degree_counts[2] > degree_counts[3]);
        assert!(degree_counts[3] > degree_counts[5]);
        let tail: usize = degree_counts[6..].iter().sum();
        assert!(tail > 20, "tail too thin: {tail}");
        // No net exceeds the fanout clip.
        assert_eq!(degree_counts[25..].iter().sum::<usize>(), 0);
    }

    #[test]
    fn locality_controls_cluster_confinement() {
        // With locality 1.0 every multi-pin net stays within one cluster's
        // contiguous index range (width <= cluster size).
        let cfg = GeneratorConfig {
            num_cells: 1000,
            num_nets: 1200,
            num_macros: 0,
            locality: 1.0,
            hotspot: 0.0,
            cluster_size: 50,
            ..GeneratorConfig::default()
        };
        let d = generate(&cfg).unwrap();
        let n_clusters = cfg.num_cells / cfg.cluster_size;
        let span_limit = cfg.num_cells / n_clusters; // one cluster range
        let mut confined = 0;
        let mut total = 0;
        for (id, _) in d.netlist().iter_nets() {
            let idxs: Vec<usize> = d
                .netlist()
                .net_pins(id)
                .iter()
                .map(|&p| d.netlist().pin(p).cell.index())
                .collect();
            if idxs.len() < 2 {
                continue;
            }
            total += 1;
            let span = idxs.iter().max().unwrap() - idxs.iter().min().unwrap();
            if span <= span_limit {
                confined += 1;
            }
        }
        assert!(
            confined * 100 >= total * 95,
            "only {confined}/{total} nets confined to a cluster"
        );
    }
}
