//! The ten Table I benchmark presets.
//!
//! Each preset reproduces a row of the paper's Table I: the macro, cell,
//! net, and pin counts (pins are controlled indirectly through the average
//! net degree `#Pins / #Nets`). The congestion character is set from the
//! paper's Table II behaviour: designs where all three placers struggled
//! (MEDIA_SUBSYS, A53_ADB_WRAP) get a strong hotspot and higher utilization;
//! clean designs (CT_TOP, BIT_COIN) are mild.
//!
//! `scale` multiplies cell and net counts (macro counts scale with √scale);
//! `1.0` is full Table I size. The default harness runs at small scales so
//! the whole suite finishes on one machine.

use crate::{GenError, GeneratorConfig};

#[allow(clippy::too_many_arguments)] // mirrors the Table I columns
fn base(
    name: &str,
    macros: usize,
    cells_k: usize,
    nets_k: usize,
    pins_k: usize,
    utilization: f64,
    hotspot: f64,
    seed: u64,
) -> GeneratorConfig {
    GeneratorConfig {
        name: name.into(),
        num_cells: cells_k * 1000,
        num_macros: macros,
        num_nets: nets_k * 1000,
        avg_net_degree: pins_k as f64 / nets_k as f64,
        utilization,
        cluster_size: 48,
        locality: 0.90,
        hotspot,
        macro_fraction: 0.05,
        seed,
    }
}

/// OR1200: small but congested CPU core (paper HOF 0.79–0.92%).
pub fn or1200(scale: f64) -> Result<GeneratorConfig, GenError> {
    base("OR1200", 22, 122, 193, 660, 0.80, 0.55, 0x0120_0001).scaled(scale)
}

/// ASIC_ENTITY: clean mid-size block.
pub fn asic_entity(scale: f64) -> Result<GeneratorConfig, GenError> {
    base("ASIC_ENTITY", 45, 149, 155, 630, 0.68, 0.10, 0x0120_0002).scaled(scale)
}

/// BIT_COIN: large, very routable datapath.
pub fn bit_coin(scale: f64) -> Result<GeneratorConfig, GenError> {
    base("BIT_COIN", 43, 760, 760, 3151, 0.62, 0.02, 0x0120_0003).scaled(scale)
}

/// MEDIA_SUBSYS: the most congested design in Table II (VOF up to 14.8%).
pub fn media_subsys(scale: f64) -> Result<GeneratorConfig, GenError> {
    base(
        "MEDIA_SUBSYS",
        70,
        1228,
        1296,
        5235,
        0.84,
        0.95,
        0x0120_0004,
    )
    .scaled(scale)
}

/// MEDIA_PG_MODIFY: same block after a power-grid fix; much milder.
pub fn media_pg_modify(scale: f64) -> Result<GeneratorConfig, GenError> {
    base(
        "MEDIA_PG_MODIFY",
        70,
        1228,
        1296,
        5235,
        0.74,
        0.30,
        0x0120_0005,
    )
    .scaled(scale)
}

/// A53_ADB_WRAP: congested CPU wrapper (paper VOF 2.4–14.4%).
pub fn a53_adb_wrap(scale: f64) -> Result<GeneratorConfig, GenError> {
    base("A53_ADB_WRAP", 7, 1232, 1300, 5242, 0.83, 0.85, 0x0120_0006).scaled(scale)
}

/// CT_SCAN: large and clean.
pub fn ct_scan(scale: f64) -> Result<GeneratorConfig, GenError> {
    base("CT_SCAN", 39, 1249, 1317, 5282, 0.66, 0.08, 0x0120_0007).scaled(scale)
}

/// CT_TOP: the cleanest large design (zero HOF for all placers).
pub fn ct_top(scale: f64) -> Result<GeneratorConfig, GenError> {
    base("CT_TOP", 38, 1270, 1272, 4091, 0.60, 0.0, 0x0120_0008).scaled(scale)
}

/// E31_ECOREPLEX: big but routable core complex.
pub fn e31_ecoreplex(scale: f64) -> Result<GeneratorConfig, GenError> {
    base(
        "E31_ECOREPLEX",
        56,
        1533,
        1537,
        6303,
        0.64,
        0.05,
        0x0120_0009,
    )
    .scaled(scale)
}

/// OPENC910: the largest design, macro-heavy, mildly congested.
pub fn openc910(scale: f64) -> Result<GeneratorConfig, GenError> {
    let mut c = base("OPENC910", 332, 1590, 1741, 7276, 0.68, 0.12, 0x0120_000A).scaled(scale)?;
    // 332 macros are necessarily small ones; keep the blocked area in a
    // realistic band instead of letting the default per-macro size blow it up.
    c.macro_fraction = 0.03;
    Ok(c)
}

/// All ten presets in Table I order.
///
/// # Errors
///
/// [`GenError::Scale`] when `scale` is zero, negative, or non-finite.
pub fn all(scale: f64) -> Result<Vec<GeneratorConfig>, GenError> {
    Ok(vec![
        or1200(scale)?,
        asic_entity(scale)?,
        bit_coin(scale)?,
        media_subsys(scale)?,
        media_pg_modify(scale)?,
        a53_adb_wrap(scale)?,
        ct_scan(scale)?,
        ct_top(scale)?,
        e31_ecoreplex(scale)?,
        openc910(scale)?,
    ])
}

/// Looks a preset up by its (case-insensitive) Table I name; `Ok(None)`
/// means the name is unknown.
///
/// # Errors
///
/// [`GenError::Scale`] when `scale` is zero, negative, or non-finite.
pub fn by_name(name: &str, scale: f64) -> Result<Option<GeneratorConfig>, GenError> {
    Ok(all(scale)?
        .into_iter()
        .find(|c| c.name.eq_ignore_ascii_case(name)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_presets_in_table_order() {
        let v = all(1.0).unwrap();
        assert_eq!(v.len(), 10);
        assert_eq!(v[0].name, "OR1200");
        assert_eq!(v[9].name, "OPENC910");
        // Full-scale counts match Table I.
        assert_eq!(v[0].num_cells, 122_000);
        assert_eq!(v[3].num_nets, 1_296_000);
        assert_eq!(v[9].num_macros, 332);
    }

    #[test]
    fn degrees_match_pin_ratios() {
        // OR1200: 660K pins / 193K nets.
        let c = or1200(1.0).unwrap();
        assert!((c.avg_net_degree - 660.0 / 193.0).abs() < 1e-9);
    }

    #[test]
    fn congested_presets_are_marked() {
        let (subsys, wrap) = (media_subsys(1.0).unwrap(), a53_adb_wrap(1.0).unwrap());
        assert!(subsys.hotspot > wrap.hotspot * 0.9);
        assert!(subsys.hotspot > ct_top(1.0).unwrap().hotspot);
        assert!(subsys.utilization > bit_coin(1.0).unwrap().utilization);
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert!(by_name("media_subsys", 0.1).unwrap().is_some());
        assert!(by_name("MEDIA_SUBSYS", 0.1).unwrap().is_some());
        assert!(by_name("nope", 0.1).unwrap().is_none());
        assert!(by_name("media_subsys", 0.0).is_err());
    }

    #[test]
    fn scaling_keeps_ratios() {
        let full = bit_coin(1.0).unwrap();
        let tiny = bit_coin(0.01).unwrap();
        let r_full = full.num_nets as f64 / full.num_cells as f64;
        let r_tiny = tiny.num_nets as f64 / tiny.num_cells as f64;
        assert!((r_full - r_tiny).abs() < 0.05);
        assert_eq!(tiny.avg_net_degree, full.avg_net_degree);
    }

    #[test]
    fn seeds_are_distinct() {
        let seeds: Vec<u64> = all(1.0).unwrap().iter().map(|c| c.seed).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }
}
