//! Multi-feature-based cell padding (paper §III-B).
//!
//! This crate is PUFFER's routability optimizer: given a congestion map it
//! decides how much filler width to attach to each cell so the
//! electrostatic placer spreads congested logic apart.
//!
//! * [`features`] — local, CNN-inspired (surrounding), and GNN-inspired
//!   (pin-congestion) feature extraction (Eq. (9)–(13));
//! * [`padding`] — the padding formula (Eq. (14)), padding recycling
//!   (Eq. (15)), utilization control (Eq. (16)), Algorithm 1, and the
//!   trigger conditions (τ, η, ξ);
//! * [`strategy`] — every tunable strategy parameter plus the parameter
//!   space and grouping consumed by the Bayesian exploration (§III-C);
//! * [`RoutabilityOptimizer`] — the assembled Algorithm 1.
//!
//! # Example
//!
//! ```
//! use puffer_pad::{RoutabilityOptimizer, PaddingStrategy};
//! use puffer_congest::EstimatorConfig;
//! use puffer_gen::{generate, GeneratorConfig};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = generate(&GeneratorConfig {
//!     num_cells: 300, num_nets: 340, ..GeneratorConfig::default()
//! })?;
//! let mut opt = RoutabilityOptimizer::new(
//!     &design, EstimatorConfig::default(), PaddingStrategy::default());
//! let placement = design.initial_placement();
//! let round = opt.optimize(&design, &placement);
//! assert_eq!(opt.padding().len(), design.netlist().num_cells());
//! assert!(round.utilization <= round.target_utilization + 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod features;
pub mod padding;
pub mod strategy;

pub use features::{extract_features, Feature, FeatureConfig, FeatureMatrix, NUM_FEATURES};
pub use padding::{
    padding_formula, padding_round, padding_vector, should_trigger, PaddingRound, PaddingState,
};
pub use strategy::{PaddingStrategy, ParamRange};

use puffer_db::cast;
use puffer_congest::{CongestionEstimator, EstimatorConfig};
use puffer_db::design::{Design, Placement};
use puffer_trace::Trace;

/// PUFFER's routability optimizer: congestion estimation → feature
/// extraction → padding computation/recycling/scaling (Algorithm 1),
/// carrying the padding history across rounds.
#[derive(Debug, Clone)]
pub struct RoutabilityOptimizer {
    estimator: CongestionEstimator,
    feature_config: FeatureConfig,
    strategy: PaddingStrategy,
    state: PaddingState,
    available_area: f64,
    trace: Trace,
}

impl RoutabilityOptimizer {
    /// Builds the optimizer for a design.
    pub fn new(
        design: &Design,
        estimator_config: EstimatorConfig,
        strategy: PaddingStrategy,
    ) -> Self {
        let estimator = CongestionEstimator::new(design, estimator_config);
        // `A` of Algorithm 1: the available placement area (the macro-free
        // core). The utilization schedule pu_i of Eq. (16) is measured
        // against this, so pu_high ≈ the fraction of the core the padding
        // may claim.
        let available_area = design.free_area();
        RoutabilityOptimizer {
            estimator,
            feature_config: FeatureConfig::default(),
            strategy,
            state: PaddingState::new(design.netlist().num_cells()),
            available_area,
            trace: Trace::disabled(),
        }
    }

    /// Attaches a telemetry handle: every [`RoutabilityOptimizer::optimize`]
    /// round emits a `pad.round` record (utilization, padded/recycled cell
    /// counts, scale), and the handle is forwarded to the embedded
    /// congestion estimator for its per-round records.
    pub fn set_trace(&mut self, trace: Trace) {
        self.estimator.set_trace(trace.clone());
        self.trace = trace;
    }

    /// Replaces the feature-extraction configuration (kernel radius, Z-bend
    /// sampling), returning `self` for chaining.
    pub fn with_feature_config(mut self, feature_config: FeatureConfig) -> Self {
        self.feature_config = feature_config;
        self
    }

    /// The feature-extraction configuration.
    pub fn feature_config(&self) -> &FeatureConfig {
        &self.feature_config
    }

    /// The active strategy.
    pub fn strategy(&self) -> &PaddingStrategy {
        &self.strategy
    }

    /// Replaces the strategy (e.g. with an explored configuration).
    pub fn set_strategy(&mut self, strategy: PaddingStrategy) {
        self.strategy = strategy;
    }

    /// The padding history state.
    pub fn state(&self) -> &PaddingState {
        &self.state
    }

    /// Replaces the padding history, e.g. when resuming a checkpointed
    /// flow. The optimizer continues exactly as if it had produced the
    /// state itself (same rounds executed, same accumulated padding).
    ///
    /// # Panics
    ///
    /// Panics if the state's vectors do not match the design's cell count
    /// or contain negative/non-finite padding — callers restoring from
    /// external data must validate first (the flow layer does).
    pub fn set_state(&mut self, state: PaddingState) {
        assert_eq!(
            state.pad.len(),
            self.state.pad.len(),
            "padding state cell count mismatch"
        );
        assert_eq!(
            state.pad_count.len(),
            self.state.pad_count.len(),
            "pad_count cell count mismatch"
        );
        assert!(
            state.pad.iter().all(|p| p.is_finite() && *p >= 0.0),
            "padding must be finite and non-negative"
        );
        assert!(
            !state.last_utilization.is_nan(),
            "last_utilization must not be NaN (infinity marks a fresh state)"
        );
        self.state = state;
    }

    /// Current cumulative per-cell padding.
    pub fn padding(&self) -> &[f64] {
        &self.state.pad
    }

    /// Whether the optimizer should run this iteration (the three trigger
    /// conditions of §III-B.3).
    pub fn should_trigger(&self, density_overflow: f64) -> bool {
        padding::should_trigger(density_overflow, &self.state, &self.strategy)
    }

    /// Runs one full round of Algorithm 1 against a placement snapshot and
    /// returns its statistics; the new padding is available via
    /// [`RoutabilityOptimizer::padding`].
    pub fn optimize(&mut self, design: &Design, placement: &Placement) -> PaddingRound {
        // Incremental re-estimation: across rip-up rounds most cells do not
        // move, so the estimator reuses clean chunk partials and cached RSMT
        // decompositions. Bit-identical to a full build by construction
        // (and falls back to one when `EstimatorConfig::incremental` is
        // off), so the flow's journals are unchanged either way.
        let map = self.estimator.estimate_incremental(design, placement);
        let features = extract_features(design, placement, &map, &self.feature_config);
        let round = padding_round(
            design.netlist(),
            &features,
            &self.strategy,
            &mut self.state,
            self.available_area,
        );
        if self.trace.is_enabled() {
            self.trace.add("pad.recycled_cells", cast::idx_u64(round.recycled_cells));
            self.trace
                .record("pad.round")
                .int("round", cast::idx_i64(round.round))
                .num("utilization", round.utilization)
                .num("target_utilization", round.target_utilization)
                .int("padded_cells", cast::idx_i64(round.padded_cells))
                .int("recycled_cells", cast::idx_i64(round.recycled_cells))
                .num("scale", round.scale)
                .write();
        }
        round
    }

    /// Coarsens the congestion-estimation grid by `factor` (see
    /// [`puffer_congest::CongestionEstimator::coarsen`]). Used by the
    /// graceful-degradation ladder when a deadline nears: later padding
    /// rounds trade map resolution for time.
    pub fn coarsen_estimator(&mut self, design: &Design, factor: f64) {
        self.estimator.coarsen(design, factor);
    }

    /// Forwards a cooperative budget to the embedded congestion estimator,
    /// so a long padding round skips its optional detour expansion once the
    /// flow deadline expires.
    pub fn set_budget(&mut self, budget: puffer_budget::Budget) {
        self.estimator.set_budget(budget);
    }

    /// The most recent congestion map (recomputed; diagnostics only).
    pub fn estimate_map(
        &self,
        design: &Design,
        placement: &Placement,
    ) -> puffer_congest::CongestionMap {
        self.estimator.estimate(design, placement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_db::geom::Point;
    use puffer_gen::{generate, GeneratorConfig};

    fn design() -> Design {
        generate(&GeneratorConfig {
            num_cells: 400,
            num_nets: 450,
            num_macros: 1,
            hotspot: 0.8,
            ..GeneratorConfig::default()
        })
        .unwrap()
    }

    fn clustered(d: &Design) -> Placement {
        let r = d.region();
        let c = r.center();
        let n = d.netlist().movable_cells().count();
        let cols = (n as f64).sqrt().ceil() as usize;
        let mut p = d.initial_placement();
        for (i, id) in d.netlist().movable_cells().enumerate() {
            p.set(
                id,
                Point::new(
                    c.x + (((i % cols) as f64 + 0.5) / cols as f64 - 0.5) * 0.3 * r.width(),
                    c.y + (((i / cols) as f64 + 0.5) / cols as f64 - 0.5) * 0.3 * r.height(),
                ),
            );
        }
        p
    }

    #[test]
    fn optimize_rounds_accumulate_and_respect_budget() {
        let d = design();
        let mut opt = RoutabilityOptimizer::new(
            &d,
            puffer_congest::EstimatorConfig::default(),
            PaddingStrategy::default(),
        );
        let p = clustered(&d);
        let r1 = opt.optimize(&d, &p);
        assert!(r1.padded_cells > 0, "congested snapshot must pad something");
        assert!(r1.utilization <= r1.target_utilization + 1e-9);
        let r2 = opt.optimize(&d, &p);
        assert_eq!(r2.round, 2);
        assert!(r2.target_utilization >= r1.target_utilization);
    }

    #[test]
    fn trigger_respects_round_cap() {
        let d = design();
        let mut opt = RoutabilityOptimizer::new(
            &d,
            puffer_congest::EstimatorConfig::default(),
            PaddingStrategy {
                max_rounds: 2,
                ..PaddingStrategy::default()
            },
        );
        let p = clustered(&d);
        assert!(opt.should_trigger(0.05));
        opt.optimize(&d, &p);
        opt.optimize(&d, &p);
        assert!(!opt.should_trigger(0.05), "round cap ξ reached");
    }

    #[test]
    fn state_roundtrip_continues_identically() {
        let d = design();
        let p = clustered(&d);
        let fresh = || {
            RoutabilityOptimizer::new(
                &d,
                puffer_congest::EstimatorConfig::default(),
                PaddingStrategy::default(),
            )
        };
        let mut reference = fresh();
        reference.optimize(&d, &p);
        let saved = reference.state().clone();
        reference.optimize(&d, &p);

        let mut resumed = fresh();
        resumed.set_state(saved);
        resumed.optimize(&d, &p);
        assert_eq!(reference.state(), resumed.state());
        assert_eq!(reference.padding(), resumed.padding());
    }

    #[test]
    #[should_panic(expected = "cell count mismatch")]
    fn set_state_rejects_wrong_cell_count() {
        let d = design();
        let mut opt = RoutabilityOptimizer::new(
            &d,
            puffer_congest::EstimatorConfig::default(),
            PaddingStrategy::default(),
        );
        opt.set_state(PaddingState::new(3));
    }

    #[test]
    fn padding_is_zero_for_macros() {
        let d = design();
        let mut opt = RoutabilityOptimizer::new(
            &d,
            puffer_congest::EstimatorConfig::default(),
            PaddingStrategy::default(),
        );
        opt.optimize(&d, &clustered(&d));
        for id in d.netlist().fixed_macros() {
            assert_eq!(opt.padding()[id.index()], 0.0);
        }
    }
}
