//! Multi-feature cell padding with recycling and utilization control
//! (paper §III-B.2–3, Algorithm 1).

use puffer_db::cast;
use crate::features::{FeatureMatrix, NUM_FEATURES};
use crate::strategy::PaddingStrategy;
use puffer_db::netlist::Netlist;

/// Mutable padding bookkeeping carried across routability-optimizer rounds.
#[derive(Debug, Clone, PartialEq)]
pub struct PaddingState {
    /// Accumulated padding width per cell (`HP` of Algorithm 1).
    pub pad: Vec<f64>,
    /// How many rounds each cell has received positive padding (`pt(c)`).
    pub pad_count: Vec<u32>,
    /// Rounds executed so far (`i`).
    pub round: usize,
    /// Incremental padding utilization of the most recent round (padding
    /// area *added* by the round / available area), for the η trigger:
    /// small increments mean the padding is converging (§III-B.3).
    pub last_utilization: f64,
}

impl PaddingState {
    /// Fresh state for `num_cells` cells.
    pub fn new(num_cells: usize) -> Self {
        PaddingState {
            pad: vec![0.0; num_cells],
            pad_count: vec![0; num_cells],
            round: 0,
            last_utilization: f64::INFINITY,
        }
    }

    /// Total padding area over movable cells.
    pub fn total_area(&self, netlist: &Netlist) -> f64 {
        netlist
            .iter_cells()
            .filter(|(_, c)| c.is_movable())
            .map(|(id, c)| self.pad[id.index()] * c.height)
            .sum()
    }
}

/// The expected padding of Eq. (14):
/// `Pad(c) = log(max(Σ αᵢ·fᵢ(c) + β, 1)) · μ`.
///
/// # Panics
///
/// Panics if `features` has fewer than [`NUM_FEATURES`] entries.
pub fn padding_formula(features: &[f64], strategy: &PaddingStrategy) -> f64 {
    assert!(features.len() >= NUM_FEATURES);
    let mut acc = strategy.beta;
    for (a, f) in strategy.alpha.iter().zip(features) {
        acc += a * f;
    }
    acc.max(1.0).ln() * strategy.mu
}

/// Outcome of one padding round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaddingRound {
    /// Round index after this call (1-based).
    pub round: usize,
    /// Padding utilization after scaling (total pad area / available area).
    pub utilization: f64,
    /// Target utilization `pu_i` of Eq. (16) for this round.
    pub target_utilization: f64,
    /// Number of cells that received positive new padding.
    pub padded_cells: usize,
    /// Number of cells whose history padding was recycled.
    pub recycled_cells: usize,
    /// Scale ratio applied to enforce the utilization cap (1.0 = no cap).
    pub scale: f64,
}

/// One round of Algorithm 1: compute per-cell padding from features,
/// recycle stale padding, and enforce the utilization schedule.
///
/// `available_area` is the `A` of Algorithm 1 — the free placement area the
/// padding budget is measured against. Returns round statistics; the new
/// cumulative padding is in `state.pad`.
pub fn padding_round(
    netlist: &Netlist,
    features: &FeatureMatrix,
    strategy: &PaddingStrategy,
    state: &mut PaddingState,
    available_area: f64,
) -> PaddingRound {
    state.round += 1;
    let i = state.round;
    let mut padded = 0usize;
    let mut recycled = 0usize;
    let area_before = state.total_area(netlist);

    for (id, cell) in netlist.iter_cells() {
        if !cell.is_movable() {
            continue;
        }
        let want = padding_formula(features.row(id), strategy);
        let idx = id.index();
        if want > 0.0 {
            // Incremental padding: each round builds on the last.
            state.pad[idx] += want;
            state.pad_count[idx] += 1;
            padded += 1;
        } else if state.pad[idx] > 0.0 {
            // Recycle Eq. (15): r_i(c) = (i − pt(c)) / (i + ζ).
            let r = (cast::idx_f64(i) - f64::from(state.pad_count[idx])) / (cast::idx_f64(i) + strategy.zeta);
            if r > 0.0 {
                state.pad[idx] *= 1.0 - r.min(1.0);
                recycled += 1;
            }
        }
        // Cap a single cell's padding at a sane multiple of its width so a
        // runaway feature cannot create a degenerate giant.
        state.pad[idx] = state.pad[idx].min(cell.width * strategy.max_pad_widths);
    }

    // Utilization schedule of Eq. (16).
    let xi = cast::idx_f64(strategy.max_rounds.max(2));
    let pu_i = strategy.pu_low
        + ((cast::idx_f64(i) - 1.0) / (xi - 1.0)).min(1.0) * (strategy.pu_high - strategy.pu_low);
    let total = state.total_area(netlist);
    let budget = pu_i * available_area;
    let mut scale = 1.0;
    if total > budget && total > 0.0 {
        scale = budget / total;
        for p in &mut state.pad {
            *p *= scale;
        }
    }
    let final_total = state.total_area(netlist);
    state.last_utilization = if available_area > 0.0 {
        (final_total - area_before).max(0.0) / available_area
    } else {
        f64::INFINITY
    };

    PaddingRound {
        round: i,
        utilization: if available_area > 0.0 {
            final_total / available_area
        } else {
            f64::INFINITY
        },
        target_utilization: pu_i,
        padded_cells: padded,
        recycled_cells: recycled,
        scale,
    }
}

/// The three trigger conditions for invoking the routability optimizer
/// (§III-B.3): density overflow below τ, previous padding utilization below
/// η (i.e. the padding converged), and fewer than ξ rounds so far.
pub fn should_trigger(
    density_overflow: f64,
    state: &PaddingState,
    strategy: &PaddingStrategy,
) -> bool {
    let overflow_ok = density_overflow < strategy.tau;
    let converged = state.round == 0 || state.last_utilization < strategy.eta;
    let rounds_ok = state.round < strategy.max_rounds;
    overflow_ok && converged && rounds_ok
}

/// Returns the per-cell padding for cells as a plain vector (a copy of
/// `state.pad`), convenient for `puffer_place`-style consumers.
pub fn padding_vector(state: &PaddingState) -> Vec<f64> {
    state.pad.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::Feature;
    use crate::strategy::PaddingStrategy;
    use puffer_db::geom::Point;
    use puffer_db::netlist::{CellId, CellKind, NetlistBuilder};

    fn netlist(n: usize) -> Netlist {
        let mut nb = NetlistBuilder::new();
        for i in 0..n {
            nb.add_cell(format!("c{i}"), 1.0, 1.0, CellKind::Movable);
        }
        let net = nb.add_net("n");
        nb.connect(net, CellId(0), Point::ORIGIN).unwrap();
        nb.build().unwrap()
    }

    /// Builds a feature matrix where every cell has the given local
    /// congestion and zeros elsewhere.
    fn features_with_lcg(netlist: &Netlist, lcg: &[f64]) -> FeatureMatrix {
        let mut fm = FeatureMatrix::zeroed(netlist.num_cells());
        for (i, &v) in lcg.iter().enumerate() {
            fm.set(CellId(i as u32), Feature::LocalCongestion, v);
        }
        fm
    }

    #[test]
    fn formula_is_log_shaped() {
        let s = PaddingStrategy::default();
        let mut f = [0.0; NUM_FEATURES];
        // Negative drive: log(max(<1, 1)) = 0.
        f[0] = -5.0;
        assert_eq!(padding_formula(&f, &s), 0.0);
        // Positive drive grows logarithmically.
        f[0] = 10.0;
        let p10 = padding_formula(&f, &s);
        f[0] = 100.0;
        let p100 = padding_formula(&f, &s);
        assert!(p10 > 0.0);
        assert!(p100 > p10);
        assert!(p100 < 10.0 * p10, "log growth, not linear");
    }

    #[test]
    fn congested_cells_get_padded_others_recycled() {
        let nl = netlist(3);
        let s = PaddingStrategy::default();
        let mut state = PaddingState::new(3);
        // Round 1: cells 0 and 1 congested.
        let fm = features_with_lcg(&nl, &[3.0, 3.0, -1.0]);
        let r1 = padding_round(&nl, &fm, &s, &mut state, 1e9);
        assert_eq!(r1.padded_cells, 2);
        assert!(state.pad[0] > 0.0 && state.pad[1] > 0.0);
        assert_eq!(state.pad[2], 0.0);

        // Round 2: cell 1 no longer congested — its padding shrinks.
        let before = state.pad[1];
        let fm2 = features_with_lcg(&nl, &[3.0, -1.0, -1.0]);
        let r2 = padding_round(&nl, &fm2, &s, &mut state, 1e9);
        assert_eq!(r2.recycled_cells, 1);
        assert!(state.pad[1] < before);
        assert!(state.pad[0] > state.pad[1]);
    }

    #[test]
    fn recycle_rate_depends_on_history() {
        // A cell padded every round has pt == i => r == 0 (no recycling);
        // a cell padded once long ago has r -> (i-1)/(i+ζ) > 0.
        let nl = netlist(2);
        let s = PaddingStrategy::default();
        let mut state = PaddingState::new(2);
        let always = features_with_lcg(&nl, &[3.0, 3.0]);
        padding_round(&nl, &always, &s, &mut state, 1e9);
        let once_only = features_with_lcg(&nl, &[3.0, -1.0]);
        for _ in 0..4 {
            padding_round(&nl, &once_only, &s, &mut state, 1e9);
        }
        assert!(state.pad[1] < state.pad[0]);
        assert!(state.pad[1] > 0.0, "recycling withdraws a part, not all");
    }

    #[test]
    fn utilization_cap_scales_padding() {
        let nl = netlist(4);
        let s = PaddingStrategy {
            pu_low: 0.01,
            pu_high: 0.01,
            ..PaddingStrategy::default()
        };
        let mut state = PaddingState::new(4);
        let fm = features_with_lcg(&nl, &[50.0, 50.0, 50.0, 50.0]);
        // Tiny available area forces scaling.
        let r = padding_round(&nl, &fm, &s, &mut state, 1.0);
        assert!(r.scale < 1.0);
        assert!(r.utilization <= 0.01 + 1e-9);
        let total = state.total_area(&nl);
        assert!(total <= 0.01 + 1e-9);
    }

    #[test]
    fn utilization_schedule_ramps() {
        let s = PaddingStrategy {
            pu_low: 0.1,
            pu_high: 0.5,
            max_rounds: 5,
            ..PaddingStrategy::default()
        };
        let nl = netlist(1);
        let mut state = PaddingState::new(1);
        let fm = features_with_lcg(&nl, &[-1.0]);
        let mut targets = Vec::new();
        for _ in 0..5 {
            targets.push(padding_round(&nl, &fm, &s, &mut state, 1e9).target_utilization);
        }
        assert!((targets[0] - 0.1).abs() < 1e-12);
        assert!((targets[4] - 0.5).abs() < 1e-12);
        assert!(targets.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn per_cell_padding_is_capped() {
        let nl = netlist(1);
        let s = PaddingStrategy {
            max_pad_widths: 3.0,
            ..PaddingStrategy::default()
        };
        let mut state = PaddingState::new(1);
        let fm = features_with_lcg(&nl, &[1e12]);
        for _ in 0..10 {
            padding_round(&nl, &fm, &s, &mut state, 1e9);
        }
        assert!(state.pad[0] <= 3.0 + 1e-9); // cell width 1.0 × cap 3.0
    }

    #[test]
    fn trigger_conditions() {
        let s = PaddingStrategy {
            tau: 0.15,
            eta: 0.02,
            max_rounds: 3,
            ..PaddingStrategy::default()
        };
        let mut state = PaddingState::new(1);
        // Fresh state: only overflow matters.
        assert!(should_trigger(0.10, &state, &s));
        assert!(!should_trigger(0.20, &state, &s));
        // After a round with high utilization: padding not converged.
        state.round = 1;
        state.last_utilization = 0.05;
        assert!(!should_trigger(0.10, &state, &s));
        state.last_utilization = 0.01;
        assert!(should_trigger(0.10, &state, &s));
        // Round limit ξ.
        state.round = 3;
        assert!(!should_trigger(0.10, &state, &s));
    }

    #[test]
    fn fixed_cells_are_never_padded() {
        let mut nb = NetlistBuilder::new();
        nb.add_cell("m", 5.0, 5.0, CellKind::FixedMacro);
        nb.add_cell("c", 1.0, 1.0, CellKind::Movable);
        let nl = nb.build().unwrap();
        let s = PaddingStrategy::default();
        let mut state = PaddingState::new(2);
        let fm = features_with_lcg(&nl, &[100.0, 100.0]);
        padding_round(&nl, &fm, &s, &mut state, 1e9);
        assert_eq!(state.pad[0], 0.0);
        assert!(state.pad[1] > 0.0);
    }
}
