//! Strategy parameters of the padding scheme (paper §III-B, §III-C).
//!
//! Every knob the Bayesian strategy exploration tunes lives here, together
//! with the parameter-space description consumed by `puffer_explore`-style
//! tuners. Defaults correspond to the values used by the reproduction
//! harness after exploration on the small congested design (the paper's
//! protocol: tune on a small design, transfer to the large ones).

use crate::features::NUM_FEATURES;

/// All strategy parameters of the routability optimizer.
#[derive(Debug, Clone, PartialEq)]
pub struct PaddingStrategy {
    /// Feature weights `α` of Eq. (14), in [`crate::features::Feature`]
    /// order: local congestion, local pin density, surrounding congestion,
    /// surrounding pin density, pin congestion.
    pub alpha: [f64; NUM_FEATURES],
    /// Bias `β` of Eq. (14).
    pub beta: f64,
    /// Output scale `μ` of Eq. (14), in database units of width.
    pub mu: f64,
    /// Recycling effort `ζ` of Eq. (15) (larger ⇒ gentler recycling).
    pub zeta: f64,
    /// Minimum padding utilization `pu_low` of Eq. (16).
    pub pu_low: f64,
    /// Maximum padding utilization `pu_high` of Eq. (16).
    pub pu_high: f64,
    /// Density-overflow trigger threshold `τ` (§III-B.3).
    pub tau: f64,
    /// Padding-convergence trigger threshold `η` (§III-B.3).
    pub eta: f64,
    /// Maximum routability-optimization rounds `ξ` (§III-B.3).
    pub max_rounds: usize,
    /// Per-cell padding cap in multiples of the cell width (guard rail; not
    /// in the paper's formulas but implied by legalizability).
    pub max_pad_widths: f64,
    /// Legalization discretization scale `θ` of Eq. (17).
    pub theta: f64,
    /// Legalization padding budget as a fraction of movable cell area
    /// (the paper fixes this at 5%).
    pub legal_budget: f64,
}

impl Default for PaddingStrategy {
    fn default() -> Self {
        PaddingStrategy {
            alpha: [2.2, 1.2, 1.0, 0.4, 0.5],
            beta: 0.9,
            mu: 1.4,
            zeta: 4.0,
            pu_low: 0.04,
            pu_high: 0.14,
            tau: 0.25,
            eta: 0.12,
            max_rounds: 6,
            max_pad_widths: 6.0,
            theta: 4.0,
            legal_budget: 0.05,
        }
    }
}

/// A named continuous parameter range, the unit the strategy exploration
/// works in.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamRange {
    /// Parameter name (matches the field it maps to, e.g. `"alpha0"`).
    pub name: String,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl PaddingStrategy {
    /// The exploration space of §III-C: every tunable parameter with its
    /// initial range.
    pub fn parameter_space() -> Vec<ParamRange> {
        let mut v = Vec::new();
        for i in 0..NUM_FEATURES {
            v.push(ParamRange {
                name: format!("alpha{i}"),
                lo: 0.0,
                hi: 4.0,
            });
        }
        let push = |v: &mut Vec<ParamRange>, name: &str, lo: f64, hi: f64| {
            v.push(ParamRange {
                name: name.into(),
                lo,
                hi,
            });
        };
        push(&mut v, "beta", -1.0, 2.0);
        push(&mut v, "mu", 0.1, 3.0);
        push(&mut v, "zeta", 0.5, 12.0);
        push(&mut v, "pu_low", 0.01, 0.10);
        push(&mut v, "pu_high", 0.08, 0.30);
        push(&mut v, "tau", 0.10, 0.40);
        push(&mut v, "eta", 0.03, 0.25);
        push(&mut v, "theta", 1.0, 8.0);
        v
    }

    /// The parameter groups used for local exploration (Algorithm 3 line 3):
    /// parameters with strong ties share a group.
    pub fn parameter_groups() -> Vec<Vec<String>> {
        vec![
            // Formula weights act together.
            (0..NUM_FEATURES)
                .map(|i| format!("alpha{i}"))
                .chain(["beta".into()])
                .collect(),
            // Output scale and recycling effort govern padding magnitude.
            vec!["mu".into(), "zeta".into()],
            // Budget schedule.
            vec!["pu_low".into(), "pu_high".into()],
            // Triggers.
            vec!["tau".into(), "eta".into()],
            // Legalization.
            vec!["theta".into()],
        ]
    }

    /// Applies a named parameter value; unknown names are ignored so a
    /// tuner can carry extra bookkeeping keys.
    pub fn apply(&mut self, name: &str, value: f64) {
        if let Some(rest) = name.strip_prefix("alpha") {
            if let Ok(i) = rest.parse::<usize>() {
                if i < NUM_FEATURES {
                    self.alpha[i] = value;
                }
            }
            return;
        }
        match name {
            "beta" => self.beta = value,
            "mu" => self.mu = value,
            "zeta" => self.zeta = value,
            "pu_low" => self.pu_low = value,
            "pu_high" => self.pu_high = value.max(self.pu_low),
            "tau" => self.tau = value,
            "eta" => self.eta = value,
            "theta" => self.theta = value,
            _ => {}
        }
    }

    /// Builds a strategy from `(name, value)` pairs on top of the defaults.
    pub fn from_values<'a>(values: impl IntoIterator<Item = (&'a str, f64)>) -> Self {
        let mut s = PaddingStrategy::default();
        for (name, value) in values {
            s.apply(name, value);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let s = PaddingStrategy::default();
        assert!(s.pu_low < s.pu_high);
        assert!(s.tau > 0.0 && s.eta > 0.0);
        assert!(s.max_rounds >= 2);
        assert_eq!(s.legal_budget, 0.05);
    }

    #[test]
    fn space_covers_all_tunables() {
        let space = PaddingStrategy::parameter_space();
        assert_eq!(space.len(), NUM_FEATURES + 8);
        assert!(space.iter().all(|p| p.lo < p.hi));
        // Group membership only references real parameters.
        let names: Vec<_> = space.iter().map(|p| p.name.clone()).collect();
        for group in PaddingStrategy::parameter_groups() {
            for p in group {
                assert!(names.contains(&p), "group references unknown param {p}");
            }
        }
    }

    #[test]
    fn apply_round_trips() {
        let mut s = PaddingStrategy::default();
        s.apply("alpha2", 3.5);
        s.apply("mu", 1.25);
        s.apply("nonsense", 99.0);
        assert_eq!(s.alpha[2], 3.5);
        assert_eq!(s.mu, 1.25);
    }

    #[test]
    fn pu_high_never_drops_below_pu_low() {
        let mut s = PaddingStrategy::default();
        s.apply("pu_low", 0.09);
        s.apply("pu_high", 0.01);
        assert!(s.pu_high >= s.pu_low);
    }

    #[test]
    fn from_values_builds_on_defaults() {
        let s = PaddingStrategy::from_values([("beta", 1.5), ("alpha0", 2.0)]);
        assert_eq!(s.beta, 1.5);
        assert_eq!(s.alpha[0], 2.0);
        assert_eq!(s.zeta, PaddingStrategy::default().zeta);
    }
}
