//! CNN- and GNN-inspired feature extraction (paper §III-B.1).
//!
//! Three families of per-cell features are computed from a congestion map
//! and the current placement:
//!
//! * **local** — the cell's own Gcell congestion (Eq. (9)–(11), keeping the
//!   signed value so slack regions count negatively) and local pin density;
//! * **CNN-inspired** — mean-filter aggregates of congestion and pin
//!   density over an expanded window around the cell, like a convolution
//!   kernel reading the neighbourhood;
//! * **GNN-inspired** — pin congestion (Eq. (12)–(13)): for each pin, the
//!   minimum over all candidate L/Z routes of its two-point nets of the
//!   maximum congestion along the route — information aggregated over the
//!   routing topology graph rather than Euclidean space.

use puffer_db::cast;
use puffer_congest::CongestionMap;
use puffer_db::design::{Design, Placement};
use puffer_db::grid::Grid;
use puffer_db::netlist::CellId;
use puffer_flute::Topology;

/// Number of features per cell.
pub const NUM_FEATURES: usize = 5;

/// Feature indices into a [`FeatureMatrix`] row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feature {
    /// Local congestion `LCg(c)` (Eq. (9)).
    LocalCongestion = 0,
    /// Local pin density.
    LocalPinDensity = 1,
    /// Surrounding (mean-filtered) congestion.
    SurroundCongestion = 2,
    /// Surrounding (mean-filtered) pin density.
    SurroundPinDensity = 3,
    /// Pin congestion `PCg(c)` (Eq. (12)).
    PinCongestion = 4,
}

impl Feature {
    /// Row offset of this feature in a [`FeatureMatrix`] row; mirrors the
    /// enum discriminants without an `as` cast.
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            Feature::LocalCongestion => 0,
            Feature::LocalPinDensity => 1,
            Feature::SurroundCongestion => 2,
            Feature::SurroundPinDensity => 3,
            Feature::PinCongestion => 4,
        }
    }
}

/// Dense per-cell feature storage: `cells × NUM_FEATURES`, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMatrix {
    data: Vec<f64>,
    num_cells: usize,
}

impl FeatureMatrix {
    /// Builds a matrix with only the local-congestion feature populated
    /// (zeros elsewhere) — useful for tests and custom optimizers that
    /// bring their own congestion signal.
    ///
    /// # Panics
    ///
    /// Panics if `lcg.len() > num_cells`.
    pub fn from_local_congestion(num_cells: usize, lcg: &[f64]) -> Self {
        assert!(lcg.len() <= num_cells, "more congestion values than cells");
        let mut m = Self::zeroed(num_cells);
        for (i, &v) in lcg.iter().enumerate() {
            m.set(CellId(cast::idx_u32(i)), Feature::LocalCongestion, v);
        }
        m
    }

    pub(crate) fn zeroed(num_cells: usize) -> Self {
        FeatureMatrix {
            data: vec![0.0; num_cells * NUM_FEATURES],
            num_cells,
        }
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.num_cells
    }

    /// The feature vector of one cell.
    pub fn row(&self, cell: CellId) -> &[f64] {
        let i = cell.index() * NUM_FEATURES;
        &self.data[i..i + NUM_FEATURES]
    }

    /// One feature value.
    pub fn get(&self, cell: CellId, feature: Feature) -> f64 {
        self.data[cell.index() * NUM_FEATURES + feature.index()]
    }

    pub(crate) fn set(&mut self, cell: CellId, feature: Feature, value: f64) {
        self.data[cell.index() * NUM_FEATURES + feature.index()] = value;
    }
}

/// Feature-extraction configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureConfig {
    /// Mean-filter kernel radius in Gcells (kernel size = `2r + 1`).
    pub kernel_radius: usize,
    /// Cap on enumerated Z-path bend positions per segment (the L paths are
    /// always considered); bends are sampled evenly when the span is wider.
    pub max_z_bends: usize,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig {
            kernel_radius: 2,
            max_z_bends: 8,
        }
    }
}

/// Extracts the full feature matrix for every cell.
///
/// `map` must come from the same design/Gcell geometry. The returned matrix
/// has one row per cell (fixed macros get all-zero rows: they are never
/// padded).
pub fn extract_features(
    design: &Design,
    placement: &Placement,
    map: &CongestionMap,
    config: &FeatureConfig,
) -> FeatureMatrix {
    let netlist = design.netlist();
    let mut out = FeatureMatrix::zeroed(netlist.num_cells());

    // Scalar congestion per Gcell (Eq. (10)) and pin density per Gcell.
    let template = map.h_capacity();
    let mut cg: Grid<f64> = Grid::new(template.region(), template.nx(), template.ny());
    for iy in 0..map.ny() {
        for ix in 0..map.nx() {
            *cg.at_mut(ix, iy) = map.cg(ix, iy);
        }
    }
    let site_area = design.tech().site_width * design.tech().row_height;
    let sites_per_gcell = (template.dx() * template.dy() / site_area).max(1.0);
    let mut pin_density: Grid<f64> = Grid::new(template.region(), template.nx(), template.ny());
    for i in 0..netlist.num_pins() {
        let pid = puffer_db::netlist::PinId(cast::idx_u32(i));
        let (ix, iy) = pin_density.cell_of(placement.pin_pos(netlist, pid));
        *pin_density.at_mut(ix, iy) += 1.0 / sites_per_gcell;
    }

    // Prefix sums for O(1) mean filters.
    let cg_sum = PrefixSum2D::new(&cg);
    let pd_sum = PrefixSum2D::new(&pin_density);

    // Local + CNN features.
    for (id, cell) in netlist.iter_cells() {
        if !cell.is_movable() {
            continue;
        }
        let shape = placement.cell_rect(netlist, id);
        let Some((ix_lo, ix_hi, iy_lo, iy_hi)) = cg.cells_overlapping(&shape) else {
            continue;
        };
        // LCg(c): max congestion over the Gcells the cell overlaps (Eq. 9).
        let mut lcg = f64::NEG_INFINITY;
        let mut lpd = f64::NEG_INFINITY;
        for iy in iy_lo..=iy_hi {
            for ix in ix_lo..=ix_hi {
                lcg = lcg.max(*cg.at(ix, iy));
                lpd = lpd.max(*pin_density.at(ix, iy));
            }
        }
        out.set(id, Feature::LocalCongestion, lcg);
        out.set(id, Feature::LocalPinDensity, lpd);

        // Surrounding: mean filter over the bbox expanded by the kernel
        // radius (the convolution of §III-B.1 with a mean kernel).
        let r = config.kernel_radius;
        let sx_lo = ix_lo.saturating_sub(r);
        let sy_lo = iy_lo.saturating_sub(r);
        let sx_hi = (ix_hi + r).min(cg.nx() - 1);
        let sy_hi = (iy_hi + r).min(cg.ny() - 1);
        out.set(
            id,
            Feature::SurroundCongestion,
            cg_sum.mean(sx_lo, sx_hi, sy_lo, sy_hi),
        );
        out.set(
            id,
            Feature::SurroundPinDensity,
            pd_sum.mean(sx_lo, sx_hi, sy_lo, sy_hi),
        );
    }

    // GNN feature: pin congestion over the routing topology.
    let mut pin_cg = vec![f64::INFINITY; netlist.num_pins()];
    for (net_id, _) in netlist.iter_nets() {
        if netlist.net_degree(net_id) < 2 {
            continue;
        }
        let topo = Topology::for_net(netlist, placement, net_id);
        for seg in topo.segments() {
            let na = topo.nodes()[seg.a];
            let nb = topo.nodes()[seg.b];
            let a = cg.cell_of(na.pos);
            let b = cg.cell_of(nb.pos);
            let best = best_path_congestion(&cg, a, b, config.max_z_bends);
            for &(node, _other) in &[(seg.a, seg.b), (seg.b, seg.a)] {
                for &pid in topo.pins_at(node) {
                    if pid.index() < pin_cg.len() {
                        let slot = &mut pin_cg[pid.index()];
                        *slot = slot.min(best);
                    }
                }
            }
        }
    }
    for (id, cell) in netlist.iter_cells() {
        if !cell.is_movable() {
            continue;
        }
        let total: f64 = netlist
            .cell_pins(id)
            .iter()
            .map(|p| {
                let v = pin_cg[p.index()];
                if v.is_finite() {
                    v
                } else {
                    0.0
                }
            })
            .sum();
        out.set(id, Feature::PinCongestion, total);
    }
    out
}

/// Minimum over candidate L/Z paths of the maximum congestion along the
/// path (Eq. (13) for one two-point net).
fn best_path_congestion(
    cg: &Grid<f64>,
    a: (usize, usize),
    b: (usize, usize),
    max_z_bends: usize,
) -> f64 {
    let (ax, ay) = a;
    let (bx, by) = b;
    if ax == bx && ay == by {
        return *cg.at(ax, ay);
    }
    if ax == bx || ay == by {
        // Straight path: single candidate.
        return max_along(cg, a, (bx, by));
    }
    let mut best = f64::INFINITY;
    // Two L paths: bend at (bx, ay) and at (ax, by).
    best = best.min(path_max_l(cg, a, b, (bx, ay)));
    best = best.min(path_max_l(cg, a, b, (ax, by)));
    // Z paths with a vertical middle leg at column cx (H-V-H) ...
    for cx in sample_between(ax, bx, max_z_bends) {
        let m = max_along(cg, (ax.min(cx), ay), (ax.max(cx), ay))
            .max(max_along(cg, (cx, ay.min(by)), (cx, ay.max(by))))
            .max(max_along(cg, (cx.min(bx), by), (cx.max(bx), by)));
        best = best.min(m);
    }
    // ... and with a horizontal middle leg at row cy (V-H-V).
    for cy in sample_between(ay, by, max_z_bends) {
        let m = max_along(cg, (ax, ay.min(cy)), (ax, ay.max(cy)))
            .max(max_along(cg, (ax.min(bx), cy), (ax.max(bx), cy)))
            .max(max_along(cg, (bx, cy.min(by)), (bx, cy.max(by))));
        best = best.min(m);
    }
    best
}

fn path_max_l(cg: &Grid<f64>, a: (usize, usize), b: (usize, usize), bend: (usize, usize)) -> f64 {
    let leg1 = max_along(
        cg,
        (a.0.min(bend.0), a.1.min(bend.1)),
        (a.0.max(bend.0), a.1.max(bend.1)),
    );
    let leg2 = max_along(
        cg,
        (b.0.min(bend.0), b.1.min(bend.1)),
        (b.0.max(bend.0), b.1.max(bend.1)),
    );
    leg1.max(leg2)
}

/// Maximum congestion along a straight Gcell run (inclusive); `a` must be
/// the min corner component-wise for the straight legs used here.
fn max_along(cg: &Grid<f64>, a: (usize, usize), b: (usize, usize)) -> f64 {
    debug_assert!(
        a.0 == b.0 || a.1 == b.1,
        "max_along requires a straight run"
    );
    let mut m = f64::NEG_INFINITY;
    for x in a.0..=b.0 {
        for y in a.1..=b.1 {
            m = m.max(*cg.at(x, y));
        }
    }
    m
}

/// Strictly-between sample positions, at most `max` of them, evenly spaced.
fn sample_between(a: usize, b: usize, max: usize) -> Vec<usize> {
    let (lo, hi) = (a.min(b), a.max(b));
    if hi - lo < 2 || max == 0 {
        return Vec::new();
    }
    let count = (hi - lo - 1).min(max);
    (1..=count)
        .map(|i| lo + i * (hi - lo) / (count + 1))
        .filter(|&v| v > lo && v < hi)
        .collect()
}

/// 2-D inclusive prefix sums for O(1) window means.
struct PrefixSum2D {
    sums: Vec<f64>,
    nx: usize,
}

impl PrefixSum2D {
    fn new(g: &Grid<f64>) -> Self {
        let (nx, ny) = (g.nx(), g.ny());
        let mut sums = vec![0.0; (nx + 1) * (ny + 1)];
        for iy in 0..ny {
            for ix in 0..nx {
                sums[(iy + 1) * (nx + 1) + (ix + 1)] =
                    g.at(ix, iy) + sums[iy * (nx + 1) + (ix + 1)] + sums[(iy + 1) * (nx + 1) + ix]
                        - sums[iy * (nx + 1) + ix];
            }
        }
        PrefixSum2D { sums, nx }
    }

    fn mean(&self, x_lo: usize, x_hi: usize, y_lo: usize, y_hi: usize) -> f64 {
        let w = self.nx + 1;
        let total = self.sums[(y_hi + 1) * w + (x_hi + 1)]
            - self.sums[y_lo * w + (x_hi + 1)]
            - self.sums[(y_hi + 1) * w + x_lo]
            + self.sums[y_lo * w + x_lo];
        total / cast::idx_f64((x_hi - x_lo + 1) * (y_hi - y_lo + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_congest::{CongestionEstimator, EstimatorConfig};
    use puffer_db::geom::{Point, Rect};
    use puffer_gen::{generate, GeneratorConfig};

    fn cg_grid(values: &[(usize, usize, f64)], n: usize) -> Grid<f64> {
        let mut g: Grid<f64> = Grid::new(Rect::new(0.0, 0.0, n as f64, n as f64), n, n);
        for &(x, y, v) in values {
            *g.at_mut(x, y) = v;
        }
        g
    }

    #[test]
    fn straight_path_is_its_own_best() {
        let g = cg_grid(&[(2, 3, 0.9)], 8);
        assert_eq!(best_path_congestion(&g, (0, 3), (5, 3), 8), 0.9);
        assert_eq!(best_path_congestion(&g, (2, 0), (2, 7), 8), 0.9);
        assert_eq!(best_path_congestion(&g, (4, 4), (4, 4), 8), 0.0);
    }

    #[test]
    fn l_and_z_paths_route_around_hotspots() {
        // Both L bends are hot, but a Z path through the middle is clean.
        let mut vals = Vec::new();
        for x in 0..8 {
            vals.push((x, 0, if x > 2 { 1.0 } else { 0.0 })); // bottom row hot right
            vals.push((x, 5, if x < 5 { 1.0 } else { 0.0 })); // top row hot left
        }
        let g = cg_grid(&vals, 8);
        // From (0,0) to (7,5): L via (7,0) hits bottom-right heat, L via
        // (0,5) hits top-left heat; a Z bending at column 1..2 avoids both?
        // Bottom row is hot for x>2, so the H leg 0..cx at y=0 is clean for
        // cx<=2; top row hot for x<5 — H leg cx..7 at y=5 passes x<5: hot.
        // V-H-V: vertical at x=0 (clean), horizontal at middle row y (clean),
        // vertical at x=7 (clean) => best = 0.
        let best = best_path_congestion(&g, (0, 0), (7, 5), 8);
        assert_eq!(best, 0.0);
    }

    #[test]
    fn sample_between_bounds_and_count() {
        assert!(sample_between(3, 4, 8).is_empty());
        let s = sample_between(0, 10, 4);
        assert_eq!(s.len(), 4);
        assert!(s.iter().all(|&v| v > 0 && v < 10));
        let all = sample_between(0, 5, 100);
        assert_eq!(all, vec![1, 2, 3, 4]);
    }

    #[test]
    fn prefix_sum_mean_matches_naive() {
        let mut g: Grid<f64> = Grid::new(Rect::new(0.0, 0.0, 4.0, 4.0), 4, 4);
        for iy in 0..4 {
            for ix in 0..4 {
                *g.at_mut(ix, iy) = (ix * 4 + iy) as f64;
            }
        }
        let ps = PrefixSum2D::new(&g);
        for (x_lo, x_hi, y_lo, y_hi) in [(0, 3, 0, 3), (1, 2, 0, 1), (2, 2, 3, 3)] {
            let mut sum = 0.0;
            let mut n = 0;
            for iy in y_lo..=y_hi {
                for ix in x_lo..=x_hi {
                    sum += *g.at(ix, iy);
                    n += 1;
                }
            }
            assert!((ps.mean(x_lo, x_hi, y_lo, y_hi) - sum / n as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn features_on_generated_design() {
        let d = generate(&GeneratorConfig {
            num_cells: 300,
            num_nets: 330,
            num_macros: 1,
            ..GeneratorConfig::default()
        })
        .unwrap();
        let est = CongestionEstimator::new(&d, EstimatorConfig::default());
        // Spread cells a bit so segments exist.
        let mut p = d.initial_placement();
        let r = d.region();
        for (i, id) in d.netlist().movable_cells().enumerate() {
            p.set(
                id,
                Point::new(
                    r.xl + (i % 17) as f64 / 17.0 * r.width(),
                    r.yl + (i % 13) as f64 / 13.0 * r.height(),
                ),
            );
        }
        let map = est.estimate(&d, &p);
        let fm = extract_features(&d, &p, &map, &FeatureConfig::default());
        assert_eq!(fm.num_cells(), d.netlist().num_cells());
        // All features finite; at least one cell has nonzero pin density.
        let mut any_pd = false;
        for id in d.netlist().movable_cells() {
            let row = fm.row(id);
            assert!(row.iter().all(|v| v.is_finite()), "cell {id}: {row:?}");
            if fm.get(id, Feature::LocalPinDensity) > 0.0 {
                any_pd = true;
            }
        }
        assert!(any_pd);
        // Macports (fixed) rows stay zero.
        for id in d.netlist().fixed_macros() {
            assert!(fm.row(id).iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn surround_feature_smooths_local_feature() {
        // A cell on a lone hotspot has local >= surround; a cell in a
        // uniform field has local == surround.
        let d = generate(&GeneratorConfig {
            num_cells: 64,
            num_nets: 70,
            num_macros: 0,
            ..GeneratorConfig::default()
        })
        .unwrap();
        let est = CongestionEstimator::new(&d, EstimatorConfig::default());
        let mut p = d.initial_placement();
        // Pile everything into one corner Gcell region to make a hotspot.
        let r = d.region();
        for id in d.netlist().movable_cells() {
            p.set(id, Point::new(r.xl + 0.6, r.yl + 0.6));
        }
        let map = est.estimate(&d, &p);
        let fm = extract_features(&d, &p, &map, &FeatureConfig::default());
        let id = d.netlist().movable_cells().next().unwrap();
        assert!(
            fm.get(id, Feature::LocalCongestion) >= fm.get(id, Feature::SurroundCongestion),
            "hotspot local should dominate surround"
        );
    }
}
