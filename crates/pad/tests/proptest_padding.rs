//! Property-based tests on the padding algorithm's invariants, driven by
//! the in-workspace `puffer_rng::check` harness.

use puffer_db::geom::Point;
use puffer_db::netlist::{CellId, CellKind, Netlist, NetlistBuilder};
use puffer_pad::{padding_formula, padding_round, FeatureMatrix, PaddingState, PaddingStrategy};
use puffer_rng::check::run_cases;
use puffer_rng::prop_check;

fn netlist(n: usize) -> Netlist {
    let mut nb = NetlistBuilder::new();
    for i in 0..n {
        nb.add_cell(format!("c{i}"), 1.0, 1.0, CellKind::Movable);
    }
    let net = nb.add_net("n");
    nb.connect(net, CellId(0), Point::ORIGIN).unwrap();
    nb.build().unwrap()
}

fn features(netlist: &Netlist, lcg: &[f64]) -> FeatureMatrix {
    FeatureMatrix::from_local_congestion(netlist.num_cells(), lcg)
}

/// The padding formula is non-negative and monotone in any single
/// feature with a positive weight.
#[test]
fn formula_is_nonnegative_and_monotone() {
    run_cases(
        48,
        0x2001,
        |rng| (rng.gen_range(-10.0..10.0), rng.gen_range(0.0..10.0)),
        |&(f0, extra)| {
            let s = PaddingStrategy::default();
            let mut a = [0.0; puffer_pad::NUM_FEATURES];
            a[0] = f0;
            let mut b = a;
            b[0] = f0 + extra;
            let pa = padding_formula(&a, &s);
            let pb = padding_formula(&b, &s);
            prop_check!(pa >= 0.0, "negative padding {pa}");
            prop_check!(pb >= pa - 1e-12, "monotone: {pa} then {pb}");
            Ok(())
        },
    );
}

/// After any sequence of rounds, the total padding area never exceeds
/// the scheduled utilization budget.
#[test]
fn utilization_budget_always_holds() {
    run_cases(
        48,
        0x2002,
        |rng| {
            let lcg: Vec<f64> = (0..8).map(|_| rng.gen_range(-2.0..50.0)).collect();
            let rounds = rng.gen_range(1..6usize);
            let area = rng.gen_range(1.0..100.0);
            (lcg, rounds, area)
        },
        |(lcg, rounds, area)| {
            let nl = netlist(8);
            let s = PaddingStrategy::default();
            let mut state = PaddingState::new(8);
            let fm = features(&nl, lcg);
            for _ in 0..*rounds {
                let r = padding_round(&nl, &fm, &s, &mut state, *area);
                prop_check!(
                    state.total_area(&nl) <= r.target_utilization * area + 1e-6,
                    "total {} > budget {}",
                    state.total_area(&nl),
                    r.target_utilization * area
                );
                prop_check!(r.target_utilization <= s.pu_high + 1e-12);
            }
            Ok(())
        },
    );
}

/// Padding is always non-negative and respects the per-cell cap.
#[test]
fn per_cell_padding_bounds() {
    run_cases(
        48,
        0x2003,
        |rng| {
            let lcg: Vec<f64> = (0..8).map(|_| rng.gen_range(-5.0..1e6)).collect();
            let rounds = rng.gen_range(1..8usize);
            (lcg, rounds)
        },
        |(lcg, rounds)| {
            let nl = netlist(8);
            let s = PaddingStrategy::default();
            let mut state = PaddingState::new(8);
            let fm = features(&nl, lcg);
            for _ in 0..*rounds {
                padding_round(&nl, &fm, &s, &mut state, 1e9);
            }
            for (i, &p) in state.pad.iter().enumerate() {
                prop_check!(p >= 0.0, "cell {i} negative padding {p}");
                prop_check!(
                    p <= s.max_pad_widths * 1.0 + 1e-9,
                    "cell {i} over cap: {p}"
                );
            }
            Ok(())
        },
    );
}

/// A cell that is never congested again monotonically loses padding
/// through recycling.
#[test]
fn recycling_is_monotone_decreasing() {
    run_cases(
        48,
        0x2004,
        |rng| rng.gen_range(1.0..50.0),
        |&initial_cg| {
            let nl = netlist(2);
            let s = PaddingStrategy::default();
            let mut state = PaddingState::new(2);
            padding_round(
                &nl,
                &features(&nl, &[initial_cg, initial_cg]),
                &s,
                &mut state,
                1e9,
            );
            let mut last = state.pad[0];
            for _ in 0..6 {
                padding_round(&nl, &features(&nl, &[-1.0, initial_cg]), &s, &mut state, 1e9);
                prop_check!(
                    state.pad[0] <= last + 1e-12,
                    "padding grew: {} then {}",
                    last,
                    state.pad[0]
                );
                last = state.pad[0];
            }
            Ok(())
        },
    );
}
