//! Property-based tests on the padding algorithm's invariants.

use proptest::prelude::*;
use puffer_db::geom::Point;
use puffer_db::netlist::{CellId, CellKind, Netlist, NetlistBuilder};
use puffer_pad::{padding_formula, padding_round, FeatureMatrix, PaddingState, PaddingStrategy};

fn netlist(n: usize) -> Netlist {
    let mut nb = NetlistBuilder::new();
    for i in 0..n {
        nb.add_cell(format!("c{i}"), 1.0, 1.0, CellKind::Movable);
    }
    let net = nb.add_net("n");
    nb.connect(net, CellId(0), Point::ORIGIN).unwrap();
    nb.build().unwrap()
}

fn features(netlist: &Netlist, lcg: &[f64]) -> FeatureMatrix {
    FeatureMatrix::from_local_congestion(netlist.num_cells(), lcg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The padding formula is non-negative and monotone in any single
    /// feature with a positive weight.
    #[test]
    fn formula_is_nonnegative_and_monotone(
        f0 in -10.0..10.0f64,
        extra in 0.0..10.0f64,
    ) {
        let s = PaddingStrategy::default();
        let mut a = [0.0; puffer_pad::NUM_FEATURES];
        a[0] = f0;
        let mut b = a;
        b[0] = f0 + extra;
        let pa = padding_formula(&a, &s);
        let pb = padding_formula(&b, &s);
        prop_assert!(pa >= 0.0);
        prop_assert!(pb >= pa - 1e-12, "monotone: {pa} then {pb}");
    }

    /// After any sequence of rounds, the total padding area never exceeds
    /// the scheduled utilization budget.
    #[test]
    fn utilization_budget_always_holds(
        lcg in prop::collection::vec(-2.0..50.0f64, 8),
        rounds in 1usize..6,
        area in 1.0..100.0f64,
    ) {
        let nl = netlist(8);
        let s = PaddingStrategy::default();
        let mut state = PaddingState::new(8);
        let fm = features(&nl, &lcg);
        for _ in 0..rounds {
            let r = padding_round(&nl, &fm, &s, &mut state, area);
            prop_assert!(
                state.total_area(&nl) <= r.target_utilization * area + 1e-6,
                "total {} > budget {}",
                state.total_area(&nl),
                r.target_utilization * area
            );
            prop_assert!(r.target_utilization <= s.pu_high + 1e-12);
        }
    }

    /// Padding is always non-negative and respects the per-cell cap.
    #[test]
    fn per_cell_padding_bounds(
        lcg in prop::collection::vec(-5.0..1e6f64, 8),
        rounds in 1usize..8,
    ) {
        let nl = netlist(8);
        let s = PaddingStrategy::default();
        let mut state = PaddingState::new(8);
        let fm = features(&nl, &lcg);
        for _ in 0..rounds {
            padding_round(&nl, &fm, &s, &mut state, 1e9);
        }
        for (i, &p) in state.pad.iter().enumerate() {
            prop_assert!(p >= 0.0, "cell {i} negative padding {p}");
            prop_assert!(p <= s.max_pad_widths * 1.0 + 1e-9, "cell {i} over cap: {p}");
        }
    }

    /// A cell that is never congested again monotonically loses padding
    /// through recycling.
    #[test]
    fn recycling_is_monotone_decreasing(initial_cg in 1.0..50.0f64) {
        let nl = netlist(2);
        let s = PaddingStrategy::default();
        let mut state = PaddingState::new(2);
        padding_round(&nl, &features(&nl, &[initial_cg, initial_cg]), &s, &mut state, 1e9);
        let mut last = state.pad[0];
        for _ in 0..6 {
            padding_round(&nl, &features(&nl, &[-1.0, initial_cg]), &s, &mut state, 1e9);
            prop_assert!(state.pad[0] <= last + 1e-12);
            last = state.pad[0];
        }
    }
}
