//! Plain 2-D geometry in floating-point database units.
//!
//! All placement coordinates in this workspace are `f64` database units. The
//! two workhorse types are [`Point`] and the half-open axis-aligned rectangle
//! [`Rect`].

use std::fmt;

/// A 2-D point in database units.
///
/// ```
/// use puffer_db::geom::Point;
/// let p = Point::new(3.0, 4.0);
/// assert_eq!(p.l1_distance(Point::ORIGIN), 7.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Rectilinear (Manhattan / L1) distance to `other`.
    pub fn l1_distance(self, other: Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Euclidean distance to `other`.
    pub fn l2_distance(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Component-wise sum.
    pub fn offset(self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

/// An axis-aligned rectangle `[xl, xh) × [yl, yh)` in database units.
///
/// Rectangles are allowed to be degenerate (zero width or height); such
/// rectangles have zero [`area`](Rect::area) and overlap nothing.
///
/// ```
/// use puffer_db::geom::Rect;
/// let a = Rect::new(0.0, 0.0, 10.0, 5.0);
/// let b = Rect::new(5.0, 2.0, 20.0, 20.0);
/// assert_eq!(a.intersection(&b).area(), 5.0 * 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rect {
    /// Left edge.
    pub xl: f64,
    /// Bottom edge.
    pub yl: f64,
    /// Right edge.
    pub xh: f64,
    /// Top edge.
    pub yh: f64,
}

impl Rect {
    /// Creates a rectangle from its corner coordinates.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `xh < xl` or `yh < yl`.
    pub fn new(xl: f64, yl: f64, xh: f64, yh: f64) -> Self {
        debug_assert!(
            xh >= xl && yh >= yl,
            "inverted rect ({xl},{yl})-({xh},{yh})"
        );
        Rect { xl, yl, xh, yh }
    }

    /// Creates a rectangle from a center point and full width/height.
    pub fn from_center(center: Point, w: f64, h: f64) -> Self {
        Rect::new(
            center.x - w / 2.0,
            center.y - h / 2.0,
            center.x + w / 2.0,
            center.y + h / 2.0,
        )
    }

    /// The empty rectangle at the origin.
    pub const EMPTY: Rect = Rect {
        xl: 0.0,
        yl: 0.0,
        xh: 0.0,
        yh: 0.0,
    };

    /// Width (`xh - xl`).
    pub fn width(&self) -> f64 {
        self.xh - self.xl
    }

    /// Height (`yh - yl`).
    pub fn height(&self) -> f64 {
        self.yh - self.yl
    }

    /// Area (`width * height`).
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point.
    pub fn center(&self) -> Point {
        Point::new((self.xl + self.xh) / 2.0, (self.yl + self.yh) / 2.0)
    }

    /// Whether the half-open rectangle contains `p`.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.xl && p.x < self.xh && p.y >= self.yl && p.y < self.yh
    }

    /// Whether two rectangles overlap with positive area.
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.xl < other.xh && other.xl < self.xh && self.yl < other.yh && other.yl < self.yh
    }

    /// The intersection rectangle; degenerate (zero-area) when disjoint.
    pub fn intersection(&self, other: &Rect) -> Rect {
        let xl = self.xl.max(other.xl);
        let yl = self.yl.max(other.yl);
        let xh = self.xh.min(other.xh).max(xl);
        let yh = self.yh.min(other.yh).max(yl);
        Rect { xl, yl, xh, yh }
    }

    /// The smallest rectangle containing both rectangles.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            xl: self.xl.min(other.xl),
            yl: self.yl.min(other.yl),
            xh: self.xh.max(other.xh),
            yh: self.yh.max(other.yh),
        }
    }

    /// Horizontal overlap length with `other` (zero when disjoint in x).
    pub fn overlap_x(&self, other: &Rect) -> f64 {
        (self.xh.min(other.xh) - self.xl.max(other.xl)).max(0.0)
    }

    /// Vertical overlap length with `other` (zero when disjoint in y).
    pub fn overlap_y(&self, other: &Rect) -> f64 {
        (self.yh.min(other.yh) - self.yl.max(other.yl)).max(0.0)
    }

    /// Expands every side by `margin` (shrinks for negative margins, clamped
    /// so the rectangle never inverts).
    pub fn expanded(&self, margin: f64) -> Rect {
        let xl = self.xl - margin;
        let yl = self.yl - margin;
        let xh = (self.xh + margin).max(xl);
        let yh = (self.yh + margin).max(yl);
        Rect { xl, yl, xh, yh }
    }

    /// Clamps a point into the rectangle (closed on all sides).
    pub fn clamp_point(&self, p: Point) -> Point {
        Point::new(p.x.clamp(self.xl, self.xh), p.y.clamp(self.yl, self.yh))
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}] x [{}, {}]", self.xl, self.xh, self.yl, self.yh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distances() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.l1_distance(b), 7.0);
        assert!((a.l2_distance(b) - 5.0).abs() < 1e-12);
        assert_eq!(a.l1_distance(a), 0.0);
    }

    #[test]
    fn point_offset_and_from_tuple() {
        let p: Point = (1.0, 2.0).into();
        assert_eq!(p.offset(0.5, -0.5), Point::new(1.5, 1.5));
    }

    #[test]
    fn rect_basic_properties() {
        let r = Rect::new(0.0, 0.0, 10.0, 4.0);
        assert_eq!(r.width(), 10.0);
        assert_eq!(r.height(), 4.0);
        assert_eq!(r.area(), 40.0);
        assert_eq!(r.center(), Point::new(5.0, 2.0));
    }

    #[test]
    fn rect_from_center_roundtrip() {
        let r = Rect::from_center(Point::new(3.0, 4.0), 2.0, 6.0);
        assert_eq!(r.center(), Point::new(3.0, 4.0));
        assert_eq!(r.width(), 2.0);
        assert_eq!(r.height(), 6.0);
    }

    #[test]
    fn rect_contains_is_half_open() {
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        assert!(r.contains(Point::ORIGIN));
        assert!(!r.contains(Point::new(1.0, 0.0)));
        assert!(!r.contains(Point::new(0.0, 1.0)));
    }

    #[test]
    fn rect_overlap_and_intersection() {
        let a = Rect::new(0.0, 0.0, 10.0, 10.0);
        let b = Rect::new(5.0, 5.0, 15.0, 15.0);
        assert!(a.overlaps(&b));
        let i = a.intersection(&b);
        assert_eq!(i, Rect::new(5.0, 5.0, 10.0, 10.0));
        assert_eq!(a.overlap_x(&b), 5.0);
        assert_eq!(a.overlap_y(&b), 5.0);

        let c = Rect::new(20.0, 20.0, 30.0, 30.0);
        assert!(!a.overlaps(&c));
        assert_eq!(a.intersection(&c).area(), 0.0);
        assert_eq!(a.overlap_x(&c), 0.0);
    }

    #[test]
    fn touching_rects_do_not_overlap() {
        let a = Rect::new(0.0, 0.0, 5.0, 5.0);
        let b = Rect::new(5.0, 0.0, 10.0, 5.0);
        assert!(!a.overlaps(&b));
        assert_eq!(a.intersection(&b).area(), 0.0);
    }

    #[test]
    fn rect_union_covers_both() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(5.0, -2.0, 6.0, 0.5);
        let u = a.union(&b);
        assert_eq!(u, Rect::new(0.0, -2.0, 6.0, 1.0));
    }

    #[test]
    fn rect_expand_and_shrink() {
        let r = Rect::new(2.0, 2.0, 4.0, 4.0);
        assert_eq!(r.expanded(1.0), Rect::new(1.0, 1.0, 5.0, 5.0));
        // Over-shrinking clamps instead of inverting.
        let s = r.expanded(-5.0);
        assert!(s.width() >= 0.0 && s.height() >= 0.0);
    }

    #[test]
    fn rect_clamp_point() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert_eq!(r.clamp_point(Point::new(-5.0, 20.0)), Point::new(0.0, 10.0));
        assert_eq!(r.clamp_point(Point::new(3.0, 4.0)), Point::new(3.0, 4.0));
    }
}
