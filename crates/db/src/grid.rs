//! Dense 2-D grids over the placement region.
//!
//! Both the density bins of the electrostatic placer (paper Eq. (3)) and the
//! Gcell maps of the congestion estimator (paper §II-C) are uniform grids
//! over the same region; [`Grid`] is the shared representation.

use crate::cast;
use crate::geom::{Point, Rect};

/// A dense `nx × ny` grid of `T` laid over a rectangular region.
///
/// Cell `(ix, iy)` covers
/// `[xl + ix·dx, xl + (ix+1)·dx) × [yl + iy·dy, yl + (iy+1)·dy)`.
/// Storage is row-major in `iy` (i.e. index = `iy * nx + ix`).
///
/// ```
/// use puffer_db::geom::{Point, Rect};
/// use puffer_db::grid::Grid;
/// let g: Grid<f64> = Grid::new(Rect::new(0.0, 0.0, 10.0, 10.0), 5, 5);
/// assert_eq!(g.cell_of(Point::new(3.0, 9.0)), (1, 4));
/// assert_eq!(g.cell_rect(1, 4), Rect::new(2.0, 8.0, 4.0, 10.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Grid<T> {
    region: Rect,
    nx: usize,
    ny: usize,
    dx: f64,
    dy: f64,
    data: Vec<T>,
}

impl<T: Clone + Default> Grid<T> {
    /// Creates a grid filled with `T::default()`.
    ///
    /// # Panics
    ///
    /// Panics if `nx` or `ny` is zero or the region is degenerate.
    pub fn new(region: Rect, nx: usize, ny: usize) -> Self {
        Self::filled(region, nx, ny, T::default())
    }
}

impl<T: Clone> Grid<T> {
    /// Creates a grid filled with copies of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `nx` or `ny` is zero or the region is degenerate.
    pub fn filled(region: Rect, nx: usize, ny: usize, value: T) -> Self {
        assert!(nx > 0 && ny > 0, "grid dimensions must be positive");
        assert!(
            region.width() > 0.0 && region.height() > 0.0,
            "grid region is degenerate"
        );
        let dx = region.width() / cast::idx_f64(nx);
        let dy = region.height() / cast::idx_f64(ny);
        Grid {
            region,
            nx,
            ny,
            dx,
            dy,
            data: vec![value; nx * ny],
        }
    }

    /// Fills every cell with copies of `value`.
    pub fn fill(&mut self, value: T) {
        for v in &mut self.data {
            *v = value.clone();
        }
    }
}

impl<T> Grid<T> {
    /// The covered region.
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Number of columns.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Number of rows.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Cell width.
    pub fn dx(&self) -> f64 {
        self.dx
    }

    /// Cell height.
    pub fn dy(&self) -> f64 {
        self.dy
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the grid has zero cells (never true for a constructed grid).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat index of cell `(ix, iy)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if out of bounds.
    #[inline]
    pub fn idx(&self, ix: usize, iy: usize) -> usize {
        debug_assert!(
            ix < self.nx && iy < self.ny,
            "grid index ({ix},{iy}) out of bounds"
        );
        iy * self.nx + ix
    }

    /// Reference to the value in cell `(ix, iy)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn at(&self, ix: usize, iy: usize) -> &T {
        &self.data[self.idx(ix, iy)]
    }

    /// Mutable reference to the value in cell `(ix, iy)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn at_mut(&mut self, ix: usize, iy: usize) -> &mut T {
        let i = self.idx(ix, iy);
        &mut self.data[i]
    }

    /// The raw row-major data slice.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The raw mutable row-major data slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Grid cell containing `p`, clamped to the boundary for points outside
    /// the region.
    pub fn cell_of(&self, p: Point) -> (usize, usize) {
        let ix = ((p.x - self.region.xl) / self.dx).floor();
        let iy = ((p.y - self.region.yl) / self.dy).floor();
        (
            cast::trunc_idx(ix.max(0.0)).min(self.nx - 1),
            cast::trunc_idx(iy.max(0.0)).min(self.ny - 1),
        )
    }

    /// The rectangle covered by cell `(ix, iy)`.
    pub fn cell_rect(&self, ix: usize, iy: usize) -> Rect {
        let xl = self.region.xl + cast::idx_f64(ix) * self.dx;
        let yl = self.region.yl + cast::idx_f64(iy) * self.dy;
        Rect::new(xl, yl, xl + self.dx, yl + self.dy)
    }

    /// Inclusive index range `(ix_lo..=ix_hi, iy_lo..=iy_hi)` of cells
    /// overlapping `r` (clamped to the grid). Returns `None` when `r` does
    /// not overlap the region at all.
    pub fn cells_overlapping(&self, r: &Rect) -> Option<(usize, usize, usize, usize)> {
        if !r.overlaps(&self.region) {
            return None;
        }
        let c = r.intersection(&self.region);
        let ix_lo =
            cast::trunc_idx(((c.xl - self.region.xl) / self.dx).floor().max(0.0)).min(self.nx - 1);
        let iy_lo =
            cast::trunc_idx(((c.yl - self.region.yl) / self.dy).floor().max(0.0)).min(self.ny - 1);
        // Subtract a hair so rects ending exactly on a boundary do not bleed
        // into the next cell.
        let eps = 1e-12 * (self.dx + self.dy);
        let ix_hi =
            cast::trunc_idx(((c.xh - self.region.xl) / self.dx - eps).floor().max(0.0)).min(self.nx - 1);
        let iy_hi =
            cast::trunc_idx(((c.yh - self.region.yl) / self.dy - eps).floor().max(0.0)).min(self.ny - 1);
        Some((ix_lo, ix_hi.max(ix_lo), iy_lo, iy_hi.max(iy_lo)))
    }

    /// Iterator over `((ix, iy), &T)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = ((usize, usize), &T)> {
        let nx = self.nx;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, v)| ((i % nx, i / nx), v))
    }

    /// Maps every value through `f`, producing a grid of the same shape.
    pub fn map<U>(&self, f: impl FnMut(&T) -> U) -> Grid<U> {
        Grid {
            region: self.region,
            nx: self.nx,
            ny: self.ny,
            dx: self.dx,
            dy: self.dy,
            data: self.data.iter().map(f).collect(),
        }
    }
}

impl Grid<f64> {
    /// Sum of all cell values.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Maximum cell value (or `0.0` for an all-empty grid).
    pub fn max_value(&self) -> f64 {
        self.data.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Splats `amount` uniformly over the part of `r` inside the region,
    /// area-weighted per overlapped cell. A rect with zero area deposits the
    /// whole `amount` into its containing cell.
    pub fn splat(&mut self, r: &Rect, amount: f64) {
        if amount == 0.0 {
            return;
        }
        if r.area() <= 0.0 {
            let (ix, iy) = self.cell_of(r.center());
            *self.at_mut(ix, iy) += amount;
            return;
        }
        let Some((ix_lo, ix_hi, iy_lo, iy_hi)) = self.cells_overlapping(r) else {
            return;
        };
        let clipped = r.intersection(&self.region);
        let total = clipped.area();
        if total <= 0.0 {
            return;
        }
        // Separable overlap: a cell's overlap area is (x-extent overlap) ×
        // (y-extent overlap), so compute the y part once per row and only
        // the x part per cell — the same min/max/multiply operand values
        // the old per-cell `Rect::intersection(..).area()` produced (the
        // result is bit-identical), at half the arithmetic and without
        // materializing a Rect per cell.
        for iy in iy_lo..=iy_hi {
            let cyl = self.region.yl + cast::idx_f64(iy) * self.dy;
            let oyl = clipped.yl.max(cyl);
            let oy = clipped.yh.min(cyl + self.dy).max(oyl) - oyl;
            let row = iy * self.nx;
            for ix in ix_lo..=ix_hi {
                let cxl = self.region.xl + cast::idx_f64(ix) * self.dx;
                let oxl = clipped.xl.max(cxl);
                let ox = clipped.xh.min(cxl + self.dx).max(oxl) - oxl;
                let ov = ox * oy;
                if ov > 0.0 {
                    self.data[row + ix] += amount * ov / total;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid<f64> {
        Grid::new(Rect::new(0.0, 0.0, 10.0, 10.0), 5, 5)
    }

    #[test]
    fn geometry_derivation() {
        let g = grid();
        assert_eq!(g.nx(), 5);
        assert_eq!(g.dx(), 2.0);
        assert_eq!(g.len(), 25);
        assert_eq!(g.cell_rect(0, 0), Rect::new(0.0, 0.0, 2.0, 2.0));
        assert_eq!(g.cell_rect(4, 4), Rect::new(8.0, 8.0, 10.0, 10.0));
    }

    #[test]
    fn cell_of_clamps() {
        let g = grid();
        assert_eq!(g.cell_of(Point::new(-5.0, -5.0)), (0, 0));
        assert_eq!(g.cell_of(Point::new(50.0, 50.0)), (4, 4));
        assert_eq!(g.cell_of(Point::new(9.999, 0.0)), (4, 0));
    }

    #[test]
    fn indexing_round_trips() {
        let mut g = grid();
        *g.at_mut(3, 2) = 7.5;
        assert_eq!(*g.at(3, 2), 7.5);
        assert_eq!(g.as_slice()[g.idx(3, 2)], 7.5);
    }

    #[test]
    fn cells_overlapping_clamps_and_rejects() {
        let g = grid();
        assert_eq!(
            g.cells_overlapping(&Rect::new(1.0, 1.0, 5.0, 3.0)),
            Some((0, 2, 0, 1))
        );
        // Rect ending exactly on a cell boundary stays in the lower cell.
        assert_eq!(
            g.cells_overlapping(&Rect::new(0.0, 0.0, 2.0, 2.0)),
            Some((0, 0, 0, 0))
        );
        assert_eq!(
            g.cells_overlapping(&Rect::new(100.0, 100.0, 101.0, 101.0)),
            None
        );
    }

    #[test]
    fn splat_conserves_mass_inside() {
        let mut g = grid();
        g.splat(&Rect::new(1.0, 1.0, 5.0, 5.0), 8.0);
        assert!((g.sum() - 8.0).abs() < 1e-9);
        // Cell (0,0) holds the 1x1 corner of the 4x4 rect: 8 * 1/16.
        assert!((*g.at(0, 0) - 0.5).abs() < 1e-9);
        // Cell (1,1) is fully covered: 8 * 4/16.
        assert!((*g.at(1, 1) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn splat_clips_to_region() {
        let mut g = grid();
        // Half the rect hangs outside; all mass lands in the clipped part.
        g.splat(&Rect::new(-2.0, 0.0, 2.0, 2.0), 4.0);
        assert!((g.sum() - 4.0).abs() < 1e-9);
        assert!((*g.at(0, 0) - 4.0).abs() < 1e-9);
    }

    /// Regression: the separable splat must reproduce the per-cell
    /// `intersection().area()` formulation bit-for-bit (density partials
    /// feed the bit-identity parallel gates).
    #[test]
    fn splat_matches_per_cell_intersection_bitwise() {
        let mut fast = grid();
        let r = Rect::new(0.7, 1.3, 6.9, 8.05);
        fast.splat(&r, 3.7);
        let mut slow = grid();
        let (ix_lo, ix_hi, iy_lo, iy_hi) = slow.cells_overlapping(&r).unwrap();
        let clipped = r.intersection(&Rect::new(0.0, 0.0, 10.0, 10.0));
        let total = clipped.area();
        for iy in iy_lo..=iy_hi {
            for ix in ix_lo..=ix_hi {
                let cell = slow.cell_rect(ix, iy);
                let ov = clipped.intersection(&cell).area();
                if ov > 0.0 {
                    *slow.at_mut(ix, iy) += 3.7 * ov / total;
                }
            }
        }
        for (a, b) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn splat_of_point_rect_hits_one_cell() {
        let mut g = grid();
        g.splat(&Rect::new(3.0, 3.0, 3.0, 3.0), 1.0);
        assert_eq!(*g.at(1, 1), 1.0);
    }

    #[test]
    fn map_preserves_shape() {
        let mut g = grid();
        *g.at_mut(2, 2) = -3.0;
        let m = g.map(|v| v.abs() as i64);
        assert_eq!(*m.at(2, 2), 3);
        assert_eq!(m.nx(), g.nx());
    }

    #[test]
    fn iter_yields_row_major_coords() {
        let g: Grid<i32> = Grid::new(Rect::new(0.0, 0.0, 4.0, 2.0), 2, 2);
        let coords: Vec<_> = g.iter().map(|(c, _)| c).collect();
        assert_eq!(coords, vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
    }

    #[test]
    #[should_panic(expected = "dimensions")]
    fn zero_dimension_panics() {
        let _: Grid<f64> = Grid::new(Rect::new(0.0, 0.0, 1.0, 1.0), 0, 3);
    }
}
