//! Technology data: placement sites and the metal-layer stack.
//!
//! The routing-capacity model of the paper (Eq. (8)) derives per-Gcell
//! capacity from the metal stack: for each layer whose preferred direction
//! matches, a Gcell offers `gcell_length / (metal_width + wire_spacing)`
//! tracks. [`Technology`] carries exactly that information plus the standard
//! placement-site geometry used by legalization.

use std::fmt;

/// Preferred routing direction of a metal layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PreferredDirection {
    /// Wires on this layer run horizontally.
    Horizontal,
    /// Wires on this layer run vertically.
    Vertical,
}

impl PreferredDirection {
    /// The perpendicular direction.
    pub fn perpendicular(self) -> Self {
        match self {
            PreferredDirection::Horizontal => PreferredDirection::Vertical,
            PreferredDirection::Vertical => PreferredDirection::Horizontal,
        }
    }
}

impl fmt::Display for PreferredDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PreferredDirection::Horizontal => write!(f, "H"),
            PreferredDirection::Vertical => write!(f, "V"),
        }
    }
}

/// A routing metal layer.
///
/// `metal_width` and `wire_spacing` are in database units; together they give
/// the track pitch used by the capacity model (paper Eq. (8)).
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    /// Layer name, e.g. `"M2"`.
    pub name: String,
    /// Preferred routing direction (`l.pd` in the paper).
    pub direction: PreferredDirection,
    /// Minimum wire width on this layer.
    pub metal_width: f64,
    /// Minimum spacing between wires on this layer.
    pub wire_spacing: f64,
}

impl Layer {
    /// Creates a layer.
    ///
    /// # Panics
    ///
    /// Panics if `metal_width` or `wire_spacing` is not strictly positive.
    pub fn new(
        name: impl Into<String>,
        direction: PreferredDirection,
        metal_width: f64,
        wire_spacing: f64,
    ) -> Self {
        assert!(metal_width > 0.0, "metal_width must be positive");
        assert!(wire_spacing > 0.0, "wire_spacing must be positive");
        Layer {
            name: name.into(),
            direction,
            metal_width,
            wire_spacing,
        }
    }

    /// Track pitch: `metal_width + wire_spacing`.
    pub fn pitch(&self) -> f64 {
        self.metal_width + self.wire_spacing
    }

    /// Number of routing tracks this layer offers across a span of `length`
    /// database units (the per-layer term of Eq. (8)).
    pub fn tracks_over(&self, length: f64) -> f64 {
        (length / self.pitch()).max(0.0)
    }
}

/// Technology information for a design.
///
/// The [`Default`] technology is a generic 8-metal-layer stack with
/// unit-height rows and half-unit sites, adequate for synthetic benchmarks.
///
/// ```
/// use puffer_db::tech::Technology;
/// let tech = Technology::default();
/// assert!(tech.horizontal_layers().count() >= 2);
/// assert!(tech.row_height > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    /// Standard-cell row height; every movable standard cell is this tall.
    pub row_height: f64,
    /// Placement-site width; legal cell x-coordinates are multiples of this.
    pub site_width: f64,
    /// Metal stack, bottom-up. The first layer (M1) is conventionally used
    /// for intra-cell routing and excluded from global-routing capacity.
    pub layers: Vec<Layer>,
}

impl Technology {
    /// Creates a technology from explicit values.
    ///
    /// # Panics
    ///
    /// Panics if `row_height` or `site_width` is not strictly positive, or if
    /// `layers` is empty.
    pub fn new(row_height: f64, site_width: f64, layers: Vec<Layer>) -> Self {
        assert!(row_height > 0.0, "row_height must be positive");
        assert!(site_width > 0.0, "site_width must be positive");
        assert!(!layers.is_empty(), "technology needs at least one layer");
        Technology {
            row_height,
            site_width,
            layers,
        }
    }

    /// Routing layers (everything above M1) in the given direction.
    pub fn routing_layers(&self, direction: PreferredDirection) -> impl Iterator<Item = &Layer> {
        self.layers
            .iter()
            .skip(1)
            .filter(move |l| l.direction == direction)
    }

    /// Horizontal routing layers above M1.
    pub fn horizontal_layers(&self) -> impl Iterator<Item = &Layer> {
        self.routing_layers(PreferredDirection::Horizontal)
    }

    /// Vertical routing layers above M1.
    pub fn vertical_layers(&self) -> impl Iterator<Item = &Layer> {
        self.routing_layers(PreferredDirection::Vertical)
    }

    /// Total routing tracks available in `direction` across a Gcell of the
    /// given perpendicular extent — the basic-capacity sum of Eq. (8).
    pub fn basic_capacity(&self, direction: PreferredDirection, gcell_extent: f64) -> f64 {
        self.routing_layers(direction)
            .map(|l| l.tracks_over(gcell_extent))
            .sum()
    }
}

impl Default for Technology {
    /// A generic 8-layer stack: M1 horizontal (excluded from routing), then
    /// alternating V/H layers whose pitch grows with height.
    fn default() -> Self {
        let layers = vec![
            Layer::new("M1", PreferredDirection::Horizontal, 0.04, 0.04),
            Layer::new("M2", PreferredDirection::Vertical, 0.04, 0.04),
            Layer::new("M3", PreferredDirection::Horizontal, 0.04, 0.04),
            Layer::new("M4", PreferredDirection::Vertical, 0.05, 0.05),
            Layer::new("M5", PreferredDirection::Horizontal, 0.05, 0.05),
            Layer::new("M6", PreferredDirection::Vertical, 0.07, 0.07),
            Layer::new("M7", PreferredDirection::Horizontal, 0.07, 0.07),
            Layer::new("M8", PreferredDirection::Vertical, 0.10, 0.10),
        ];
        Technology {
            row_height: 1.0,
            site_width: 0.2,
            layers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perpendicular_flips() {
        assert_eq!(
            PreferredDirection::Horizontal.perpendicular(),
            PreferredDirection::Vertical
        );
        assert_eq!(
            PreferredDirection::Vertical.perpendicular(),
            PreferredDirection::Horizontal
        );
    }

    #[test]
    fn layer_pitch_and_tracks() {
        let l = Layer::new("M2", PreferredDirection::Vertical, 0.05, 0.05);
        assert!((l.pitch() - 0.1).abs() < 1e-12);
        assert!((l.tracks_over(2.0) - 20.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "metal_width")]
    fn layer_rejects_zero_width() {
        let _ = Layer::new("bad", PreferredDirection::Horizontal, 0.0, 0.1);
    }

    #[test]
    fn default_tech_has_balanced_stack() {
        let t = Technology::default();
        let h: Vec<_> = t.horizontal_layers().collect();
        let v: Vec<_> = t.vertical_layers().collect();
        // M1 is excluded, so H layers are M3/M5/M7, V layers M2/M4/M6/M8.
        assert_eq!(h.len(), 3);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn basic_capacity_sums_layers() {
        let t = Technology::default();
        let span = 4.0;
        let expect: f64 = t.horizontal_layers().map(|l| span / l.pitch()).sum();
        assert!((t.basic_capacity(PreferredDirection::Horizontal, span) - expect).abs() < 1e-9);
        assert!(t.basic_capacity(PreferredDirection::Vertical, span) > 0.0);
    }

    #[test]
    fn direction_display() {
        assert_eq!(PreferredDirection::Horizontal.to_string(), "H");
        assert_eq!(PreferredDirection::Vertical.to_string(), "V");
    }
}
