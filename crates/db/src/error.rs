//! Error types for the circuit database.

use std::error::Error;
use std::fmt;

/// Errors produced while building or loading a design.
///
/// ```
/// use puffer_db::DbError;
/// let err = DbError::Validate("net n0 has no pins".into());
/// assert!(err.to_string().contains("n0"));
/// ```
#[derive(Debug)]
pub enum DbError {
    /// A structural invariant of the netlist or design was violated.
    Validate(String),
    /// An identifier referenced an entity that does not exist.
    BadId(String),
    /// The textual design format could not be parsed.
    Parse { line: usize, message: String },
    /// A streaming read failed part-way through a parse; `line` is the
    /// last line successfully consumed from `file` before the failure.
    Read {
        file: String,
        line: usize,
        source: std::io::Error,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Validate(msg) => write!(f, "invalid design: {msg}"),
            DbError::BadId(msg) => write!(f, "unknown identifier: {msg}"),
            DbError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            DbError::Read { file, line, source } => {
                write!(f, "read error in {file} after line {line}: {source}")
            }
            DbError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl Error for DbError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DbError::Io(e) => Some(e),
            DbError::Read { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DbError {
    fn from(e: std::io::Error) -> Self {
        DbError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(DbError::Validate("x".into())
            .to_string()
            .contains("invalid design"));
        assert!(DbError::BadId("cell 7".into())
            .to_string()
            .contains("cell 7"));
        let p = DbError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(p.to_string().contains("line 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DbError>();
    }

    #[test]
    fn io_error_source_is_preserved() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let err: DbError = io.into();
        assert!(std::error::Error::source(&err).is_some());
    }
}
