//! SVG rendering of placements.
//!
//! Produces self-contained SVG images of a design — macros, rows, and
//! movable cells — optionally colouring cells by a per-cell scalar (cell
//! padding, congestion contribution, displacement…). This is the plotting
//! path used for placement figures in reports and the CLI `draw` command.

use crate::cast;
use crate::design::{Design, Placement};
use std::fmt::Write as _;

/// Options for [`render_svg`].
#[derive(Debug, Clone, PartialEq)]
pub struct SvgOptions {
    /// Output width in pixels (height follows the region's aspect ratio).
    pub width_px: f64,
    /// Optional per-cell scalar (indexed by `CellId::index`); cells are
    /// coloured on a blue→red ramp over the value range. `None` draws all
    /// movable cells in a uniform colour.
    pub cell_values: Option<Vec<f64>>,
    /// Draw row boundaries.
    pub draw_rows: bool,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions { width_px: 800.0, cell_values: None, draw_rows: false }
    }
}

/// Renders the placement as an SVG document string.
///
/// The y-axis is flipped so the origin is bottom-left, matching placement
/// coordinates.
pub fn render_svg(design: &Design, placement: &Placement, options: &SvgOptions) -> String {
    let region = design.region();
    let scale = options.width_px / region.width();
    let height_px = region.height() * scale;
    let px = |x: f64| (x - region.xl) * scale;
    let py = |y: f64| height_px - (y - region.yl) * scale;

    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{:.0}" height="{:.0}" viewBox="0 0 {:.0} {:.0}">"#,
        options.width_px, height_px, options.width_px, height_px
    );
    let _ = writeln!(
        out,
        r##"<rect x="0" y="0" width="{:.0}" height="{:.0}" fill="#ffffff" stroke="#333333"/>"##,
        options.width_px, height_px
    );

    if options.draw_rows {
        for row in design.rows() {
            let _ = writeln!(
                out,
                r##"<line x1="0" y1="{:.1}" x2="{:.0}" y2="{:.1}" stroke="#eeeeee" stroke-width="0.5"/>"##,
                py(row.y),
                options.width_px,
                py(row.y)
            );
        }
    }

    // Macros first (background blockages).
    for (_, shape) in design.macro_shapes() {
        let _ = writeln!(
            out,
            r##"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="#b0b0b0" stroke="#606060"/>"##,
            px(shape.xl),
            py(shape.yh),
            shape.width() * scale,
            shape.height() * scale
        );
    }

    // Value range for the colour ramp.
    let (lo, hi) = options
        .cell_values
        .as_ref()
        .map(|v| {
            let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            (lo, hi.max(lo + 1e-12))
        })
        .unwrap_or((0.0, 1.0));

    for id in design.netlist().movable_cells() {
        let cell = design.netlist().cell(id);
        let r = placement.cell_rect(design.netlist(), id);
        let fill = match &options.cell_values {
            None => "#4477cc".to_string(),
            Some(v) => {
                let t = ((v[id.index()] - lo) / (hi - lo)).clamp(0.0, 1.0);
                // Blue (cold) to red (hot).
                let red = cast::trunc_u8(60.0 + 195.0 * t);
                let blue = cast::trunc_u8(204.0 - 170.0 * t);
                format!("#{red:02x}50{blue:02x}")
            }
        };
        let _ = writeln!(
            out,
            r#"<rect x="{:.2}" y="{:.2}" width="{:.2}" height="{:.2}" fill="{fill}" fill-opacity="0.85"/>"#,
            px(r.xl),
            py(r.yh),
            (cell.width * scale).max(0.4),
            (cell.height * scale).max(0.4)
        );
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::{Point, Rect};
    use crate::netlist::{CellKind, NetlistBuilder};
    use crate::tech::Technology;

    fn design() -> Design {
        let mut nb = NetlistBuilder::new();
        nb.add_cell("a", 2.0, 1.0, CellKind::Movable);
        nb.add_cell("b", 2.0, 1.0, CellKind::Movable);
        let m = nb.add_cell("ram", 6.0, 6.0, CellKind::FixedMacro);
        let mut d = Design::new(
            "t",
            nb.build().unwrap(),
            Technology::default(),
            Rect::new(0.0, 0.0, 20.0, 10.0),
        )
        .unwrap();
        d.place_macro(m, Point::new(10.0, 5.0)).unwrap();
        d
    }

    #[test]
    fn svg_has_expected_structure() {
        let d = design();
        let svg = render_svg(&d, &d.initial_placement(), &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // Background + macro + two cells.
        assert_eq!(svg.matches("<rect").count(), 4);
        // Aspect ratio preserved: 20x10 region at 800px → 400px tall.
        assert!(svg.contains(r#"height="400""#));
    }

    #[test]
    fn value_colouring_spans_the_ramp() {
        let d = design();
        let svg = render_svg(
            &d,
            &d.initial_placement(),
            &SvgOptions {
                cell_values: Some(vec![0.0, 10.0, 0.0]),
                ..SvgOptions::default()
            },
        );
        // Cold cell is mostly blue, hot cell mostly red.
        assert!(svg.contains("#3c50cc"), "cold colour missing: {svg}");
        assert!(svg.contains("#ff5022"), "hot colour missing");
    }

    #[test]
    fn rows_toggle() {
        let d = design();
        let with = render_svg(
            &d,
            &d.initial_placement(),
            &SvgOptions { draw_rows: true, ..SvgOptions::default() },
        );
        let without = render_svg(&d, &d.initial_placement(), &SvgOptions::default());
        assert!(with.matches("<line").count() >= d.rows().len());
        assert_eq!(without.matches("<line").count(), 0);
    }

    #[test]
    fn y_axis_is_flipped() {
        let d = design();
        let mut p = d.initial_placement();
        // Put cell a at the bottom of the region; its rect's top edge (yh)
        // should map near the bottom of the image (large y in SVG space).
        let a = d.netlist().movable_cells().next().unwrap();
        p.set(a, Point::new(2.0, 0.5));
        let svg = render_svg(&d, &p, &SvgOptions::default());
        // Cell at y-center 0.5, height 1 → top at y=1 → svg y = 400 - 40 = 360.
        assert!(svg.contains(r#"y="360.00""#), "{svg}");
    }
}
