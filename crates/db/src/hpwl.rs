//! Half-perimeter wirelength (HPWL) evaluation.
//!
//! HPWL is the standard placement wirelength metric: for each net, the half
//! perimeter of the bounding box of its pins, weighted by the net weight.

use crate::design::Placement;
use crate::netlist::{NetId, Netlist};

/// HPWL of a single net (unweighted). Nets with fewer than two pins have
/// zero wirelength.
pub fn net_hpwl(netlist: &Netlist, placement: &Placement, net: NetId) -> f64 {
    let pins = netlist.net_pins(net);
    if pins.len() < 2 {
        return 0.0;
    }
    let mut xl = f64::INFINITY;
    let mut xh = f64::NEG_INFINITY;
    let mut yl = f64::INFINITY;
    let mut yh = f64::NEG_INFINITY;
    for &pid in pins {
        let p = placement.pin_pos(netlist, pid);
        xl = xl.min(p.x);
        xh = xh.max(p.x);
        yl = yl.min(p.y);
        yh = yh.max(p.y);
    }
    (xh - xl) + (yh - yl)
}

/// Total weighted HPWL over all nets.
///
/// ```
/// use puffer_db::geom::Point;
/// use puffer_db::netlist::{CellKind, NetlistBuilder};
/// use puffer_db::design::Placement;
/// use puffer_db::hpwl::total_hpwl;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut nb = NetlistBuilder::new();
/// let a = nb.add_cell("a", 1.0, 1.0, CellKind::Movable);
/// let b = nb.add_cell("b", 1.0, 1.0, CellKind::Movable);
/// let n = nb.add_net("n");
/// nb.connect(n, a, Point::ORIGIN)?;
/// nb.connect(n, b, Point::ORIGIN)?;
/// let nl = nb.build()?;
/// let mut p = Placement::zeroed(2);
/// p.set(b, Point::new(3.0, 4.0));
/// assert_eq!(total_hpwl(&nl, &p), 7.0);
/// # Ok(())
/// # }
/// ```
pub fn total_hpwl(netlist: &Netlist, placement: &Placement) -> f64 {
    netlist
        .iter_nets()
        .map(|(id, net)| net.weight * net_hpwl(netlist, placement, id))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Point;
    use crate::netlist::{CellKind, NetlistBuilder};

    fn netlist_three() -> (Netlist, Placement) {
        let mut nb = NetlistBuilder::new();
        let a = nb.add_cell("a", 1.0, 1.0, CellKind::Movable);
        let b = nb.add_cell("b", 1.0, 1.0, CellKind::Movable);
        let c = nb.add_cell("c", 1.0, 1.0, CellKind::Movable);
        let n0 = nb.add_net("n0");
        nb.connect(n0, a, Point::ORIGIN).unwrap();
        nb.connect(n0, b, Point::ORIGIN).unwrap();
        nb.connect(n0, c, Point::ORIGIN).unwrap();
        let n1 = nb.add_weighted_net("n1", 2.0);
        nb.connect(n1, a, Point::new(0.25, 0.0)).unwrap();
        nb.connect(n1, b, Point::new(-0.25, 0.0)).unwrap();
        let nl = nb.build().unwrap();
        let mut p = Placement::zeroed(3);
        p.set(a, Point::new(0.0, 0.0));
        p.set(b, Point::new(10.0, 0.0));
        p.set(c, Point::new(5.0, 5.0));
        (nl, p)
    }

    #[test]
    fn net_hpwl_bounding_box() {
        let (nl, p) = netlist_three();
        assert_eq!(net_hpwl(&nl, &p, NetId(0)), 15.0); // bbox 10 x 5
    }

    #[test]
    fn pin_offsets_count() {
        let (nl, p) = netlist_three();
        // n1: pins at 0.25 and 9.75 => width 9.5.
        assert!((net_hpwl(&nl, &p, NetId(1)) - 9.5).abs() < 1e-12);
    }

    #[test]
    fn total_is_weighted_sum() {
        let (nl, p) = netlist_three();
        assert!((total_hpwl(&nl, &p) - (15.0 + 2.0 * 9.5)).abs() < 1e-12);
    }

    #[test]
    fn degenerate_nets_are_zero() {
        let mut nb = NetlistBuilder::new();
        let a = nb.add_cell("a", 1.0, 1.0, CellKind::Movable);
        let n = nb.add_net("n");
        nb.connect(n, a, Point::ORIGIN).unwrap();
        nb.add_net("empty");
        let nl = nb.build().unwrap();
        let p = Placement::zeroed(1);
        assert_eq!(total_hpwl(&nl, &p), 0.0);
    }

    #[test]
    fn hpwl_is_translation_invariant() {
        let (nl, p) = netlist_three();
        let base = total_hpwl(&nl, &p);
        let mut q = p.clone();
        {
            let (xs, ys) = q.coords_mut();
            for v in xs.iter_mut() {
                *v += 123.0;
            }
            for v in ys.iter_mut() {
                *v -= 45.0;
            }
        }
        assert!((total_hpwl(&nl, &q) - base).abs() < 1e-9);
    }
}
