//! A placeable design and placement solutions.
//!
//! [`Design`] bundles a validated [`Netlist`] with [`Technology`] data, the
//! core placement region, standard-cell rows, and fixed-macro locations.
//! [`Placement`] is a positional solution: one center coordinate per cell.

use crate::cast;
use crate::error::DbError;
use crate::geom::{Point, Rect};
use crate::netlist::{CellId, CellKind, Netlist};
use crate::stats::DesignStats;
use crate::tech::Technology;

/// A standard-cell row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Row {
    /// Bottom y coordinate of the row.
    pub y: f64,
    /// Left x coordinate.
    pub x_min: f64,
    /// Right x coordinate.
    pub x_max: f64,
}

impl Row {
    /// Row width.
    pub fn width(&self) -> f64 {
        self.x_max - self.x_min
    }
}

/// A complete placeable design.
///
/// Fixed macros are part of the netlist ([`CellKind::FixedMacro`]); their
/// locations are stored here because they are design data, not a solution.
/// See the [crate-level example](crate) for construction.
#[derive(Debug, Clone)]
pub struct Design {
    name: String,
    netlist: Netlist,
    tech: Technology,
    region: Rect,
    rows: Vec<Row>,
    /// Center location of each cell that is fixed; `None` for movable cells.
    fixed_pos: Vec<Option<Point>>,
}

impl Design {
    /// Creates a design with auto-generated rows filling the region.
    ///
    /// Fixed macros initially have no location; call
    /// [`place_macro`](Design::place_macro) for each of them before running
    /// a placer.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Validate`] when the region is degenerate or not
    /// tall enough for a single row.
    pub fn new(
        name: impl Into<String>,
        netlist: Netlist,
        tech: Technology,
        region: Rect,
    ) -> Result<Self, DbError> {
        if region.width() <= 0.0 || region.height() <= 0.0 {
            return Err(DbError::Validate("placement region is degenerate".into()));
        }
        let n_rows = cast::floor_idx(region.height() / tech.row_height);
        if n_rows == 0 {
            return Err(DbError::Validate(
                "placement region shorter than one row".into(),
            ));
        }
        let rows = (0..n_rows)
            .map(|i| Row {
                y: region.yl + cast::idx_f64(i) * tech.row_height,
                x_min: region.xl,
                x_max: region.xh,
            })
            .collect();
        let fixed_pos = vec![None; netlist.num_cells()];
        Ok(Design {
            name: name.into(),
            netlist,
            tech,
            region,
            rows,
            fixed_pos,
        })
    }

    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The technology.
    pub fn tech(&self) -> &Technology {
        &self.tech
    }

    /// The core placement region.
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Standard-cell rows, bottom-up.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Fixes the center location of a macro.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::BadId`] for an unknown or movable cell and
    /// [`DbError::Validate`] when the macro would leave the region.
    pub fn place_macro(&mut self, cell: CellId, center: Point) -> Result<(), DbError> {
        if cell.index() >= self.netlist.num_cells() {
            return Err(DbError::BadId(format!("{cell}")));
        }
        let c = self.netlist.cell(cell);
        if c.kind != CellKind::FixedMacro {
            return Err(DbError::BadId(format!("{cell} is movable, not a macro")));
        }
        let shape = Rect::from_center(center, c.width, c.height);
        let within = shape.xl >= self.region.xl - 1e-9
            && shape.yl >= self.region.yl - 1e-9
            && shape.xh <= self.region.xh + 1e-9
            && shape.yh <= self.region.yh + 1e-9;
        if !within {
            return Err(DbError::Validate(format!(
                "macro '{}' at {center} leaves the region {}",
                c.name, self.region
            )));
        }
        self.fixed_pos[cell.index()] = Some(center);
        Ok(())
    }

    /// Fixed center of `cell`, if it is a placed macro.
    pub fn fixed_position(&self, cell: CellId) -> Option<Point> {
        self.fixed_pos[cell.index()]
    }

    /// Bounding rectangles of all placed macros (routing/placement blockages).
    pub fn macro_shapes(&self) -> Vec<(CellId, Rect)> {
        self.netlist
            .fixed_macros()
            .filter_map(|id| {
                self.fixed_pos[id.index()].map(|p| {
                    let c = self.netlist.cell(id);
                    (id, Rect::from_center(p, c.width, c.height))
                })
            })
            .collect()
    }

    /// Checks that every fixed macro has a location.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Validate`] naming the first unplaced macro.
    pub fn check_macros_placed(&self) -> Result<(), DbError> {
        for id in self.netlist.fixed_macros() {
            if self.fixed_pos[id.index()].is_none() {
                return Err(DbError::Validate(format!(
                    "macro '{}' has no location",
                    self.netlist.cell(id).name
                )));
            }
        }
        Ok(())
    }

    /// Table-I style statistics.
    pub fn stats(&self) -> DesignStats {
        DesignStats::of(self)
    }

    /// Free area: region area minus placed-macro area (clipped to region).
    pub fn free_area(&self) -> f64 {
        let blocked: f64 = self
            .macro_shapes()
            .iter()
            .map(|(_, r)| r.intersection(&self.region).area())
            .sum();
        (self.region.area() - blocked).max(0.0)
    }

    /// Placement utilization: movable cell area / free area.
    pub fn utilization(&self) -> f64 {
        let free = self.free_area();
        if free <= 0.0 {
            f64::INFINITY
        } else {
            self.netlist.movable_area() / free
        }
    }

    /// An initial placement: movable cells at the region center, macros at
    /// their fixed locations.
    pub fn initial_placement(&self) -> Placement {
        let mut p = Placement::zeroed(self.netlist.num_cells());
        let c = self.region.center();
        for (id, _) in self.netlist.iter_cells() {
            p.set(id, self.fixed_pos[id.index()].unwrap_or(c));
        }
        p
    }
}

/// A placement solution: the center coordinate of every cell.
///
/// Coordinates are **cell centers** throughout this workspace; convert to
/// lower-left corners only at the I/O boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    x: Vec<f64>,
    y: Vec<f64>,
}

impl Placement {
    /// A placement with all cells at the origin.
    pub fn zeroed(num_cells: usize) -> Self {
        Placement {
            x: vec![0.0; num_cells],
            y: vec![0.0; num_cells],
        }
    }

    /// Builds a placement from separate coordinate vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn from_coords(x: Vec<f64>, y: Vec<f64>) -> Self {
        assert_eq!(
            x.len(),
            y.len(),
            "coordinate vectors must have equal length"
        );
        Placement { x, y }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the placement holds zero cells.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Center of `cell`.
    #[inline]
    pub fn pos(&self, cell: CellId) -> Point {
        Point::new(self.x[cell.index()], self.y[cell.index()])
    }

    /// Sets the center of `cell`.
    #[inline]
    pub fn set(&mut self, cell: CellId, p: Point) {
        self.x[cell.index()] = p.x;
        self.y[cell.index()] = p.y;
    }

    /// The x-coordinate slice.
    pub fn xs(&self) -> &[f64] {
        &self.x
    }

    /// The y-coordinate slice.
    pub fn ys(&self) -> &[f64] {
        &self.y
    }

    /// Mutable coordinate slices `(xs, ys)`.
    pub fn coords_mut(&mut self) -> (&mut [f64], &mut [f64]) {
        (&mut self.x, &mut self.y)
    }

    /// Absolute location of a pin under this placement.
    pub fn pin_pos(&self, netlist: &Netlist, pin: crate::netlist::PinId) -> Point {
        let p = netlist.pin(pin);
        let c = self.pos(p.cell);
        Point::new(c.x + p.offset.x, c.y + p.offset.y)
    }

    /// Bounding rectangle of `cell` given its size in `netlist`.
    pub fn cell_rect(&self, netlist: &Netlist, cell: CellId) -> Rect {
        let c = netlist.cell(cell);
        Rect::from_center(self.pos(cell), c.width, c.height)
    }

    /// Maximum displacement (L1) between two placements over movable cells.
    pub fn max_displacement(&self, other: &Placement, netlist: &Netlist) -> f64 {
        netlist
            .movable_cells()
            .map(|id| self.pos(id).l1_distance(other.pos(id)))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistBuilder;

    fn design_with_macro() -> Design {
        let mut nb = NetlistBuilder::new();
        nb.add_cell("a", 1.0, 1.0, CellKind::Movable);
        let m = nb.add_cell("ram", 10.0, 10.0, CellKind::FixedMacro);
        let mut d = Design::new(
            "t",
            nb.build().unwrap(),
            Technology::default(),
            Rect::new(0.0, 0.0, 100.0, 50.0),
        )
        .unwrap();
        d.place_macro(m, Point::new(20.0, 20.0)).unwrap();
        d
    }

    #[test]
    fn rows_fill_region() {
        let d = design_with_macro();
        assert_eq!(d.rows().len(), 50);
        assert_eq!(d.rows()[0].y, 0.0);
        assert_eq!(d.rows()[49].y, 49.0);
        assert_eq!(d.rows()[0].width(), 100.0);
    }

    #[test]
    fn macro_bookkeeping() {
        let d = design_with_macro();
        let shapes = d.macro_shapes();
        assert_eq!(shapes.len(), 1);
        assert_eq!(shapes[0].1, Rect::new(15.0, 15.0, 25.0, 25.0));
        assert!(d.check_macros_placed().is_ok());
        assert_eq!(d.fixed_position(CellId(1)), Some(Point::new(20.0, 20.0)));
        assert_eq!(d.fixed_position(CellId(0)), None);
    }

    #[test]
    fn place_macro_rejects_movable_and_oob() {
        let mut d = design_with_macro();
        assert!(d.place_macro(CellId(0), Point::new(1.0, 1.0)).is_err());
        assert!(d.place_macro(CellId(1), Point::new(2.0, 2.0)).is_err()); // leaves region
    }

    #[test]
    fn unplaced_macro_fails_check() {
        let mut nb = NetlistBuilder::new();
        nb.add_cell("ram", 5.0, 5.0, CellKind::FixedMacro);
        let d = Design::new(
            "t",
            nb.build().unwrap(),
            Technology::default(),
            Rect::new(0.0, 0.0, 10.0, 10.0),
        )
        .unwrap();
        assert!(d.check_macros_placed().is_err());
    }

    #[test]
    fn free_area_and_utilization() {
        let d = design_with_macro();
        assert!((d.free_area() - (5000.0 - 100.0)).abs() < 1e-9);
        assert!((d.utilization() - 1.0 / 4900.0).abs() < 1e-12);
    }

    #[test]
    fn initial_placement_centers_movables() {
        let d = design_with_macro();
        let p = d.initial_placement();
        assert_eq!(p.pos(CellId(0)), Point::new(50.0, 25.0));
        assert_eq!(p.pos(CellId(1)), Point::new(20.0, 20.0));
    }

    #[test]
    fn placement_accessors() {
        let mut p = Placement::zeroed(2);
        p.set(CellId(1), Point::new(3.0, 4.0));
        assert_eq!(p.pos(CellId(1)), Point::new(3.0, 4.0));
        assert_eq!(p.xs(), &[0.0, 3.0]);
        assert_eq!(p.len(), 2);
        let (xs, _) = p.coords_mut();
        xs[0] = 9.0;
        assert_eq!(p.pos(CellId(0)).x, 9.0);
    }

    #[test]
    fn max_displacement_over_movables_only() {
        let d = design_with_macro();
        let a = d.initial_placement();
        let mut b = a.clone();
        b.set(CellId(0), Point::new(0.0, 0.0));
        // CellId(1) is a fixed macro: moving it in the comparison placement
        // must not affect the movable-only displacement metric.
        b.set(CellId(1), Point::new(0.0, 0.0));
        assert_eq!(a.max_displacement(&b, d.netlist()), 75.0);
    }

    #[test]
    fn degenerate_region_rejected() {
        let nl = NetlistBuilder::new().build().unwrap();
        assert!(Design::new(
            "x",
            nl,
            Technology::default(),
            Rect::new(0.0, 0.0, 0.0, 5.0)
        )
        .is_err());
        let nl2 = NetlistBuilder::new().build().unwrap();
        assert!(Design::new(
            "x",
            nl2,
            Technology::default(),
            Rect::new(0.0, 0.0, 5.0, 0.5)
        )
        .is_err());
    }
}
