//! Netlist model: cells, nets, pins, and a validating builder.
//!
//! A netlist is a hypergraph `H = (V, E)` (paper §II-A): vertices are cell
//! instances, hyperedges are nets, and the incidence structure is carried by
//! pins. A [`Pin`] belongs to exactly one cell and one net and has a fixed
//! geometric offset from its cell's center.
//!
//! Construction goes through [`NetlistBuilder`], which validates the
//! structure once at [`NetlistBuilder::build`]; the resulting [`Netlist`] is
//! immutable, so every index stored inside it is guaranteed in-bounds for the
//! lifetime of the value.

use crate::error::DbError;
use crate::geom::Point;
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// The id as a `usize` index into the owning collection.
            #[inline]
            pub fn index(self) -> usize {
                crate::cast::u32_idx(self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type!(
    /// Identifier of a cell within a [`Netlist`].
    CellId
);
id_type!(
    /// Identifier of a net within a [`Netlist`].
    NetId
);
id_type!(
    /// Identifier of a pin within a [`Netlist`].
    PinId
);

/// Whether a cell can be moved by the placer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// A standard cell the placer may move.
    Movable,
    /// A fixed macro; also acts as a placement and routing blockage.
    FixedMacro,
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellKind::Movable => write!(f, "movable"),
            CellKind::FixedMacro => write!(f, "fixed_macro"),
        }
    }
}

/// A cell instance.
///
/// Pin membership is not stored here: the owning [`Netlist`] keeps one flat
/// compressed array for all cells (see [`Netlist::cell_pins`]), so a cell
/// record stays a fixed-size struct even on million-cell designs.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Instance name.
    pub name: String,
    /// Width in database units. This is the *physical* width; padding used
    /// by the routability optimizer is tracked separately by the placer.
    pub width: f64,
    /// Height in database units.
    pub height: f64,
    /// Movability.
    pub kind: CellKind,
}

impl Cell {
    /// Cell area.
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// Whether the placer may move this cell.
    pub fn is_movable(&self) -> bool {
        self.kind == CellKind::Movable
    }
}

/// A net (hyperedge) connecting two or more pins.
///
/// Pin membership lives in the owning [`Netlist`]'s compressed array (see
/// [`Netlist::net_pins`] and [`Netlist::net_degree`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Net {
    /// Net name.
    pub name: String,
    /// Net weight for wirelength objectives (default 1.0).
    pub weight: f64,
}

/// A pin: the connection point between one cell and one net.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pin {
    /// Owning cell.
    pub cell: CellId,
    /// Connected net.
    pub net: NetId,
    /// Offset of the pin from the owning cell's **center**.
    pub offset: Point,
}

/// An immutable, validated netlist.
///
/// Use [`NetlistBuilder`] to construct one; see the [crate-level
/// example](crate) for the full flow.
///
/// # Storage layout
///
/// Pin membership is stored struct-of-arrays style: one flat [`PinId`]
/// array per side (cell side and net side) plus `u32` start offsets, CSR
/// fashion. Compared to a `Vec<PinId>` inside every [`Cell`] and [`Net`],
/// this removes two heap allocations and two 24-byte `Vec` headers per
/// entity — on a 1.5M-cell design that is hundreds of megabytes of peak
/// memory and allocator churn. The membership slices are reachable only
/// through [`Netlist::cell_pins`] / [`Netlist::net_pins`], so the compact
/// layout is invisible to downstream crates.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Netlist {
    cells: Vec<Cell>,
    nets: Vec<Net>,
    pins: Vec<Pin>,
    /// Start offset of each cell's pin-id run in `cell_pin_ids`
    /// (`len == cells.len() + 1`; cell `i` owns `[starts[i], starts[i+1])`).
    cell_pin_starts: Vec<u32>,
    /// Pin ids grouped by owning cell, in connect order within each cell.
    cell_pin_ids: Vec<PinId>,
    /// Start offset of each net's pin-id run in `net_pin_ids`.
    net_pin_starts: Vec<u32>,
    /// Pin ids grouped by net, in connect order within each net.
    net_pin_ids: Vec<PinId>,
}

/// Groups the pin table by `key` (owning cell or net index) into a CSR
/// (starts, ids) pair via a counting sort; every key must be `< buckets`.
fn csr_by(pins: &[Pin], buckets: usize, key: impl Fn(&Pin) -> usize) -> (Vec<u32>, Vec<PinId>) {
    let mut starts = vec![0u32; buckets + 1];
    for pin in pins {
        starts[key(pin) + 1] += 1;
    }
    for i in 1..starts.len() {
        starts[i] += starts[i - 1];
    }
    let mut cursor = starts.clone();
    let mut ids = vec![PinId(0); pins.len()];
    for (i, pin) in pins.iter().enumerate() {
        let slot = &mut cursor[key(pin)];
        ids[crate::cast::u32_idx(*slot)] = PinId(crate::cast::idx_u32(i));
        *slot += 1;
    }
    (starts, ids)
}

/// Flattens per-entity pin-id lists into a CSR (starts, ids) pair.
fn flatten_membership(lists: Vec<Vec<PinId>>) -> (Vec<u32>, Vec<PinId>) {
    let total = lists.iter().map(Vec::len).sum();
    let mut starts = Vec::with_capacity(lists.len() + 1);
    let mut ids = Vec::with_capacity(total);
    starts.push(0u32);
    for list in lists {
        ids.extend_from_slice(&list);
        starts.push(crate::cast::idx_u32(ids.len()));
    }
    (starts, ids)
}

impl Netlist {
    /// Assembles a netlist directly from its parts, **bypassing all
    /// builder validation**. This exists so the invariant checkers in
    /// `puffer-audit` can be exercised against deliberately corrupted
    /// netlists; real construction must go through [`NetlistBuilder`].
    ///
    /// `cell_pins` and `net_pins` carry the per-entity membership lists
    /// (one per cell / net, in id order); they are flattened verbatim, so
    /// a deliberately inconsistent membership survives into the netlist.
    #[doc(hidden)]
    pub fn from_raw_parts(
        cells: Vec<Cell>,
        nets: Vec<Net>,
        pins: Vec<Pin>,
        cell_pins: Vec<Vec<PinId>>,
        net_pins: Vec<Vec<PinId>>,
    ) -> Netlist {
        let (cell_pin_starts, cell_pin_ids) = flatten_membership(cell_pins);
        let (net_pin_starts, net_pin_ids) = flatten_membership(net_pins);
        Netlist {
            cells,
            nets,
            pins,
            cell_pin_starts,
            cell_pin_ids,
            net_pin_starts,
            net_pin_ids,
        }
    }

    /// Pin ids attached to `cell`, in connect order.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of bounds (ids from this netlist never are).
    #[inline]
    pub fn cell_pins(&self, cell: CellId) -> &[PinId] {
        let i = cell.index();
        let lo = crate::cast::u32_idx(self.cell_pin_starts[i]);
        let hi = crate::cast::u32_idx(self.cell_pin_starts[i + 1]);
        &self.cell_pin_ids[lo..hi]
    }

    /// Pin ids on `net`, in connect order.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of bounds.
    #[inline]
    pub fn net_pins(&self, net: NetId) -> &[PinId] {
        let i = net.index();
        let lo = crate::cast::u32_idx(self.net_pin_starts[i]);
        let hi = crate::cast::u32_idx(self.net_pin_starts[i + 1]);
        &self.net_pin_ids[lo..hi]
    }

    /// Number of pins on `net` (its degree).
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of bounds.
    #[inline]
    pub fn net_degree(&self, net: NetId) -> usize {
        self.net_pins(net).len()
    }

    /// All cells, indexable by [`CellId::index`].
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// All nets, indexable by [`NetId::index`].
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// All pins, indexable by [`PinId::index`].
    pub fn pins(&self) -> &[Pin] {
        &self.pins
    }

    /// The cell with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds (ids from this netlist never are).
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// The net with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// The pin with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn pin(&self, id: PinId) -> &Pin {
        &self.pins[id.index()]
    }

    /// Number of cells (movable and fixed).
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Number of pins.
    pub fn num_pins(&self) -> usize {
        self.pins.len()
    }

    /// Iterator over `(CellId, &Cell)` pairs.
    pub fn iter_cells(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CellId(crate::cast::idx_u32(i)), c))
    }

    /// Iterator over `(NetId, &Net)` pairs.
    pub fn iter_nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets
            .iter()
            .enumerate()
            .map(|(i, n)| (NetId(crate::cast::idx_u32(i)), n))
    }

    /// Ids of all movable cells.
    pub fn movable_cells(&self) -> impl Iterator<Item = CellId> + '_ {
        self.iter_cells()
            .filter(|(_, c)| c.is_movable())
            .map(|(id, _)| id)
    }

    /// Ids of all fixed macros.
    pub fn fixed_macros(&self) -> impl Iterator<Item = CellId> + '_ {
        self.iter_cells()
            .filter(|(_, c)| !c.is_movable())
            .map(|(id, _)| id)
    }

    /// Total area of movable cells.
    pub fn movable_area(&self) -> f64 {
        self.cells
            .iter()
            .filter(|c| c.is_movable())
            .map(Cell::area)
            .sum()
    }
}

/// Incrementally builds and validates a [`Netlist`].
///
/// ```
/// use puffer_db::netlist::{CellKind, NetlistBuilder};
/// use puffer_db::geom::Point;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut nb = NetlistBuilder::new();
/// let a = nb.add_cell("a", 1.0, 1.0, CellKind::Movable);
/// let b = nb.add_cell("b", 1.0, 1.0, CellKind::Movable);
/// let n = nb.add_net("n0");
/// nb.connect(n, a, Point::ORIGIN)?;
/// nb.connect(n, b, Point::ORIGIN)?;
/// let netlist = nb.build()?;
/// assert_eq!(netlist.net_degree(n), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct NetlistBuilder {
    cells: Vec<Cell>,
    nets: Vec<Net>,
    pins: Vec<Pin>,
}

impl NetlistBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with capacity hints for large designs.
    pub fn with_capacity(cells: usize, nets: usize, pins: usize) -> Self {
        NetlistBuilder {
            cells: Vec::with_capacity(cells),
            nets: Vec::with_capacity(nets),
            pins: Vec::with_capacity(pins),
        }
    }

    /// Adds a cell and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is not strictly positive or not
    /// finite. Use [`NetlistBuilder::try_add_cell`] when the dimensions come
    /// from untrusted input (e.g. a parsed file).
    pub fn add_cell(
        &mut self,
        name: impl Into<String>,
        width: f64,
        height: f64,
        kind: CellKind,
    ) -> CellId {
        self.try_add_cell(name, width, height, kind)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`NetlistBuilder::add_cell`]: a zero-area, negative, or
    /// non-finite dimension is a [`DbError::Validate`] instead of a panic.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Validate`] when `width` or `height` is not
    /// strictly positive and finite.
    pub fn try_add_cell(
        &mut self,
        name: impl Into<String>,
        width: f64,
        height: f64,
        kind: CellKind,
    ) -> Result<CellId, DbError> {
        let name = name.into();
        if !(width > 0.0 && width.is_finite()) {
            return Err(DbError::Validate(format!(
                "cell '{name}' width must be positive and finite, got {width}"
            )));
        }
        if !(height > 0.0 && height.is_finite()) {
            return Err(DbError::Validate(format!(
                "cell '{name}' height must be positive and finite, got {height}"
            )));
        }
        let id = CellId(crate::cast::idx_u32(self.cells.len()));
        self.cells.push(Cell {
            name,
            width,
            height,
            kind,
        });
        Ok(id)
    }

    /// Width and height of an already-added cell, or `None` for an unknown
    /// id. Streaming parsers use this to validate pin offsets against the
    /// owning cell without keeping a separate size table.
    pub fn cell_dims(&self, cell: CellId) -> Option<(f64, f64)> {
        self.cells.get(cell.index()).map(|c| (c.width, c.height))
    }

    /// Adds a net with weight 1 and returns its id.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        self.add_weighted_net(name, 1.0)
    }

    /// Adds a net with an explicit weight and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or not finite. Use
    /// [`NetlistBuilder::try_add_weighted_net`] for untrusted input.
    pub fn add_weighted_net(&mut self, name: impl Into<String>, weight: f64) -> NetId {
        self.try_add_weighted_net(name, weight)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`NetlistBuilder::add_weighted_net`].
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Validate`] when `weight` is negative or not
    /// finite.
    pub fn try_add_weighted_net(
        &mut self,
        name: impl Into<String>,
        weight: f64,
    ) -> Result<NetId, DbError> {
        let name = name.into();
        if !(weight >= 0.0 && weight.is_finite()) {
            return Err(DbError::Validate(format!(
                "net '{name}' weight must be non-negative and finite, got {weight}"
            )));
        }
        let id = NetId(crate::cast::idx_u32(self.nets.len()));
        self.nets.push(Net { name, weight });
        Ok(id)
    }

    /// Connects `cell` to `net` with a pin at `offset` from the cell center,
    /// returning the new pin's id.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::BadId`] if either id is unknown.
    pub fn connect(&mut self, net: NetId, cell: CellId, offset: Point) -> Result<PinId, DbError> {
        if cell.index() >= self.cells.len() {
            return Err(DbError::BadId(format!("{cell} while connecting to {net}")));
        }
        if net.index() >= self.nets.len() {
            return Err(DbError::BadId(format!("{net} while connecting {cell}")));
        }
        let id = PinId(crate::cast::idx_u32(self.pins.len()));
        self.pins.push(Pin { cell, net, offset });
        Ok(id)
    }

    /// Number of cells added so far.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets added so far.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Validates the structure and produces an immutable [`Netlist`].
    ///
    /// Single-pin and zero-pin nets are permitted (they occur in real designs
    /// as dangling or unconnected nets) but nets connecting the same cell
    /// more than once are collapsed into the bounding structure as-is; they
    /// contribute nothing to wirelength, which matches industrial practice.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Validate`] if a pin offset is non-finite or lies
    /// outside its cell's bounding box by more than the cell's half-size
    /// (a sign of corrupted input).
    pub fn build(self) -> Result<Netlist, DbError> {
        for (i, pin) in self.pins.iter().enumerate() {
            if !pin.offset.x.is_finite() || !pin.offset.y.is_finite() {
                return Err(DbError::Validate(format!("pin {i} has non-finite offset")));
            }
            let cell = &self.cells[pin.cell.index()];
            if pin.offset.x.abs() > cell.width || pin.offset.y.abs() > cell.height {
                return Err(DbError::Validate(format!(
                    "pin {i} offset {} exceeds cell '{}' extent ({} x {})",
                    pin.offset, cell.name, cell.width, cell.height
                )));
            }
        }
        // Compressed membership via counting sort over the pin table: pins
        // were validated in-bounds above, and scattering in pin-id order
        // keeps each entity's run in connect order — the exact order the
        // old per-entity `Vec<PinId>` lists carried.
        let (cell_pin_starts, cell_pin_ids) =
            csr_by(&self.pins, self.cells.len(), |p| p.cell.index());
        let (net_pin_starts, net_pin_ids) =
            csr_by(&self.pins, self.nets.len(), |p| p.net.index());
        Ok(Netlist {
            cells: self.cells,
            nets: self.nets,
            pins: self.pins,
            cell_pin_starts,
            cell_pin_ids,
            net_pin_starts,
            net_pin_ids,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cell_netlist() -> Netlist {
        let mut nb = NetlistBuilder::new();
        let a = nb.add_cell("a", 2.0, 1.0, CellKind::Movable);
        let b = nb.add_cell("b", 3.0, 1.0, CellKind::FixedMacro);
        let n = nb.add_net("n");
        nb.connect(n, a, Point::new(0.5, 0.0)).unwrap();
        nb.connect(n, b, Point::new(-1.0, 0.0)).unwrap();
        nb.build().unwrap()
    }

    #[test]
    fn ids_round_trip() {
        let nl = two_cell_netlist();
        assert_eq!(nl.num_cells(), 2);
        assert_eq!(nl.num_nets(), 1);
        assert_eq!(nl.num_pins(), 2);
        assert_eq!(nl.cell(CellId(0)).name, "a");
        assert_eq!(nl.pin(PinId(1)).cell, CellId(1));
        assert_eq!(usize::from(CellId(1)), 1);
    }

    #[test]
    fn movable_and_fixed_partitions() {
        let nl = two_cell_netlist();
        assert_eq!(nl.movable_cells().collect::<Vec<_>>(), vec![CellId(0)]);
        assert_eq!(nl.fixed_macros().collect::<Vec<_>>(), vec![CellId(1)]);
        assert_eq!(nl.movable_area(), 2.0);
    }

    #[test]
    fn connect_rejects_bad_ids() {
        let mut nb = NetlistBuilder::new();
        let a = nb.add_cell("a", 1.0, 1.0, CellKind::Movable);
        let n = nb.add_net("n");
        assert!(nb.connect(NetId(9), a, Point::ORIGIN).is_err());
        assert!(nb.connect(n, CellId(9), Point::ORIGIN).is_err());
    }

    #[test]
    fn build_rejects_wild_pin_offsets() {
        let mut nb = NetlistBuilder::new();
        let a = nb.add_cell("a", 1.0, 1.0, CellKind::Movable);
        let n = nb.add_net("n");
        nb.connect(n, a, Point::new(100.0, 0.0)).unwrap();
        assert!(matches!(nb.build(), Err(DbError::Validate(_))));
    }

    #[test]
    fn build_rejects_nan_offsets() {
        let mut nb = NetlistBuilder::new();
        let a = nb.add_cell("a", 1.0, 1.0, CellKind::Movable);
        let n = nb.add_net("n");
        nb.connect(n, a, Point::new(f64::NAN, 0.0)).unwrap();
        assert!(nb.build().is_err());
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_cell_panics() {
        let mut nb = NetlistBuilder::new();
        nb.add_cell("bad", 0.0, 1.0, CellKind::Movable);
    }

    #[test]
    fn net_degree_and_weight() {
        let mut nb = NetlistBuilder::new();
        let a = nb.add_cell("a", 1.0, 1.0, CellKind::Movable);
        let n = nb.add_weighted_net("clk", 2.5);
        nb.connect(n, a, Point::ORIGIN).unwrap();
        let nl = nb.build().unwrap();
        assert_eq!(nl.net_degree(n), 1);
        assert_eq!(nl.net(n).weight, 2.5);
    }

    #[test]
    fn cell_pin_backrefs_are_consistent() {
        let nl = two_cell_netlist();
        for (cid, _) in nl.iter_cells() {
            for &pid in nl.cell_pins(cid) {
                assert_eq!(nl.pin(pid).cell, cid);
            }
        }
        for (nid, _) in nl.iter_nets() {
            for &pid in nl.net_pins(nid) {
                assert_eq!(nl.pin(pid).net, nid);
            }
        }
    }

    #[test]
    fn membership_runs_preserve_connect_order() {
        let mut nb = NetlistBuilder::new();
        let a = nb.add_cell("a", 2.0, 1.0, CellKind::Movable);
        let b = nb.add_cell("b", 2.0, 1.0, CellKind::Movable);
        let n0 = nb.add_net("n0");
        let n1 = nb.add_net("n1");
        // Interleave connections so the CSR scatter has to regroup.
        let p0 = nb.connect(n1, b, Point::ORIGIN).unwrap();
        let p1 = nb.connect(n0, a, Point::ORIGIN).unwrap();
        let p2 = nb.connect(n1, a, Point::ORIGIN).unwrap();
        let p3 = nb.connect(n0, b, Point::ORIGIN).unwrap();
        let nl = nb.build().unwrap();
        assert_eq!(nl.net_pins(n0), &[p1, p3]);
        assert_eq!(nl.net_pins(n1), &[p0, p2]);
        assert_eq!(nl.cell_pins(a), &[p1, p2]);
        assert_eq!(nl.cell_pins(b), &[p0, p3]);
        assert_eq!(nl.net_degree(n0), 2);
    }

    #[test]
    fn cell_dims_reports_added_cells() {
        let mut nb = NetlistBuilder::new();
        let a = nb.add_cell("a", 2.0, 1.5, CellKind::Movable);
        assert_eq!(nb.cell_dims(a), Some((2.0, 1.5)));
        assert_eq!(nb.cell_dims(CellId(7)), None);
    }

    #[test]
    fn display_impls() {
        assert_eq!(CellId(3).to_string(), "CellId(3)");
        assert_eq!(CellKind::Movable.to_string(), "movable");
        assert_eq!(CellKind::FixedMacro.to_string(), "fixed_macro");
    }
}
