//! Design statistics in the shape of the paper's Table I.

use crate::cast;
use crate::design::Design;
use std::fmt;

/// The four columns of Table I plus some derived figures.
///
/// `movable_pins` counts pins on movable cells only, matching the paper's
/// "#Pins of all movable cells".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DesignStats {
    /// Number of fixed macros (`#Macros`).
    pub macros: usize,
    /// Number of movable standard cells (`#Cells`).
    pub movable_cells: usize,
    /// Number of nets (`#Nets`).
    pub nets: usize,
    /// Number of pins on movable cells (`#Pins`).
    pub movable_pins: usize,
}

impl DesignStats {
    /// Computes statistics for a design.
    pub fn of(design: &Design) -> Self {
        let nl = design.netlist();
        let mut stats = DesignStats {
            nets: nl.num_nets(),
            ..DesignStats::default()
        };
        for (id, cell) in nl.iter_cells() {
            if cell.is_movable() {
                stats.movable_cells += 1;
                stats.movable_pins += nl.cell_pins(id).len();
            } else {
                stats.macros += 1;
            }
        }
        stats
    }

    /// Average pins per movable cell.
    pub fn avg_pins_per_cell(&self) -> f64 {
        if self.movable_cells == 0 {
            0.0
        } else {
            cast::idx_f64(self.movable_pins) / cast::idx_f64(self.movable_cells)
        }
    }
}

impl fmt::Display for DesignStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#Macros={} #Cells={} #Nets={} #Pins={}",
            self.macros, self.movable_cells, self.nets, self.movable_pins
        )
    }
}

/// Formats a count the way Table I does (`122K`, `3151K`); exact below 1000.
pub fn format_k(n: usize) -> String {
    if n < 1000 {
        n.to_string()
    } else {
        format!("{}K", cast::round_idx(cast::idx_f64(n) / 1000.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::{Point, Rect};
    use crate::netlist::{CellKind, NetlistBuilder};
    use crate::tech::Technology;

    #[test]
    fn stats_count_correctly() {
        let mut nb = NetlistBuilder::new();
        let a = nb.add_cell("a", 1.0, 1.0, CellKind::Movable);
        let b = nb.add_cell("b", 1.0, 1.0, CellKind::Movable);
        let m = nb.add_cell("m", 4.0, 4.0, CellKind::FixedMacro);
        let n = nb.add_net("n");
        nb.connect(n, a, Point::ORIGIN).unwrap();
        nb.connect(n, b, Point::ORIGIN).unwrap();
        nb.connect(n, m, Point::ORIGIN).unwrap();
        let d = Design::new(
            "t",
            nb.build().unwrap(),
            Technology::default(),
            Rect::new(0.0, 0.0, 50.0, 50.0),
        )
        .unwrap();
        let s = d.stats();
        assert_eq!(s.macros, 1);
        assert_eq!(s.movable_cells, 2);
        assert_eq!(s.nets, 1);
        // The macro pin is excluded from #Pins.
        assert_eq!(s.movable_pins, 2);
        assert_eq!(s.avg_pins_per_cell(), 1.0);
        assert!(s.to_string().contains("#Cells=2"));
    }

    #[test]
    fn format_k_matches_table_style() {
        assert_eq!(format_k(45), "45");
        assert_eq!(format_k(122_000), "122K");
        assert_eq!(format_k(3_151_400), "3151K");
        assert_eq!(format_k(1_500), "2K");
    }
}
