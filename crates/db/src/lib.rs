//! Circuit database for the PUFFER routability-driven placement framework.
//!
//! This crate is the foundation substrate shared by every other crate in the
//! workspace. It models what a placement flow needs from a physical-design
//! database:
//!
//! * [`geom`] — plain geometry (points, rectangles) in floating-point
//!   database units;
//! * [`tech`] — technology data: placement sites, rows, and the metal-layer
//!   stack used for routing-capacity computation (paper Eq. (8));
//! * [`netlist`] — cells, nets, and pins with a validating builder;
//! * [`design`] — a placeable design (netlist + technology + floorplan) and
//!   [`design::Placement`] solutions;
//! * [`grid`] — dense 2-D grids used for density bins and Gcell maps;
//! * [`hpwl`] — half-perimeter wirelength evaluation;
//! * [`stats`] — the Table-I style design statistics;
//! * [`io`] — a small self-describing text format for designs and placements;
//! * [`bookshelf`] — reader/writer for the UCLA Bookshelf benchmark format;
//! * [`svg`] — SVG rendering of placements for reports and the CLI.
//!
//! # Example
//!
//! ```
//! use puffer_db::design::Design;
//! use puffer_db::geom::{Point, Rect};
//! use puffer_db::netlist::{CellKind, NetlistBuilder};
//! use puffer_db::tech::Technology;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut nb = NetlistBuilder::new();
//! let a = nb.add_cell("a", 2.0, 1.0, CellKind::Movable);
//! let b = nb.add_cell("b", 2.0, 1.0, CellKind::Movable);
//! let n = nb.add_net("n");
//! nb.connect(n, a, Point::new(0.5, 0.5))?;
//! nb.connect(n, b, Point::new(-0.5, 0.5))?;
//! let netlist = nb.build()?;
//!
//! let design = Design::new(
//!     "tiny",
//!     netlist,
//!     Technology::default(),
//!     Rect::new(0.0, 0.0, 100.0, 100.0),
//! )?;
//! assert_eq!(design.stats().movable_cells, 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod bookshelf;
pub mod cast;
pub mod design;
pub mod error;
pub mod geom;
pub mod grid;
pub mod hpwl;
pub mod io;
pub mod netlist;
pub mod stats;
pub mod svg;
pub mod tech;

pub use design::{Design, Placement};
pub use error::DbError;
pub use geom::{Point, Rect};
pub use grid::Grid;
pub use netlist::{Cell, CellId, CellKind, Net, NetId, Netlist, NetlistBuilder, Pin, PinId};
pub use tech::{Layer, PreferredDirection, Technology};
