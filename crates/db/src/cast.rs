//! Named numeric conversions: the only sanctioned home of bare `as` casts
//! in the hot crates.
//!
//! PR 7 fixed real Gcell-boundary bugs caused by anonymous `as` casts whose
//! rounding direction nobody had spelled out. `puffer lint`'s `cast` rule
//! now bans bare float↔int (and width-changing int↔int) `as` casts from
//! non-test library code in the hot crates (`db`, `congest`, `route`,
//! `place`, `flute`, `pad`); call sites go through these helpers instead,
//! so every conversion names its rounding direction and carries a test.
//!
//! Every helper is a transparent wrapper around the exact `as` expression
//! its name describes — migrating a call site from `x as usize` to
//! [`trunc_idx`]`(x)` is bit-identical by construction. In particular the
//! float→int helpers inherit `as`'s saturating-truncation semantics: the
//! fractional part is discarded toward zero **after** the named rounding
//! step, out-of-range values clamp to the target type's bounds, and NaN
//! maps to 0.
//!
//! The int→float helpers additionally `debug_assert!` that the conversion
//! is exact (representable in an `f64` mantissa), so a million-cell-scale
//! overflow surfaces in debug runs instead of silently rounding ids.

/// `f64 → usize` by truncation toward zero (plain `as` semantics:
/// saturating, NaN → 0). Use when the value is already integral or the
/// discard-fraction behavior is the intent; otherwise pick [`floor_idx`],
/// [`ceil_idx`], or [`round_idx`] so the rounding direction is named.
#[inline]
#[must_use]
pub fn trunc_idx(x: f64) -> usize {
    x as usize
}

/// `f64 → usize` rounding down (`x.floor()`, then saturating truncation).
/// The Gcell-of-coordinate conversion: a point strictly inside bin `i`
/// must never land in bin `i + 1`.
#[inline]
#[must_use]
pub fn floor_idx(x: f64) -> usize {
    x.floor() as usize
}

/// `f64 → usize` rounding up (`x.ceil()`, then saturating truncation).
/// The bin-count conversion: a region `k.3` bins wide needs `k + 1` bins.
#[inline]
#[must_use]
pub fn ceil_idx(x: f64) -> usize {
    x.ceil() as usize
}

/// `f64 → usize` rounding half away from zero (`x.round()`, then
/// saturating truncation).
#[inline]
#[must_use]
pub fn round_idx(x: f64) -> usize {
    x.round() as usize
}

/// `f64 → u8` by truncation toward zero (saturating at 255, NaN → 0).
#[inline]
#[must_use]
pub fn trunc_u8(x: f64) -> u8 {
    x as u8
}

/// `f64 → u8` rounding half away from zero, saturating at 255 — the
/// 8-bit-channel quantization used by the SVG/heatmap renderers.
#[inline]
#[must_use]
pub fn round_u8(x: f64) -> u8 {
    x.round() as u8
}

/// `f64 → i64` by truncation toward zero (saturating, NaN → 0).
#[inline]
#[must_use]
pub fn trunc_i64(x: f64) -> i64 {
    x as i64
}

/// `f64 → f32` narrowing (nearest-even, overflow → ±∞).
#[inline]
#[must_use]
pub fn f64_f32(x: f64) -> f32 {
    x as f32
}

/// `usize → f64`, exact for values up to 2⁵³ (debug-asserted). Indices,
/// counts, and grid dimensions all satisfy this by orders of magnitude.
#[inline]
#[must_use]
pub fn idx_f64(x: usize) -> f64 {
    debug_assert!(x <= (1usize << f64::MANTISSA_DIGITS), "usize→f64 would round: {x}");
    x as f64
}

/// `u64 → f64`, exact for values up to 2⁵³ (debug-asserted) — trace
/// counters and RSMT-cache statistics.
#[inline]
#[must_use]
pub fn u64_f64(x: u64) -> f64 {
    debug_assert!(x <= (1u64 << f64::MANTISSA_DIGITS), "u64→f64 would round: {x}");
    x as f64
}

/// `i64 → f64`, exact for magnitudes up to 2⁵³ (debug-asserted).
#[inline]
#[must_use]
pub fn i64_f64(x: i64) -> f64 {
    debug_assert!(x.unsigned_abs() <= (1u64 << f64::MANTISSA_DIGITS), "i64→f64 would round: {x}");
    x as f64
}

/// `usize → u32` for the u32-id world (cells, nets, pins, Gcells); debug-
/// asserts the id fits. The compact-id storage (ROADMAP item 2) depends on
/// every conversion funneling through here.
#[inline]
#[must_use]
pub fn idx_u32(x: usize) -> u32 {
    debug_assert!(u32::try_from(x).is_ok(), "index does not fit u32: {x}");
    x as u32
}

/// `u32 → usize`, lossless on every supported platform (usize ≥ 32 bits).
#[inline]
#[must_use]
pub fn u32_idx(x: u32) -> usize {
    x as usize
}

/// `usize → i64` for signed Gcell arithmetic and JSONL integer fields;
/// debug-asserts the value fits (it always does below 2⁶³).
#[inline]
#[must_use]
pub fn idx_i64(x: usize) -> i64 {
    debug_assert!(i64::try_from(x).is_ok(), "index does not fit i64: {x}");
    x as i64
}

/// `i64 → usize`; debug-asserts the value is non-negative and fits. The
/// inverse of [`idx_i64`] after a bounds check has re-established `≥ 0`.
#[inline]
#[must_use]
pub fn i64_idx(x: i64) -> usize {
    debug_assert!(usize::try_from(x).is_ok(), "i64 is not a valid index: {x}");
    x as usize
}

/// `usize → u64`, lossless on every supported platform (usize ≤ 64 bits).
#[inline]
#[must_use]
pub fn idx_u64(x: usize) -> u64 {
    x as u64
}

/// `u64 → i64` for JSONL integer fields; debug-asserts the value fits.
#[inline]
#[must_use]
pub fn u64_i64(x: u64) -> i64 {
    debug_assert!(i64::try_from(x).is_ok(), "u64 does not fit i64: {x}");
    x as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_to_index_rounding_directions() {
        assert_eq!(trunc_idx(3.9), 3);
        assert_eq!(floor_idx(3.9), 3);
        assert_eq!(ceil_idx(3.1), 4);
        assert_eq!(round_idx(3.5), 4);
        assert_eq!(round_idx(3.4), 3);
        // `as`-cast saturation semantics are preserved verbatim.
        assert_eq!(trunc_idx(-1.5), 0);
        assert_eq!(floor_idx(-0.5), 0);
        assert_eq!(trunc_idx(f64::NAN), 0);
        assert_eq!(trunc_idx(f64::INFINITY), usize::MAX);
    }

    #[test]
    fn byte_and_signed_quantization() {
        assert_eq!(round_u8(254.6), 255);
        assert_eq!(round_u8(300.0), 255);
        assert_eq!(trunc_u8(-3.0), 0);
        assert_eq!(trunc_i64(-3.7), -3);
        assert_eq!(f64_f32(1.5), 1.5f32);
    }

    #[test]
    fn int_to_float_is_exact_for_ids() {
        assert_eq!(idx_f64(1 << 24), 16_777_216.0);
        assert_eq!(u64_f64(12345), 12345.0);
        assert_eq!(i64_f64(-12345), -12345.0);
    }

    #[test]
    fn width_changes_roundtrip() {
        assert_eq!(idx_u32(7), 7u32);
        assert_eq!(u32_idx(idx_u32(123_456)), 123_456);
        assert_eq!(idx_i64(9), 9i64);
        assert_eq!(i64_idx(idx_i64(42)), 42);
        assert_eq!(u64_i64(9), 9i64);
    }

    #[test]
    fn every_helper_matches_the_bare_cast_it_replaces() {
        // The migration contract: wrapping a cast site in a helper must be
        // bit-identical to the expression it replaced.
        for x in [0.0, 0.49, 0.5, 1.0 / 3.0, 2.5, 1e9 + 0.75, -2.5] {
            assert_eq!(trunc_idx(x), x as usize);
            assert_eq!(floor_idx(x), x.floor() as usize);
            assert_eq!(ceil_idx(x), x.ceil() as usize);
            assert_eq!(round_idx(x), x.round() as usize);
            assert_eq!(trunc_u8(x), x as u8);
            assert_eq!(round_u8(x), x.round() as u8);
            assert_eq!(trunc_i64(x), x as i64);
            assert_eq!(f64_f32(x).to_bits(), (x as f32).to_bits());
        }
        for n in [0usize, 1, 4095, 1 << 20] {
            assert_eq!(idx_f64(n).to_bits(), (n as f64).to_bits());
            assert_eq!(idx_u32(n), n as u32);
            assert_eq!(idx_i64(n), n as i64);
            assert_eq!(idx_u64(n), n as u64);
        }
    }
}
