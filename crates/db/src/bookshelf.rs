//! Bookshelf placement-format support (UCLA `.aux/.nodes/.nets/.pl/.scl`).
//!
//! The academic placement community (ISPD contests, RePlAce, NTUplace)
//! exchanges designs in the Bookshelf format; this module reads those
//! benchmarks into a [`Design`] and writes placements back as `.pl` files,
//! so the framework can run on published netlists in addition to the
//! synthetic Table I presets.
//!
//! Conventions translated at this boundary:
//!
//! * Bookshelf `.pl` coordinates are **lower-left corners**; [`Placement`]
//!   stores cell **centers**.
//! * Bookshelf pin offsets are from the node center — same as [`Pin`].
//! * `terminal` nodes become [`CellKind::FixedMacro`]; their `.pl`
//!   positions are design data ([`Design::place_macro`]).
//! * The placement region is the bounding box of the `.scl` core rows; row
//!   height and site width come from the first row. The metal stack is not
//!   part of Bookshelf, so the [`Technology::default`] stack is assumed,
//!   rescaled so that one row height matches the `.scl` row height.
//!
//! [`Pin`]: crate::netlist::Pin
//! [`CellKind::FixedMacro`]: crate::netlist::CellKind

use crate::design::{Design, Placement};
use crate::error::DbError;
use crate::geom::{Point, Rect};
use crate::netlist::{CellId, CellKind, NetlistBuilder};
use crate::tech::Technology;
use std::collections::BTreeMap;
use std::path::Path;

/// Parses a Bookshelf design from in-memory file contents.
///
/// `scl` may be empty, in which case a square region sized for ~70%
/// utilization is synthesized.
///
/// # Errors
///
/// Returns [`DbError::Parse`] describing the offending file and line.
pub fn parse_bookshelf(
    name: &str,
    nodes: &str,
    nets: &str,
    pl: &str,
    scl: &str,
) -> Result<Design, DbError> {
    let mut nb = NetlistBuilder::new();
    let mut by_name: BTreeMap<String, CellId> = BTreeMap::new();
    let mut sizes: BTreeMap<String, (f64, f64)> = BTreeMap::new();

    // --- .nodes --------------------------------------------------------
    for (lineno, line) in content_lines(nodes, "UCLA nodes") {
        let mut it = line.split_whitespace();
        let Some(first) = it.next() else { continue };
        if first == "NumNodes" || first == "NumTerminals" {
            continue;
        }
        let w: f64 = parse_tok(it.next(), "nodes", lineno, "width")?;
        let h: f64 = parse_tok(it.next(), "nodes", lineno, "height")?;
        let kind = match it.next() {
            Some("terminal") | Some("terminal_NI") => CellKind::FixedMacro,
            _ => CellKind::Movable,
        };
        // try_add_cell also rejects NaN/inf sizes, which `w <= 0.0` misses.
        let id = nb
            .try_add_cell(first, w, h, kind)
            .map_err(|e| DbError::Parse {
                line: lineno,
                message: format!("nodes: {e}"),
            })?;
        by_name.insert(first.to_string(), id);
        sizes.insert(first.to_string(), (w, h));
    }

    // --- .nets ---------------------------------------------------------
    let mut current_net = None;
    for (lineno, line) in content_lines(nets, "UCLA nets") {
        let mut it = line.split_whitespace();
        let Some(first) = it.next() else { continue };
        match first {
            "NumNets" | "NumPins" => continue,
            "NetDegree" => {
                // `NetDegree : d  name?`
                let _colon = it.next();
                let _d = it.next();
                let net_name = it
                    .next()
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("net_{lineno}"));
                current_net = Some(nb.add_net(net_name));
            }
            node => {
                let Some(net) = current_net else {
                    return Err(DbError::Parse {
                        line: lineno,
                        message: "nets: pin line before any NetDegree".into(),
                    });
                };
                let Some(&cell) = by_name.get(node) else {
                    return Err(DbError::Parse {
                        line: lineno,
                        message: format!("nets: unknown node '{node}'"),
                    });
                };
                // `<node> <I|O|B> : dx dy` (offsets optional).
                let _dir = it.next();
                let _colon = it.next();
                let dx: f64 = it.next().and_then(|t| t.parse().ok()).unwrap_or(0.0);
                let dy: f64 = it.next().and_then(|t| t.parse().ok()).unwrap_or(0.0);
                // Clamp offsets into the node (some benchmarks have pins on
                // the boundary plus rounding noise).
                let (w, h) = sizes[node];
                nb.connect(
                    net,
                    cell,
                    Point::new(dx.clamp(-w / 2.0, w / 2.0), dy.clamp(-h / 2.0, h / 2.0)),
                )
                .map_err(|e| DbError::Parse {
                    line: lineno,
                    message: e.to_string(),
                })?;
            }
        }
    }
    let netlist = nb.build()?;

    // --- .scl ----------------------------------------------------------
    let (region, row_height, site_width) = parse_scl(scl, &netlist)?;
    let mut tech = Technology::default();
    // Rescale the default stack so pitches stay proportional to row height.
    let scale = row_height / tech.row_height;
    tech.row_height = row_height;
    tech.site_width = site_width;
    for layer in &mut tech.layers {
        layer.metal_width *= scale;
        layer.wire_spacing *= scale;
    }
    let mut design = Design::new(name, netlist, tech, region)?;

    // --- .pl (fixed nodes only; movable positions are a starting point) --
    let mut initial = design.initial_placement();
    for (lineno, line) in content_lines(pl, "UCLA pl") {
        let mut it = line.split_whitespace();
        let Some(node) = it.next() else { continue };
        let Some(&cell) = by_name.get(node) else {
            return Err(DbError::Parse {
                line: lineno,
                message: format!("pl: unknown node '{node}'"),
            });
        };
        let x: f64 = parse_tok(it.next(), "pl", lineno, "x")?;
        let y: f64 = parse_tok(it.next(), "pl", lineno, "y")?;
        let (w, h) = sizes[node];
        let center = Point::new(x + w / 2.0, y + h / 2.0);
        if design.netlist().cell(cell).is_movable() {
            initial.set(cell, center);
        } else {
            // Clamp into the region: Bookshelf terminals may sit on the
            // core boundary or in the periphery.
            let half = Point::new(w / 2.0, h / 2.0);
            let clamped = Point::new(
                center.x.clamp(
                    region.xl + half.x,
                    (region.xh - half.x).max(region.xl + half.x),
                ),
                center.y.clamp(
                    region.yl + half.y,
                    (region.yh - half.y).max(region.yl + half.y),
                ),
            );
            design
                .place_macro(cell, clamped)
                .map_err(|e| DbError::Parse {
                    line: lineno,
                    message: e.to_string(),
                })?;
        }
    }
    // A partial or missing .pl leaves terminals unplaced; callers decide
    // whether that matters via [`Design::check_macros_placed`].
    Ok(design)
}

fn parse_scl(scl: &str, netlist: &crate::netlist::Netlist) -> Result<(Rect, f64, f64), DbError> {
    let mut rows: Vec<(f64, f64, f64, f64)> = Vec::new(); // (y, h, x0, width)
                                                          // Current CoreRow block: (y, height, site width, x origin, num sites).
    type RowAcc = (
        Option<f64>,
        Option<f64>,
        Option<f64>,
        Option<f64>,
        Option<f64>,
    );
    let mut cur: RowAcc = (None, None, None, None, None);
    for (_, line) in content_lines(scl, "UCLA scl") {
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks.as_slice() {
            ["CoreRow", ..] => cur = (None, None, None, None, None),
            ["Coordinate", ":", v] => cur.0 = v.parse().ok(),
            ["Height", ":", v] => cur.1 = v.parse().ok(),
            ["Sitewidth", ":", v] => cur.2 = v.parse().ok(),
            ["SubrowOrigin", ":", x, "NumSites", ":", n] => {
                cur.3 = x.parse().ok();
                cur.4 = n.parse().ok();
            }
            ["SubrowOrigin", ":", x] => cur.3 = x.parse().ok(),
            ["NumSites", ":", n] => cur.4 = n.parse().ok(),
            ["End"] => {
                if let (Some(y), Some(h), Some(sw), Some(x0), Some(ns)) =
                    (cur.0, cur.1, cur.2, cur.3, cur.4)
                {
                    rows.push((y, h, x0, sw * ns));
                }
            }
            _ => {}
        }
    }
    if rows.is_empty() {
        // Synthesize a floorplan: square region at ~70% utilization.
        let area: f64 = netlist.movable_area().max(1.0) / 0.7;
        let side = area.sqrt().ceil();
        return Ok((Rect::new(0.0, 0.0, side, side), 1.0, 0.2));
    }
    let row_h = rows[0].1;
    let site_w = rows
        .first()
        .map(|_| {
            // Recover site width from the first CoreRow block.
            let mut sw = 1.0;
            for (_, line) in content_lines(scl, "UCLA scl") {
                let toks: Vec<&str> = line.split_whitespace().collect();
                if let ["Sitewidth", ":", v] = toks.as_slice() {
                    if let Ok(x) = v.parse() {
                        sw = x;
                        break;
                    }
                }
            }
            sw
        })
        .unwrap_or(1.0);
    let xl = rows.iter().map(|r| r.2).fold(f64::INFINITY, f64::min);
    let xh = rows
        .iter()
        .map(|r| r.2 + r.3)
        .fold(f64::NEG_INFINITY, f64::max);
    let yl = rows.iter().map(|r| r.0).fold(f64::INFINITY, f64::min);
    let yh = rows
        .iter()
        .map(|r| r.0 + r.1)
        .fold(f64::NEG_INFINITY, f64::max);
    Ok((Rect::new(xl, yl, xh, yh), row_h, site_w))
}

/// Reads a Bookshelf design given the path of its `.aux` file.
///
/// # Errors
///
/// Returns [`DbError`] on I/O failures or malformed content.
pub fn read_aux(path: impl AsRef<Path>) -> Result<Design, DbError> {
    let path = path.as_ref();
    let aux = std::fs::read_to_string(path)?;
    let dir = path.parent().unwrap_or(Path::new("."));
    let mut nodes = String::new();
    let mut nets = String::new();
    let mut pl = String::new();
    let mut scl = String::new();
    for tok in aux.split_whitespace() {
        let target: &mut String = match Path::new(tok).extension().and_then(|e| e.to_str()) {
            Some("nodes") => &mut nodes,
            Some("nets") => &mut nets,
            Some("pl") => &mut pl,
            Some("scl") => &mut scl,
            _ => continue,
        };
        *target = std::fs::read_to_string(dir.join(tok))?;
    }
    if nodes.is_empty() || nets.is_empty() {
        return Err(DbError::Parse {
            line: 0,
            message: "aux: missing .nodes or .nets reference".into(),
        });
    }
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bookshelf");
    parse_bookshelf(name, &nodes, &nets, &pl, &scl)
}

/// Serialises a placement as a Bookshelf `.pl` file (lower-left corners;
/// fixed nodes tagged `/FIXED`).
pub fn write_pl(design: &Design, placement: &Placement) -> String {
    let mut out = String::from("UCLA pl 1.0\n\n");
    for (id, cell) in design.netlist().iter_cells() {
        let p = placement.pos(id);
        let x = p.x - cell.width / 2.0;
        let y = p.y - cell.height / 2.0;
        if cell.is_movable() {
            out.push_str(&format!("{} {:.4} {:.4} : N\n", cell.name, x, y));
        } else {
            out.push_str(&format!("{} {:.4} {:.4} : N /FIXED\n", cell.name, x, y));
        }
    }
    out
}

/// Iterates `(line_number, line)` over non-comment, non-header content.
fn content_lines<'a>(
    text: &'a str,
    header: &'a str,
) -> impl Iterator<Item = (usize, &'a str)> + 'a {
    text.lines().enumerate().filter_map(move |(i, l)| {
        let t = l.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with(header) {
            None
        } else {
            Some((i + 1, t))
        }
    })
}

fn parse_tok<T: std::str::FromStr>(
    tok: Option<&str>,
    file: &str,
    line: usize,
    what: &str,
) -> Result<T, DbError> {
    tok.ok_or_else(|| DbError::Parse {
        line,
        message: format!("{file}: missing {what}"),
    })?
    .parse()
    .map_err(|_| DbError::Parse {
        line,
        message: format!("{file}: bad {what}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const NODES: &str = "UCLA nodes 1.0\n# comment\nNumNodes : 3\nNumTerminals : 1\n\
        a 2 1\nb 2 1\nram 8 8 terminal\n";
    const NETS: &str = "UCLA nets 1.0\nNumNets : 2\nNumPins : 4\n\
        NetDegree : 2 n0\n a I : 0.5 0.0\n b O : -0.5 0.0\n\
        NetDegree : 2 n1\n b I : 0 0\n ram O : 0 0\n";
    const PL: &str = "UCLA pl 1.0\n\na 0 0 : N\nb 4 0 : N\nram 20 20 : N /FIXED\n";
    const SCL: &str = "UCLA scl 1.0\nNumRows : 2\n\
        CoreRow Horizontal\n Coordinate : 0\n Height : 1\n Sitewidth : 1\n \
        Sitespacing : 1\n SubrowOrigin : 0 NumSites : 40\nEnd\n\
        CoreRow Horizontal\n Coordinate : 1\n Height : 1\n Sitewidth : 1\n \
        Sitespacing : 1\n SubrowOrigin : 0 NumSites : 40\nEnd\n";

    #[test]
    fn parses_a_minimal_design() {
        // Region is only 2 rows tall; grow it via more rows for the macro.
        let tall_scl: String = (0..30)
            .map(|i| {
                format!(
                    "CoreRow Horizontal\n Coordinate : {i}\n Height : 1\n Sitewidth : 1\n \
                     SubrowOrigin : 0 NumSites : 40\nEnd\n"
                )
            })
            .collect();
        let d = parse_bookshelf("mini", NODES, NETS, PL, &tall_scl).unwrap();
        let s = d.stats();
        assert_eq!(s.movable_cells, 2);
        assert_eq!(s.macros, 1);
        assert_eq!(s.nets, 2);
        assert_eq!(s.movable_pins, 3);
        assert_eq!(d.region(), Rect::new(0.0, 0.0, 40.0, 30.0));
        assert_eq!(d.tech().row_height, 1.0);
        // Fixed node at lower-left (20, 20), size 8x8 → center (24, 24).
        let m = d.netlist().fixed_macros().next().unwrap();
        assert_eq!(d.fixed_position(m), Some(Point::new(24.0, 24.0)));
    }

    #[test]
    fn missing_scl_synthesizes_a_region() {
        let d = parse_bookshelf("mini", NODES, NETS, "", "").unwrap();
        assert!(d.region().area() > 0.0);
        assert!(d.check_macros_placed().is_err(), "no .pl ⇒ macro unplaced");
    }

    #[test]
    fn unknown_nodes_in_nets_are_reported() {
        let bad = "NetDegree : 2 n0\n a I : 0 0\n ghost O : 0 0\n";
        let err = parse_bookshelf("x", NODES, bad, "", "").unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn pin_offsets_are_clamped_into_the_node() {
        let nets = "NetDegree : 2 n0\n a I : 99 99\n b O : 0 0\n";
        let d = parse_bookshelf("x", NODES, nets, "", "").unwrap();
        let pin = d.netlist().pin(crate::netlist::PinId(0));
        assert!(pin.offset.x <= 1.0 && pin.offset.y <= 0.5);
    }

    #[test]
    fn pl_round_trips_through_write_pl() {
        let tall_scl: String = (0..30)
            .map(|i| {
                format!(
                    "CoreRow Horizontal\n Coordinate : {i}\n Height : 1\n Sitewidth : 1\n \
                     SubrowOrigin : 0 NumSites : 40\nEnd\n"
                )
            })
            .collect();
        let d = parse_bookshelf("mini", NODES, NETS, PL, &tall_scl).unwrap();
        let mut placement = d.initial_placement();
        let a = d.netlist().movable_cells().next().unwrap();
        placement.set(a, Point::new(3.0, 5.5));
        let pl_text = write_pl(&d, &placement);
        assert!(pl_text.contains("/FIXED"));
        // Lower-left of cell 'a' (2x1 at center (3, 5.5)) is (2, 5).
        assert!(pl_text.contains("a 2.0000 5.0000 : N"));

        // Feed the written .pl back in: same fixed position, moved cell.
        let d2 = parse_bookshelf("mini", NODES, NETS, &pl_text, &tall_scl).unwrap();
        let m = d2.netlist().fixed_macros().next().unwrap();
        assert_eq!(d2.fixed_position(m), Some(Point::new(24.0, 24.0)));
    }

    #[test]
    fn read_aux_resolves_sibling_files() {
        let dir = std::env::temp_dir().join("puffer-bookshelf-test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("t.nodes"), NODES).unwrap();
        std::fs::write(dir.join("t.nets"), NETS).unwrap();
        std::fs::write(dir.join("t.pl"), "").unwrap();
        std::fs::write(dir.join("t.scl"), SCL).unwrap();
        std::fs::write(
            dir.join("t.aux"),
            "RowBasedPlacement : t.nodes t.nets t.wts t.pl t.scl\n",
        )
        .unwrap();
        let d = read_aux(dir.join("t.aux")).unwrap();
        assert_eq!(d.name(), "t");
        assert_eq!(d.stats().movable_cells, 2);
        assert_eq!(d.region().xh, 40.0);
    }

    #[test]
    fn generated_design_places_after_bookshelf_round_trip() {
        // Cross-check against our own text format: a design exported to
        // Bookshelf .pl and re-read keeps the same netlist structure.
        let d = parse_bookshelf("mini", NODES, NETS, "", "").unwrap();
        assert_eq!(d.netlist().num_pins(), 4);
        for (_, net) in d.netlist().iter_nets() {
            assert_eq!(net.degree(), 2);
        }
    }
}
