//! Bookshelf placement-format support (UCLA `.aux/.nodes/.nets/.pl/.scl`).
//!
//! The academic placement community (ISPD contests, RePlAce, NTUplace)
//! exchanges designs in the Bookshelf format; this module reads those
//! benchmarks into a [`Design`] and writes placements back as `.pl` files,
//! so the framework can run on published netlists in addition to the
//! synthetic Table I presets.
//!
//! Two front-ends drive one shared per-line parser, so they cannot drift:
//!
//! * [`parse_bookshelf`] takes whole files as `&str` — convenient for
//!   tests and small designs already in memory.
//! * [`parse_bookshelf_streaming`] pulls lines out of [`BufRead`] sources
//!   through a single reused buffer, so peak memory is bounded by the
//!   netlist being built, never by the size of the input files. This is
//!   the path [`read_aux`] uses and the one million-cell benchmarks need.
//!
//! Declared counts are enforced: `NumNodes`, `NumNets`, `NumPins`, and
//! each net's `NetDegree` must match what the file actually defines, so a
//! truncated input yields a structured [`DbError`] — never a silently
//! partial netlist.
//!
//! Conventions translated at this boundary:
//!
//! * Bookshelf `.pl` coordinates are **lower-left corners**; [`Placement`]
//!   stores cell **centers**.
//! * Bookshelf pin offsets are from the node center — same as [`Pin`].
//! * `terminal` nodes become [`CellKind::FixedMacro`]; their `.pl`
//!   positions are design data ([`Design::place_macro`]).
//! * The placement region is the bounding box of the `.scl` core rows; row
//!   height and site width come from the first row. The metal stack is not
//!   part of Bookshelf, so the [`Technology::default`] stack is assumed,
//!   rescaled so that one row height matches the `.scl` row height.
//!
//! [`Pin`]: crate::netlist::Pin
//! [`CellKind::FixedMacro`]: crate::netlist::CellKind

use crate::design::{Design, Placement};
use crate::error::DbError;
use crate::geom::{Point, Rect};
use crate::io::LineReader;
use crate::netlist::{CellId, CellKind, NetId, Netlist, NetlistBuilder};
use crate::tech::Technology;
use std::collections::BTreeMap;
use std::io::{BufRead, Read};
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------------
// Shared per-line parser state
// ---------------------------------------------------------------------------

/// Incremental `.nodes`/`.nets` parser: both front-ends feed it one
/// content line at a time, so the slurping and streaming paths share every
/// grammar and validation decision.
struct BookshelfParser {
    nb: NetlistBuilder,
    by_name: BTreeMap<String, CellId>,
    /// `NumNodes : N` when declared, checked against cells actually added.
    declared_nodes: Option<usize>,
    parsed_nodes: usize,
    /// The net currently accepting pin lines.
    current_net: Option<NetId>,
    /// `(declaring line, declared degree, net name)` of the open net, kept
    /// so a truncated pin list is reported against its `NetDegree` line.
    open_net: Option<(usize, usize, String)>,
    pins_in_net: usize,
    declared_nets: Option<usize>,
    declared_pins: Option<usize>,
    parsed_nets: usize,
    parsed_pins: usize,
}

impl BookshelfParser {
    fn new() -> Self {
        BookshelfParser {
            nb: NetlistBuilder::new(),
            by_name: BTreeMap::new(),
            declared_nodes: None,
            parsed_nodes: 0,
            current_net: None,
            open_net: None,
            pins_in_net: 0,
            declared_nets: None,
            declared_pins: None,
            parsed_nets: 0,
            parsed_pins: 0,
        }
    }

    fn nodes_line(&mut self, lineno: usize, line: &str) -> Result<(), DbError> {
        let mut it = line.split_whitespace();
        let Some(first) = it.next() else {
            return Ok(());
        };
        if first == "NumNodes" {
            let _colon = it.next();
            self.declared_nodes = it.next().and_then(|t| t.parse().ok());
            return Ok(());
        }
        if first == "NumTerminals" {
            return Ok(());
        }
        let w: f64 = parse_tok(it.next(), "nodes", lineno, "width")?;
        let h: f64 = parse_tok(it.next(), "nodes", lineno, "height")?;
        let kind = match it.next() {
            Some("terminal") | Some("terminal_NI") => CellKind::FixedMacro,
            _ => CellKind::Movable,
        };
        // try_add_cell also rejects NaN/inf sizes, which `w <= 0.0` misses.
        let id = self
            .nb
            .try_add_cell(first, w, h, kind)
            .map_err(|e| DbError::Parse {
                line: lineno,
                message: format!("nodes: {e}"),
            })?;
        self.by_name.insert(first.to_string(), id);
        self.parsed_nodes += 1;
        Ok(())
    }

    fn finish_nodes(&self, last_line: usize) -> Result<(), DbError> {
        if let Some(d) = self.declared_nodes {
            if d != self.parsed_nodes {
                return Err(DbError::Parse {
                    line: last_line,
                    message: format!(
                        "nodes: NumNodes declares {d} node(s) but the file defines {} \
                         (truncated file?)",
                        self.parsed_nodes
                    ),
                });
            }
        }
        Ok(())
    }

    fn nets_line(&mut self, lineno: usize, line: &str) -> Result<(), DbError> {
        let mut it = line.split_whitespace();
        let Some(first) = it.next() else {
            return Ok(());
        };
        match first {
            "NumNets" => {
                let _colon = it.next();
                self.declared_nets = it.next().and_then(|t| t.parse().ok());
            }
            "NumPins" => {
                let _colon = it.next();
                self.declared_pins = it.next().and_then(|t| t.parse().ok());
            }
            "NetDegree" => {
                self.close_net()?;
                // `NetDegree : d  name?`
                let _colon = it.next();
                let degree: Option<usize> = it.next().and_then(|t| t.parse().ok());
                let net_name = it
                    .next()
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("net_{lineno}"));
                self.current_net = Some(self.nb.add_net(net_name.clone()));
                self.open_net = degree.map(|d| (lineno, d, net_name));
                self.pins_in_net = 0;
                self.parsed_nets += 1;
            }
            node => {
                let Some(net) = self.current_net else {
                    return Err(DbError::Parse {
                        line: lineno,
                        message: "nets: pin line before any NetDegree".into(),
                    });
                };
                let Some(&cell) = self.by_name.get(node) else {
                    return Err(DbError::Parse {
                        line: lineno,
                        message: format!("nets: unknown node '{node}'"),
                    });
                };
                // `<node> <I|O|B> : dx dy` (offsets optional).
                let _dir = it.next();
                let _colon = it.next();
                let dx: f64 = it.next().and_then(|t| t.parse().ok()).unwrap_or(0.0);
                let dy: f64 = it.next().and_then(|t| t.parse().ok()).unwrap_or(0.0);
                // Clamp offsets into the node (some benchmarks have pins on
                // the boundary plus rounding noise).
                let (w, h) = self.nb.cell_dims(cell).ok_or_else(|| DbError::Parse {
                    line: lineno,
                    message: format!("nets: node '{node}' has no recorded size"),
                })?;
                self.nb
                    .connect(
                        net,
                        cell,
                        Point::new(dx.clamp(-w / 2.0, w / 2.0), dy.clamp(-h / 2.0, h / 2.0)),
                    )
                    .map_err(|e| DbError::Parse {
                        line: lineno,
                        message: e.to_string(),
                    })?;
                self.pins_in_net += 1;
                self.parsed_pins += 1;
            }
        }
        Ok(())
    }

    /// Checks the open net's pin list against its declared degree.
    fn close_net(&mut self) -> Result<(), DbError> {
        if let Some((line, degree, name)) = self.open_net.take() {
            if degree != self.pins_in_net {
                return Err(DbError::Parse {
                    line,
                    message: format!(
                        "nets: net '{name}' declares {degree} pin(s) but lists {} \
                         (truncated file?)",
                        self.pins_in_net
                    ),
                });
            }
        }
        Ok(())
    }

    fn finish_nets(&mut self, last_line: usize) -> Result<(), DbError> {
        self.close_net()?;
        if let Some(d) = self.declared_nets {
            if d != self.parsed_nets {
                return Err(DbError::Parse {
                    line: last_line,
                    message: format!(
                        "nets: NumNets declares {d} net(s) but the file defines {} \
                         (truncated file?)",
                        self.parsed_nets
                    ),
                });
            }
        }
        if let Some(d) = self.declared_pins {
            if d != self.parsed_pins {
                return Err(DbError::Parse {
                    line: last_line,
                    message: format!(
                        "nets: NumPins declares {d} pin(s) but the file defines {} \
                         (truncated file?)",
                        self.parsed_pins
                    ),
                });
            }
        }
        Ok(())
    }

    fn build(self) -> Result<(BTreeMap<String, CellId>, Netlist), DbError> {
        Ok((self.by_name, self.nb.build()?))
    }
}

/// Fields of the CoreRow block currently being parsed.
#[derive(Default)]
struct CurRow {
    y: Option<f64>,
    height: Option<f64>,
    site_width: Option<f64>,
    x_origin: Option<f64>,
    num_sites: Option<f64>,
}

/// Accumulates `.scl` core rows; the region is their bounding box.
#[derive(Default)]
struct SclPass {
    /// Completed rows as `(y, height, x origin, width)`.
    rows: Vec<(f64, f64, f64, f64)>,
    /// Current CoreRow block.
    cur: CurRow,
    /// Site width recovered from the first row that states one.
    first_site_width: Option<f64>,
}

impl SclPass {
    fn line(&mut self, line: &str) {
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks.as_slice() {
            ["CoreRow", ..] => self.cur = CurRow::default(),
            ["Coordinate", ":", v] => self.cur.y = v.parse().ok(),
            ["Height", ":", v] => self.cur.height = v.parse().ok(),
            ["Sitewidth", ":", v] => {
                let sw = v.parse().ok();
                self.cur.site_width = sw;
                if self.first_site_width.is_none() {
                    self.first_site_width = sw;
                }
            }
            ["SubrowOrigin", ":", x, "NumSites", ":", n] => {
                self.cur.x_origin = x.parse().ok();
                self.cur.num_sites = n.parse().ok();
            }
            ["SubrowOrigin", ":", x] => self.cur.x_origin = x.parse().ok(),
            ["NumSites", ":", n] => self.cur.num_sites = n.parse().ok(),
            ["End"] => {
                if let CurRow {
                    y: Some(y),
                    height: Some(h),
                    site_width: Some(sw),
                    x_origin: Some(x0),
                    num_sites: Some(ns),
                } = self.cur
                {
                    self.rows.push((y, h, x0, sw * ns));
                }
            }
            _ => {}
        }
    }

    /// Resolves `(region, row_height, site_width)`; with no usable rows, a
    /// square region sized for ~70% utilization is synthesized.
    fn finish(self, netlist: &Netlist) -> (Rect, f64, f64) {
        if self.rows.is_empty() {
            let area: f64 = netlist.movable_area().max(1.0) / 0.7;
            let side = area.sqrt().ceil();
            return (Rect::new(0.0, 0.0, side, side), 1.0, 0.2);
        }
        let row_h = self.rows[0].1;
        let site_w = self.first_site_width.unwrap_or(1.0);
        let xl = self.rows.iter().map(|r| r.2).fold(f64::INFINITY, f64::min);
        let xh = self
            .rows
            .iter()
            .map(|r| r.2 + r.3)
            .fold(f64::NEG_INFINITY, f64::max);
        let yl = self.rows.iter().map(|r| r.0).fold(f64::INFINITY, f64::min);
        let yh = self
            .rows
            .iter()
            .map(|r| r.0 + r.1)
            .fold(f64::NEG_INFINITY, f64::max);
        (Rect::new(xl, yl, xh, yh), row_h, site_w)
    }
}

fn make_design(
    name: &str,
    netlist: Netlist,
    region: Rect,
    row_height: f64,
    site_width: f64,
) -> Result<Design, DbError> {
    let mut tech = Technology::default();
    // Rescale the default stack so pitches stay proportional to row height.
    let scale = row_height / tech.row_height;
    tech.row_height = row_height;
    tech.site_width = site_width;
    for layer in &mut tech.layers {
        layer.metal_width *= scale;
        layer.wire_spacing *= scale;
    }
    Design::new(name, netlist, tech, region)
}

/// Applies one `.pl` line: movable positions land in `initial`, terminal
/// positions become design data.
fn pl_line(
    design: &mut Design,
    initial: &mut Placement,
    by_name: &BTreeMap<String, CellId>,
    lineno: usize,
    line: &str,
) -> Result<(), DbError> {
    let mut it = line.split_whitespace();
    let Some(node) = it.next() else {
        return Ok(());
    };
    let Some(&cell) = by_name.get(node) else {
        return Err(DbError::Parse {
            line: lineno,
            message: format!("pl: unknown node '{node}'"),
        });
    };
    let x: f64 = parse_tok(it.next(), "pl", lineno, "x")?;
    let y: f64 = parse_tok(it.next(), "pl", lineno, "y")?;
    let (w, h) = {
        let c = design.netlist().cell(cell);
        (c.width, c.height)
    };
    let center = Point::new(x + w / 2.0, y + h / 2.0);
    if design.netlist().cell(cell).is_movable() {
        initial.set(cell, center);
    } else {
        // Clamp into the region: Bookshelf terminals may sit on the
        // core boundary or in the periphery.
        let region = design.region();
        let half = Point::new(w / 2.0, h / 2.0);
        let clamped = Point::new(
            center.x.clamp(
                region.xl + half.x,
                (region.xh - half.x).max(region.xl + half.x),
            ),
            center.y.clamp(
                region.yl + half.y,
                (region.yh - half.y).max(region.yl + half.y),
            ),
        );
        design
            .place_macro(cell, clamped)
            .map_err(|e| DbError::Parse {
                line: lineno,
                message: e.to_string(),
            })?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Front-ends
// ---------------------------------------------------------------------------

/// Parses a Bookshelf design from in-memory file contents.
///
/// `scl` may be empty, in which case a square region sized for ~70%
/// utilization is synthesized. For on-disk inputs prefer
/// [`parse_bookshelf_streaming`] (or [`read_aux`]), which never
/// materializes the files.
///
/// # Errors
///
/// Returns [`DbError::Parse`] describing the offending file and line.
pub fn parse_bookshelf(
    name: &str,
    nodes: &str,
    nets: &str,
    pl: &str,
    scl: &str,
) -> Result<Design, DbError> {
    let mut parser = BookshelfParser::new();
    let mut last = 0;
    for (lineno, line) in content_lines(nodes, "UCLA nodes") {
        last = lineno;
        parser.nodes_line(lineno, line)?;
    }
    parser.finish_nodes(last)?;
    let mut last = 0;
    for (lineno, line) in content_lines(nets, "UCLA nets") {
        last = lineno;
        parser.nets_line(lineno, line)?;
    }
    parser.finish_nets(last)?;
    let mut scl_pass = SclPass::default();
    for (_, line) in content_lines(scl, "UCLA scl") {
        scl_pass.line(line);
    }
    let (by_name, netlist) = parser.build()?;
    let (region, row_height, site_width) = scl_pass.finish(&netlist);
    let mut design = make_design(name, netlist, region, row_height, site_width)?;
    // Fixed nodes only; movable positions are a starting point.
    let mut initial = design.initial_placement();
    for (lineno, line) in content_lines(pl, "UCLA pl") {
        pl_line(&mut design, &mut initial, &by_name, lineno, line)?;
    }
    // A partial or missing .pl leaves terminals unplaced; callers decide
    // whether that matters via [`Design::check_macros_placed`].
    Ok(design)
}

/// Parses a Bookshelf design by streaming each file line-by-line through a
/// reused buffer: peak memory is the netlist under construction plus one
/// line, regardless of file sizes.
///
/// Grammar and validation are byte-identical to [`parse_bookshelf`] — both
/// front-ends drive the same per-line parser.
///
/// # Errors
///
/// Returns [`DbError::Parse`] for malformed content and [`DbError::Read`]
/// (with the last completed line) when a reader fails mid-parse.
pub fn parse_bookshelf_streaming<N, E, P, S>(
    name: &str,
    nodes: N,
    nets: E,
    pl: P,
    scl: S,
) -> Result<Design, DbError>
where
    N: BufRead,
    E: BufRead,
    P: BufRead,
    S: BufRead,
{
    let mut parser = BookshelfParser::new();
    let mut reader = LineReader::new(nodes, ".nodes");
    let mut last = 0;
    while let Some((lineno, line)) = reader.next_content("UCLA nodes")? {
        last = lineno;
        parser.nodes_line(lineno, line)?;
    }
    parser.finish_nodes(last)?;

    let mut reader = LineReader::new(nets, ".nets");
    let mut last = 0;
    while let Some((lineno, line)) = reader.next_content("UCLA nets")? {
        last = lineno;
        parser.nets_line(lineno, line)?;
    }
    parser.finish_nets(last)?;

    let mut scl_pass = SclPass::default();
    let mut reader = LineReader::new(scl, ".scl");
    while let Some((_, line)) = reader.next_content("UCLA scl")? {
        scl_pass.line(line);
    }

    let (by_name, netlist) = parser.build()?;
    let (region, row_height, site_width) = scl_pass.finish(&netlist);
    let mut design = make_design(name, netlist, region, row_height, site_width)?;
    let mut initial = design.initial_placement();
    let mut reader = LineReader::new(pl, ".pl");
    while let Some((lineno, line)) = reader.next_content("UCLA pl")? {
        pl_line(&mut design, &mut initial, &by_name, lineno, line)?;
    }
    Ok(design)
}

/// How [`read_aux_with`] opens the sibling files named by the `.aux`.
/// The default opener is a plain buffered `File`; a caller can substitute
/// one that routes reads through a fault-injection hook.
pub type AuxOpener<'a> = dyn FnMut(&Path) -> std::io::Result<Box<dyn BufRead>> + 'a;

/// Reads a Bookshelf design given the path of its `.aux` file, streaming
/// every referenced file.
///
/// # Errors
///
/// Returns [`DbError`] on I/O failures or malformed content.
pub fn read_aux(path: impl AsRef<Path>) -> Result<Design, DbError> {
    read_aux_with(path, &mut |p: &Path| {
        Ok(Box::new(std::io::BufReader::new(std::fs::File::open(p)?)) as Box<dyn BufRead>)
    })
}

/// [`read_aux`] with a custom file opener, so callers can wrap the readers
/// (e.g. in a chaos-test fault hook) without this crate knowing about it.
///
/// # Errors
///
/// Returns [`DbError`] on I/O failures or malformed content.
pub fn read_aux_with(path: impl AsRef<Path>, open: &mut AuxOpener<'_>) -> Result<Design, DbError> {
    let path = path.as_ref();
    let mut aux = String::new();
    open(path)
        .and_then(|mut r| r.read_to_string(&mut aux))
        .map_err(DbError::Io)?;
    let dir = path.parent().unwrap_or(Path::new("."));
    let mut nodes: Option<PathBuf> = None;
    let mut nets: Option<PathBuf> = None;
    let mut pl: Option<PathBuf> = None;
    let mut scl: Option<PathBuf> = None;
    for tok in aux.split_whitespace() {
        let target: &mut Option<PathBuf> =
            match Path::new(tok).extension().and_then(|e| e.to_str()) {
                Some("nodes") => &mut nodes,
                Some("nets") => &mut nets,
                Some("pl") => &mut pl,
                Some("scl") => &mut scl,
                _ => continue,
            };
        *target = Some(dir.join(tok));
    }
    let (Some(nodes), Some(nets)) = (nodes, nets) else {
        return Err(DbError::Parse {
            line: 0,
            message: "aux: missing .nodes or .nets reference".into(),
        });
    };
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bookshelf");
    let nodes = open(&nodes).map_err(DbError::Io)?;
    let nets = open(&nets).map_err(DbError::Io)?;
    let pl: Box<dyn BufRead> = match pl {
        Some(p) => open(&p).map_err(DbError::Io)?,
        None => Box::new(std::io::empty()),
    };
    let scl: Box<dyn BufRead> = match scl {
        Some(p) => open(&p).map_err(DbError::Io)?,
        None => Box::new(std::io::empty()),
    };
    parse_bookshelf_streaming(name, nodes, nets, pl, scl)
}

/// Serialises a placement as a Bookshelf `.pl` file (lower-left corners;
/// fixed nodes tagged `/FIXED`).
pub fn write_pl(design: &Design, placement: &Placement) -> String {
    let mut out = String::from("UCLA pl 1.0\n\n");
    for (id, cell) in design.netlist().iter_cells() {
        let p = placement.pos(id);
        let x = p.x - cell.width / 2.0;
        let y = p.y - cell.height / 2.0;
        if cell.is_movable() {
            out.push_str(&format!("{} {:.4} {:.4} : N\n", cell.name, x, y));
        } else {
            out.push_str(&format!("{} {:.4} {:.4} : N /FIXED\n", cell.name, x, y));
        }
    }
    out
}

/// Iterates `(line_number, line)` over non-comment, non-header content.
fn content_lines<'a>(
    text: &'a str,
    header: &'a str,
) -> impl Iterator<Item = (usize, &'a str)> + 'a {
    text.lines().enumerate().filter_map(move |(i, l)| {
        let t = l.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with(header) {
            None
        } else {
            Some((i + 1, t))
        }
    })
}

fn parse_tok<T: std::str::FromStr>(
    tok: Option<&str>,
    file: &str,
    line: usize,
    what: &str,
) -> Result<T, DbError> {
    tok.ok_or_else(|| DbError::Parse {
        line,
        message: format!("{file}: missing {what}"),
    })?
    .parse()
    .map_err(|_| DbError::Parse {
        line,
        message: format!("{file}: bad {what}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const NODES: &str = "UCLA nodes 1.0\n# comment\nNumNodes : 3\nNumTerminals : 1\n\
        a 2 1\nb 2 1\nram 8 8 terminal\n";
    const NETS: &str = "UCLA nets 1.0\nNumNets : 2\nNumPins : 4\n\
        NetDegree : 2 n0\n a I : 0.5 0.0\n b O : -0.5 0.0\n\
        NetDegree : 2 n1\n b I : 0 0\n ram O : 0 0\n";
    const PL: &str = "UCLA pl 1.0\n\na 0 0 : N\nb 4 0 : N\nram 20 20 : N /FIXED\n";
    const SCL: &str = "UCLA scl 1.0\nNumRows : 2\n\
        CoreRow Horizontal\n Coordinate : 0\n Height : 1\n Sitewidth : 1\n \
        Sitespacing : 1\n SubrowOrigin : 0 NumSites : 40\nEnd\n\
        CoreRow Horizontal\n Coordinate : 1\n Height : 1\n Sitewidth : 1\n \
        Sitespacing : 1\n SubrowOrigin : 0 NumSites : 40\nEnd\n";

    #[test]
    fn parses_a_minimal_design() {
        // Region is only 2 rows tall; grow it via more rows for the macro.
        let tall_scl: String = (0..30)
            .map(|i| {
                format!(
                    "CoreRow Horizontal\n Coordinate : {i}\n Height : 1\n Sitewidth : 1\n \
                     SubrowOrigin : 0 NumSites : 40\nEnd\n"
                )
            })
            .collect();
        let d = parse_bookshelf("mini", NODES, NETS, PL, &tall_scl).unwrap();
        let s = d.stats();
        assert_eq!(s.movable_cells, 2);
        assert_eq!(s.macros, 1);
        assert_eq!(s.nets, 2);
        assert_eq!(s.movable_pins, 3);
        assert_eq!(d.region(), Rect::new(0.0, 0.0, 40.0, 30.0));
        assert_eq!(d.tech().row_height, 1.0);
        // Fixed node at lower-left (20, 20), size 8x8 → center (24, 24).
        let m = d.netlist().fixed_macros().next().unwrap();
        assert_eq!(d.fixed_position(m), Some(Point::new(24.0, 24.0)));
    }

    #[test]
    fn missing_scl_synthesizes_a_region() {
        let d = parse_bookshelf("mini", NODES, NETS, "", "").unwrap();
        assert!(d.region().area() > 0.0);
        assert!(d.check_macros_placed().is_err(), "no .pl ⇒ macro unplaced");
    }

    #[test]
    fn unknown_nodes_in_nets_are_reported() {
        let bad = "NetDegree : 2 n0\n a I : 0 0\n ghost O : 0 0\n";
        let err = parse_bookshelf("x", NODES, bad, "", "").unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn pin_offsets_are_clamped_into_the_node() {
        let nets = "NetDegree : 2 n0\n a I : 99 99\n b O : 0 0\n";
        let d = parse_bookshelf("x", NODES, nets, "", "").unwrap();
        let pin = d.netlist().pin(crate::netlist::PinId(0));
        assert!(pin.offset.x <= 1.0 && pin.offset.y <= 0.5);
    }

    #[test]
    fn pl_round_trips_through_write_pl() {
        let tall_scl: String = (0..30)
            .map(|i| {
                format!(
                    "CoreRow Horizontal\n Coordinate : {i}\n Height : 1\n Sitewidth : 1\n \
                     SubrowOrigin : 0 NumSites : 40\nEnd\n"
                )
            })
            .collect();
        let d = parse_bookshelf("mini", NODES, NETS, PL, &tall_scl).unwrap();
        let mut placement = d.initial_placement();
        let a = d.netlist().movable_cells().next().unwrap();
        placement.set(a, Point::new(3.0, 5.5));
        let pl_text = write_pl(&d, &placement);
        assert!(pl_text.contains("/FIXED"));
        // Lower-left of cell 'a' (2x1 at center (3, 5.5)) is (2, 5).
        assert!(pl_text.contains("a 2.0000 5.0000 : N"));

        // Feed the written .pl back in: same fixed position, moved cell.
        let d2 = parse_bookshelf("mini", NODES, NETS, &pl_text, &tall_scl).unwrap();
        let m = d2.netlist().fixed_macros().next().unwrap();
        assert_eq!(d2.fixed_position(m), Some(Point::new(24.0, 24.0)));
    }

    #[test]
    fn read_aux_resolves_sibling_files() {
        let dir = std::env::temp_dir().join("puffer-bookshelf-test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("t.nodes"), NODES).unwrap();
        std::fs::write(dir.join("t.nets"), NETS).unwrap();
        std::fs::write(dir.join("t.pl"), "").unwrap();
        std::fs::write(dir.join("t.scl"), SCL).unwrap();
        std::fs::write(
            dir.join("t.aux"),
            "RowBasedPlacement : t.nodes t.nets t.wts t.pl t.scl\n",
        )
        .unwrap();
        let d = read_aux(dir.join("t.aux")).unwrap();
        assert_eq!(d.name(), "t");
        assert_eq!(d.stats().movable_cells, 2);
        assert_eq!(d.region().xh, 40.0);
    }

    #[test]
    fn generated_design_places_after_bookshelf_round_trip() {
        // Cross-check against our own text format: a design exported to
        // Bookshelf .pl and re-read keeps the same netlist structure.
        let d = parse_bookshelf("mini", NODES, NETS, "", "").unwrap();
        assert_eq!(d.netlist().num_pins(), 4);
        for (id, _) in d.netlist().iter_nets() {
            assert_eq!(d.netlist().net_degree(id), 2);
        }
    }

    #[test]
    fn streaming_matches_slurp_on_the_fixture() {
        let tall_scl: String = (0..30)
            .map(|i| {
                format!(
                    "CoreRow Horizontal\n Coordinate : {i}\n Height : 1\n Sitewidth : 1\n \
                     SubrowOrigin : 0 NumSites : 40\nEnd\n"
                )
            })
            .collect();
        let slurped = parse_bookshelf("mini", NODES, NETS, PL, &tall_scl).unwrap();
        let streamed = parse_bookshelf_streaming(
            "mini",
            NODES.as_bytes(),
            NETS.as_bytes(),
            PL.as_bytes(),
            tall_scl.as_bytes(),
        )
        .unwrap();
        let mut a = Vec::new();
        let mut b = Vec::new();
        crate::io::write_design(&slurped, &mut a).unwrap();
        crate::io::write_design(&streamed, &mut b).unwrap();
        assert_eq!(a, b, "streaming parse must be bit-identical to slurping");
    }

    #[test]
    fn streaming_handles_crlf_line_endings() {
        let nodes = NODES.replace('\n', "\r\n");
        let nets = NETS.replace('\n', "\r\n");
        let d =
            parse_bookshelf_streaming("crlf", nodes.as_bytes(), nets.as_bytes(), &b""[..], &b""[..])
                .unwrap();
        assert_eq!(d.stats().nets, 2);
        assert_eq!(d.netlist().num_pins(), 4);
    }

    #[test]
    fn truncated_net_pin_list_is_rejected() {
        // Cut the file mid-net: n1 declares 2 pins but lists 1.
        let truncated = "UCLA nets 1.0\n\
            NetDegree : 2 n0\n a I : 0 0\n b O : 0 0\n\
            NetDegree : 2 n1\n b I : 0 0\n";
        let err = parse_bookshelf("x", NODES, truncated, "", "").unwrap_err();
        match err {
            DbError::Parse { line, ref message } => {
                assert_eq!(line, 5, "error points at the NetDegree line");
                assert!(message.contains("n1"), "got: {message}");
                assert!(message.contains("declares 2"), "got: {message}");
            }
            other => panic!("expected a parse error, got {other:?}"),
        }
        // The streaming front-end agrees.
        let err = parse_bookshelf_streaming(
            "x",
            NODES.as_bytes(),
            truncated.as_bytes(),
            &b""[..],
            &b""[..],
        )
        .unwrap_err();
        assert!(matches!(err, DbError::Parse { line: 5, .. }));
    }

    #[test]
    fn declared_count_mismatches_are_rejected() {
        let nodes = "UCLA nodes 1.0\nNumNodes : 5\na 2 1\nb 2 1\n";
        let err = parse_bookshelf("x", nodes, "", "", "").unwrap_err();
        assert!(err.to_string().contains("NumNodes"), "got: {err}");

        let nets = "UCLA nets 1.0\nNumNets : 3\n\
            NetDegree : 2 n0\n a I : 0 0\n b O : 0 0\n";
        let err = parse_bookshelf("x", NODES, nets, "", "").unwrap_err();
        assert!(err.to_string().contains("NumNets"), "got: {err}");

        let nets = "UCLA nets 1.0\nNumPins : 9\n\
            NetDegree : 2 n0\n a I : 0 0\n b O : 0 0\n";
        let err = parse_bookshelf("x", NODES, nets, "", "").unwrap_err();
        assert!(err.to_string().contains("NumPins"), "got: {err}");
    }

    #[test]
    fn failing_reader_surfaces_a_read_error_with_context() {
        // A reader that yields one good line and then an I/O error.
        struct Flaky {
            sent: bool,
        }
        impl Read for Flaky {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.sent {
                    return Err(std::io::Error::other("wire cut"));
                }
                self.sent = true;
                let line = b"NetDegree : 2 n0\n";
                buf[..line.len()].copy_from_slice(line);
                Ok(line.len())
            }
        }
        let nets = std::io::BufReader::new(Flaky { sent: false });
        let err = parse_bookshelf_streaming("x", NODES.as_bytes(), nets, &b""[..], &b""[..])
            .unwrap_err();
        match err {
            DbError::Read { ref file, line, .. } => {
                assert_eq!(file, ".nets");
                assert_eq!(line, 1, "one line was consumed before the failure");
            }
            other => panic!("expected a read error, got {other:?}"),
        }
    }
}
