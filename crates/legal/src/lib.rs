//! White-space-assisted legalization (paper §III-D).
//!
//! PUFFER inherits the cell padding from global placement into
//! legalization so that the white space protecting congested regions
//! survives the snap to legal positions:
//!
//! * [`discrete`] — the staircase discretization of Eq. (17) and the 5%
//!   padding-area budget with smallest-first relegation;
//! * [`abacus`] — an Abacus-based legalizer operating on padded footprints
//!   over macro-aware row segments;
//! * [`check`] — an independent legality checker used by tests and flows.
//!
//! # Example
//!
//! ```
//! use puffer_legal::{legalize, check_legal};
//! use puffer_gen::{generate, GeneratorConfig};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = generate(&GeneratorConfig {
//!     num_cells: 200, num_nets: 220, utilization: 0.5,
//!     ..GeneratorConfig::default()
//! })?;
//! let pad = vec![0u32; design.netlist().num_cells()];
//! let out = legalize(&design, &design.initial_placement(), &pad)?;
//! check_legal(&design, &out.placement, &pad)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod abacus;
pub mod check;
pub mod discrete;
pub mod segments;

pub use abacus::{legalize, legalize_bounded, LegalizeOutcome};
pub use check::check_legal;
pub use discrete::{discretize_padding, enforce_budget};
pub use segments::{row_segments, RowSegment};

use std::error::Error;
use std::fmt;

/// Errors produced by legalization.
#[derive(Debug)]
pub enum LegalizeError {
    /// Input vectors disagreed with the design.
    BadInput(String),
    /// Cells could not be fit into the available row segments.
    OutOfCapacity(String),
    /// A legality check failed (from [`check_legal`]).
    Illegal(String),
    /// The execution budget expired or was cancelled mid-legalization
    /// (only from [`legalize_bounded`]). A partially legalized placement
    /// is never returned — callers keep the pre-legalization snapshot.
    Cancelled(puffer_budget::Cancelled),
}

impl fmt::Display for LegalizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LegalizeError::BadInput(m) => write!(f, "bad legalization input: {m}"),
            LegalizeError::OutOfCapacity(m) => write!(f, "out of placement capacity: {m}"),
            LegalizeError::Illegal(m) => write!(f, "illegal placement: {m}"),
            LegalizeError::Cancelled(c) => write!(f, "legalization cancelled: {c}"),
        }
    }
}

impl Error for LegalizeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_variants() {
        assert!(LegalizeError::BadInput("x".into())
            .to_string()
            .contains("bad"));
        assert!(LegalizeError::OutOfCapacity("y".into())
            .to_string()
            .contains("capacity"));
        assert!(LegalizeError::Illegal("z".into())
            .to_string()
            .contains("illegal"));
    }

    #[test]
    fn nan_coordinates_are_a_bad_input_error() {
        use puffer_db::geom::Point;
        use puffer_gen::{generate, GeneratorConfig};
        let d = generate(&GeneratorConfig {
            num_cells: 50,
            num_nets: 55,
            ..GeneratorConfig::default()
        })
        .unwrap();
        let mut p = d.initial_placement();
        let victim = d.netlist().movable_cells().next().unwrap();
        p.set(victim, Point::new(f64::NAN, 1.0));
        let pad = vec![0u32; d.netlist().num_cells()];
        let err = legalize(&d, &p, &pad).unwrap_err();
        assert!(matches!(err, LegalizeError::BadInput(_)), "{err}");
        assert!(err.to_string().contains("non-finite"), "{err}");
    }

    #[test]
    fn end_to_end_with_generated_design_and_padding() {
        use puffer_gen::{generate, GeneratorConfig};
        let d = generate(&GeneratorConfig {
            num_cells: 500,
            num_nets: 550,
            num_macros: 2,
            utilization: 0.6,
            ..GeneratorConfig::default()
        })
        .unwrap();
        // Continuous padding on a slice of cells, as the optimizer would
        // produce.
        let n = d.netlist().num_cells();
        let continuous: Vec<f64> = (0..n).map(|i| if i % 7 == 0 { 0.4 } else { 0.0 }).collect();
        let mut discrete = discretize_padding(&continuous, 4.0);
        enforce_budget(
            d.netlist(),
            &continuous,
            &mut discrete,
            d.tech().site_width,
            0.05,
        );
        let out = legalize(&d, &d.initial_placement(), &discrete).unwrap();
        check_legal(&d, &out.placement, &discrete).unwrap();
        assert!(out.max_displacement.is_finite());
    }
}
