//! Abacus-based legalization (Spindler et al., ISPD 2008; paper §III-D).
//!
//! Cells are processed in x-order; each is inserted into the row segment
//! minimizing its displacement. Within a segment the classic Abacus cluster
//! dynamic program packs cells optimally for quadratic movement: clusters
//! of touching cells are collapsed while they overlap, each cluster sitting
//! at its weighted-average optimal position clamped into the segment.
//!
//! The legalizer works on *footprint* widths — physical width plus the
//! discretized padding — so the white space reserved by PUFFER's padding
//! survives into the legal placement (§III-D's padding inheritance).

use crate::segments::{row_segments, RowSegment as Segment};
use crate::LegalizeError;
use puffer_db::design::{Design, Placement};
use puffer_db::geom::Point;
use puffer_db::netlist::CellId;

/// Abacus cluster: a maximal run of touching cells in one segment.
#[derive(Debug, Clone)]
struct Cluster {
    /// First cell index (into the segment's cell list).
    first: usize,
    /// Total weight `e` (we use footprint widths as weights).
    e: f64,
    /// Optimal-position accumulator `q = Σ e·(x' − offset)`.
    q: f64,
    /// Total width `w`.
    w: f64,
    /// Current position (left edge).
    x: f64,
}

/// Per-segment legalization state.
#[derive(Debug, Clone, Default)]
struct SegmentState {
    /// `(cell, footprint_width, desired_left_x)` in insertion order.
    cells: Vec<(CellId, f64, f64)>,
    clusters: Vec<Cluster>,
}

/// Result of legalization.
#[derive(Debug, Clone, PartialEq)]
pub struct LegalizeOutcome {
    /// The legal placement (cell centers; padding split evenly on both
    /// sides of each padded cell).
    pub placement: Placement,
    /// Average cell displacement (L1, movable cells).
    pub avg_displacement: f64,
    /// Maximum cell displacement (L1).
    pub max_displacement: f64,
}

/// Legalizes `global` with per-cell padding given in *sites*.
///
/// `padding_sites[i]` widens cell `i`'s footprint by that many placement
/// sites (white space split evenly left/right). Pass all-zeros for plain
/// legalization.
///
/// # Errors
///
/// Returns [`LegalizeError::OutOfCapacity`] when some cell cannot fit into
/// any row segment and [`LegalizeError::BadInput`] on length mismatches.
pub fn legalize(
    design: &Design,
    global: &Placement,
    padding_sites: &[u32],
) -> Result<LegalizeOutcome, LegalizeError> {
    legalize_bounded(design, global, padding_sites, &puffer_budget::Budget::unbounded())
}

/// [`legalize`] under an execution [`Budget`](puffer_budget::Budget),
/// checked every few hundred cell insertions.
///
/// Legalization is all-or-nothing — a half-inserted placement is not
/// legal — so on expiry this returns [`LegalizeError::Cancelled`] and the
/// caller keeps its pre-legalization snapshot. Flows that must always end
/// legal (e.g. the deadline-bounded place flow) call the unbounded
/// [`legalize`] for their final pass instead.
///
/// # Errors
///
/// The errors of [`legalize`], plus [`LegalizeError::Cancelled`].
pub fn legalize_bounded(
    design: &Design,
    global: &Placement,
    padding_sites: &[u32],
    budget: &puffer_budget::Budget,
) -> Result<LegalizeOutcome, LegalizeError> {
    let netlist = design.netlist();
    if padding_sites.len() != netlist.num_cells() {
        return Err(LegalizeError::BadInput(format!(
            "padding has {} entries for {} cells",
            padding_sites.len(),
            netlist.num_cells()
        )));
    }
    if global.len() != netlist.num_cells() {
        return Err(LegalizeError::BadInput(format!(
            "placement has {} entries for {} cells",
            global.len(),
            netlist.num_cells()
        )));
    }
    let site = design.tech().site_width;
    let row_h = design.tech().row_height;

    // Macro-aware, site-aligned row segments (shared with detailed
    // placement via [`crate::segments`]).
    let segments: Vec<Segment> = row_segments(design);
    if segments.is_empty() {
        return Err(LegalizeError::OutOfCapacity("no free row segments".into()));
    }
    let mut states: Vec<SegmentState> = vec![SegmentState::default(); segments.len()];

    // Sort movable cells by x (standard Abacus order).
    let mut order: Vec<CellId> = netlist.movable_cells().collect();
    for &cell in &order {
        let p = global.pos(cell);
        if !p.x.is_finite() || !p.y.is_finite() {
            return Err(LegalizeError::BadInput(format!(
                "cell '{}' has a non-finite global position {p}",
                netlist.cell(cell).name
            )));
        }
    }
    order.sort_by(|&a, &b| global.pos(a).x.total_cmp(&global.pos(b).x));

    // Index segments per row band for fast candidate lookup.
    let y0 = design.region().yl;
    let n_rows = design.rows().len();
    if n_rows == 0 {
        return Err(LegalizeError::OutOfCapacity("design has no rows".into()));
    }
    let mut by_row: Vec<Vec<usize>> = vec![Vec::new(); n_rows];
    for (i, s) in segments.iter().enumerate() {
        let r = (((s.y - y0) / row_h).round() as usize).min(n_rows - 1);
        by_row[r].push(i);
    }

    for (done, &cell) in order.iter().enumerate() {
        if done.is_multiple_of(256) {
            budget.check().map_err(LegalizeError::Cancelled)?;
        }
        let c = netlist.cell(cell);
        let foot_w = align_up(c.width + padding_sites[cell.index()] as f64 * site, site);
        let gp = global.pos(cell);
        let desired_left = gp.x - foot_w / 2.0;
        let ideal_row =
            (((gp.y - c.height / 2.0 - y0) / row_h).round().max(0.0) as usize).min(n_rows - 1);

        let mut best: Option<(usize, f64)> = None; // (segment index, cost)
                                                   // Search rows outward from the ideal row; stop when the row's y
                                                   // distance alone exceeds the best cost found.
        for dist in 0..n_rows {
            let dy = dist as f64 * row_h;
            if let Some((_, cost)) = best {
                if dy > cost {
                    break;
                }
            }
            let mut rows_to_try: Vec<usize> = Vec::new();
            if dist == 0 {
                rows_to_try.push(ideal_row);
            } else {
                if ideal_row >= dist {
                    rows_to_try.push(ideal_row - dist);
                }
                if ideal_row + dist < n_rows {
                    rows_to_try.push(ideal_row + dist);
                }
            }
            for row in rows_to_try {
                for &si in &by_row[row] {
                    let seg = segments[si];
                    if seg.x_max - seg.x_min < foot_w {
                        continue;
                    }
                    // Capacity check.
                    let used: f64 = states[si].cells.iter().map(|(_, w, _)| w).sum();
                    if used + foot_w > seg.x_max - seg.x_min + 1e-9 {
                        continue;
                    }
                    let trial = trial_insert(&states[si], seg, cell, foot_w, desired_left, site);
                    let dy_actual = (seg.y + c.height / 2.0 - gp.y).abs();
                    let cost = trial + dy_actual;
                    if best.is_none_or(|(_, bc)| cost < bc) {
                        best = Some((si, cost));
                    }
                }
            }
        }

        let Some((si, _)) = best else {
            return Err(LegalizeError::OutOfCapacity(format!(
                "cell '{}' (footprint {foot_w}) does not fit in any segment",
                c.name
            )));
        };
        commit_insert(
            &mut states[si],
            segments[si],
            cell,
            foot_w,
            desired_left,
            site,
        );
    }

    // Emit the legal placement. Padding is split ⌊m/2⌋ sites to the left
    // and ⌈m/2⌉ to the right of the physical cell so that the physical left
    // edge stays on the site grid for odd paddings.
    let mut placement = global.clone();
    let (mut sum_d, mut max_d, mut count) = (0.0, 0.0f64, 0usize);
    for (si, state) in states.iter().enumerate() {
        let seg = segments[si];
        for cl in &state.clusters {
            let mut x = cl.x;
            for i in cl.first..cl.first + count_in_cluster(state, cl) {
                let (cell, w, _) = state.cells[i];
                let cdef = netlist.cell(cell);
                let left_pad = (padding_sites[cell.index()] / 2) as f64 * site;
                let center = Point::new(x + left_pad + cdef.width / 2.0, seg.y + cdef.height / 2.0);
                let d = center.l1_distance(global.pos(cell));
                sum_d += d;
                max_d = max_d.max(d);
                count += 1;
                placement.set(cell, center);
                x += w;
            }
        }
    }
    Ok(LegalizeOutcome {
        placement,
        avg_displacement: if count > 0 { sum_d / count as f64 } else { 0.0 },
        max_displacement: max_d,
    })
}

fn count_in_cluster(state: &SegmentState, cl: &Cluster) -> usize {
    // Clusters partition the cell list in order; the next cluster's first
    // index (or the list end) bounds this cluster.
    let next_first = state
        .clusters
        .iter()
        .map(|c| c.first)
        .filter(|&f| f > cl.first)
        .min()
        .unwrap_or(state.cells.len());
    next_first - cl.first
}

fn align_up(w: f64, site: f64) -> f64 {
    // Tolerate float noise in widths that are already site multiples
    // (0.6/0.2 can evaluate to 3.0000000000000004).
    (w / site - 1e-9).ceil().max(1.0) * site
}

fn align_to_site(x: f64, x_min: f64, site: f64) -> f64 {
    x_min + ((x - x_min) / site).round() * site
}

/// Cost of inserting (the cell's own |Δx| after packing), without mutating.
fn trial_insert(
    state: &SegmentState,
    seg: Segment,
    cell: CellId,
    w: f64,
    desired_left: f64,
    site: f64,
) -> f64 {
    let mut clone = state.clone();
    commit_insert(&mut clone, seg, cell, w, desired_left, site);
    // Find the cell's final x.
    for cl in &clone.clusters {
        let mut x = cl.x;
        for i in cl.first..cl.first + count_in_cluster(&clone, cl) {
            let (cid, cw, want) = clone.cells[i];
            if cid == cell {
                return (x - want).abs();
            }
            x += cw;
        }
    }
    f64::INFINITY
}

/// The Abacus `PlaceRow` step: append the cell, then collapse clusters.
fn commit_insert(
    state: &mut SegmentState,
    seg: Segment,
    cell: CellId,
    w: f64,
    desired_left: f64,
    site: f64,
) {
    let desired = desired_left.clamp(seg.x_min, (seg.x_max - w).max(seg.x_min));
    let idx = state.cells.len();
    state.cells.push((cell, w, desired));
    state.clusters.push(Cluster {
        first: idx,
        e: w,
        q: w * desired,
        w,
        x: desired,
    });
    collapse(state, seg, site);
}

fn collapse(state: &mut SegmentState, seg: Segment, site: f64) {
    loop {
        // Position the last cluster optimally & clamp.
        {
            let Some(cl) = state.clusters.last_mut() else {
                return; // no clusters yet: nothing to place
            };
            let x_opt = cl.q / cl.e;
            cl.x = align_to_site(
                x_opt.clamp(seg.x_min, (seg.x_max - cl.w).max(seg.x_min)),
                seg.x_min,
                site,
            );
            if cl.x + cl.w > seg.x_max + 1e-9 {
                // Floor-align so the cluster's right edge stays inside.
                let x = seg.x_min + ((seg.x_max - cl.w - seg.x_min) / site).floor() * site;
                cl.x = x.max(seg.x_min);
            }
        }
        let [.., prev, last] = state.clusters.as_slice() else {
            return; // fewer than two clusters: nothing to merge
        };
        if prev.x + prev.w <= last.x + 1e-9 {
            return; // no overlap: done
        }
        // Merge last into prev (Abacus AddCluster). The pattern above
        // guarantees both clusters exist.
        let Some(last) = state.clusters.pop() else {
            return;
        };
        let Some(prev) = state.clusters.last_mut() else {
            return;
        };
        prev.q += last.q - last.e * prev.w;
        prev.e += last.e;
        prev.w += last.w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_db::geom::Rect;
    use puffer_db::netlist::{CellKind, NetlistBuilder};
    use puffer_db::tech::Technology;

    fn design(n: usize, w: f64, region: f64) -> Design {
        let mut nb = NetlistBuilder::new();
        for i in 0..n {
            nb.add_cell(format!("c{i}"), w, 1.0, CellKind::Movable);
        }
        Design::new(
            "t",
            nb.build().unwrap(),
            Technology::default(),
            Rect::new(0.0, 0.0, region, region),
        )
        .unwrap()
    }

    fn no_pad(d: &Design) -> Vec<u32> {
        vec![0; d.netlist().num_cells()]
    }

    fn assert_legal(d: &Design, p: &Placement, pad: &[u32]) {
        crate::check::check_legal(d, p, pad).unwrap();
    }

    #[test]
    fn overlapping_pair_is_separated() {
        let d = design(2, 1.0, 10.0);
        let mut g = Placement::zeroed(2);
        g.set(CellId(0), Point::new(5.0, 5.2));
        g.set(CellId(1), Point::new(5.0, 5.2));
        let out = legalize(&d, &g, &no_pad(&d)).unwrap();
        assert_legal(&d, &out.placement, &no_pad(&d));
        let a = out.placement.pos(CellId(0));
        let b = out.placement.pos(CellId(1));
        // Same row (closest to y=5.2 → row 4 or 5), abutting or separated.
        assert!((a.x - b.x).abs() >= 1.0 - 1e-9);
    }

    #[test]
    fn already_legal_placement_barely_moves() {
        let d = design(3, 1.0, 12.0);
        let mut g = Placement::zeroed(3);
        g.set(CellId(0), Point::new(1.5, 2.5));
        g.set(CellId(1), Point::new(4.5, 2.5));
        g.set(CellId(2), Point::new(8.5, 6.5));
        let out = legalize(&d, &g, &no_pad(&d)).unwrap();
        assert_legal(&d, &out.placement, &no_pad(&d));
        assert!(out.max_displacement < 0.5, "max {}", out.max_displacement);
    }

    #[test]
    fn padding_reserves_white_space() {
        let d = design(2, 1.0, 12.0);
        let mut g = Placement::zeroed(2);
        g.set(CellId(0), Point::new(6.0, 3.0));
        g.set(CellId(1), Point::new(6.0, 3.0));
        // Cell 0 padded by 5 sites = 1.0 extra width.
        let pad = vec![5u32, 0];
        let out = legalize(&d, &g, &pad).unwrap();
        assert_legal(&d, &out.placement, &pad);
        let a = out.placement.pos(CellId(0));
        let b = out.placement.pos(CellId(1));
        if (a.y - b.y).abs() < 1e-9 {
            // Padded footprint is 2.0 wide with the cell sitting 2 sites
            // (0.4) from its left edge; worst-case center separation is
            // half-widths (1.0) plus the smaller pad side (0.4).
            assert!((a.x - b.x).abs() >= 1.4 - 1e-9, "|{} - {}|", a.x, b.x);
        }
    }

    #[test]
    fn cells_avoid_macros() {
        let mut nb = NetlistBuilder::new();
        for i in 0..8 {
            nb.add_cell(format!("c{i}"), 1.0, 1.0, CellKind::Movable);
        }
        let m = nb.add_cell("blk", 6.0, 6.0, CellKind::FixedMacro);
        let mut d = Design::new(
            "t",
            nb.build().unwrap(),
            Technology::default(),
            Rect::new(0.0, 0.0, 16.0, 16.0),
        )
        .unwrap();
        d.place_macro(m, Point::new(8.0, 8.0)).unwrap();
        let mut g = d.initial_placement();
        for i in 0..8u32 {
            g.set(CellId(i), Point::new(8.0, 8.0)); // all inside the macro
        }
        let pad = vec![0u32; 9];
        let out = legalize(&d, &g, &pad).unwrap();
        crate::check::check_legal(&d, &out.placement, &pad).unwrap();
    }

    #[test]
    fn dense_row_packs_without_overlap() {
        let d = design(30, 1.0, 12.0);
        let mut g = Placement::zeroed(30);
        for i in 0..30u32 {
            g.set(CellId(i), Point::new(6.0 + (i as f64) * 0.01, 6.0));
        }
        let out = legalize(&d, &g, &no_pad(&d)).unwrap();
        assert_legal(&d, &out.placement, &no_pad(&d));
    }

    #[test]
    fn cancelled_budget_aborts_legalization_cleanly() {
        let d = design(30, 1.0, 12.0);
        let mut g = Placement::zeroed(30);
        for i in 0..30u32 {
            g.set(CellId(i), Point::new(6.0, 6.0));
        }
        let token = puffer_budget::CancelToken::new();
        token.cancel();
        let budget = puffer_budget::Budget::unbounded().with_token(token);
        let err = legalize_bounded(&d, &g, &no_pad(&d), &budget).unwrap_err();
        assert!(matches!(err, LegalizeError::Cancelled(_)), "{err}");
    }

    #[test]
    fn impossible_fit_errors() {
        // Region 4x4 with 1 row of width 4; a cell of width 6 cannot fit.
        let d = design(1, 6.0, 4.0);
        let g = d.initial_placement();
        match legalize(&d, &g, &no_pad(&d)) {
            Err(LegalizeError::OutOfCapacity(_)) => {}
            other => panic!("expected OutOfCapacity, got {other:?}"),
        }
    }

    #[test]
    fn bad_padding_length_errors() {
        let d = design(2, 1.0, 8.0);
        let g = d.initial_placement();
        assert!(matches!(
            legalize(&d, &g, &[0u32]),
            Err(LegalizeError::BadInput(_))
        ));
    }

    #[test]
    fn cluster_sits_at_weighted_average_position() {
        // Three equal cells all wanting x-center 5.0 in one row: Abacus
        // packs them as a cluster centred at the common target.
        let d = design(3, 1.0, 12.0);
        let mut g = Placement::zeroed(3);
        for i in 0..3u32 {
            g.set(CellId(i), Point::new(5.0, 0.5));
        }
        let out = legalize(&d, &g, &no_pad(&d)).unwrap();
        assert_legal(&d, &out.placement, &no_pad(&d));
        let mut xs: Vec<f64> = (0..3u32).map(|i| out.placement.pos(CellId(i)).x).collect();
        xs.sort_by(f64::total_cmp);
        // Abutted: consecutive centers exactly one width apart.
        assert!((xs[1] - xs[0] - 1.0).abs() < 1e-9);
        assert!((xs[2] - xs[1] - 1.0).abs() < 1e-9);
        // Cluster centroid near the common target (site rounding allowed).
        let centroid = (xs[0] + xs[2]) / 2.0;
        assert!((centroid - 5.0).abs() <= 0.2 + 1e-9, "centroid {centroid}");
        // All in the same row.
        let ys: Vec<f64> = (0..3u32).map(|i| out.placement.pos(CellId(i)).y).collect();
        assert!(ys.iter().all(|&y| (y - ys[0]).abs() < 1e-9));
    }

    #[test]
    fn trial_cost_matches_committed_position() {
        let d = design(2, 1.0, 12.0);
        let mut g = Placement::zeroed(2);
        g.set(CellId(0), Point::new(4.1, 0.5));
        g.set(CellId(1), Point::new(4.1, 0.5));
        let out = legalize(&d, &g, &no_pad(&d)).unwrap();
        // The second cell's displacement must equal what the row-selection
        // trial predicted, i.e. both cells end up adjacent to the target.
        let a = out.placement.pos(CellId(0));
        let b = out.placement.pos(CellId(1));
        assert!((a.x - 4.1).abs() < 1.2 && (b.x - 4.1).abs() < 1.2);
        assert!(out.max_displacement < 1.5);
    }

    #[test]
    fn displacement_stats_are_consistent() {
        let d = design(10, 1.0, 16.0);
        let mut g = Placement::zeroed(10);
        for i in 0..10u32 {
            g.set(CellId(i), Point::new(8.0, 8.0));
        }
        let out = legalize(&d, &g, &no_pad(&d)).unwrap();
        assert!(out.avg_displacement <= out.max_displacement + 1e-12);
        assert!(out.avg_displacement > 0.0);
    }
}
