//! Macro-aware row segments: the free intervals of each placement row.
//!
//! Both the Abacus legalizer and downstream detailed placement operate on
//! these segments; bounds are aligned inward onto the global site grid so
//! every in-segment site offset is legal.

use puffer_db::design::Design;

/// A free interval of one placement row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowSegment {
    /// Bottom y of the row.
    pub y: f64,
    /// Left edge (site-aligned).
    pub x_min: f64,
    /// Right edge (site-aligned).
    pub x_max: f64,
}

impl RowSegment {
    /// Usable width.
    pub fn width(&self) -> f64 {
        self.x_max - self.x_min
    }
}

/// Computes the site-aligned row segments of a design: each row is cut at
/// every overlapping macro, and the remaining intervals are snapped inward
/// to the site grid. Segments narrower than one site are dropped.
pub fn row_segments(design: &Design) -> Vec<RowSegment> {
    let site = design.tech().site_width;
    let row_h = design.tech().row_height;
    let macros: Vec<_> = design.macro_shapes().into_iter().map(|(_, r)| r).collect();
    let mut segments = Vec::new();
    for row in design.rows() {
        let (ry0, ry1) = (row.y, row.y + row_h);
        let mut cuts: Vec<(f64, f64)> = macros
            .iter()
            .filter(|m| m.yl < ry1 - 1e-9 && m.yh > ry0 + 1e-9)
            .map(|m| (m.xl, m.xh))
            .collect();
        cuts.sort_by(|a, b| a.0.total_cmp(&b.0));
        let x0 = row.x_min;
        let align_in = |lo: f64, hi: f64| -> Option<(f64, f64)> {
            let lo_a = x0 + ((lo - x0) / site).ceil() * site;
            let hi_a = x0 + ((hi - x0) / site).floor() * site;
            (hi_a - lo_a >= site).then_some((lo_a, hi_a))
        };
        let mut x = row.x_min;
        for (cl, ch) in cuts {
            if let Some((lo, hi)) = align_in(x, cl.min(row.x_max)) {
                segments.push(RowSegment {
                    y: row.y,
                    x_min: lo,
                    x_max: hi,
                });
            }
            x = x.max(ch);
        }
        if let Some((lo, hi)) = align_in(x, row.x_max) {
            segments.push(RowSegment {
                y: row.y,
                x_min: lo,
                x_max: hi,
            });
        }
    }
    segments
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_db::geom::{Point, Rect};
    use puffer_db::netlist::{CellKind, NetlistBuilder};
    use puffer_db::tech::Technology;

    #[test]
    fn rows_without_macros_are_single_segments() {
        let nl = NetlistBuilder::new().build().unwrap();
        let d = Design::new(
            "t",
            nl,
            Technology::default(),
            Rect::new(0.0, 0.0, 10.0, 5.0),
        )
        .unwrap();
        let segs = row_segments(&d);
        assert_eq!(segs.len(), 5);
        assert!(segs.iter().all(|s| s.x_min == 0.0 && s.x_max == 10.0));
        assert_eq!(segs[0].width(), 10.0);
    }

    #[test]
    fn macros_split_rows() {
        let mut nb = NetlistBuilder::new();
        let m = nb.add_cell("blk", 4.0, 2.0, CellKind::FixedMacro);
        let mut d = Design::new(
            "t",
            nb.build().unwrap(),
            Technology::default(),
            Rect::new(0.0, 0.0, 12.0, 6.0),
        )
        .unwrap();
        d.place_macro(m, Point::new(6.0, 3.0)).unwrap();
        let segs = row_segments(&d);
        // Rows 2 and 3 (y = 2, 3) are split into two segments; others whole.
        let split: Vec<_> = segs.iter().filter(|s| s.width() < 12.0).collect();
        assert_eq!(split.len(), 4);
        for s in split {
            assert!(s.x_max <= 4.0 + 1e-9 || s.x_min >= 8.0 - 1e-9);
        }
    }

    #[test]
    fn segment_bounds_are_site_aligned() {
        let mut nb = NetlistBuilder::new();
        // A macro with edges off the site grid.
        let m = nb.add_cell("blk", 3.3, 2.0, CellKind::FixedMacro);
        let mut d = Design::new(
            "t",
            nb.build().unwrap(),
            Technology::default(),
            Rect::new(0.0, 0.0, 12.0, 4.0),
        )
        .unwrap();
        d.place_macro(m, Point::new(6.0, 1.0)).unwrap();
        let site = d.tech().site_width;
        for s in row_segments(&d) {
            let lo = (s.x_min / site).round() * site;
            let hi = (s.x_max / site).round() * site;
            assert!((s.x_min - lo).abs() < 1e-9, "x_min off grid: {}", s.x_min);
            assert!((s.x_max - hi).abs() < 1e-9, "x_max off grid: {}", s.x_max);
        }
    }
}
