//! White-space-assisted padding discretization (paper §III-D, Eq. (17)).
//!
//! Legalization works on site-aligned widths, so the continuous padding
//! from global placement is discretized with a staircase function:
//!
//! ```text
//! DisPad(c) = ⌊θ·(Pad(c)/mp + ½)⌋   (in sites; only for Pad(c) > 0)
//! ```
//!
//! and the total padding area is capped at 5% of the movable cell area by
//! relegating the smallest-padding cells of each level downwards.

use puffer_db::netlist::Netlist;

/// Discretizes per-cell padding into whole sites per Eq. (17).
///
/// `padding` is the continuous padding width per cell; `theta` is the
/// staircase scale; returns the number of padding *sites* per cell. Cells
/// with zero padding stay at zero.
pub fn discretize_padding(padding: &[f64], theta: f64) -> Vec<u32> {
    let mp = padding.iter().cloned().fold(0.0, f64::max);
    if mp <= 0.0 {
        return vec![0; padding.len()];
    }
    padding
        .iter()
        .map(|&p| {
            if p <= 0.0 {
                0
            } else {
                (theta * (p / mp + 0.5)).floor().max(1.0) as u32
            }
        })
        .collect()
}

/// Enforces the legalization padding budget: total padded area must not
/// exceed `budget_fraction` (the paper's 5%) of the movable cell area.
/// Cells are relegated one discrete level at a time, smallest continuous
/// padding first within each level, until the constraint holds.
///
/// Returns the number of relegation steps performed.
pub fn enforce_budget(
    netlist: &Netlist,
    continuous: &[f64],
    discrete: &mut [u32],
    site_width: f64,
    budget_fraction: f64,
) -> usize {
    let budget = budget_fraction * netlist.movable_area();
    let area = |levels: &[u32]| -> f64 {
        netlist
            .iter_cells()
            .filter(|(_, c)| c.is_movable())
            .map(|(id, c)| levels[id.index()] as f64 * site_width * c.height)
            .sum::<f64>()
    };
    // Candidate order: globally by (level ascending is wrong — we demote the
    // *smallest continuous padding in each level* first). Sort all padded
    // cells by continuous padding ascending; demote in passes.
    let mut order: Vec<usize> = (0..discrete.len()).filter(|&i| discrete[i] > 0).collect();
    order.sort_by(|&a, &b| continuous[a].total_cmp(&continuous[b]));

    let mut steps = 0usize;
    let mut current = area(discrete);
    while current > budget {
        let mut any = false;
        for &i in &order {
            if current <= budget {
                break;
            }
            if discrete[i] > 0 {
                discrete[i] -= 1;
                let h = netlist.cells()[i].height;
                current -= site_width * h;
                steps += 1;
                any = true;
            }
        }
        if !any {
            break; // everything already at zero
        }
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_db::netlist::{CellKind, NetlistBuilder};

    fn netlist(n: usize) -> Netlist {
        let mut nb = NetlistBuilder::new();
        for i in 0..n {
            nb.add_cell(format!("c{i}"), 1.0, 1.0, CellKind::Movable);
        }
        nb.build().unwrap()
    }

    #[test]
    fn discretize_staircase_shape() {
        let pad = vec![0.0, 0.5, 1.0, 2.0, 4.0];
        let d = discretize_padding(&pad, 4.0);
        assert_eq!(d[0], 0);
        // mp = 4: levels = floor(4*(p/4 + 0.5)).
        assert_eq!(d[1], 2); // 4*(0.125+0.5) = 2.5 -> 2
        assert_eq!(d[2], 3); // 4*(0.25+0.5) = 3
        assert_eq!(d[3], 4); // 4*(0.5+0.5) = 4
        assert_eq!(d[4], 6); // 4*(1+0.5) = 6
                             // Monotone in the continuous padding.
        assert!(d.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn all_zero_padding_stays_zero() {
        assert_eq!(discretize_padding(&[0.0, 0.0], 4.0), vec![0, 0]);
    }

    #[test]
    fn positive_padding_never_discretizes_to_zero() {
        let d = discretize_padding(&[0.001, 10.0], 1.0);
        assert!(d[0] >= 1);
    }

    #[test]
    fn budget_relegates_smallest_first() {
        let nl = netlist(3);
        let continuous = vec![0.1, 1.0, 4.0];
        let mut d = discretize_padding(&continuous, 4.0);
        // Site width 1, heights 1: area = sum of levels. Movable area = 3.
        // 5% budget = 0.15 => must demote almost everything.
        let steps = enforce_budget(&nl, &continuous, &mut d, 1.0, 0.05);
        assert!(steps > 0);
        let total: u32 = d.iter().sum();
        assert_eq!(total, 0, "tiny budget forces everything to zero");
    }

    #[test]
    fn budget_keeps_largest_padding_longest() {
        let nl = netlist(3);
        let continuous = vec![0.1, 1.0, 4.0];
        let mut d = discretize_padding(&continuous, 4.0);
        let before = d.clone();
        // Budget that forces only partial relegation.
        // Levels sum to 11 sites of area over 3.0 movable area; a 400%
        // budget (12.0) is a no-op.
        enforce_budget(&nl, &continuous, &mut d, 1.0, 4.0);
        assert_eq!(d, before);
        let mut d2 = before.clone();
        // One pass should hit the small-padding cell first.
        let budget_area: f64 = before.iter().sum::<u32>() as f64 - 1.0;
        enforce_budget(&nl, &continuous, &mut d2, 1.0, budget_area / 3.0);
        assert!(d2[0] < before[0] || d2[1] < before[1]);
        assert_eq!(d2[2], before[2], "largest padding demoted last");
    }

    #[test]
    fn budget_is_respected_exactly() {
        let nl = netlist(5);
        let continuous = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let mut d = discretize_padding(&continuous, 6.0);
        enforce_budget(&nl, &continuous, &mut d, 1.0, 0.8);
        let area: f64 = d.iter().map(|&l| l as f64).sum();
        assert!(area <= 0.8 * 5.0 + 1e-9, "area {area}");
    }
}
