//! Legality checking for placements.

use crate::LegalizeError;
use puffer_db::design::{Design, Placement};
use puffer_db::netlist::CellId;

/// Verifies that `placement` is legal for `design` under the given padding
/// (in sites): every movable cell sits in a row, its padded footprint is
/// inside the region, on the site grid, and footprints neither overlap each
/// other nor any macro.
///
/// # Errors
///
/// Returns [`LegalizeError::Illegal`] describing the first violation found.
pub fn check_legal(
    design: &Design,
    placement: &Placement,
    padding_sites: &[u32],
) -> Result<(), LegalizeError> {
    let netlist = design.netlist();
    if padding_sites.len() != netlist.num_cells() {
        return Err(LegalizeError::BadInput("padding length mismatch".into()));
    }
    let site = design.tech().site_width;
    let row_h = design.tech().row_height;
    let region = design.region();
    let eps = 1e-6;

    // Footprints: (cell, left, right, row_index). Padding is split
    // ⌊m/2⌋ sites left / ⌈m/2⌉ sites right of the physical cell, matching
    // the legalizer's convention.
    let mut foots: Vec<(CellId, f64, f64, i64)> = Vec::new();
    for id in netlist.movable_cells() {
        let c = netlist.cell(id);
        let m = padding_sites[id.index()] as f64;
        let p = placement.pos(id);
        let left = p.x - c.width / 2.0 - (m / 2.0).floor() * site;
        let right = p.x + c.width / 2.0 + (m / 2.0).ceil() * site;
        let bottom = p.y - c.height / 2.0;

        if left < region.xl - eps || right > region.xh + eps {
            return Err(LegalizeError::Illegal(format!(
                "cell '{}' leaves the region horizontally ({left}, {right})",
                c.name
            )));
        }
        let row_f = (bottom - region.yl) / row_h;
        if (row_f - row_f.round()).abs() > 1e-6 {
            return Err(LegalizeError::Illegal(format!(
                "cell '{}' is not on a row boundary (y bottom {bottom})",
                c.name
            )));
        }
        let row = row_f.round() as i64;
        if row < 0 || row >= design.rows().len() as i64 {
            return Err(LegalizeError::Illegal(format!(
                "cell '{}' is outside the rows (row {row})",
                c.name
            )));
        }
        let site_f = (left - region.xl) / site;
        if (site_f - site_f.round()).abs() > 1e-5 {
            return Err(LegalizeError::Illegal(format!(
                "cell '{}' is off the site grid (left {left})",
                c.name
            )));
        }
        foots.push((id, left, right, row));
    }

    // Overlaps within rows.
    foots.sort_by(|a, b| a.3.cmp(&b.3).then(a.1.total_cmp(&b.1)));
    for w in foots.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        if a.3 == b.3 && b.1 < a.2 - eps {
            return Err(LegalizeError::Illegal(format!(
                "cells '{}' and '{}' overlap in row {}",
                netlist.cell(a.0).name,
                netlist.cell(b.0).name,
                a.3
            )));
        }
    }

    // Macro overlaps.
    let macros = design.macro_shapes();
    for &(id, left, right, row) in &foots {
        let c = netlist.cell(id);
        let bottom = region.yl + row as f64 * row_h;
        let top = bottom + c.height;
        for (mid, m) in &macros {
            if left < m.xh - eps && m.xl < right - eps && bottom < m.yh - eps && m.yl < top - eps {
                return Err(LegalizeError::Illegal(format!(
                    "cell '{}' overlaps macro '{}'",
                    c.name,
                    netlist.cell(*mid).name
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_db::geom::{Point, Rect};
    use puffer_db::netlist::{CellKind, NetlistBuilder};
    use puffer_db::tech::Technology;

    fn design() -> Design {
        let mut nb = NetlistBuilder::new();
        nb.add_cell("a", 1.0, 1.0, CellKind::Movable);
        nb.add_cell("b", 1.0, 1.0, CellKind::Movable);
        Design::new(
            "t",
            nb.build().unwrap(),
            Technology::default(),
            Rect::new(0.0, 0.0, 10.0, 10.0),
        )
        .unwrap()
    }

    #[test]
    fn legal_placement_passes() {
        let d = design();
        let mut p = Placement::zeroed(2);
        p.set(CellId(0), Point::new(0.5, 0.5));
        p.set(CellId(1), Point::new(2.5, 0.5));
        assert!(check_legal(&d, &p, &[0, 0]).is_ok());
    }

    #[test]
    fn overlap_is_reported() {
        let d = design();
        let mut p = Placement::zeroed(2);
        p.set(CellId(0), Point::new(0.5, 0.5));
        p.set(CellId(1), Point::new(1.1, 0.5));
        assert!(matches!(
            check_legal(&d, &p, &[0, 0]),
            Err(LegalizeError::Illegal(_))
        ));
    }

    #[test]
    fn padded_footprint_overlap_is_reported() {
        let d = design();
        let mut p = Placement::zeroed(2);
        p.set(CellId(0), Point::new(0.5, 0.5));
        p.set(CellId(1), Point::new(1.7, 0.5)); // gap 0.2 < padding 0.4/2+...
                                                // Without padding this is legal; with 5 sites of padding (1.0) on
                                                // cell 0 the footprints collide.
        assert!(check_legal(&d, &p, &[0, 0]).is_ok());
        assert!(check_legal(&d, &p, &[5, 0]).is_err());
    }

    #[test]
    fn off_row_and_off_site_are_reported() {
        let d = design();
        let mut p = Placement::zeroed(2);
        p.set(CellId(0), Point::new(0.5, 0.7)); // bottom 0.2: off-row
        p.set(CellId(1), Point::new(2.5, 0.5));
        assert!(check_legal(&d, &p, &[0, 0]).is_err());
        p.set(CellId(0), Point::new(0.53, 0.5)); // left 0.03: off-site
        assert!(check_legal(&d, &p, &[0, 0]).is_err());
    }

    #[test]
    fn out_of_region_is_reported() {
        let d = design();
        let mut p = Placement::zeroed(2);
        p.set(CellId(0), Point::new(9.9, 0.5)); // right edge 10.4 > 10
        p.set(CellId(1), Point::new(2.5, 0.5));
        assert!(check_legal(&d, &p, &[0, 0]).is_err());
    }
}
