//! Rectilinear Steiner minimal tree (RSMT) construction for PUFFER.
//!
//! The paper (§III-A.2) uses FLUTE to obtain an RSMT topology per net and
//! then works exclusively on the resulting set of *two-point nets*, whose
//! endpoints are either cell pins or Steiner points. This crate provides the
//! same interface built from scratch:
//!
//! * exact optimal topologies for nets with ≤ 3 pins (single trunk at the
//!   coordinate-wise median);
//! * for larger nets, a rectilinear Prim MST followed by iterative
//!   Steiner-point refinement (the classic "steinerized MST", within a few
//!   percent of FLUTE's wirelength at placement-net sizes);
//! * decomposition into [`Segment`]s that remember whether each endpoint is
//!   a pin or a Steiner point — the distinction drives the paper's
//!   detour-imitating demand expansion (§III-A.3).
//!
//! # Example
//!
//! ```
//! use puffer_db::geom::Point;
//! use puffer_flute::{Topology, NodeKind};
//! let pins = [Point::new(0.0, 0.0), Point::new(4.0, 0.0), Point::new(2.0, 3.0)];
//! let topo = Topology::from_points(&pins);
//! // Optimal 3-pin RSMT: trunk at the median (2, 0); wirelength 4 + 3.
//! assert_eq!(topo.wirelength(), 7.0);
//! assert!(topo.nodes().iter().any(|n| n.kind == NodeKind::Steiner));
//! ```

#![forbid(unsafe_code)]

use puffer_db::design::Placement;
use puffer_db::geom::Point;
use puffer_db::netlist::{NetId, Netlist, PinId};

/// What a topology node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A terminal of the net. Carries the pin id when built from a netlist;
    /// topologies built from raw points use `Pin(PinId(u32::MAX))` markers.
    Pin(PinId),
    /// A Steiner (branch) point introduced by tree construction.
    Steiner,
}

impl NodeKind {
    /// Whether the node is a Steiner point.
    pub fn is_steiner(self) -> bool {
        self == NodeKind::Steiner
    }
}

/// A node of an RSMT topology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Node {
    /// Location.
    pub pos: Point,
    /// Pin or Steiner.
    pub kind: NodeKind,
}

/// A two-point net: one edge of the topology.
///
/// `a` and `b` index into [`Topology::nodes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// First endpoint (node index).
    pub a: usize,
    /// Second endpoint (node index).
    pub b: usize,
}

/// An RSMT topology for one net.
///
/// The topology is a tree: `edges.len() == distinct positions - 1` (pins at
/// identical coordinates are merged into one node).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Topology {
    nodes: Vec<Node>,
    edges: Vec<Segment>,
    /// For merged coincident pins: all pin ids represented by each node.
    node_pins: Vec<Vec<PinId>>,
}

impl Topology {
    /// Builds the topology for `net` under `placement`.
    ///
    /// Pins at identical coordinates are merged into a single node that
    /// remembers all its pin ids (see [`Topology::pins_at`]).
    pub fn for_net(netlist: &Netlist, placement: &Placement, net: NetId) -> Topology {
        let pins = netlist.net_pins(net);
        let pts: Vec<(Point, PinId)> = pins
            .iter()
            .map(|&pid| (placement.pin_pos(netlist, pid), pid))
            .collect();
        Self::build(&pts)
    }

    /// Builds a topology from bare terminal positions (no pin identities).
    pub fn from_points(points: &[Point]) -> Topology {
        let pts: Vec<(Point, PinId)> = points.iter().map(|&p| (p, PinId(u32::MAX))).collect();
        Self::build(&pts)
    }

    /// Builds the **canonical** topology over integer Gcell coordinates.
    ///
    /// The input cells are sorted and deduplicated before construction, so
    /// any permutation (or duplication) of the same Gcell multiset yields a
    /// bit-identical topology — node order, Steiner points and edge list
    /// included. This is what makes fingerprint-keyed RSMT caching sound:
    /// two nets whose pins occupy the same set of Gcells (in any pin order)
    /// share one decomposition. Degenerate nets are canonical too: a net
    /// whose pins all share one Gcell collapses to a single node with no
    /// segments.
    ///
    /// All coordinates are integers, so every median/MST computation is
    /// exact in `f64` and translation by an integer offset is lossless.
    pub fn from_gcells(cells: &[(u32, u32)]) -> Topology {
        let mut sorted: Vec<(u32, u32)> = cells.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let pts: Vec<(Point, PinId)> = sorted
            .iter()
            .map(|&(x, y)| (Point::new(f64::from(x), f64::from(y)), PinId(u32::MAX)))
            .collect();
        Self::build(&pts)
    }

    fn build(pts: &[(Point, PinId)]) -> Topology {
        // Merge coincident pins.
        let mut nodes: Vec<Node> = Vec::new();
        let mut node_pins: Vec<Vec<PinId>> = Vec::new();
        'outer: for &(p, pid) in pts {
            for (i, n) in nodes.iter().enumerate() {
                if (n.pos.x - p.x).abs() < 1e-9 && (n.pos.y - p.y).abs() < 1e-9 {
                    node_pins[i].push(pid);
                    continue 'outer;
                }
            }
            nodes.push(Node {
                pos: p,
                kind: NodeKind::Pin(pid),
            });
            node_pins.push(vec![pid]);
        }

        let n = nodes.len();
        let mut topo = Topology {
            nodes,
            edges: Vec::new(),
            node_pins,
        };
        match n {
            0 | 1 => {}
            2 => topo.edges.push(Segment { a: 0, b: 1 }),
            3 => topo.build_median_star(),
            _ => {
                topo.build_mst();
                topo.steinerize();
            }
        }
        topo
    }

    /// Optimal 3-terminal RSMT: a star centred on the coordinate-wise
    /// median (adds no Steiner node when the median coincides with a pin).
    fn build_median_star(&mut self) {
        let mut xs: Vec<f64> = self.nodes.iter().map(|n| n.pos.x).collect();
        let mut ys: Vec<f64> = self.nodes.iter().map(|n| n.pos.y).collect();
        xs.sort_by(f64::total_cmp);
        ys.sort_by(f64::total_cmp);
        let m = Point::new(xs[1], ys[1]);
        if let Some(hub) = self
            .nodes
            .iter()
            .position(|n| (n.pos.x - m.x).abs() < 1e-9 && (n.pos.y - m.y).abs() < 1e-9)
        {
            for i in 0..3 {
                if i != hub {
                    self.edges.push(Segment { a: hub, b: i });
                }
            }
        } else {
            let hub = self.push_steiner(m);
            for i in 0..3 {
                self.edges.push(Segment { a: hub, b: i });
            }
        }
    }

    /// O(n²) rectilinear Prim MST over the (deduplicated) nodes.
    fn build_mst(&mut self) {
        let n = self.nodes.len();
        let mut in_tree = vec![false; n];
        let mut best_cost = vec![f64::INFINITY; n];
        let mut best_parent = vec![usize::MAX; n];
        in_tree[0] = true;
        for j in 1..n {
            best_cost[j] = self.nodes[0].pos.l1_distance(self.nodes[j].pos);
            best_parent[j] = 0;
        }
        for _ in 1..n {
            let mut pick = usize::MAX;
            let mut pick_cost = f64::INFINITY;
            for j in 0..n {
                if !in_tree[j] && best_cost[j] < pick_cost {
                    pick_cost = best_cost[j];
                    pick = j;
                }
            }
            in_tree[pick] = true;
            self.edges.push(Segment {
                a: best_parent[pick],
                b: pick,
            });
            for j in 0..n {
                if !in_tree[j] {
                    let d = self.nodes[pick].pos.l1_distance(self.nodes[j].pos);
                    if d < best_cost[j] {
                        best_cost[j] = d;
                        best_parent[j] = pick;
                    }
                }
            }
        }
    }

    /// Iteratively inserts Steiner points: for each node `u` and pair of
    /// tree neighbours `(v, w)`, the coordinate-wise median of `(u, v, w)`
    /// is the optimal branch point; rewiring through it never lengthens the
    /// tree and shortens it whenever the three bounding boxes overlap.
    fn steinerize(&mut self) {
        const MAX_PASSES: usize = 4;
        for _ in 0..MAX_PASSES {
            let mut improved = false;
            // Rebuild adjacency each pass; edges mutate during the pass.
            let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
            for (ei, e) in self.edges.iter().enumerate() {
                adj[e.a].push(ei);
                adj[e.b].push(ei);
            }
            #[allow(clippy::needless_range_loop)] // adjacency is index-coupled
            for u in 0..self.nodes.len() {
                if adj[u].len() < 2 {
                    continue;
                }
                // Greedy best pair of incident edges.
                let mut best: Option<(usize, usize, Point, f64)> = None;
                for i in 0..adj[u].len() {
                    for j in (i + 1)..adj[u].len() {
                        let (e1, e2) = (adj[u][i], adj[u][j]);
                        let v = self.other_end(e1, u);
                        let w = self.other_end(e2, u);
                        let m = median3(self.nodes[u].pos, self.nodes[v].pos, self.nodes[w].pos);
                        let before = self.nodes[u].pos.l1_distance(self.nodes[v].pos)
                            + self.nodes[u].pos.l1_distance(self.nodes[w].pos);
                        let after = self.nodes[u].pos.l1_distance(m)
                            + m.l1_distance(self.nodes[v].pos)
                            + m.l1_distance(self.nodes[w].pos);
                        let gain = before - after;
                        if gain > 1e-9 && best.is_none_or(|(_, _, _, g)| gain > g) {
                            best = Some((e1, e2, m, gain));
                        }
                    }
                }
                if let Some((e1, e2, m, _)) = best {
                    let v = self.other_end(e1, u);
                    let w = self.other_end(e2, u);
                    let s = self.push_steiner(m);
                    self.edges[e1] = Segment { a: u, b: s };
                    self.edges[e2] = Segment { a: s, b: v };
                    self.edges.push(Segment { a: s, b: w });
                    improved = true;
                    // Adjacency is stale for u/v/w now; restart the pass.
                    break;
                }
            }
            if !improved {
                break;
            }
        }
        self.prune_degenerate();
    }

    /// Removes zero-length edges created when a Steiner point lands exactly
    /// on an existing node, merging the endpoints.
    fn prune_degenerate(&mut self) {
        while let Some(ei) = self
            .edges
            .iter()
            .position(|e| self.nodes[e.a].pos.l1_distance(self.nodes[e.b].pos) < 1e-9 && e.a != e.b)
        {
            let Segment { a, b } = self.edges[ei];
            // Keep the pin node if one of them is a pin; drop edge, rewire b -> a.
            let (keep, drop) = if self.nodes[b].kind.is_steiner() {
                (a, b)
            } else {
                (b, a)
            };
            self.edges.swap_remove(ei);
            for e in &mut self.edges {
                if e.a == drop {
                    e.a = keep;
                }
                if e.b == drop {
                    e.b = keep;
                }
            }
            // Node `drop` becomes an orphan; leave it in place (indices stay
            // stable) — it has no incident edges so it never contributes.
        }
        self.edges.retain(|e| e.a != e.b);
    }

    fn other_end(&self, edge: usize, node: usize) -> usize {
        let e = self.edges[edge];
        if e.a == node {
            e.b
        } else {
            e.a
        }
    }

    fn push_steiner(&mut self, p: Point) -> usize {
        self.nodes.push(Node {
            pos: p,
            kind: NodeKind::Steiner,
        });
        self.node_pins.push(Vec::new());
        self.nodes.len() - 1
    }

    /// All nodes; [`Segment`] endpoints index into this slice.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All two-point nets of the topology.
    pub fn segments(&self) -> &[Segment] {
        &self.edges
    }

    /// Pin ids merged into node `i` (empty for Steiner nodes).
    pub fn pins_at(&self, i: usize) -> &[PinId] {
        &self.node_pins[i]
    }

    /// Rectilinear wirelength of the tree.
    pub fn wirelength(&self) -> f64 {
        self.edges
            .iter()
            .map(|e| self.nodes[e.a].pos.l1_distance(self.nodes[e.b].pos))
            .sum()
    }

    /// Number of terminals (distinct pin positions).
    pub fn num_terminals(&self) -> usize {
        self.nodes.iter().filter(|n| !n.kind.is_steiner()).count()
    }

    /// Whether the edge set forms a single connected tree over all nodes
    /// that have at least one incident edge (used by tests and debugging).
    pub fn is_connected_tree(&self) -> bool {
        let n = self.nodes.len();
        if self.edges.is_empty() {
            return n <= 1 || self.num_terminals() <= 1;
        }
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &self.edges {
            adj[e.a].push(e.b);
            adj[e.b].push(e.a);
        }
        let touched: Vec<usize> = (0..n).filter(|&i| !adj[i].is_empty()).collect();
        let mut seen = vec![false; n];
        let mut stack = vec![touched[0]];
        seen[touched[0]] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == touched.len() && self.edges.len() == touched.len() - 1
    }
}

/// Coordinate-wise median of three points — the optimal rectilinear branch
/// location for three terminals.
pub fn median3(a: Point, b: Point, c: Point) -> Point {
    Point::new(median(a.x, b.x, c.x), median(a.y, b.y, c.y))
}

fn median(a: f64, b: f64, c: f64) -> f64 {
    a.max(b).min(a.max(c)).min(b.max(c))
}

/// Rectilinear MST wirelength over a point set (lower-bound cross-check for
/// tests; the RSMT is never longer than the MST).
pub fn mst_wirelength(points: &[Point]) -> f64 {
    let n = points.len();
    if n < 2 {
        return 0.0;
    }
    let mut in_tree = vec![false; n];
    let mut best = vec![f64::INFINITY; n];
    in_tree[0] = true;
    for j in 1..n {
        best[j] = points[0].l1_distance(points[j]);
    }
    let mut total = 0.0;
    for _ in 1..n {
        let mut pick = usize::MAX;
        let mut cost = f64::INFINITY;
        for j in 0..n {
            if !in_tree[j] && best[j] < cost {
                cost = best[j];
                pick = j;
            }
        }
        total += cost;
        in_tree[pick] = true;
        for j in 0..n {
            if !in_tree[j] {
                best[j] = best[j].min(points[pick].l1_distance(points[j]));
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton_nets() {
        let t = Topology::from_points(&[]);
        assert_eq!(t.wirelength(), 0.0);
        let t = Topology::from_points(&[Point::new(1.0, 1.0)]);
        assert_eq!(t.wirelength(), 0.0);
        assert!(t.segments().is_empty());
    }

    #[test]
    fn two_pin_net_is_direct() {
        let t = Topology::from_points(&[Point::new(0.0, 0.0), Point::new(3.0, 4.0)]);
        assert_eq!(t.segments().len(), 1);
        assert_eq!(t.wirelength(), 7.0);
    }

    #[test]
    fn three_pin_median_star_is_optimal() {
        let t = Topology::from_points(&[
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(5.0, 5.0),
        ]);
        // Median (5, 0); wirelength = 5 + 5 + 5 = 15 (HPWL of bbox).
        assert_eq!(t.wirelength(), 15.0);
        assert_eq!(t.segments().len(), 3);
        assert_eq!(t.nodes().iter().filter(|n| n.kind.is_steiner()).count(), 1);
    }

    #[test]
    fn three_collinear_pins_add_no_steiner() {
        let t = Topology::from_points(&[
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(9.0, 0.0),
        ]);
        assert_eq!(t.wirelength(), 9.0);
        assert_eq!(t.nodes().iter().filter(|n| n.kind.is_steiner()).count(), 0);
    }

    #[test]
    fn coincident_pins_merge() {
        let t = Topology::from_points(&[
            Point::new(1.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(4.0, 1.0),
        ]);
        assert_eq!(t.num_terminals(), 2);
        assert_eq!(t.wirelength(), 3.0);
    }

    #[test]
    fn steinerization_beats_mst_on_cross() {
        // Four pins forming a plus sign: MST = 3 arms through center pin
        // pairs, RSMT introduces a branch point at the center.
        let pts = [
            Point::new(0.0, 5.0),
            Point::new(10.0, 5.0),
            Point::new(5.0, 0.0),
            Point::new(5.0, 10.0),
        ];
        let t = Topology::from_points(&pts);
        let mst = mst_wirelength(&pts);
        assert!(
            t.wirelength() <= mst + 1e-9,
            "rsmt {} > mst {}",
            t.wirelength(),
            mst
        );
        // Optimal is 20 (star at (5,5)); MST is 25.
        assert_eq!(t.wirelength(), 20.0);
        assert!(t.is_connected_tree());
    }

    #[test]
    fn rsmt_never_exceeds_mst_randomized() {
        use puffer_rng::StdRng;
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..50 {
            let n = rng.gen_range(2..25);
            let pts: Vec<Point> = (0..n)
                .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
                .collect();
            let t = Topology::from_points(&pts);
            let mst = mst_wirelength(&pts);
            assert!(
                t.wirelength() <= mst + 1e-6,
                "trial {trial}: rsmt {} > mst {}",
                t.wirelength(),
                mst
            );
            assert!(t.is_connected_tree(), "trial {trial}: disconnected");
            // Steiner lower bound: RSMT >= MST / 1.5 for rectilinear trees.
            assert!(
                t.wirelength() >= mst / 1.5 - 1e-6,
                "trial {trial}: impossibly short"
            );
        }
    }

    #[test]
    fn for_net_tracks_pin_ids() {
        use puffer_db::netlist::{CellKind, NetlistBuilder};
        let mut nb = NetlistBuilder::new();
        let a = nb.add_cell("a", 1.0, 1.0, CellKind::Movable);
        let b = nb.add_cell("b", 1.0, 1.0, CellKind::Movable);
        let n = nb.add_net("n");
        let pa = nb.connect(n, a, Point::ORIGIN).unwrap();
        let pb = nb.connect(n, b, Point::ORIGIN).unwrap();
        let nl = nb.build().unwrap();
        let mut pl = Placement::zeroed(2);
        pl.set(b, Point::new(6.0, 2.0));
        let t = Topology::for_net(&nl, &pl, n);
        assert_eq!(t.wirelength(), 8.0);
        assert_eq!(t.pins_at(0), &[pa]);
        assert_eq!(t.pins_at(1), &[pb]);
    }

    #[test]
    fn gcells_all_in_one_cell_collapse_to_a_point() {
        // Zero-extent fingerprint: every pin shares one Gcell. The canonical
        // topology is a single node with no segments — a cache entry for
        // this shape must never deposit demand.
        let t = Topology::from_gcells(&[(3, 7), (3, 7), (3, 7), (3, 7)]);
        assert_eq!(t.segments().len(), 0);
        assert_eq!(t.num_terminals(), 1);
        assert_eq!(t.wirelength(), 0.0);
    }

    #[test]
    fn gcells_duplicate_coordinates_merge_canonically() {
        // Duplicate-coordinate pins must not inflate the node set or change
        // the tree relative to the deduplicated input.
        let with_dups = Topology::from_gcells(&[(0, 0), (4, 0), (0, 0), (2, 3), (4, 0)]);
        let deduped = Topology::from_gcells(&[(0, 0), (4, 0), (2, 3)]);
        assert_eq!(with_dups.nodes(), deduped.nodes());
        assert_eq!(with_dups.segments(), deduped.segments());
        assert_eq!(with_dups.wirelength(), deduped.wirelength());
    }

    #[test]
    fn gcells_topology_is_pin_order_invariant() {
        // The same Gcell multiset in any pin order yields a bit-identical
        // topology (node order included) — the soundness condition for
        // fingerprint-keyed RSMT cache hits.
        use puffer_rng::StdRng;
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..25 {
            let n = rng.gen_range(2..12);
            let cells: Vec<(u32, u32)> = (0..n)
                .map(|_| (rng.gen_range(0..20u64) as u32, rng.gen_range(0..20u64) as u32))
                .collect();
            let reference = Topology::from_gcells(&cells);
            let mut shuffled = cells.clone();
            // Deterministic shuffle: repeated random swaps.
            for _ in 0..16 {
                let i = rng.gen_range(0..shuffled.len() as u64) as usize;
                let j = rng.gen_range(0..shuffled.len() as u64) as usize;
                shuffled.swap(i, j);
            }
            let t = Topology::from_gcells(&shuffled);
            assert_eq!(t.nodes(), reference.nodes(), "trial {trial}");
            assert_eq!(t.segments(), reference.segments(), "trial {trial}");
            assert!(t.is_connected_tree(), "trial {trial}");
        }
    }

    #[test]
    fn gcells_translation_is_exact() {
        // Integer translation of the input must translate every node
        // exactly — the property the offset-keyed cache relies on when it
        // maps a cached decomposition back to absolute Gcells.
        let base = [(1u32, 2u32), (5, 2), (3, 6), (1, 6)];
        let t0 = Topology::from_gcells(&base);
        let shifted: Vec<(u32, u32)> = base.iter().map(|&(x, y)| (x + 100, y + 200)).collect();
        let t1 = Topology::from_gcells(&shifted);
        assert_eq!(t0.nodes().len(), t1.nodes().len());
        for (a, b) in t0.nodes().iter().zip(t1.nodes()) {
            assert_eq!(a.pos.x + 100.0, b.pos.x);
            assert_eq!(a.pos.y + 200.0, b.pos.y);
            assert_eq!(a.kind.is_steiner(), b.kind.is_steiner());
        }
        assert_eq!(t0.segments(), t1.segments());
    }

    #[test]
    fn median3_is_componentwise() {
        let m = median3(
            Point::new(0.0, 9.0),
            Point::new(5.0, 1.0),
            Point::new(2.0, 4.0),
        );
        assert_eq!(m, Point::new(2.0, 4.0));
    }

    #[test]
    fn mst_wirelength_simple_chain() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
        ];
        assert_eq!(mst_wirelength(&pts), 2.0);
        assert_eq!(mst_wirelength(&pts[..1]), 0.0);
    }
}
