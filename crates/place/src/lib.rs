//! ePlace-style electrostatic global placement engine (paper §II-B).
//!
//! This crate is the "basic placement engine" underneath PUFFER: it solves
//! the unconstrained problem `min W(x,y) + λ·D(x,y)` (Eq. (1)) with
//!
//! * [`wirelength`] — the weighted-average (WA) wirelength model and its
//!   analytic gradient (Eq. (2));
//! * [`density`] — the electrostatic density system solved by DCT/DST
//!   spectral methods on top of [`puffer_fft`] (Eq. (3)–(6));
//! * [`nesterov`] — Nesterov's accelerated gradient method with a
//!   backtracked Lipschitz step size;
//! * [`quadratic`] — the other engine family of §I: a bound-to-bound
//!   quadratic model solved by preconditioned conjugate gradients, usable
//!   as a warm start for the electrostatic engine;
//! * [`engine`] — the [`GlobalPlacer`] main loop, with per-cell *effective
//!   widths* so a routability optimizer can pad cells between iterations.
//!
//! See [`GlobalPlacer`] for a runnable example.

#![forbid(unsafe_code)]

pub mod density;
pub mod engine;
pub mod nesterov;
pub mod quadratic;
pub mod sentinel;
pub mod wirelength;

pub use density::{DensityEval, DensityModel};
pub use engine::{GlobalPlacer, IterationStats, PlacerConfig, PlacerSnapshot};
pub use nesterov::{NesterovOptimizer, NesterovState};
pub use sentinel::{Divergence, DivergenceSentinel};
pub use quadratic::{quadratic_placement, QuadraticConfig};
pub use wirelength::{wa_wirelength_grad, wa_wirelength_grad_threaded, WirelengthGrad};

use std::error::Error;
use std::fmt;

/// Errors produced by the placement engine.
#[derive(Debug)]
pub enum PlaceError {
    /// The design has no movable cells to place.
    NoMovableCells,
    /// A fixed macro has no location.
    UnplacedMacro(String),
    /// A snapshot's shapes or values do not match the design being placed.
    BadSnapshot(String),
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::NoMovableCells => write!(f, "design has no movable cells"),
            PlaceError::UnplacedMacro(msg) => write!(f, "unplaced macro: {msg}"),
            PlaceError::BadSnapshot(msg) => write!(f, "bad placer snapshot: {msg}"),
        }
    }
}

impl Error for PlaceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(PlaceError::NoMovableCells
            .to_string()
            .contains("no movable"));
        assert!(PlaceError::UnplacedMacro("m1".into())
            .to_string()
            .contains("m1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<PlaceError>();
    }
}
