//! Nesterov's accelerated gradient method with Lipschitz backtracking.
//!
//! This is the optimizer ePlace uses for global placement (paper §II-B).
//! The implementation is generic over the objective: the engine supplies a
//! gradient oracle over a flat parameter vector (x-coordinates followed by
//! y-coordinates of the movable cells).
//!
//! Iteration (ePlace notation): with major solution `u_k`, reference
//! solution `v_k` and optimization parameter `a_k`,
//!
//! ```text
//! u_{k+1} = v_k − α_k ∇f(v_k)
//! a_{k+1} = (1 + √(4a_k² + 1)) / 2
//! v_{k+1} = u_{k+1} + (a_k − 1)/a_{k+1} · (u_{k+1} − u_k)
//! ```
//!
//! The step size is the inverse of a local Lipschitz estimate,
//! `α_k = ‖v_k − v_{k−1}‖ / ‖∇f(v_k) − ∇f(v_{k−1})‖`, refined by a short
//! backtracking loop exactly as in ePlace.

/// The full serializable state of a [`NesterovOptimizer`], exposed so the
/// placement engine can snapshot and restore the solver exactly (divergence
/// rollback and checkpoint/resume both need bit-identical continuation).
#[derive(Debug, Clone, PartialEq)]
pub struct NesterovState {
    /// Major solution `u_k`.
    pub u: Vec<f64>,
    /// Reference solution `v_k`.
    pub v: Vec<f64>,
    /// Previous reference solution.
    pub v_prev: Vec<f64>,
    /// Gradient at `v_prev`.
    pub g_prev: Vec<f64>,
    /// Optimization parameter `a_k`.
    pub a: f64,
    /// Current step size.
    pub alpha: f64,
}

/// Nesterov optimizer state over a flat `f64` parameter vector.
#[derive(Debug, Clone)]
pub struct NesterovOptimizer {
    /// Major solution `u_k`.
    u: Vec<f64>,
    /// Reference solution `v_k` (where gradients are evaluated).
    v: Vec<f64>,
    /// Previous reference solution.
    v_prev: Vec<f64>,
    /// Gradient at `v_prev`.
    g_prev: Vec<f64>,
    /// Optimization parameter `a_k`.
    a: f64,
    /// Current step size.
    alpha: f64,
    /// Backtracking iterations per step.
    max_backtracks: usize,
}

impl NesterovOptimizer {
    /// Creates an optimizer at `x0` with the gradient `g0 = ∇f(x0)` and an
    /// initial step size.
    ///
    /// # Panics
    ///
    /// Panics if `x0` and `g0` differ in length or `alpha0` is not positive.
    pub fn new(x0: Vec<f64>, g0: Vec<f64>, alpha0: f64) -> Self {
        assert_eq!(x0.len(), g0.len(), "state and gradient lengths differ");
        assert!(
            alpha0 > 0.0 && alpha0.is_finite(),
            "initial step must be positive"
        );
        NesterovOptimizer {
            u: x0.clone(),
            v: x0.clone(),
            v_prev: x0,
            g_prev: g0,
            a: 1.0,
            alpha: alpha0,
            max_backtracks: 3,
        }
    }

    /// Current reference solution (evaluate the next gradient here).
    pub fn reference(&self) -> &[f64] {
        &self.v
    }

    /// Current major solution (the actual placement estimate).
    pub fn solution(&self) -> &[f64] {
        &self.u
    }

    /// Current step size.
    pub fn step_size(&self) -> f64 {
        self.alpha
    }

    /// Copies out the full solver state (see [`NesterovState`]).
    pub fn state(&self) -> NesterovState {
        NesterovState {
            u: self.u.clone(),
            v: self.v.clone(),
            v_prev: self.v_prev.clone(),
            g_prev: self.g_prev.clone(),
            a: self.a,
            alpha: self.alpha,
        }
    }

    /// Rebuilds an optimizer from a previously captured state; stepping the
    /// rebuilt optimizer continues the original trajectory exactly.
    ///
    /// # Panics
    ///
    /// Panics if the state's vectors differ in length or the step size is
    /// not positive.
    pub fn from_state(state: NesterovState) -> Self {
        assert!(
            state.u.len() == state.v.len()
                && state.v.len() == state.v_prev.len()
                && state.v_prev.len() == state.g_prev.len(),
            "state vector lengths differ"
        );
        assert!(
            state.alpha > 0.0 && state.alpha.is_finite(),
            "step size must be positive"
        );
        NesterovOptimizer {
            u: state.u,
            v: state.v,
            v_prev: state.v_prev,
            g_prev: state.g_prev,
            a: state.a,
            alpha: state.alpha,
            max_backtracks: 3,
        }
    }

    /// Performs one accelerated step.
    ///
    /// `grad` must return `∇f` at the queried point; it is called once per
    /// backtracking round (at most `1 + max_backtracks` times). `project`
    /// clamps a candidate point into the feasible box after each move.
    pub fn step(
        &mut self,
        mut grad: impl FnMut(&[f64]) -> Vec<f64>,
        mut project: impl FnMut(&mut [f64]),
    ) {
        let g = grad(&self.v);
        // Lipschitz estimate from the last two reference points.
        let num = l2_diff(&self.v, &self.v_prev);
        let den = l2_diff(&g, &self.g_prev);
        let mut alpha = if den > 1e-20 && num > 0.0 {
            num / den
        } else {
            self.alpha
        };
        if !alpha.is_finite() || alpha <= 0.0 {
            alpha = self.alpha;
        }

        let a_next = (1.0 + (4.0 * self.a * self.a + 1.0).sqrt()) / 2.0;
        let coef = (self.a - 1.0) / a_next;

        let mut accepted = false;
        let mut u_new = vec![0.0; self.u.len()];
        let mut v_new = vec![0.0; self.u.len()];
        for _ in 0..=self.max_backtracks {
            for i in 0..self.u.len() {
                u_new[i] = self.v[i] - alpha * g[i];
            }
            project(&mut u_new);
            for i in 0..self.u.len() {
                v_new[i] = u_new[i] + coef * (u_new[i] - self.u[i]);
            }
            project(&mut v_new);
            // Backtrack: the step is consistent if the Lipschitz prediction
            // from the *new* point does not demand a much smaller step.
            let g_new = grad(&v_new);
            let hat_num = l2_diff(&v_new, &self.v);
            let hat_den = l2_diff(&g_new, &g);
            let alpha_hat = if hat_den > 1e-20 {
                hat_num / hat_den
            } else {
                alpha
            };
            if alpha_hat >= 0.95 * alpha || !alpha_hat.is_finite() || alpha_hat <= 0.0 {
                accepted = true;
                break;
            }
            alpha = alpha_hat;
        }
        let _ = accepted; // after max_backtracks rounds we accept regardless

        self.v_prev = std::mem::replace(&mut self.v, v_new);
        self.g_prev = g;
        self.u = u_new;
        self.a = a_next;
        self.alpha = alpha;
    }
}

fn l2_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise the convex quadratic Σ cᵢ(xᵢ − tᵢ)².
    fn quad_grad<'a>(c: &'a [f64], t: &'a [f64]) -> impl Fn(&[f64]) -> Vec<f64> + 'a {
        move |x: &[f64]| {
            x.iter()
                .zip(c.iter().zip(t))
                .map(|(&xi, (&ci, &ti))| 2.0 * ci * (xi - ti))
                .collect()
        }
    }

    #[test]
    fn converges_on_quadratic() {
        let c = vec![1.0, 4.0, 0.5];
        let t = vec![3.0, -2.0, 10.0];
        let g = quad_grad(&c, &t);
        let x0 = vec![0.0, 0.0, 0.0];
        let mut opt = NesterovOptimizer::new(x0.clone(), g(&x0), 0.1);
        for _ in 0..200 {
            opt.step(&g, |_| {});
        }
        for (xi, ti) in opt.solution().iter().zip(&t) {
            assert!((xi - ti).abs() < 1e-3, "{xi} vs {ti}");
        }
    }

    #[test]
    fn converges_faster_than_plain_gradient_descent() {
        // Ill-conditioned quadratic where momentum pays off.
        let c = vec![100.0, 1.0];
        let t = vec![1.0, 1.0];
        let g = quad_grad(&c, &t);
        let x0 = vec![0.0, 0.0];

        let mut opt = NesterovOptimizer::new(x0.clone(), g(&x0), 1.0 / 200.0);
        for _ in 0..100 {
            opt.step(&g, |_| {});
        }
        let nesterov_err: f64 = opt
            .solution()
            .iter()
            .zip(&t)
            .map(|(x, t)| (x - t).abs())
            .sum();

        let mut x = x0;
        let alpha = 1.0 / 200.0; // stability limit for the stiff axis
        for _ in 0..100 {
            let gr = g(&x);
            for i in 0..2 {
                x[i] -= alpha * gr[i];
            }
        }
        let gd_err: f64 = x.iter().zip(&t).map(|(x, t)| (x - t).abs()).sum();
        assert!(
            nesterov_err < gd_err,
            "nesterov {nesterov_err} should beat gd {gd_err}"
        );
    }

    #[test]
    fn projection_keeps_iterates_in_box() {
        let c = vec![1.0];
        let t = vec![100.0]; // pulls far outside the box
        let g = quad_grad(&c, &t);
        let x0 = vec![0.0];
        let mut opt = NesterovOptimizer::new(x0.clone(), g(&x0), 0.2);
        for _ in 0..50 {
            opt.step(&g, |x| {
                for v in x.iter_mut() {
                    *v = v.clamp(0.0, 5.0);
                }
            });
            assert!(opt.solution()[0] <= 5.0 + 1e-12);
        }
        assert!((opt.solution()[0] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn zero_gradient_is_stationary() {
        let g = |_: &[f64]| vec![0.0, 0.0];
        let mut opt = NesterovOptimizer::new(vec![1.0, 2.0], vec![0.0, 0.0], 0.5);
        for _ in 0..10 {
            opt.step(g, |_| {});
        }
        assert_eq!(opt.solution(), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn mismatched_lengths_panic() {
        let _ = NesterovOptimizer::new(vec![0.0; 3], vec![0.0; 2], 0.1);
    }

    #[test]
    fn state_roundtrip_continues_identically() {
        let c = vec![1.0, 4.0, 0.5];
        let t = vec![3.0, -2.0, 10.0];
        let g = quad_grad(&c, &t);
        let x0 = vec![0.0, 0.0, 0.0];
        let mut opt = NesterovOptimizer::new(x0.clone(), g(&x0), 0.1);
        for _ in 0..20 {
            opt.step(&g, |_| {});
        }
        let mut restored = NesterovOptimizer::from_state(opt.state());
        for _ in 0..20 {
            opt.step(&g, |_| {});
            restored.step(&g, |_| {});
        }
        assert_eq!(opt.solution(), restored.solution());
        assert_eq!(opt.step_size(), restored.step_size());
    }

    #[test]
    fn step_size_adapts_to_curvature() {
        let c = vec![50.0];
        let t = vec![0.0];
        let g = quad_grad(&c, &t);
        let x0 = vec![1.0];
        // Deliberately huge initial step; backtracking must shrink it.
        let mut opt = NesterovOptimizer::new(x0.clone(), g(&x0), 10.0);
        for _ in 0..30 {
            opt.step(&g, |_| {});
        }
        assert!(opt.step_size() < 1.0);
        assert!(opt.solution()[0].abs() < 1.0);
    }
}
