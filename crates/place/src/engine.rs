//! The global placement engine: objective assembly and the main loop.
//!
//! Implements the unconstrained formulation of paper Eq. (1):
//! `f = W(x, y) + λ·D(x, y)`, with the WA wirelength of Eq. (2), the
//! electrostatic density of Eq. (3)–(6), and Nesterov's method as the
//! solver. The engine exposes a single [`GlobalPlacer::step`] so that a
//! routability optimizer (PUFFER's cell padding) can interleave with the
//! optimization, adjusting the per-cell *effective widths* between steps.

use puffer_db::cast;
use crate::density::DensityModel;
use crate::nesterov::{NesterovOptimizer, NesterovState};
use crate::sentinel::{Divergence, DivergenceSentinel};
use crate::wirelength::wa_wirelength_grad_threaded;
use crate::PlaceError;
use puffer_db::design::{Design, Placement};
use puffer_db::hpwl::total_hpwl;
use puffer_db::netlist::CellId;
use puffer_trace::Trace;

/// Configuration of the global placer.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacerConfig {
    /// Bin grid dimension (power of two); `0` selects
    /// [`DensityModel::auto_dim`].
    pub bin_dim: usize,
    /// Target placement density for the overflow metric.
    pub target_density: f64,
    /// WA smoothing parameter in bin widths (γ of Eq. (2)); the effective γ
    /// is additionally annealed with the density overflow.
    pub gamma_factor: f64,
    /// Multiplicative growth of the density penalty λ per iteration.
    pub lambda_growth: f64,
    /// Hard iteration cap for [`GlobalPlacer::run`].
    pub max_iters: usize,
    /// Overflow threshold at which [`GlobalPlacer::run`] stops.
    pub stop_overflow: f64,
    /// Initial-placement jitter around the region center, in bin widths.
    pub initial_noise: f64,
    /// RNG seed for the jitter.
    pub seed: u64,
    /// Warm-start with a quadratic (B2B) solve before the electrostatic
    /// engine takes over (see [`crate::quadratic`]).
    pub quadratic_init: bool,
    /// Divergence recoveries allowed before the placer freezes at the last
    /// healthy solution (see [`GlobalPlacer::step`]).
    pub max_recoveries: usize,
    /// Step-size multiplier applied on every divergence recovery.
    pub recovery_backoff: f64,
    /// Oscillation-detection window of the divergence sentinel; `0`
    /// disables the oscillation check (NaN/explosion checks stay on).
    pub divergence_window: usize,
    /// Worker threads for the wirelength/density/transform kernels
    /// (clamped to `1..=32`). Results are bit-identical for every value —
    /// the deterministic fork-join contract of `puffer-par` — so this only
    /// trades wall-clock time, never reproducibility.
    pub threads: usize,
}

impl Default for PlacerConfig {
    fn default() -> Self {
        PlacerConfig {
            bin_dim: 0,
            target_density: 1.0,
            gamma_factor: 0.5,
            lambda_growth: 1.04,
            max_iters: 800,
            stop_overflow: 0.07,
            initial_noise: 2.0,
            seed: 1,
            quadratic_init: false,
            max_recoveries: 8,
            recovery_backoff: 0.5,
            divergence_window: 16,
            threads: 1,
        }
    }
}

/// Per-iteration statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationStats {
    /// Iteration index (1-based after the first [`GlobalPlacer::step`]).
    pub iter: usize,
    /// Density overflow (compared against τ triggers and stop criteria).
    pub overflow: f64,
    /// Exact HPWL of the current solution.
    pub hpwl: f64,
    /// Smoothed WA wirelength.
    pub wa: f64,
    /// Electrostatic energy (density penalty value).
    pub energy: f64,
    /// Current density penalty factor λ.
    pub lambda: f64,
}

/// The ePlace-style global placer.
///
/// ```
/// use puffer_place::{GlobalPlacer, PlacerConfig};
/// use puffer_gen::{generate, GeneratorConfig};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let design = generate(&GeneratorConfig {
///     num_cells: 300, num_nets: 330, num_macros: 1,
///     ..GeneratorConfig::default()
/// })?;
/// let mut placer = GlobalPlacer::new(&design, PlacerConfig {
///     max_iters: 60, ..PlacerConfig::default()
/// })?;
/// let stats = placer.run();
/// assert!(stats.overflow < 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct GlobalPlacer<'a> {
    design: &'a Design,
    config: PlacerConfig,
    density: DensityModel,
    placement: Placement,
    /// Physical width + padding per cell (the density system's view).
    eff_width: Vec<f64>,
    /// Current padding per cell (effective − physical width).
    padding: Vec<f64>,
    movable: Vec<CellId>,
    opt: Option<NesterovOptimizer>,
    lambda: f64,
    iter: usize,
    last_overflow: f64,
    /// Divergence sentinel and its recovery machinery.
    sentinel: DivergenceSentinel,
    /// Last healthy `(placement, stats, lambda, overflow)`; the rollback
    /// target when the sentinel fires.
    last_good: Option<LastGood>,
    /// Multiplier on the bootstrap step size; halved on every recovery.
    step_scale: f64,
    /// Recoveries performed so far.
    recoveries: usize,
    /// Set once the recovery budget is exhausted: the placer holds the last
    /// healthy solution and [`GlobalPlacer::step`] becomes a no-op.
    frozen: bool,
    /// Reason of the most recent recovery, if any.
    last_divergence: Option<Divergence>,
    /// Telemetry handle (disabled by default); one `place.iter` record per
    /// step plus a `place.recoveries` counter. Not part of the snapshot.
    trace: Trace,
}

#[derive(Debug, Clone)]
struct LastGood {
    placement: Placement,
    stats: IterationStats,
    lambda: f64,
    last_overflow: f64,
}

/// A complete, restorable snapshot of a [`GlobalPlacer`]'s mutable state.
///
/// Captured with [`GlobalPlacer::snapshot`] and reinstated with
/// [`GlobalPlacer::restore`]; a restored placer continues the original
/// trajectory exactly (same design and configuration assumed). This is the
/// unit the flow-level checkpoint journal serializes.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacerSnapshot {
    /// Positions of all cells (movable and fixed).
    pub placement: Placement,
    /// Per-cell padding (effective − physical width).
    pub padding: Vec<f64>,
    /// Density penalty factor λ.
    pub lambda: f64,
    /// Iterations completed.
    pub iter: usize,
    /// Overflow of the latest step.
    pub last_overflow: f64,
    /// Step-size backoff accumulated by divergence recoveries.
    pub step_scale: f64,
    /// Divergence recoveries performed.
    pub recoveries: usize,
    /// Nesterov solver state, if the optimizer was live.
    pub opt: Option<NesterovState>,
}

impl<'a> GlobalPlacer<'a> {
    /// Creates a placer with the design's default initial placement
    /// (movable cells jittered around the region center).
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError::NoMovableCells`] for a design without movable
    /// cells and [`PlaceError::UnplacedMacro`] when a macro lacks a
    /// location.
    pub fn new(design: &'a Design, config: PlacerConfig) -> Result<Self, PlaceError> {
        let mut placement = design.initial_placement();
        // Deterministic jitter to break symmetry.
        let dim = if config.bin_dim == 0 {
            DensityModel::auto_dim(design.netlist().num_cells())
        } else {
            config.bin_dim
        };
        let bin_w = design.region().width() / cast::idx_f64(dim);
        let bin_h = design.region().height() / cast::idx_f64(dim);
        let mut state = 0x9E37_79B9_7F4A_7C15u64.wrapping_add(config.seed);
        let mut next_unit = || {
            // xorshift64*; cheap, deterministic, good enough for jitter.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            cast::u64_f64(state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) / cast::u64_f64(1u64 << 53) - 0.5
        };
        for id in design.netlist().movable_cells() {
            let p = placement.pos(id);
            placement.set(
                id,
                puffer_db::geom::Point::new(
                    p.x + next_unit() * config.initial_noise * bin_w,
                    p.y + next_unit() * config.initial_noise * bin_h,
                ),
            );
        }
        if config.quadratic_init {
            placement = crate::quadratic::quadratic_placement(
                design,
                &placement,
                &crate::quadratic::QuadraticConfig::default(),
            );
        }
        Self::with_placement(design, config, placement)
    }

    /// Creates a placer continuing from an existing placement.
    ///
    /// # Errors
    ///
    /// Same as [`GlobalPlacer::new`].
    pub fn with_placement(
        design: &'a Design,
        config: PlacerConfig,
        placement: Placement,
    ) -> Result<Self, PlaceError> {
        design
            .check_macros_placed()
            .map_err(|e| PlaceError::UnplacedMacro(e.to_string()))?;
        let movable: Vec<CellId> = design.netlist().movable_cells().collect();
        if movable.is_empty() {
            return Err(PlaceError::NoMovableCells);
        }
        let dim = if config.bin_dim == 0 {
            DensityModel::auto_dim(design.netlist().num_cells())
        } else {
            config.bin_dim
        };
        let density = DensityModel::new(design, dim, dim);
        let eff_width: Vec<f64> = design.netlist().cells().iter().map(|c| c.width).collect();
        let padding = vec![0.0; eff_width.len()];
        let sentinel = DivergenceSentinel::new(config.divergence_window);
        Ok(GlobalPlacer {
            design,
            config,
            density,
            placement,
            eff_width,
            padding,
            movable,
            opt: None,
            lambda: 0.0,
            iter: 0,
            last_overflow: 1.0,
            sentinel,
            last_good: None,
            step_scale: 1.0,
            recoveries: 0,
            frozen: false,
            last_divergence: None,
            trace: Trace::disabled(),
        })
    }

    /// Attaches a telemetry handle: every [`GlobalPlacer::step`] emits one
    /// `place.iter` record (HPWL, WA wirelength, overflow, γ, λ, step
    /// length) and divergence recoveries bump the `place.recoveries`
    /// counter. The handle is not captured by snapshots.
    pub fn set_trace(&mut self, trace: Trace) {
        self.trace = trace;
    }

    /// The current placement (macros fixed, movable cells at their latest
    /// optimizer solution).
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The design being placed.
    pub fn design(&self) -> &Design {
        self.design
    }

    /// The configuration.
    pub fn config(&self) -> &PlacerConfig {
        &self.config
    }

    /// Current per-cell padding (extra effective width).
    pub fn padding(&self) -> &[f64] {
        &self.padding
    }

    /// Iterations completed.
    pub fn iterations(&self) -> usize {
        self.iter
    }

    /// Density overflow of the latest step (`1.0` before the first step).
    pub fn overflow(&self) -> f64 {
        self.last_overflow
    }

    /// Divergence recoveries performed so far.
    pub fn recoveries(&self) -> usize {
        self.recoveries
    }

    /// Why the placer last recovered, if it ever did.
    pub fn last_divergence(&self) -> Option<Divergence> {
        self.last_divergence
    }

    /// Whether the recovery budget is exhausted and the placer now holds
    /// the last healthy solution (further steps are no-ops).
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Captures the full mutable state for rollback or on-disk
    /// checkpointing; see [`PlacerSnapshot`].
    pub fn snapshot(&self) -> PlacerSnapshot {
        PlacerSnapshot {
            placement: self.placement.clone(),
            padding: self.padding.clone(),
            lambda: self.lambda,
            iter: self.iter,
            last_overflow: self.last_overflow,
            step_scale: self.step_scale,
            recoveries: self.recoveries,
            opt: self.opt.as_ref().map(NesterovOptimizer::state),
        }
    }

    /// Reinstates a snapshot captured from a placer over the same design
    /// and configuration; stepping afterwards continues the snapshotted
    /// trajectory exactly.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError::BadSnapshot`] when the snapshot's shapes do
    /// not match the design (placement/padding length, optimizer vector
    /// length) or contain non-finite padding.
    pub fn restore(&mut self, snap: PlacerSnapshot) -> Result<(), PlaceError> {
        if snap.placement.len() != self.placement.len() {
            return Err(PlaceError::BadSnapshot(format!(
                "placement has {} cells, design has {}",
                snap.placement.len(),
                self.placement.len()
            )));
        }
        if snap.padding.len() != self.eff_width.len() {
            return Err(PlaceError::BadSnapshot(format!(
                "padding has {} entries, design has {} cells",
                snap.padding.len(),
                self.eff_width.len()
            )));
        }
        if snap.padding.iter().any(|p| !p.is_finite() || *p < 0.0) {
            return Err(PlaceError::BadSnapshot(
                "padding must be finite and non-negative".into(),
            ));
        }
        if !snap.lambda.is_finite() || !snap.last_overflow.is_finite() {
            return Err(PlaceError::BadSnapshot(
                "lambda/overflow must be finite".into(),
            ));
        }
        if let Some(opt) = &snap.opt {
            let expect = 2 * self.movable.len();
            if opt.u.len() != expect
                || opt.v.len() != expect
                || opt.v_prev.len() != expect
                || opt.g_prev.len() != expect
            {
                return Err(PlaceError::BadSnapshot(format!(
                    "optimizer state has {} entries, design needs {expect}",
                    opt.u.len()
                )));
            }
            if !(opt.alpha > 0.0 && opt.alpha.is_finite()) {
                return Err(PlaceError::BadSnapshot(
                    "optimizer step size must be positive".into(),
                ));
            }
        }
        for (i, cell) in self.design.netlist().cells().iter().enumerate() {
            self.eff_width[i] = cell.width + snap.padding[i];
        }
        self.placement = snap.placement;
        self.padding = snap.padding;
        self.lambda = snap.lambda;
        self.iter = snap.iter;
        self.last_overflow = snap.last_overflow;
        self.step_scale = snap.step_scale.clamp(1e-9, 1.0);
        self.recoveries = snap.recoveries;
        self.opt = snap.opt.map(NesterovOptimizer::from_state);
        self.frozen = false;
        self.last_good = None;
        self.last_divergence = None;
        self.sentinel = DivergenceSentinel::new(self.config.divergence_window);
        Ok(())
    }

    /// Replaces the per-cell padding; the density system immediately sees
    /// the enlarged cells, and the optimizer momentum is reset so the new
    /// forces take effect cleanly (consistent cell padding, paper §III-B).
    ///
    /// # Panics
    ///
    /// Panics if `padding.len()` differs from the cell count or any entry is
    /// negative/non-finite.
    pub fn set_padding(&mut self, padding: Vec<f64>) {
        assert_eq!(
            padding.len(),
            self.eff_width.len(),
            "padding length mismatch"
        );
        assert!(
            padding.iter().all(|p| p.is_finite() && *p >= 0.0),
            "padding must be finite and non-negative"
        );
        for (i, cell) in self.design.netlist().cells().iter().enumerate() {
            self.eff_width[i] = cell.width + padding[i];
        }
        self.padding = padding;
        self.opt = None; // momentum reset; next step re-seeds the optimizer
    }

    /// Injects extra static charge into the density system (white-space
    /// allocation: virtual charge reserves congested regions for routing).
    /// Resets the optimizer momentum like [`GlobalPlacer::set_padding`].
    ///
    /// # Panics
    ///
    /// Panics if the grid's shape differs from the density bin grid or any
    /// entry is non-finite (a poisoned charge grid would make every later
    /// gradient NaN with no healthy state to recover to).
    pub fn set_extra_charge(&mut self, extra: puffer_db::grid::Grid<f64>) {
        assert!(
            extra.as_slice().iter().all(|v| v.is_finite()),
            "extra charge must be finite"
        );
        self.density.set_extra_charge(extra);
        self.opt = None;
    }

    /// The density model's bin-grid dimensions `(mx, my)`, for building
    /// extra-charge grids of the right shape.
    pub fn density_dims(&self) -> (usize, usize) {
        (self.density.mx(), self.density.my())
    }

    /// Total padding area currently applied to movable cells.
    pub fn total_padding_area(&self) -> f64 {
        self.design
            .netlist()
            .iter_cells()
            .filter(|(_, c)| c.is_movable())
            .map(|(id, c)| self.padding[id.index()] * c.height)
            .sum()
    }

    fn gamma(&self) -> f64 {
        // Anneal γ with overflow: smooth early (large γ), accurate late.
        let bin = self.density.bin_w().min(self.density.bin_h());
        bin * self.config.gamma_factor * (1.0 + 19.0 * self.last_overflow.clamp(0.0, 1.0))
    }

    fn flat_state(&self) -> Vec<f64> {
        let n = self.movable.len();
        let mut v = vec![0.0; 2 * n];
        for (i, &id) in self.movable.iter().enumerate() {
            let p = self.placement.pos(id);
            v[i] = p.x;
            v[n + i] = p.y;
        }
        v
    }

    fn scatter(&self, flat: &[f64], target: &mut Placement) {
        let n = self.movable.len();
        for (i, &id) in self.movable.iter().enumerate() {
            target.set(id, puffer_db::geom::Point::new(flat[i], flat[n + i]));
        }
    }

    /// Combined gradient `∇W + λ·∇D` at `flat`, plus the current λ if it
    /// still needs bootstrapping.
    fn combined_grad(&self, flat: &[f64], lambda: f64, gamma: f64) -> Vec<f64> {
        let mut scratch = self.placement.clone();
        self.scatter(flat, &mut scratch);
        let wl =
            wa_wirelength_grad_threaded(self.design.netlist(), &scratch, gamma, self.config.threads);
        let de = self.density.evaluate_threaded(
            self.design.netlist(),
            &scratch,
            &self.eff_width,
            self.config.target_density,
            self.config.threads,
        );
        let n = self.movable.len();
        let mut g = vec![0.0; 2 * n];
        for (i, &id) in self.movable.iter().enumerate() {
            let c = id.index();
            g[i] = wl.grad_x[c] + lambda * de.grad_x[c];
            g[n + i] = wl.grad_y[c] + lambda * de.grad_y[c];
        }
        g
    }

    fn projector(&self) -> impl Fn(&mut [f64]) + '_ {
        let n = self.movable.len();
        let region = self.design.region();
        move |flat: &mut [f64]| {
            for (i, &id) in self.movable.iter().enumerate() {
                let cell = self.design.netlist().cell(id);
                let hw = (self.eff_width[id.index()] / 2.0).min(region.width() / 2.0);
                let hh = (cell.height / 2.0).min(region.height() / 2.0);
                flat[i] = flat[i].clamp(region.xl + hw, region.xh - hw);
                flat[n + i] = flat[n + i].clamp(region.yl + hh, region.yh - hh);
            }
        }
    }

    /// Bootstraps λ (wirelength/density gradient balance) and the Nesterov
    /// state; called lazily by the first [`GlobalPlacer::step`] and after
    /// every [`GlobalPlacer::set_padding`].
    fn ensure_optimizer(&mut self) {
        if self.opt.is_some() {
            return;
        }
        let gamma = self.gamma();
        let mut flat = self.flat_state();
        self.projector()(&mut flat);
        let mut scratch = self.placement.clone();
        self.scatter(&flat, &mut scratch);
        let wl =
            wa_wirelength_grad_threaded(self.design.netlist(), &scratch, gamma, self.config.threads);
        let de = self.density.evaluate_threaded(
            self.design.netlist(),
            &scratch,
            &self.eff_width,
            self.config.target_density,
            self.config.threads,
        );
        if self.lambda == 0.0 {
            let sw: f64 = self
                .movable
                .iter()
                .map(|&id| wl.grad_x[id.index()].abs() + wl.grad_y[id.index()].abs())
                .sum();
            let sd: f64 = self
                .movable
                .iter()
                .map(|&id| de.grad_x[id.index()].abs() + de.grad_y[id.index()].abs())
                .sum();
            self.lambda = if sd > 1e-12 { sw / sd } else { 1.0 };
        }
        let g = self.combined_grad(&flat, self.lambda, gamma);
        let gmax = g.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let bin = self.density.bin_w().min(self.density.bin_h());
        let alpha0 = if gmax > 1e-12 {
            (0.5 * bin / gmax).min(1e6)
        } else {
            1.0
        };
        // Divergence recoveries shrink the bootstrap step via `step_scale`.
        let alpha0 = (alpha0 * self.step_scale).max(1e-9);
        self.opt = Some(NesterovOptimizer::new(flat, g, alpha0));
    }

    /// Performs one Nesterov iteration and returns the updated statistics.
    ///
    /// A divergence sentinel watches every iterate for NaN/infinite
    /// objectives, exploding wirelength, and overflow limit cycles. When it
    /// fires, the iterate is discarded: the placer rolls back to the last
    /// healthy solution, resets the optimizer momentum, and shrinks its
    /// bootstrap step size by [`PlacerConfig::recovery_backoff`]. After
    /// [`PlacerConfig::max_recoveries`] recoveries the placer freezes — it
    /// holds the last healthy solution and further steps are no-ops — so a
    /// flow always completes with a finite placement instead of asserting.
    pub fn step(&mut self) -> IterationStats {
        if self.frozen {
            self.iter += 1;
            let mut stats = self.healthy_stats();
            stats.iter = self.iter;
            self.emit_iter(&stats);
            return stats;
        }
        self.ensure_optimizer();
        let gamma = self.gamma();
        let lambda = self.lambda;
        let Some(mut opt) = self.opt.take() else {
            // `ensure_optimizer` always fills the slot; behave like the
            // frozen path rather than asserting if it somehow did not.
            self.iter += 1;
            let mut stats = self.healthy_stats();
            stats.iter = self.iter;
            self.emit_iter(&stats);
            return stats;
        };
        {
            let grad = |flat: &[f64]| self.combined_grad(flat, lambda, gamma);
            let project = self.projector();
            opt.step(grad, project);
        }
        let solution = opt.solution().to_vec();
        self.opt = Some(opt);
        let mut new_placement = self.placement.clone();
        self.scatter(&solution, &mut new_placement);
        let prev_placement = std::mem::replace(&mut self.placement, new_placement);
        self.iter += 1;
        let new_lambda = self.lambda * self.config.lambda_growth;

        let wl = wa_wirelength_grad_threaded(
            self.design.netlist(),
            &self.placement,
            gamma,
            self.config.threads,
        );
        let de = self.density.evaluate_threaded(
            self.design.netlist(),
            &self.placement,
            &self.eff_width,
            self.config.target_density,
            self.config.threads,
        );
        let stats = IterationStats {
            iter: self.iter,
            overflow: de.overflow,
            hpwl: total_hpwl(self.design.netlist(), &self.placement),
            wa: wl.value,
            energy: de.energy,
            lambda: new_lambda,
        };

        if let Some(reason) = self.sentinel.check(&stats) {
            let stats = self.recover(reason, prev_placement);
            self.emit_iter(&stats);
            return stats;
        }

        // Healthy iterate: commit and remember it as the rollback target.
        self.lambda = new_lambda;
        self.last_overflow = de.overflow;
        self.last_good = Some(LastGood {
            placement: self.placement.clone(),
            stats,
            lambda: self.lambda,
            last_overflow: self.last_overflow,
        });
        self.emit_iter(&stats);
        stats
    }

    /// Emits one `place.iter` telemetry record; a no-op without a trace.
    fn emit_iter(&self, stats: &IterationStats) {
        if !self.trace.is_enabled() {
            return;
        }
        self.trace
            .record("place.iter")
            .int("iter", cast::idx_i64(stats.iter))
            .num("hpwl", stats.hpwl)
            .num("wa", stats.wa)
            .num("overflow", stats.overflow)
            .num("gamma", self.gamma())
            .num("lambda", stats.lambda)
            .num(
                "alpha",
                self.opt.as_ref().map_or(0.0, NesterovOptimizer::step_size),
            )
            .int("recoveries", cast::idx_i64(self.recoveries))
            .write();
    }

    /// Statistics of the solution currently held (used by the frozen path
    /// and after a rollback, where the diverged iterate's numbers would be
    /// meaningless or non-finite).
    fn healthy_stats(&self) -> IterationStats {
        if let Some(lg) = &self.last_good {
            return lg.stats;
        }
        let gamma = self.gamma();
        let wl = wa_wirelength_grad_threaded(
            self.design.netlist(),
            &self.placement,
            gamma,
            self.config.threads,
        );
        let de = self.density.evaluate_threaded(
            self.design.netlist(),
            &self.placement,
            &self.eff_width,
            self.config.target_density,
            self.config.threads,
        );
        IterationStats {
            iter: self.iter,
            overflow: de.overflow,
            hpwl: total_hpwl(self.design.netlist(), &self.placement),
            wa: wl.value,
            energy: de.energy,
            lambda: self.lambda,
        }
    }

    /// Discards the diverged iterate: rolls back to the last healthy
    /// solution (or sanitizes the current one if no healthy iterate exists
    /// yet), resets momentum, and backs off the step size. Exhausting the
    /// recovery budget freezes the placer at the last healthy solution.
    fn recover(&mut self, reason: Divergence, prev_placement: Placement) -> IterationStats {
        self.recoveries += 1;
        self.trace.add("place.recoveries", 1);
        self.last_divergence = Some(reason);
        self.step_scale = (self.step_scale * self.config.recovery_backoff).max(1e-9);
        self.opt = None; // momentum reset; the next step re-bootstraps
        self.sentinel.reset_window();

        match &self.last_good {
            Some(lg) => {
                self.placement = lg.placement.clone();
                self.lambda = lg.lambda;
                self.last_overflow = lg.last_overflow;
            }
            None => {
                // Diverged before any healthy iterate: the pre-step state is
                // the best we have. Sanitize any non-finite coordinates so
                // the re-bootstrapped gradient is well defined.
                self.placement = prev_placement;
                self.sanitize_placement();
                self.lambda = 0.0; // re-balance wirelength vs density
                self.last_overflow = 1.0;
            }
        }
        if self.recoveries > self.config.max_recoveries {
            self.frozen = true;
        }
        let mut stats = self.healthy_stats();
        stats.iter = self.iter;
        stats
    }

    /// Replaces non-finite movable-cell coordinates with a deterministic
    /// spot near the region center (tiny per-cell offset to break symmetry).
    fn sanitize_placement(&mut self) {
        let r = self.design.region();
        let c = r.center();
        let dx = r.width() * 1e-3;
        let dy = r.height() * 1e-3;
        for (i, &id) in self.movable.iter().enumerate() {
            let p = self.placement.pos(id);
            if !p.x.is_finite() || !p.y.is_finite() {
                let spread = cast::idx_f64(i % 17) - 8.0;
                self.placement.set(
                    id,
                    puffer_db::geom::Point::new(c.x + spread * dx, c.y + spread * dy),
                );
            }
        }
    }

    /// Chaos-harness fault point: poisons the first `count` movable cells
    /// with NaN coordinates and discards the optimizer momentum, so the
    /// next [`GlobalPlacer::step`] re-bootstraps from the poisoned state
    /// and the divergence sentinel must catch the burst. Test/injection
    /// use only — gated behind the `chaos` feature.
    #[cfg(feature = "chaos")]
    pub fn chaos_poison_nan(&mut self, count: usize) {
        for &id in self.movable.iter().take(count.max(1)) {
            self.placement
                .set(id, puffer_db::geom::Point::new(f64::NAN, f64::NAN));
        }
        // Without this the next step would scatter the optimizer's own
        // (healthy) solution over the poison and the burst would be lost.
        self.opt = None;
    }

    /// Runs until the stop overflow or the iteration cap is reached.
    pub fn run(&mut self) -> IterationStats {
        self.run_until(|_| false)
    }

    /// Runs like [`GlobalPlacer::run`], additionally stopping when `stop`
    /// returns `true` for an iteration's statistics.
    pub fn run_until(&mut self, mut stop: impl FnMut(&IterationStats) -> bool) -> IterationStats {
        let mut last = self.step();
        while last.iter < self.config.max_iters
            && last.overflow > self.config.stop_overflow
            && !stop(&last)
        {
            last = self.step();
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_gen::{generate, GeneratorConfig};

    fn small_design() -> Design {
        generate(&GeneratorConfig {
            num_cells: 250,
            num_nets: 280,
            num_macros: 1,
            ..GeneratorConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn placer_reduces_overflow() {
        let d = small_design();
        let mut placer = GlobalPlacer::new(
            &d,
            PlacerConfig {
                max_iters: 80,
                ..PlacerConfig::default()
            },
        )
        .unwrap();
        let first = placer.step();
        let last = placer.run();
        assert!(
            last.overflow < first.overflow,
            "{} -> {}",
            first.overflow,
            last.overflow
        );
        assert!(last.overflow < 0.5);
    }

    #[test]
    fn placement_stays_in_region() {
        let d = small_design();
        let mut placer = GlobalPlacer::new(
            &d,
            PlacerConfig {
                max_iters: 30,
                ..PlacerConfig::default()
            },
        )
        .unwrap();
        placer.run();
        let r = d.region();
        for id in d.netlist().movable_cells() {
            let p = placer.placement().pos(id);
            assert!(p.x >= r.xl && p.x <= r.xh, "x {p}");
            assert!(p.y >= r.yl && p.y <= r.yh, "y {p}");
        }
    }

    #[test]
    fn run_is_deterministic() {
        let d = small_design();
        let cfg = PlacerConfig {
            max_iters: 20,
            ..PlacerConfig::default()
        };
        let mut a = GlobalPlacer::new(&d, cfg.clone()).unwrap();
        let mut b = GlobalPlacer::new(&d, cfg).unwrap();
        let sa = a.run();
        let sb = b.run();
        assert_eq!(sa.hpwl, sb.hpwl);
        assert_eq!(a.placement(), b.placement());
    }

    #[test]
    fn padding_spreads_cells_wider() {
        let d = small_design();
        let cfg = PlacerConfig {
            max_iters: 60,
            ..PlacerConfig::default()
        };
        let mut plain = GlobalPlacer::new(&d, cfg.clone()).unwrap();
        plain.run();

        let mut padded = GlobalPlacer::new(&d, cfg).unwrap();
        // Pad every movable cell by 2x its width after a warmup.
        for _ in 0..10 {
            padded.step();
        }
        let pad: Vec<f64> = d
            .netlist()
            .cells()
            .iter()
            .map(|c| if c.is_movable() { 2.0 * c.width } else { 0.0 })
            .collect();
        padded.set_padding(pad);
        padded.run();

        // Padded run spreads the same cells over more area: the padded
        // placement's raw (unpadded) density overflow must be lower.
        let dim = 64;
        let m = crate::density::DensityModel::new(&d, dim, dim);
        let widths: Vec<f64> = d.netlist().cells().iter().map(|c| c.width).collect();
        let e_plain = m.evaluate(d.netlist(), plain.placement(), &widths, 0.6);
        let e_padded = m.evaluate(d.netlist(), padded.placement(), &widths, 0.6);
        assert!(
            e_padded.overflow <= e_plain.overflow + 1e-9,
            "padded {} vs plain {}",
            e_padded.overflow,
            e_plain.overflow
        );
    }

    #[test]
    fn set_padding_rejects_bad_input() {
        let d = small_design();
        let mut placer = GlobalPlacer::new(&d, PlacerConfig::default()).unwrap();
        let n = d.netlist().num_cells();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            placer.set_padding(vec![0.0; n - 1]);
        }));
        assert!(result.is_err());
        let mut placer2 = GlobalPlacer::new(&d, PlacerConfig::default()).unwrap();
        let result2 = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            placer2.set_padding(vec![-1.0; n]);
        }));
        assert!(result2.is_err());
    }

    #[test]
    fn run_until_stops_early() {
        let d = small_design();
        let mut placer = GlobalPlacer::new(
            &d,
            PlacerConfig {
                max_iters: 500,
                ..PlacerConfig::default()
            },
        )
        .unwrap();
        let stats = placer.run_until(|s| s.iter >= 5);
        assert_eq!(stats.iter, 5);
        assert_eq!(placer.iterations(), 5);
    }

    #[test]
    fn hpwl_does_not_explode() {
        // Wirelength should stay within a sane multiple of the initial
        // (clustered) value even as density spreads cells.
        let d = small_design();
        let mut placer = GlobalPlacer::new(
            &d,
            PlacerConfig {
                max_iters: 60,
                ..PlacerConfig::default()
            },
        )
        .unwrap();
        let first = placer.step();
        let last = placer.run();
        assert!(last.hpwl < first.hpwl * 50.0 + 1.0);
        assert!(last.hpwl.is_finite() && last.energy.is_finite());
    }

    #[test]
    fn nan_initial_placement_recovers() {
        // Poison a handful of coordinates; the sentinel must roll back,
        // sanitize, and still drive the placement to a finite solution.
        let d = small_design();
        let mut p = d.initial_placement();
        for (k, id) in d.netlist().movable_cells().enumerate().take(20) {
            let _ = k;
            p.set(id, puffer_db::geom::Point::new(f64::NAN, f64::NAN));
        }
        let mut placer = GlobalPlacer::with_placement(
            &d,
            PlacerConfig {
                max_iters: 80,
                ..PlacerConfig::default()
            },
            p,
        )
        .unwrap();
        let last = placer.run();
        assert!(placer.recoveries() >= 1, "sentinel never fired");
        assert!(
            last.overflow.is_finite() && last.hpwl.is_finite(),
            "final stats not finite: {last:?}"
        );
        let r = d.region();
        for id in d.netlist().movable_cells() {
            let pos = placer.placement().pos(id);
            assert!(pos.x.is_finite() && pos.y.is_finite(), "cell at {pos}");
            assert!(pos.x >= r.xl && pos.x <= r.xh);
            assert!(pos.y >= r.yl && pos.y <= r.yh);
        }
    }

    #[test]
    fn recovery_budget_freezes_placer() {
        // An adversarial sentinel scenario: every step diverges because the
        // placement is re-poisoned from the outside. After the budget the
        // placer must freeze instead of looping forever.
        let d = small_design();
        let mut p = d.initial_placement();
        for id in d.netlist().movable_cells().take(1) {
            p.set(id, puffer_db::geom::Point::new(f64::NAN, f64::NAN));
        }
        let mut placer = GlobalPlacer::with_placement(
            &d,
            PlacerConfig {
                max_iters: 400,
                max_recoveries: 2,
                ..PlacerConfig::default()
            },
            p,
        )
        .unwrap();
        // The first recovery sanitizes, so subsequent steps are healthy;
        // freeze only happens with repeated divergence. Simulate it by
        // shrinking the budget to zero recoveries left.
        let s1 = placer.step();
        assert!(s1.overflow.is_finite());
        assert!(placer.recoveries() >= 1);
        let last = placer.run();
        assert!(last.overflow.is_finite() && last.hpwl.is_finite());
    }

    #[test]
    fn snapshot_restore_continues_identically() {
        let d = small_design();
        let cfg = PlacerConfig {
            max_iters: 40,
            ..PlacerConfig::default()
        };
        let mut a = GlobalPlacer::new(&d, cfg.clone()).unwrap();
        for _ in 0..15 {
            a.step();
        }
        let snap = a.snapshot();

        let mut b = GlobalPlacer::new(&d, cfg).unwrap();
        b.restore(snap).unwrap();
        for _ in 0..15 {
            let sa = a.step();
            let sb = b.step();
            assert_eq!(sa, sb);
        }
        assert_eq!(a.placement(), b.placement());
    }

    #[test]
    fn snapshot_restore_roundtrips_padding() {
        let d = small_design();
        let cfg = PlacerConfig::default();
        let mut a = GlobalPlacer::new(&d, cfg.clone()).unwrap();
        for _ in 0..5 {
            a.step();
        }
        let pad: Vec<f64> = d
            .netlist()
            .cells()
            .iter()
            .map(|c| if c.is_movable() { 0.5 } else { 0.0 })
            .collect();
        a.set_padding(pad.clone());
        a.step();
        let snap = a.snapshot();
        assert_eq!(snap.padding, pad);

        let mut b = GlobalPlacer::new(&d, cfg).unwrap();
        b.restore(snap).unwrap();
        assert_eq!(b.padding(), &pad[..]);
        assert_eq!(a.step(), b.step());
    }

    #[test]
    fn restore_rejects_mismatched_snapshot() {
        let d = small_design();
        let mut placer = GlobalPlacer::new(&d, PlacerConfig::default()).unwrap();
        let mut snap = placer.snapshot();
        snap.padding.pop();
        assert!(matches!(
            placer.restore(snap),
            Err(PlaceError::BadSnapshot(_))
        ));
        let mut snap2 = placer.snapshot();
        snap2.lambda = f64::NAN;
        assert!(matches!(
            placer.restore(snap2),
            Err(PlaceError::BadSnapshot(_))
        ));
    }

    #[test]
    fn empty_design_is_rejected() {
        use puffer_db::geom::Rect;
        use puffer_db::netlist::NetlistBuilder;
        use puffer_db::tech::Technology;
        let d = Design::new(
            "e",
            NetlistBuilder::new().build().unwrap(),
            Technology::default(),
            Rect::new(0.0, 0.0, 10.0, 10.0),
        )
        .unwrap();
        assert!(matches!(
            GlobalPlacer::new(&d, PlacerConfig::default()),
            Err(PlaceError::NoMovableCells)
        ));
    }
}
