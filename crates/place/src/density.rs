//! Electrostatic density model (paper §II-B, Eq. (3)–(6)).
//!
//! Cells are charges whose quantity equals their (padded) area; the density
//! penalty is the total electric potential energy of the system. The
//! potential solves the Poisson equation on the bin grid with Neumann
//! boundaries, via DCT (the cosine expansion of Eq. (4)–(5)):
//!
//! ```text
//! a_{u,v}  = Σ_{m,n} ρ(m,n)·cos(ω_u m̃)·cos(ω_v ñ)        (forward DCT-II)
//! ψ(m,n)   ∝ Σ_{u,v} a_{u,v}/(ω_u²+ω_v²)·cos·cos          (inverse DCT-III)
//! E_x(m,n) ∝ Σ_{u,v} a_{u,v}·ω_u/(ω_u²+ω_v²)·sin·cos      (DST×DCT)
//! ```
//!
//! Fixed macros contribute a static charge map computed once. Cells smaller
//! than a bin are smoothed to bin size with their charge preserved, the
//! standard ePlace local smoothing.

use puffer_db::cast;
use puffer_db::design::{Design, Placement};
use puffer_db::geom::Rect;
use puffer_db::grid::Grid;
use puffer_db::netlist::{CellId, Netlist};
use puffer_fft::{dct2, dct3, dst3_shifted, transform2d_mixed_threaded, transform2d_threaded};
use std::f64::consts::PI;

/// Result of one density evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct DensityEval {
    /// Total potential energy `Σ qᵢ·ψ(binᵢ)` (the `D` of Eq. (3)).
    pub energy: f64,
    /// ∂D/∂x per cell (zero for fixed cells).
    pub grad_x: Vec<f64>,
    /// ∂D/∂y per cell.
    pub grad_y: Vec<f64>,
    /// Density overflow: `Σ_b max(0, ρ_b − target·free_b) / Σ movable area`.
    /// This is the quantity compared against the paper's trigger threshold τ.
    pub overflow: f64,
}

/// The electrostatic density system for one design.
///
/// Construction precomputes the fixed-macro charge map and per-bin free
/// capacity; [`DensityModel::evaluate`] is then called once per optimizer
/// iteration with the current movable positions and effective (padded)
/// widths.
#[derive(Debug, Clone)]
pub struct DensityModel {
    region: Rect,
    mx: usize,
    my: usize,
    fixed_rho: Grid<f64>,
    /// Extra static charge injected on top of the macros (white-space
    /// allocation: virtual charge in congested regions pushes cells out).
    extra_rho: Grid<f64>,
    free_area: Grid<f64>,
    movable_area: f64,
}

impl DensityModel {
    /// Builds the model with an `mx × my` bin grid (both powers of two).
    ///
    /// # Panics
    ///
    /// Panics if `mx` or `my` is not a power of two.
    pub fn new(design: &Design, mx: usize, my: usize) -> Self {
        assert!(
            mx.is_power_of_two() && my.is_power_of_two(),
            "bin grid must be 2^k"
        );
        let region = design.region();
        let mut fixed_rho: Grid<f64> = Grid::new(region, mx, my);
        let mut free_area: Grid<f64> = Grid::new(region, mx, my);
        let bin_area = fixed_rho.dx() * fixed_rho.dy();
        free_area.fill(bin_area);
        for (_, shape) in design.macro_shapes() {
            let clipped = shape.intersection(&region);
            fixed_rho.splat(&clipped, clipped.area());
        }
        // Free capacity per bin = bin area − macro coverage (clamped ≥ 0).
        for iy in 0..my {
            for ix in 0..mx {
                let blocked = *fixed_rho.at(ix, iy);
                *free_area.at_mut(ix, iy) = (bin_area - blocked).max(0.0);
            }
        }
        DensityModel {
            region,
            mx,
            my,
            extra_rho: Grid::new(region, mx, my),
            fixed_rho,
            free_area,
            movable_area: design.netlist().movable_area(),
        }
    }

    /// Replaces the extra static charge map (white-space allocation):
    /// positive charge in a bin repels movable cells from it, reserving
    /// the space for routing. Pass a zero grid to clear.
    ///
    /// # Panics
    ///
    /// Panics if the grid's shape differs from the bin grid.
    pub fn set_extra_charge(&mut self, extra: Grid<f64>) {
        assert_eq!(extra.nx(), self.mx, "extra-charge grid width mismatch");
        assert_eq!(extra.ny(), self.my, "extra-charge grid height mismatch");
        self.extra_rho = extra;
    }

    /// The current extra static charge map.
    pub fn extra_charge(&self) -> &Grid<f64> {
        &self.extra_rho
    }

    /// Picks a bin-grid dimension for a cell count: the smallest power of
    /// two ≥ √cells, clamped to `[32, 512]` (ePlace's usual operating range).
    pub fn auto_dim(num_cells: usize) -> usize {
        let target = cast::ceil_idx(cast::idx_f64(num_cells).sqrt());
        target.next_power_of_two().clamp(32, 512)
    }

    /// Bin grid width.
    pub fn mx(&self) -> usize {
        self.mx
    }

    /// Bin grid height.
    pub fn my(&self) -> usize {
        self.my
    }

    /// Bin width in database units.
    pub fn bin_w(&self) -> f64 {
        self.region.width() / cast::idx_f64(self.mx)
    }

    /// Bin height in database units.
    pub fn bin_h(&self) -> f64 {
        self.region.height() / cast::idx_f64(self.my)
    }

    /// Evaluates energy, gradient, and overflow for the given placement.
    ///
    /// `eff_width[i]` is the effective (physical + padding) width of cell
    /// `i`; pass the raw widths when no padding is active. `target_density`
    /// scales per-bin free capacity for the overflow metric only.
    ///
    /// # Panics
    ///
    /// Panics if `eff_width.len()` differs from the cell count.
    pub fn evaluate(
        &self,
        netlist: &Netlist,
        placement: &Placement,
        eff_width: &[f64],
        target_density: f64,
    ) -> DensityEval {
        self.evaluate_threaded(netlist, placement, eff_width, target_density, 1)
    }

    /// Parallel [`DensityModel::evaluate`] over up to `threads` workers.
    ///
    /// The charge scatter runs over fixed cell-index chunks into per-chunk
    /// partial grids merged in chunk order, the Poisson solve uses the
    /// threaded 2-D transforms, and the gradient gather writes disjoint
    /// per-chunk spans — so the result is **bit-identical** for any thread
    /// count (the ordered-reduction contract of `puffer-par`).
    ///
    /// # Panics
    ///
    /// Panics if `eff_width.len()` differs from the cell count.
    pub fn evaluate_threaded(
        &self,
        netlist: &Netlist,
        placement: &Placement,
        eff_width: &[f64],
        target_density: f64,
        threads: usize,
    ) -> DensityEval {
        assert_eq!(
            eff_width.len(),
            netlist.num_cells(),
            "eff_width length mismatch"
        );
        let (mx, my) = (self.mx, self.my);
        let (dx, dy) = (self.bin_w(), self.bin_h());
        let n = netlist.num_cells();
        let cells = netlist.cells();

        // --- charge map (parallel scatter, ordered merge) ----------------
        let partials = puffer_par::map_chunks(n, threads, |range| {
            let mut part: Grid<f64> = Grid::new(self.region, mx, my);
            let mut of_part = 0.0;
            for i in range {
                let cell = &cells[i];
                if !cell.is_movable() {
                    continue;
                }
                let q = eff_width[i] * cell.height;
                let w_s = eff_width[i].max(dx);
                let h_s = cell.height.max(dy);
                let p = placement.pos(CellId(cast::idx_u32(i)));
                if !p.x.is_finite() || !p.y.is_finite() {
                    // A poisoned coordinate has no meaningful bin: count the
                    // cell's full charge as overflow and leave the divergence
                    // sentinel (which sees the NaN wirelength) to recover.
                    of_part += q;
                    continue;
                }
                let r = Rect::from_center(self.region.clamp_point(p), w_s, h_s);
                part.splat(&r, q);
            }
            (part, of_part)
        });
        let mut movable_rho: Grid<f64> = Grid::new(self.region, mx, my);
        let mut of_extra = 0.0;
        for (part, of_part) in &partials {
            puffer_par::merge_add(movable_rho.as_mut_slice(), part.as_slice());
            of_extra += of_part;
        }
        drop(partials);
        let mut rho = self.fixed_rho.clone();
        for ((dst, extra), movable) in rho
            .as_mut_slice()
            .iter_mut()
            .zip(self.extra_rho.as_slice())
            .zip(movable_rho.as_slice())
        {
            *dst += extra + movable;
        }

        // --- overflow ---------------------------------------------------
        let mut of = 0.0;
        for iy in 0..my {
            for ix in 0..mx {
                let cap = target_density * *self.free_area.at(ix, iy);
                of += (*movable_rho.at(ix, iy) - cap).max(0.0);
            }
        }
        let overflow = if self.movable_area > 0.0 {
            (of + of_extra) / self.movable_area
        } else {
            0.0
        };

        // --- Poisson solve ----------------------------------------------
        // Forward DCT-II of the charge map.
        let a = transform2d_threaded(rho.as_slice(), mx, my, dct2, threads);
        // Frequency scalings.
        let wu: Vec<f64> = (0..mx).map(|u| PI * cast::idx_f64(u) / cast::idx_f64(mx)).collect();
        let wv: Vec<f64> = (0..my).map(|v| PI * cast::idx_f64(v) / cast::idx_f64(my)).collect();
        let mut psi_hat = vec![0.0; mx * my];
        let mut ex_hat = vec![0.0; mx * my];
        let mut ey_hat = vec![0.0; mx * my];
        for v in 0..my {
            for u in 0..mx {
                if u == 0 && v == 0 {
                    continue;
                }
                let w2 = wu[u] * wu[u] + wv[v] * wv[v];
                let c = a[v * mx + u] / w2;
                psi_hat[v * mx + u] = c;
                ex_hat[v * mx + u] = c * wu[u];
                ey_hat[v * mx + u] = c * wv[v];
            }
        }
        // Orthogonal reconstruction: (2/Mx)(2/My) · DCT-III in each axis.
        let norm = 4.0 / (cast::idx_f64(mx) * cast::idx_f64(my));
        let mut psi = transform2d_threaded(&psi_hat, mx, my, dct3, threads);
        for p in &mut psi {
            *p *= norm;
        }
        // E = −∇ψ: differentiating the cosine basis gives the sine basis
        // with an extra −ω factor; folding signs, E uses +ω·sin synthesis.
        let mut ex = transform2d_mixed_threaded(&ex_hat, mx, my, dst3_shifted, dct3, threads);
        for e in &mut ex {
            *e *= norm / dx; // per-DBU field
        }
        let mut ey = transform2d_mixed_threaded(&ey_hat, mx, my, dct3, dst3_shifted, threads);
        for e in &mut ey {
            *e *= norm / dy;
        }

        // --- energy & gradient gather -----------------------------------
        // Electrostatic energy ½·Σ ρψ: the ½ makes ∂D/∂x = q·∂ψ/∂x the
        // exact derivative (each pair interaction is counted twice in Σρψ).
        let energy = 0.5
            * rho
                .as_slice()
                .iter()
                .zip(&psi)
                .map(|(r, p)| r * p)
                .sum::<f64>();
        let psi_grid = grid_from(self.region, mx, my, psi);
        let ex_grid = grid_from(self.region, mx, my, ex);
        let ey_grid = grid_from(self.region, mx, my, ey);

        // Gradient gather: each chunk of cells produces its own span of
        // gradients, written back to disjoint index ranges (no
        // accumulation, so chunking cannot change bits).
        let grad_parts = puffer_par::map_chunks(n, threads, |range| {
            let mut part = Vec::with_capacity(range.len());
            for i in range {
                let cell = &cells[i];
                if !cell.is_movable() {
                    part.push((0.0, 0.0));
                    continue;
                }
                let q = eff_width[i] * cell.height;
                let w_s = eff_width[i].max(dx);
                let h_s = cell.height.max(dy);
                let p = placement.pos(CellId(cast::idx_u32(i)));
                if !p.x.is_finite() || !p.y.is_finite() {
                    // No meaningful field at a poisoned coordinate; report a
                    // NaN gradient so the sentinel sees the divergence.
                    part.push((f64::NAN, f64::NAN));
                    continue;
                }
                let r = Rect::from_center(self.region.clamp_point(p), w_s, h_s);
                let (_p_avg, ex_avg, ey_avg) = gather3(&psi_grid, &ex_grid, &ey_grid, &r);
                // Force on a positive charge is qE; the energy gradient is −qE.
                part.push((-q * ex_avg, -q * ey_avg));
            }
            part
        });

        let mut out = DensityEval {
            energy,
            grad_x: vec![0.0; n],
            grad_y: vec![0.0; n],
            overflow,
        };
        let mut i = 0;
        for part in grad_parts {
            for (gx, gy) in part {
                out.grad_x[i] = gx;
                out.grad_y[i] = gy;
                i += 1;
            }
        }
        out
    }

    /// The movable-charge density map alone (diagnostics and tests).
    pub fn movable_density(
        &self,
        netlist: &Netlist,
        placement: &Placement,
        eff_width: &[f64],
    ) -> Grid<f64> {
        let (dx, dy) = (self.bin_w(), self.bin_h());
        let mut rho: Grid<f64> = Grid::new(self.region, self.mx, self.my);
        for (id, cell) in netlist.iter_cells() {
            if !cell.is_movable() {
                continue;
            }
            let q = eff_width[id.index()] * cell.height;
            let r = Rect::from_center(
                self.region.clamp_point(placement.pos(id)),
                eff_width[id.index()].max(dx),
                cell.height.max(dy),
            );
            rho.splat(&r, q);
        }
        rho
    }
}

fn grid_from(region: Rect, nx: usize, ny: usize, data: Vec<f64>) -> Grid<f64> {
    let mut g: Grid<f64> = Grid::new(region, nx, ny);
    g.as_mut_slice().copy_from_slice(&data);
    g
}

/// Area-weighted average of three co-located grids over `r`.
fn gather3(a: &Grid<f64>, b: &Grid<f64>, c: &Grid<f64>, r: &Rect) -> (f64, f64, f64) {
    let Some((ix_lo, ix_hi, iy_lo, iy_hi)) = a.cells_overlapping(r) else {
        return (0.0, 0.0, 0.0);
    };
    let clipped = r.intersection(&a.region());
    let total = clipped.area();
    if total <= 0.0 {
        let (ix, iy) = a.cell_of(r.center());
        return (*a.at(ix, iy), *b.at(ix, iy), *c.at(ix, iy));
    }
    let (mut sa, mut sb, mut sc) = (0.0, 0.0, 0.0);
    for iy in iy_lo..=iy_hi {
        for ix in ix_lo..=ix_hi {
            let ov = clipped.intersection(&a.cell_rect(ix, iy)).area();
            if ov > 0.0 {
                let w = ov / total;
                sa += w * a.at(ix, iy);
                sb += w * b.at(ix, iy);
                sc += w * c.at(ix, iy);
            }
        }
    }
    (sa, sb, sc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_db::geom::Point;
    use puffer_db::netlist::{CellId, CellKind, NetlistBuilder};
    use puffer_db::tech::Technology;

    fn design_two_cells() -> Design {
        let mut nb = NetlistBuilder::new();
        nb.add_cell("a", 2.0, 2.0, CellKind::Movable);
        nb.add_cell("b", 2.0, 2.0, CellKind::Movable);
        Design::new(
            "t",
            nb.build().unwrap(),
            Technology::default(),
            Rect::new(0.0, 0.0, 32.0, 32.0),
        )
        .unwrap()
    }

    fn widths(d: &Design) -> Vec<f64> {
        d.netlist().cells().iter().map(|c| c.width).collect()
    }

    #[test]
    fn auto_dim_is_power_of_two_in_range() {
        assert_eq!(DensityModel::auto_dim(10), 32);
        assert_eq!(DensityModel::auto_dim(100_000), 512);
        let m = DensityModel::auto_dim(5000);
        assert!(m.is_power_of_two() && (32..=512).contains(&m));
    }

    #[test]
    fn coincident_cells_repel() {
        let d = design_two_cells();
        let m = DensityModel::new(&d, 32, 32);
        let mut p = Placement::zeroed(2);
        p.set(CellId(0), Point::new(16.0, 16.0));
        p.set(CellId(1), Point::new(17.0, 16.0)); // just right of cell 0
        let e = m.evaluate(d.netlist(), &p, &widths(&d), 1.0);
        // Energy gradient pushes them apart: cell 0 left (negative x force
        // means gradient positive), cell 1 right.
        assert!(
            e.grad_x[0] > 0.0 && e.grad_x[1] < 0.0,
            "grads {:?} should separate the pair",
            (e.grad_x[0], e.grad_x[1])
        );
    }

    #[test]
    fn spread_cells_have_lower_energy() {
        let d = design_two_cells();
        let m = DensityModel::new(&d, 32, 32);
        let mut tight = Placement::zeroed(2);
        tight.set(CellId(0), Point::new(16.0, 16.0));
        tight.set(CellId(1), Point::new(16.5, 16.0));
        let mut apart = Placement::zeroed(2);
        apart.set(CellId(0), Point::new(8.0, 8.0));
        apart.set(CellId(1), Point::new(24.0, 24.0));
        let w = widths(&d);
        let e_tight = m.evaluate(d.netlist(), &tight, &w, 1.0);
        let e_apart = m.evaluate(d.netlist(), &apart, &w, 1.0);
        assert!(e_apart.energy < e_tight.energy);
        assert!(e_apart.overflow <= e_tight.overflow);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let d = design_two_cells();
        let m = DensityModel::new(&d, 32, 32);
        let w = widths(&d);
        let mut p = Placement::zeroed(2);
        p.set(CellId(0), Point::new(14.0, 15.0));
        p.set(CellId(1), Point::new(18.0, 17.0));
        let e = m.evaluate(d.netlist(), &p, &w, 1.0);
        let h = 1e-4;
        for c in 0..2u32 {
            let pos = p.pos(CellId(c));
            let mut pp = p.clone();
            pp.set(CellId(c), Point::new(pos.x + h, pos.y));
            let mut pm = p.clone();
            pm.set(CellId(c), Point::new(pos.x - h, pos.y));
            let fd = (m.evaluate(d.netlist(), &pp, &w, 1.0).energy
                - m.evaluate(d.netlist(), &pm, &w, 1.0).energy)
                / (2.0 * h);
            let an = e.grad_x[c as usize];
            // The field is piecewise-bilinear; allow a few % slack. The
            // *sign* and magnitude must match.
            assert!(
                (fd - an).abs() <= 0.15 * an.abs().max(1e-3),
                "cell {c}: fd {fd} vs analytic {an}"
            );
        }
    }

    #[test]
    fn macro_charge_pushes_cells_away() {
        let mut nb = NetlistBuilder::new();
        nb.add_cell("a", 2.0, 2.0, CellKind::Movable);
        let mac = nb.add_cell("m", 12.0, 12.0, CellKind::FixedMacro);
        let mut d = Design::new(
            "t",
            nb.build().unwrap(),
            Technology::default(),
            Rect::new(0.0, 0.0, 32.0, 32.0),
        )
        .unwrap();
        d.place_macro(mac, Point::new(16.0, 16.0)).unwrap();
        let m = DensityModel::new(&d, 32, 32);
        let mut p = d.initial_placement();
        p.set(CellId(0), Point::new(11.0, 16.0)); // just left of the macro
        let w = widths(&d);
        let e = m.evaluate(d.netlist(), &p, &w, 1.0);
        // Push further left: positive x-gradient.
        assert!(e.grad_x[0] > 0.0, "gradient {:?}", e.grad_x[0]);
        // Macro itself gets no gradient.
        assert_eq!(e.grad_x[1], 0.0);
    }

    #[test]
    fn padding_increases_charge_and_overflow() {
        let d = design_two_cells();
        let m = DensityModel::new(&d, 32, 32);
        let mut p = Placement::zeroed(2);
        p.set(CellId(0), Point::new(16.0, 16.0));
        p.set(CellId(1), Point::new(16.5, 16.0));
        let plain = m.evaluate(d.netlist(), &p, &widths(&d), 0.4);
        let padded = m.evaluate(d.netlist(), &p, &[8.0, 8.0], 0.4);
        assert!(padded.overflow > plain.overflow);
        assert!(padded.energy > plain.energy);
    }

    #[test]
    fn movable_density_conserves_area() {
        let d = design_two_cells();
        let m = DensityModel::new(&d, 32, 32);
        let mut p = Placement::zeroed(2);
        p.set(CellId(0), Point::new(10.0, 10.0));
        p.set(CellId(1), Point::new(20.0, 20.0));
        let rho = m.movable_density(d.netlist(), &p, &widths(&d));
        assert!((rho.sum() - 8.0).abs() < 1e-9); // two 2x2 cells
    }

    #[test]
    fn field_is_antisymmetric_around_a_single_charge() {
        // One cell in the middle: probes mirrored about it must see
        // opposite-signed, equal-magnitude x-forces.
        let mut nb = NetlistBuilder::new();
        nb.add_cell("q", 2.0, 2.0, CellKind::Movable);
        nb.add_cell("probe", 1.0, 1.0, CellKind::Movable);
        let d = Design::new(
            "t",
            nb.build().unwrap(),
            Technology::default(),
            Rect::new(0.0, 0.0, 32.0, 32.0),
        )
        .unwrap();
        let m = DensityModel::new(&d, 32, 32);
        let w = widths(&d);
        let mut left = Placement::zeroed(2);
        left.set(CellId(0), Point::new(16.0, 16.0));
        left.set(CellId(1), Point::new(12.0, 16.0));
        let mut right = Placement::zeroed(2);
        right.set(CellId(0), Point::new(16.0, 16.0));
        right.set(CellId(1), Point::new(20.0, 16.0));
        let gl = m.evaluate(d.netlist(), &left, &w, 1.0);
        let gr = m.evaluate(d.netlist(), &right, &w, 1.0);
        // The energy gradient points toward the charge (moving closer
        // raises the energy); the descent direction −∇D pushes away.
        assert!(gl.grad_x[1] > 0.0, "left probe: energy grows to the right");
        assert!(gr.grad_x[1] < 0.0, "right probe: energy grows to the left");
        assert!(
            (gl.grad_x[1] + gr.grad_x[1]).abs() < 0.05 * gl.grad_x[1].abs(),
            "mirror symmetry: {} vs {}",
            gl.grad_x[1],
            gr.grad_x[1]
        );
    }

    #[test]
    fn energy_is_translation_invariant_in_the_interior() {
        let d = design_two_cells();
        let m = DensityModel::new(&d, 32, 32);
        let w = widths(&d);
        let mut a = Placement::zeroed(2);
        a.set(CellId(0), Point::new(12.0, 12.0));
        a.set(CellId(1), Point::new(13.0, 12.0));
        let mut b = Placement::zeroed(2);
        b.set(CellId(0), Point::new(18.0, 20.0));
        b.set(CellId(1), Point::new(19.0, 20.0));
        let ea = m.evaluate(d.netlist(), &a, &w, 1.0);
        let eb = m.evaluate(d.netlist(), &b, &w, 1.0);
        // Same pair configuration far from walls: energies within a few %.
        assert!(
            (ea.energy - eb.energy).abs() < 0.08 * ea.energy.abs().max(1e-12),
            "{} vs {}",
            ea.energy,
            eb.energy
        );
    }

    #[test]
    fn overflow_is_zero_when_spread_below_target() {
        let d = design_two_cells();
        let m = DensityModel::new(&d, 32, 32);
        let mut p = Placement::zeroed(2);
        p.set(CellId(0), Point::new(8.0, 8.0));
        p.set(CellId(1), Point::new(24.0, 24.0));
        let e = m.evaluate(d.netlist(), &p, &widths(&d), 1.0);
        // Cells are 2x2 = 4 area over 1x1 bins: at target density 1.0 a
        // perfectly aligned cell fits, but smoothing spreads it; overflow
        // must at least be far below the clumped case.
        let mut q = Placement::zeroed(2);
        q.set(CellId(0), Point::new(16.0, 16.0));
        q.set(CellId(1), Point::new(16.0, 16.0));
        let clumped = m.evaluate(d.netlist(), &q, &widths(&d), 1.0);
        assert!(e.overflow < clumped.overflow);
    }
}
