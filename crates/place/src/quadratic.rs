//! Quadratic (B2B) initial placement.
//!
//! The paper's §I describes the two analytical engine families: non-linear
//! (the ePlace engine of this crate) and *quadratic* placement, where a
//! quadratic wirelength model is minimized exactly by solving a sparse
//! linear system. This module provides the quadratic side as an optional
//! initializer: the bound-to-bound (B2B) net model of Spindler et al.
//! linearizes HPWL, a Jacobi-preconditioned conjugate-gradient solver
//! minimizes it per axis, and a few reweighting rounds tighten the
//! approximation.
//!
//! Without density forces every movable cell collapses towards the anchor
//! positions (fixed macro pins plus a weak center anchor) — exactly the
//! "lower bound" solution of quadratic placers. This is an excellent warm
//! start for the electrostatic engine: cluster structure is already
//! untangled while the density system does the spreading.

use puffer_db::cast;
use puffer_db::design::{Design, Placement};
use puffer_db::geom::Point;
use puffer_db::netlist::Netlist;

/// Configuration of the quadratic initializer.
#[derive(Debug, Clone, PartialEq)]
pub struct QuadraticConfig {
    /// B2B reweighting rounds (weights depend on the current solution).
    pub b2b_rounds: usize,
    /// Conjugate-gradient iterations per solve.
    pub cg_iters: usize,
    /// CG convergence tolerance on the relative residual.
    pub cg_tolerance: f64,
    /// Weak anchor weight pulling every cell to the region center,
    /// regularizing designs with few or no fixed pins.
    pub center_anchor: f64,
}

impl Default for QuadraticConfig {
    fn default() -> Self {
        QuadraticConfig {
            b2b_rounds: 3,
            cg_iters: 150,
            cg_tolerance: 1e-6,
            center_anchor: 1e-4,
        }
    }
}

/// Computes a quadratic (B2B) placement for the movable cells.
///
/// Fixed macros act as anchors at their placed positions; movable cells
/// start from `initial` (e.g. [`Design::initial_placement`]) and end at the
/// quadratic optimum, clamped into the region.
pub fn quadratic_placement(
    design: &Design,
    initial: &Placement,
    config: &QuadraticConfig,
) -> Placement {
    let netlist = design.netlist();
    let movable: Vec<_> = netlist.movable_cells().collect();
    if movable.is_empty() {
        return initial.clone();
    }
    // Dense index over movable cells.
    let mut index = vec![usize::MAX; netlist.num_cells()];
    for (i, &id) in movable.iter().enumerate() {
        index[id.index()] = i;
    }
    let n = movable.len();
    let center = design.region().center();
    let mut placement = initial.clone();

    for _ in 0..config.b2b_rounds.max(1) {
        for axis in 0..2 {
            let system = build_b2b_system(netlist, &placement, &index, n, axis);
            let mut x0: Vec<f64> = movable
                .iter()
                .map(|&id| {
                    let p = placement.pos(id);
                    if axis == 0 {
                        p.x
                    } else {
                        p.y
                    }
                })
                .collect();
            let anchor_target = if axis == 0 { center.x } else { center.y };
            let solution = solve_cg(
                &system,
                &mut x0,
                anchor_target,
                config.center_anchor,
                config.cg_iters,
                config.cg_tolerance,
            );
            for (i, &id) in movable.iter().enumerate() {
                let p = placement.pos(id);
                let q = if axis == 0 {
                    Point::new(solution[i], p.y)
                } else {
                    Point::new(p.x, solution[i])
                };
                placement.set(id, design.region().clamp_point(q));
            }
        }
    }
    placement
}

/// A sparse SPD system `A x = b` stored as adjacency lists plus diagonal.
struct SparseSystem {
    /// Off-diagonal entries per row: `(column, weight)` with `A[r][c] = -w`.
    adj: Vec<Vec<(usize, f64)>>,
    /// Diagonal (sum of incident weights + anchor weights).
    diag: Vec<f64>,
    /// Right-hand side from fixed-pin anchors.
    rhs: Vec<f64>,
}

/// Builds the B2B system for one axis: for each net, every pin connects to
/// the two boundary pins with weight `2 / ((p − 1)·|Δ|)`, which makes the
/// quadratic form's value equal the net's HPWL at the linearization point.
fn build_b2b_system(
    netlist: &Netlist,
    placement: &Placement,
    index: &[usize],
    n: usize,
    axis: usize,
) -> SparseSystem {
    let mut sys = SparseSystem {
        adj: vec![Vec::new(); n],
        diag: vec![0.0; n],
        rhs: vec![0.0; n],
    };
    let coord = |pid: puffer_db::netlist::PinId| -> f64 {
        let p = placement.pin_pos(netlist, pid);
        if axis == 0 {
            p.x
        } else {
            p.y
        }
    };
    let offset = |pid: puffer_db::netlist::PinId| -> f64 {
        let o = netlist.pin(pid).offset;
        if axis == 0 {
            o.x
        } else {
            o.y
        }
    };
    for (id, net) in netlist.iter_nets() {
        let pins = netlist.net_pins(id);
        let p = pins.len();
        if p < 2 || net.weight == 0.0 {
            continue;
        }
        // Boundary pins at the linearization point.
        let mut lo = 0usize;
        let mut hi = 0usize;
        for (k, &pid) in pins.iter().enumerate() {
            if coord(pid) < coord(pins[lo]) {
                lo = k;
            }
            if coord(pid) > coord(pins[hi]) {
                hi = k;
            }
        }
        let scale = net.weight * 2.0 / (cast::idx_f64(p) - 1.0);
        for (k, &pid) in pins.iter().enumerate() {
            for &b in &[lo, hi] {
                if k == b || (k == lo && b == hi) {
                    // Skip self-pairs; the lo–hi edge is visited once at
                    // (k = hi, b = lo).
                    continue;
                }
                {
                    let bid = pins[b];
                    let d = (coord(pid) - coord(bid)).abs().max(1e-3);
                    let w = scale / d;
                    // Movable cell coordinate = pin coordinate − offset;
                    // fixed pins anchor at their absolute coordinate.
                    let ci = netlist.pin(pid).cell;
                    let cj = netlist.pin(bid).cell;
                    if ci == cj {
                        continue;
                    }
                    let i = index[ci.index()];
                    let j = index[cj.index()];
                    let (op, oq) = (offset(pid), offset(bid));
                    match (i != usize::MAX, j != usize::MAX) {
                        (true, true) => {
                            sys.diag[i] += w;
                            sys.diag[j] += w;
                            sys.adj[i].push((j, w));
                            sys.adj[j].push((i, w));
                            sys.rhs[i] += w * (oq - op);
                            sys.rhs[j] += w * (op - oq);
                        }
                        (true, false) => {
                            sys.diag[i] += w;
                            sys.rhs[i] += w * (coord(bid) - op);
                        }
                        (false, true) => {
                            sys.diag[j] += w;
                            sys.rhs[j] += w * (coord(pid) - oq);
                        }
                        (false, false) => {}
                    }
                }
            }
        }
    }
    sys
}

/// Jacobi-preconditioned conjugate gradient on
/// `(A + anchor·I) x = b + anchor·target`.
fn solve_cg(
    sys: &SparseSystem,
    x0: &mut [f64],
    anchor_target: f64,
    anchor: f64,
    max_iters: usize,
    tol: f64,
) -> Vec<f64> {
    let n = x0.len();
    let diag: Vec<f64> = sys.diag.iter().map(|d| d + anchor).collect();
    let b: Vec<f64> = sys.rhs.iter().map(|r| r + anchor * anchor_target).collect();
    let matvec = |x: &[f64], out: &mut [f64]| {
        for i in 0..n {
            let mut acc = diag[i] * x[i];
            for &(j, w) in &sys.adj[i] {
                acc -= w * x[j];
            }
            out[i] = acc;
        }
    };
    let mut x = x0.to_vec();
    let mut ax = vec![0.0; n];
    matvec(&x, &mut ax);
    let mut r: Vec<f64> = b.iter().zip(&ax).map(|(b, a)| b - a).collect();
    let mut z: Vec<f64> = r.iter().zip(&diag).map(|(r, d)| r / d.max(1e-12)).collect();
    let mut p = z.clone();
    let mut rz: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
    let b_norm: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-12);
    let mut ap = vec![0.0; n];
    for _ in 0..max_iters {
        let r_norm: f64 = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        if r_norm / b_norm < tol {
            break;
        }
        matvec(&p, &mut ap);
        let pap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
        if pap.abs() < 1e-30 {
            break;
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        for i in 0..n {
            z[i] = r[i] / diag[i].max(1e-12);
        }
        let rz_new: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
        let beta = rz_new / rz.max(1e-30);
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_db::geom::Rect;
    use puffer_db::hpwl::total_hpwl;
    use puffer_db::netlist::{CellId, CellKind, NetlistBuilder};
    use puffer_db::tech::Technology;

    #[test]
    fn chain_between_two_anchors_spreads_evenly() {
        // fixed A — m0 — m1 — m2 — fixed B: quadratic optimum spaces the
        // movable cells evenly between the anchors.
        let mut nb = NetlistBuilder::new();
        let a = nb.add_cell("a", 2.0, 2.0, CellKind::FixedMacro);
        let m: Vec<_> = (0..3)
            .map(|i| nb.add_cell(format!("m{i}"), 1.0, 1.0, CellKind::Movable))
            .collect();
        let bb = nb.add_cell("b", 2.0, 2.0, CellKind::FixedMacro);
        let chain = [a, m[0], m[1], m[2], bb];
        for w in chain.windows(2) {
            let n = nb.add_net(format!("n{}{}", w[0], w[1]));
            nb.connect(n, w[0], Point::ORIGIN).unwrap();
            nb.connect(n, w[1], Point::ORIGIN).unwrap();
        }
        let mut d = Design::new(
            "t",
            nb.build().unwrap(),
            Technology::default(),
            Rect::new(0.0, 0.0, 40.0, 40.0),
        )
        .unwrap();
        d.place_macro(a, Point::new(4.0, 20.0)).unwrap();
        d.place_macro(bb, Point::new(36.0, 20.0)).unwrap();
        let out = quadratic_placement(&d, &d.initial_placement(), &QuadraticConfig::default());
        let xs: Vec<f64> = m.iter().map(|&c| out.pos(c).x).collect();
        assert!(xs[0] < xs[1] && xs[1] < xs[2], "ordered: {xs:?}");
        // Roughly even spacing (B2B weights make it exact at convergence).
        assert!((xs[1] - 20.0).abs() < 2.0, "middle near center: {}", xs[1]);
        for &c in &m {
            assert!((out.pos(c).y - 20.0).abs() < 2.0);
        }
    }

    #[test]
    fn quadratic_reduces_hpwl_versus_scattered_start() {
        use puffer_gen::{generate, GeneratorConfig};
        let d = generate(&GeneratorConfig {
            num_cells: 400,
            num_nets: 450,
            num_macros: 3,
            ..GeneratorConfig::default()
        })
        .unwrap();
        // Scattered start: cells on a grid (locality ignored).
        let r = d.region();
        let mut start = d.initial_placement();
        let cols = 21usize;
        for (i, id) in d.netlist().movable_cells().enumerate() {
            start.set(
                id,
                Point::new(
                    r.xl + ((i % cols) as f64 + 0.5) / cols as f64 * r.width(),
                    r.yl + ((i / cols) as f64 % cols as f64 + 0.5) / cols as f64 * r.height(),
                ),
            );
        }
        let before = total_hpwl(d.netlist(), &start);
        let out = quadratic_placement(&d, &start, &QuadraticConfig::default());
        let after = total_hpwl(d.netlist(), &out);
        assert!(
            after < before * 0.5,
            "quadratic solve should collapse wirelength: {before} -> {after}"
        );
        // All cells stay inside the region.
        for id in d.netlist().movable_cells() {
            assert!(r.contains(out.pos(id)) || r.clamp_point(out.pos(id)) == out.pos(id));
        }
    }

    #[test]
    fn fixed_cells_do_not_move() {
        use puffer_gen::{generate, GeneratorConfig};
        let d = generate(&GeneratorConfig {
            num_cells: 100,
            num_nets: 120,
            num_macros: 2,
            ..GeneratorConfig::default()
        })
        .unwrap();
        let init = d.initial_placement();
        let out = quadratic_placement(&d, &init, &QuadraticConfig::default());
        for id in d.netlist().fixed_macros() {
            assert_eq!(out.pos(id), init.pos(id));
        }
    }

    #[test]
    fn empty_movable_set_is_identity() {
        let mut nb = NetlistBuilder::new();
        let m = nb.add_cell("m", 2.0, 2.0, CellKind::FixedMacro);
        let mut d = Design::new(
            "t",
            nb.build().unwrap(),
            Technology::default(),
            Rect::new(0.0, 0.0, 10.0, 10.0),
        )
        .unwrap();
        d.place_macro(m, Point::new(5.0, 5.0)).unwrap();
        let init = d.initial_placement();
        let out = quadratic_placement(&d, &init, &QuadraticConfig::default());
        assert_eq!(out, init);
    }

    #[test]
    fn cg_solves_a_small_spd_system() {
        // Hand-built 2x2 system: [[3,-1],[-1,2]] x = [1, 1].
        let sys = SparseSystem {
            adj: vec![vec![(1, 1.0)], vec![(0, 1.0)]],
            diag: vec![3.0, 2.0],
            rhs: vec![1.0, 1.0],
        };
        let mut x0 = vec![0.0, 0.0];
        let x = solve_cg(&sys, &mut x0, 0.0, 0.0, 100, 1e-12);
        // Exact solution: x = [3/5, 4/5].
        assert!((x[0] - 0.6).abs() < 1e-9, "{x:?}");
        assert!((x[1] - 0.8).abs() < 1e-9, "{x:?}");
    }

    #[test]
    fn center_anchor_regularizes_unanchored_designs() {
        // No fixed cells at all: without the anchor the system is
        // singular; with it, everything lands at the region center.
        let mut nb = NetlistBuilder::new();
        let a = nb.add_cell("a", 1.0, 1.0, CellKind::Movable);
        let b = nb.add_cell("b", 1.0, 1.0, CellKind::Movable);
        let n = nb.add_net("n");
        nb.connect(n, a, Point::ORIGIN).unwrap();
        nb.connect(n, b, Point::ORIGIN).unwrap();
        let d = Design::new(
            "t",
            nb.build().unwrap(),
            Technology::default(),
            Rect::new(0.0, 0.0, 20.0, 20.0),
        )
        .unwrap();
        let mut start = Placement::zeroed(2);
        start.set(CellId(0), Point::new(2.0, 2.0));
        start.set(CellId(1), Point::new(18.0, 18.0));
        let out = quadratic_placement(&d, &start, &QuadraticConfig::default());
        for i in 0..2u32 {
            assert!(out.pos(CellId(i)).l1_distance(Point::new(10.0, 10.0)) < 2.0);
        }
    }
}
