//! Weighted-average (WA) wirelength model and its gradient (paper Eq. (2)).
//!
//! The WA model smooths the max/min of pin coordinates per net:
//!
//! ```text
//! WA⁺(e) = Σ xⱼ·e^{xⱼ/γ} / Σ e^{xⱼ/γ}
//! WA⁻(e) = Σ xⱼ·e^{−xⱼ/γ} / Σ e^{−xⱼ/γ}
//! W(e)   = WA⁺ − WA⁻           (per axis; total is x-part + y-part)
//! ```
//!
//! Exponents are shifted by the per-net max/min for numerical stability.
//! `γ` controls accuracy: as `γ → 0`, WA → HPWL from below.

use puffer_db::cast;
use puffer_db::design::Placement;
use puffer_db::netlist::{NetId, Netlist};

/// WA wirelength evaluation result: value and per-cell gradient.
#[derive(Debug, Clone, PartialEq)]
pub struct WirelengthGrad {
    /// Total weighted WA wirelength (x-part + y-part over all nets).
    pub value: f64,
    /// ∂W/∂x per cell (indexed by `CellId::index`).
    pub grad_x: Vec<f64>,
    /// ∂W/∂y per cell.
    pub grad_y: Vec<f64>,
}

/// Computes the WA wirelength and its gradient with smoothing parameter
/// `gamma`.
///
/// Gradients accumulate over pins onto the owning cells (pin offsets are
/// rigid). Nets with fewer than two pins contribute nothing.
///
/// # Panics
///
/// Panics if `gamma` is not strictly positive.
pub fn wa_wirelength_grad(netlist: &Netlist, placement: &Placement, gamma: f64) -> WirelengthGrad {
    wa_wirelength_grad_threaded(netlist, placement, gamma, 1)
}

/// Parallel [`wa_wirelength_grad`] over up to `threads` workers.
///
/// Nets are processed in fixed index chunks (`puffer_par::chunk_ranges`,
/// boundaries independent of the thread count); each chunk records its
/// per-pin gradient contributions sparsely in net order, and the chunks
/// are applied to the output in chunk order. Every f64 addition therefore
/// happens with the same operands in the same order for any `threads`
/// value, so the result is **bit-identical** across thread counts.
///
/// With a single worker the sparse contributions would be applied in
/// exactly (chunk, net, pin) order, which is a plain serial accumulation —
/// so the 1-thread path skips the contribution buffers and writes straight
/// into the output, staying within a few percent of an unchunked loop
/// while remaining bit-identical to the multi-worker path.
///
/// # Panics
///
/// Panics if `gamma` is not strictly positive.
pub fn wa_wirelength_grad_threaded(
    netlist: &Netlist,
    placement: &Placement,
    gamma: f64,
    threads: usize,
) -> WirelengthGrad {
    assert!(gamma > 0.0, "gamma must be positive");
    let n = netlist.num_cells();
    let mut out = WirelengthGrad {
        value: 0.0,
        grad_x: vec![0.0; n],
        grad_y: vec![0.0; n],
    };

    if puffer_par::clamp_threads(threads) == 1 {
        // Single worker: accumulate directly. The per-chunk value
        // grouping is kept so the total matches the merged path exactly.
        let mut scratch = NetScratch::default();
        for range in puffer_par::chunk_ranges(netlist.num_nets()) {
            let mut value = 0.0;
            for i in range {
                let id = NetId(cast::idx_u32(i));
                value += net_wa_grad(netlist, placement, gamma, id, &mut scratch, &mut |axis,
                                                                                       cell,
                                                                                       g| {
                    if axis == 0 {
                        out.grad_x[cell] += g;
                    } else {
                        out.grad_y[cell] += g;
                    }
                });
            }
            out.value += value;
        }
        return out;
    }

    let partials = puffer_par::map_chunks(netlist.num_nets(), threads, |range| {
        let mut value = 0.0;
        // Sparse per-pin contributions (cell index, gradient), in net
        // order. Sized upfront: one entry per pin per axis.
        let pins: usize = range
            .clone()
            .map(|i| netlist.net_degree(NetId(cast::idx_u32(i))))
            .sum();
        let mut contrib_x: Vec<(usize, f64)> = Vec::with_capacity(pins);
        let mut contrib_y: Vec<(usize, f64)> = Vec::with_capacity(pins);
        let mut scratch = NetScratch::default();
        for i in range {
            let id = NetId(cast::idx_u32(i));
            value += net_wa_grad(netlist, placement, gamma, id, &mut scratch, &mut |axis,
                                                                                   cell,
                                                                                   g| {
                if axis == 0 {
                    contrib_x.push((cell, g));
                } else {
                    contrib_y.push((cell, g));
                }
            });
        }
        (value, contrib_x, contrib_y)
    });

    for (value, cx, cy) in &partials {
        out.value += value;
        for &(cell, g) in cx {
            out.grad_x[cell] += g;
        }
        for &(cell, g) in cy {
            out.grad_y[cell] += g;
        }
    }
    out
}

/// Per-net scratch buffers reused across nets (SoA layout: coordinates,
/// shifted exponentials, and finished gradients each live in their own
/// contiguous array so the arithmetic loops vectorize).
#[derive(Default)]
struct NetScratch {
    coords: Vec<f64>,
    exps_p: Vec<f64>,
    exps_m: Vec<f64>,
    grads: Vec<f64>,
}

/// One net's weighted WA wirelength (both axes); per-pin gradient
/// contributions are handed to `emit(axis, cell_index, g)` in pin order,
/// axis 0 (x) first. Nets below degree 2 or with zero weight contribute
/// nothing.
#[inline]
fn net_wa_grad(
    netlist: &Netlist,
    placement: &Placement,
    gamma: f64,
    net: NetId,
    scratch: &mut NetScratch,
    emit: &mut impl FnMut(usize, usize, f64),
) -> f64 {
    let pins = netlist.net_pins(net);
    let weight = netlist.net(net).weight;
    if pins.len() < 2 || weight == 0.0 {
        return 0.0;
    }
    let NetScratch {
        coords,
        exps_p,
        exps_m,
        grads,
    } = scratch;
    let inv_gamma = 1.0 / gamma;
    let mut value = 0.0;
    for axis in 0..2 {
        coords.clear();
        for &pid in pins {
            let p = placement.pin_pos(netlist, pid);
            coords.push(if axis == 0 { p.x } else { p.y });
        }
        let (max, min) = coords
            .iter()
            .fold((f64::NEG_INFINITY, f64::INFINITY), |(mx, mn), &x| {
                (mx.max(x), mn.min(x))
            });

        // Stable exponentials. The `exp` calls stay scalar (no vector libm),
        // but the SoA pushes keep the sums in a dependence-free form.
        exps_p.clear();
        exps_m.clear();
        let mut sp = 0.0; // Σ e⁺
        let mut sxp = 0.0; // Σ x e⁺
        let mut sm = 0.0; // Σ e⁻
        let mut sxm = 0.0; // Σ x e⁻
        for &x in coords.iter() {
            let ep = ((x - max) * inv_gamma).exp();
            let em = ((min - x) * inv_gamma).exp();
            exps_p.push(ep);
            exps_m.push(em);
            sp += ep;
            sxp += x * ep;
            sm += em;
            sxm += x * em;
        }
        let wa = sxp / sp - sxm / sm;
        value += weight * wa;

        // Gradient: ∂WA⁺/∂xⱼ = ((1 + xⱼ/γ)·eⱼ⁺·S⁺ − eⱼ⁺·SX⁺/γ) / S⁺²
        //           ∂WA⁻/∂xⱼ = ((1 − xⱼ/γ)·eⱼ⁻·S⁻ + eⱼ⁻·SX⁻/γ) / S⁻²
        //
        // Phase 1 writes the per-pin gradients into an SoA scratch array:
        // pure arithmetic over contiguous f64 slices with the reciprocals
        // hoisted out of the loop, which LLVM autovectorizes. Phase 2 does
        // the (gather-indexed) emit separately.
        let inv_sp2 = 1.0 / (sp * sp);
        let inv_sm2 = 1.0 / (sm * sm);
        let w = weight;
        grads.clear();
        for j in 0..coords.len() {
            let x = coords[j];
            let ep = exps_p[j];
            let em = exps_m[j];
            let dp = ((1.0 + x * inv_gamma) * ep * sp - ep * sxp * inv_gamma) * inv_sp2;
            let dm = ((1.0 - x * inv_gamma) * em * sm + em * sxm * inv_gamma) * inv_sm2;
            grads.push(w * (dp - dm));
        }
        for (j, &pid) in pins.iter().enumerate() {
            emit(axis, netlist.pin(pid).cell.index(), grads[j]);
        }
    }
    value
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_db::geom::Point;
    use puffer_db::hpwl::total_hpwl;
    use puffer_db::netlist::{CellId, CellKind, NetlistBuilder};

    fn pair_netlist() -> Netlist {
        let mut nb = NetlistBuilder::new();
        let a = nb.add_cell("a", 1.0, 1.0, CellKind::Movable);
        let b = nb.add_cell("b", 1.0, 1.0, CellKind::Movable);
        let n = nb.add_net("n");
        nb.connect(n, a, Point::ORIGIN).unwrap();
        nb.connect(n, b, Point::ORIGIN).unwrap();
        nb.build().unwrap()
    }

    #[test]
    fn wa_approaches_hpwl_for_small_gamma() {
        let nl = pair_netlist();
        let mut p = Placement::zeroed(2);
        p.set(CellId(1), Point::new(10.0, 7.0));
        let hp = total_hpwl(&nl, &p);
        let loose = wa_wirelength_grad(&nl, &p, 5.0).value;
        let tight = wa_wirelength_grad(&nl, &p, 0.05).value;
        assert!(tight <= hp + 1e-9, "WA underestimates HPWL");
        assert!((tight - hp).abs() < 0.1);
        assert!((loose - hp).abs() > (tight - hp).abs());
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut nb = NetlistBuilder::new();
        let ids: Vec<_> = (0..4)
            .map(|i| nb.add_cell(format!("c{i}"), 1.0, 1.0, CellKind::Movable))
            .collect();
        let n0 = nb.add_net("n0");
        for &c in &ids[..3] {
            nb.connect(n0, c, Point::new(0.1, -0.2)).unwrap();
        }
        let n1 = nb.add_weighted_net("n1", 2.0);
        nb.connect(n1, ids[2], Point::ORIGIN).unwrap();
        nb.connect(n1, ids[3], Point::ORIGIN).unwrap();
        let nl = nb.build().unwrap();

        let mut p = Placement::zeroed(4);
        p.set(ids[0], Point::new(0.0, 0.0));
        p.set(ids[1], Point::new(4.0, 1.0));
        p.set(ids[2], Point::new(2.0, 5.0));
        p.set(ids[3], Point::new(7.0, 2.0));
        let gamma = 1.0;
        let g = wa_wirelength_grad(&nl, &p, gamma);
        let h = 1e-6;
        for c in 0..4 {
            for axis in 0..2 {
                let mut pp = p.clone();
                let mut pm = p.clone();
                let pos = p.pos(CellId(c));
                if axis == 0 {
                    pp.set(CellId(c), Point::new(pos.x + h, pos.y));
                    pm.set(CellId(c), Point::new(pos.x - h, pos.y));
                } else {
                    pp.set(CellId(c), Point::new(pos.x, pos.y + h));
                    pm.set(CellId(c), Point::new(pos.x, pos.y - h));
                }
                let fd = (wa_wirelength_grad(&nl, &pp, gamma).value
                    - wa_wirelength_grad(&nl, &pm, gamma).value)
                    / (2.0 * h);
                let an = if axis == 0 {
                    g.grad_x[c as usize]
                } else {
                    g.grad_y[c as usize]
                };
                assert!(
                    (fd - an).abs() < 1e-5,
                    "cell {c} axis {axis}: fd {fd} vs analytic {an}"
                );
            }
        }
    }

    #[test]
    fn gradient_pulls_pins_together() {
        let nl = pair_netlist();
        let mut p = Placement::zeroed(2);
        p.set(CellId(1), Point::new(10.0, 0.0));
        let g = wa_wirelength_grad(&nl, &p, 1.0);
        // Moving cell 0 right reduces wirelength: negative gradient.
        assert!(g.grad_x[0] < 0.0);
        assert!(g.grad_x[1] > 0.0);
        // Symmetric y: no pull.
        assert!(g.grad_y[0].abs() < 1e-9);
    }

    #[test]
    fn large_coordinates_stay_finite() {
        let nl = pair_netlist();
        let mut p = Placement::zeroed(2);
        p.set(CellId(0), Point::new(1e6, -1e6));
        p.set(CellId(1), Point::new(-1e6, 1e6));
        let g = wa_wirelength_grad(&nl, &p, 0.01);
        assert!(g.value.is_finite());
        assert!(g.grad_x.iter().all(|v| v.is_finite()));
        assert!(g.grad_y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn single_pin_nets_contribute_nothing() {
        let mut nb = NetlistBuilder::new();
        let a = nb.add_cell("a", 1.0, 1.0, CellKind::Movable);
        let n = nb.add_net("n");
        nb.connect(n, a, Point::ORIGIN).unwrap();
        let nl = nb.build().unwrap();
        let g = wa_wirelength_grad(&nl, &Placement::zeroed(1), 1.0);
        assert_eq!(g.value, 0.0);
        assert_eq!(g.grad_x[0], 0.0);
    }

    #[test]
    fn gradient_sums_to_zero_per_net() {
        // WA wirelength is translation invariant, so the gradient over all
        // cells of a net must sum to zero in each axis.
        let mut nb = NetlistBuilder::new();
        let ids: Vec<_> = (0..5)
            .map(|i| nb.add_cell(format!("c{i}"), 1.0, 1.0, CellKind::Movable))
            .collect();
        let n = nb.add_net("n");
        for &c in &ids {
            nb.connect(n, c, Point::new(0.2, -0.1)).unwrap();
        }
        let nl = nb.build().unwrap();
        let mut p = Placement::zeroed(5);
        for (i, &c) in ids.iter().enumerate() {
            p.set(c, Point::new((i * i) as f64, (i * 3 % 5) as f64));
        }
        let g = wa_wirelength_grad(&nl, &p, 0.7);
        assert!(g.grad_x.iter().sum::<f64>().abs() < 1e-9);
        assert!(g.grad_y.iter().sum::<f64>().abs() < 1e-9);
    }

    #[test]
    fn net_weights_scale_both_value_and_gradient() {
        let mut nb = NetlistBuilder::new();
        let a = nb.add_cell("a", 1.0, 1.0, CellKind::Movable);
        let b = nb.add_cell("b", 1.0, 1.0, CellKind::Movable);
        let n = nb.add_weighted_net("n", 3.0);
        nb.connect(n, a, Point::ORIGIN).unwrap();
        nb.connect(n, b, Point::ORIGIN).unwrap();
        let nl3 = nb.build().unwrap();
        let nl1 = pair_netlist();
        let mut p = Placement::zeroed(2);
        p.set(CellId(1), Point::new(5.0, 5.0));
        let g3 = wa_wirelength_grad(&nl3, &p, 1.0);
        let g1 = wa_wirelength_grad(&nl1, &p, 1.0);
        assert!((g3.value - 3.0 * g1.value).abs() < 1e-9);
        assert!((g3.grad_x[0] - 3.0 * g1.grad_x[0]).abs() < 1e-9);
    }
}
