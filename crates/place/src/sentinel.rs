//! Divergence detection for the global placement loop.
//!
//! Numerical optimization over hundreds of thousands of coordinates can go
//! wrong in ways that are cheap to detect and expensive to ignore: a NaN or
//! infinity anywhere in the objective poisons every later iterate, a step
//! size past the Lipschitz bound makes the wirelength explode, and an
//! overly aggressive momentum schedule can lock the overflow into a limit
//! cycle. The [`DivergenceSentinel`] watches the per-iteration statistics
//! for all three signatures; the engine responds by rolling back to the
//! last healthy state and shrinking its step size instead of panicking (see
//! [`crate::GlobalPlacer::step`]).

use puffer_db::cast;
use crate::engine::IterationStats;
use std::collections::VecDeque;

/// Why the sentinel flagged an iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Divergence {
    /// A NaN or infinity in the statistics (objective, overflow, or a
    /// coordinate that poisoned them).
    NonFinite,
    /// The wirelength exploded relative to the healthiest iterate seen.
    Exploding,
    /// The overflow is swinging without net progress (limit cycle).
    Oscillating,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Divergence::NonFinite => write!(f, "non-finite objective"),
            Divergence::Exploding => write!(f, "exploding wirelength"),
            Divergence::Oscillating => write!(f, "oscillating overflow"),
        }
    }
}

/// Streaming divergence detector over [`IterationStats`].
#[derive(Debug, Clone)]
pub struct DivergenceSentinel {
    /// Recent overflow values (cleared after every recovery).
    window: VecDeque<f64>,
    /// Window length for the oscillation check; `0` disables it.
    capacity: usize,
    /// Smallest finite HPWL observed.
    best_hpwl: f64,
    /// HPWL growth beyond `best_hpwl` treated as an explosion.
    explode_factor: f64,
}

impl DivergenceSentinel {
    /// Creates a sentinel with the given oscillation window (`0` disables
    /// the oscillation check).
    pub fn new(window: usize) -> Self {
        DivergenceSentinel {
            window: VecDeque::with_capacity(window),
            capacity: window,
            best_hpwl: f64::INFINITY,
            explode_factor: 200.0,
        }
    }

    /// Examines one iteration's statistics; `Some(reason)` means the engine
    /// should recover rather than commit this iterate.
    pub fn check(&mut self, stats: &IterationStats) -> Option<Divergence> {
        let finite = stats.overflow.is_finite()
            && stats.hpwl.is_finite()
            && stats.wa.is_finite()
            && stats.energy.is_finite()
            && stats.lambda.is_finite();
        if !finite {
            self.reset_window();
            return Some(Divergence::NonFinite);
        }
        if stats.hpwl > self.best_hpwl * self.explode_factor {
            self.reset_window();
            return Some(Divergence::Exploding);
        }
        self.best_hpwl = self.best_hpwl.min(stats.hpwl);

        if self.capacity > 0 {
            if self.window.len() == self.capacity {
                self.window.pop_front();
            }
            self.window.push_back(stats.overflow);
            if self.window.len() == self.capacity && self.is_oscillating() {
                self.reset_window();
                return Some(Divergence::Oscillating);
            }
        }
        None
    }

    /// Forgets the overflow history (called on recovery so a rollback does
    /// not immediately re-trigger from stale samples).
    pub fn reset_window(&mut self) {
        self.window.clear();
    }

    /// A full window oscillates when the overflow swings by a large
    /// fraction of its level while making no net progress.
    fn is_oscillating(&self) -> bool {
        let first = self.window.front().copied().unwrap_or(0.0);
        let last = self.window.back().copied().unwrap_or(0.0);
        let mean = self.window.iter().sum::<f64>() / cast::idx_f64(self.window.len());
        if mean <= 1e-12 {
            return false;
        }
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        let mut flips = 0usize;
        let mut prev_sign = 0i8;
        let mut prev = first;
        for &v in self.window.iter().skip(1) {
            lo = lo.min(v);
            hi = hi.max(v);
            let sign = if v > prev {
                1
            } else if v < prev {
                -1
            } else {
                0
            };
            if sign != 0 && prev_sign != 0 && sign != prev_sign {
                flips += 1;
            }
            if sign != 0 {
                prev_sign = sign;
            }
            prev = v;
        }
        lo = lo.min(first);
        hi = hi.max(first);
        let swinging = (hi - lo) > 0.5 * mean;
        let no_progress = last >= first * 0.99;
        // Demand direction changes in at least a third of the window so a
        // single plateau-then-drop is not mistaken for a cycle.
        let cycling = flips * 3 >= self.window.len();
        swinging && no_progress && cycling
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(overflow: f64, hpwl: f64) -> IterationStats {
        IterationStats {
            iter: 1,
            overflow,
            hpwl,
            wa: hpwl,
            energy: 1.0,
            lambda: 1.0,
        }
    }

    #[test]
    fn healthy_convergence_passes() {
        let mut s = DivergenceSentinel::new(8);
        for i in 0..100 {
            let of = 1.0 / (1.0 + i as f64 * 0.1);
            assert_eq!(s.check(&stats(of, 1000.0 + i as f64)), None, "iter {i}");
        }
    }

    #[test]
    fn plateau_near_convergence_passes() {
        // Small jitter around a low overflow must not look like a cycle.
        let mut s = DivergenceSentinel::new(8);
        for i in 0..100 {
            let of = 0.08 + 0.002 * ((i % 2) as f64);
            assert_eq!(s.check(&stats(of, 1000.0)), None, "iter {i}");
        }
    }

    #[test]
    fn nan_and_infinity_are_flagged() {
        let mut s = DivergenceSentinel::new(8);
        assert_eq!(
            s.check(&stats(f64::NAN, 1000.0)),
            Some(Divergence::NonFinite)
        );
        assert_eq!(
            s.check(&stats(0.5, f64::INFINITY)),
            Some(Divergence::NonFinite)
        );
    }

    #[test]
    fn hpwl_explosion_is_flagged() {
        let mut s = DivergenceSentinel::new(8);
        assert_eq!(s.check(&stats(0.5, 1000.0)), None);
        assert_eq!(s.check(&stats(0.5, 1e9)), Some(Divergence::Exploding));
    }

    #[test]
    fn limit_cycle_is_flagged() {
        let mut s = DivergenceSentinel::new(8);
        let mut flagged = false;
        for i in 0..40 {
            let of = if i % 2 == 0 { 0.9 } else { 0.4 };
            if s.check(&stats(of, 1000.0)).is_some() {
                flagged = true;
                break;
            }
        }
        assert!(flagged, "alternating overflow never flagged");
    }

    #[test]
    fn window_resets_after_recovery() {
        let mut s = DivergenceSentinel::new(4);
        for i in 0..20 {
            let of = if i % 2 == 0 { 0.9 } else { 0.4 };
            if s.check(&stats(of, 1000.0)).is_some() {
                break;
            }
        }
        // Immediately after a trigger the window is empty again, so a few
        // healthy iterations cannot re-trigger from stale samples.
        for i in 0..3 {
            assert_eq!(s.check(&stats(0.5 - 0.1 * i as f64, 1000.0)), None);
        }
    }

    #[test]
    fn zero_window_disables_oscillation_check() {
        let mut s = DivergenceSentinel::new(0);
        for i in 0..64 {
            let of = if i % 2 == 0 { 0.9 } else { 0.4 };
            assert_eq!(s.check(&stats(of, 1000.0)), None);
        }
    }
}
